// Diurnal-load scenario: a day/night arrival pattern on a reconfigurable
// datacenter. The workload is built programmatically — a sinusoidal arrival
// rate over several simulated "days" — and replayed through both
// reconfiguration modes, demonstrating how partial reconfiguration absorbs
// the daily peak that saturates the one-task-per-node system.
//
//   ./examples/datacenter_diurnal [--days N] [--nodes N] [--seed S]
#include <cmath>
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

namespace {

using namespace dreamsim;

/// Builds a workload whose inter-arrival gap oscillates daily: short gaps
/// (heavy load) at the peak, long gaps in the trough.
workload::Workload BuildDiurnalWorkload(
    const resource::ConfigCatalogue& catalogue, int days, Tick day_length,
    Tick peak_gap, Tick trough_gap, Rng& rng) {
  workload::Workload wl;
  const Tick horizon = days * day_length;
  Tick now = 0;
  while (now < horizon) {
    // Phase in [0, 2*pi) across the day; load peaks mid-day.
    const double phase = 2.0 * M_PI *
                         static_cast<double>(now % day_length) /
                         static_cast<double>(day_length);
    const double intensity = 0.5 * (1.0 - std::cos(phase));  // 0 .. 1
    const double mean_gap =
        static_cast<double>(trough_gap) -
        intensity * static_cast<double>(trough_gap - peak_gap);
    now += std::max<Tick>(1, static_cast<Tick>(std::llround(
                                 rng.exponential(1.0 / mean_gap))));

    workload::GeneratedTask t;
    t.create_time = now;
    const auto index = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(catalogue.size()) - 1));
    t.preferred_config = ConfigId{index};
    t.needed_area = catalogue.Get(t.preferred_config).required_area;
    t.required_time = rng.uniform_int(1000, 20000);
    wl.push_back(t);
  }
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Diurnal datacenter load: sinusoidal arrival rate over several "
      "simulated days, full vs partial reconfiguration.");
  cli.AddInt("days", 3, "number of simulated days");
  cli.AddInt("day-length", 100000, "ticks per day");
  cli.AddInt("peak-gap", 8, "mean inter-arrival gap at the daily peak");
  cli.AddInt("trough-gap", 200, "mean inter-arrival gap at the trough");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  core::SimulationConfig base;
  base.nodes.count = static_cast<int>(cli.GetInt("nodes"));
  base.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  // Same catalogue the simulator will build (same derived sub-seed).
  Rng catalogue_rng(DeriveSeed(base.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      base.configs, ptype::Catalogue::Default(), catalogue_rng);

  Rng workload_rng(DeriveSeed(base.seed, 101));
  const workload::Workload wl = BuildDiurnalWorkload(
      catalogue, static_cast<int>(cli.GetInt("days")),
      cli.GetInt("day-length"), cli.GetInt("peak-gap"),
      cli.GetInt("trough-gap"), workload_rng);
  std::cout << Format("diurnal workload: {} tasks over {} days\n", wl.size(),
                      cli.GetInt("days"));

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config = base;
    config.mode = mode;
    config.label = std::string(sched::ToString(mode)) + "@diurnal";
    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.RunWithWorkload(wl));
    const rms::UtilizationReport& u = simulator.utilization();
    std::cout << Format(
        "[{}] peak concurrent tasks {}, peak queue depth {}\n",
        sched::ToString(mode), u.peak_running_tasks, u.peak_suspended_tasks);
  }

  std::cout << "\n=== Diurnal load, Table I comparison ===\n"
            << core::RenderComparisonTable(reports);
  return 0;
}
