// Task-graph scheduling example (the paper's future work, implemented): a
// synthetic radar-processing pipeline — layered DAG of DSP/VLIW stages —
// scheduled onto partially reconfigurable nodes. Reports makespan, the
// critical-path lower bound, and the speedup over one-task-per-node mode.
//
//   ./examples/task_graph_pipeline [--layers N] [--width N] [--nodes N]
#include <iostream>

#include "core/graph_session.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Schedule a layered task graph (synthetic radar pipeline) on "
      "reconfigurable nodes; compare full vs partial reconfiguration.");
  cli.AddInt("layers", 8, "pipeline depth (graph layers)");
  cli.AddInt("width", 12, "tasks per layer");
  cli.AddDouble("density", 0.35, "edge probability between adjacent layers");
  cli.AddInt("nodes", 6, "number of reconfigurable nodes");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  core::SimulationConfig base;
  base.nodes.count = static_cast<int>(cli.GetInt("nodes"));
  base.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  // Build the graph against the same catalogue the simulator will generate
  // (same derived sub-seed), so vertex C_prefs resolve identically.
  Rng catalogue_rng(DeriveSeed(base.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      base.configs, ptype::Catalogue::Default(), catalogue_rng);

  workload::GraphGenParams graph_params;
  graph_params.layers = static_cast<int>(cli.GetInt("layers"));
  graph_params.width = static_cast<int>(cli.GetInt("width"));
  graph_params.edge_density = cli.GetDouble("density");
  graph_params.task_params.min_required_time = 500;
  graph_params.task_params.max_required_time = 5000;
  Rng graph_rng(DeriveSeed(base.seed, 17));
  const workload::TaskGraph graph =
      workload::GenerateLayeredGraph(graph_params, catalogue, graph_rng);

  std::cout << Format(
      "pipeline: {} vertices in {} layers, critical path {} stages\n",
      graph.size(), graph_params.layers, graph.CriticalPathLength());

  Tick makespans[2] = {0, 0};
  int i = 0;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config = base;
    config.mode = mode;
    config.label = std::string(sched::ToString(mode)) + "@graph";
    const core::GraphRunResult result = core::RunGraph(config, graph);
    makespans[i++] = result.makespan;
    std::cout << Format(
        "[{}] makespan {:>8} ticks, {} completed, {} discarded, "
        "avg wait {}\n",
        sched::ToString(mode), result.makespan, result.completed_vertices,
        result.discarded_vertices,
        Format("{}", result.metrics.avg_waiting_time_per_task));
  }

  if (makespans[1] > 0) {
    std::cout << Format(
        "\npartial reconfiguration finishes the pipeline {}x faster\n",
        Format("{}", static_cast<double>(makespans[0]) /
                         static_cast<double>(makespans[1])));
  }

  // Scheduling-discipline comparison (partial mode): FIFO readiness vs
  // HEFT-style critical-path-first list scheduling.
  {
    core::SimulationConfig config = base;
    config.mode = sched::ReconfigMode::kPartial;
    const core::GraphRunResult fifo =
        core::RunGraph(config, graph, core::GraphOrder::kFifo);
    const core::GraphRunResult cp =
        core::RunGraph(config, graph, core::GraphOrder::kCriticalPathFirst);
    std::cout << Format(
        "\nlist scheduling (partial mode): fifo makespan {}, "
        "critical-path-first makespan {} ({}x)\n",
        fifo.makespan, cp.makespan,
        Format("{}", static_cast<double>(fifo.makespan) /
                         static_cast<double>(std::max<Tick>(1, cp.makespan))));
  }
  return 0;
}
