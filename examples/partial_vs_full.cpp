// The paper's headline experiment as a standalone application: one
// simulation per reconfiguration mode on identical parameters (Table II),
// with the full Table I comparison, placement-phase breakdown, utilization
// summary, and an XML report per run — everything Sec. VI discusses, from
// one binary.
//
//   ./examples/partial_vs_full [--nodes N] [--tasks N] [--seed S]
//                              [--xml-prefix PATH]
#include <fstream>
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

namespace {

void PrintPlacementBreakdown(const dreamsim::core::MetricsReport& r) {
  using dreamsim::Format;
  static constexpr const char* kKinds[] = {
      "allocation", "configuration", "partial-configuration",
      "partial-reconfiguration", "full-reconfiguration"};
  std::cout << Format("  placement phases ({}):\n", r.label);
  for (int i = 0; i < 5; ++i) {
    if (r.placements_by_kind[i] == 0) continue;
    std::cout << Format("    {:<26}{}\n", kKinds[i], r.placements_by_kind[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Full vs partial reconfiguration on the paper's Table II parameters, "
      "with placement and utilization breakdowns.");
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("configs", 50, "number of processor configurations");
  cli.AddInt("tasks", 10000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed (shared across both modes)");
  cli.AddString("xml-prefix", "",
                "write <prefix>-full.xml / <prefix>-partial.xml reports");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.configs.count = static_cast<int>(cli.GetInt("configs"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.mode = mode;
    config.label = std::string(sched::ToString(mode));

    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.Run());

    const rms::UtilizationReport& u = simulator.utilization();
    std::cout << Format(
        "[{}] avg running tasks {:<10} avg busy nodes {:<10} peak queue {}\n",
        reports.back().label, Format("{}", u.avg_running_tasks),
        Format("{}", u.avg_busy_nodes), u.peak_suspended_tasks);
    PrintPlacementBreakdown(reports.back());

    const std::string prefix = cli.GetString("xml-prefix");
    if (!prefix.empty()) {
      const std::string path =
          Format("{}-{}.xml", prefix, sched::ToString(mode));
      std::ofstream out(path);
      core::WriteXmlReport(out, reports.back());
      std::cout << "  wrote " << path << "\n";
    }
  }

  std::cout << "\n=== Table I comparison ===\n"
            << core::RenderComparisonTable(reports);

  const auto& full = reports[0];
  const auto& partial = reports[1];
  std::cout << Format(
      "\nPartial reconfiguration wastes {}x less area per task and waits "
      "{}x less,\nat the cost of {}x more reconfigurations per node.\n",
      Format("{}", full.avg_wasted_area_per_task /
                       std::max(1.0, partial.avg_wasted_area_per_task)),
      Format("{}", full.avg_waiting_time_per_task /
                       std::max(1.0, partial.avg_waiting_time_per_task)),
      Format("{}", partial.avg_reconfig_count_per_node /
                       std::max(1e-9, full.avg_reconfig_count_per_node)));
  return 0;
}
