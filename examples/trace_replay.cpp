// Trace workflow example ("real workloads", Sec. III / future work):
//
//   1. generate a synthetic workload and save it as a trace file,
//   2. reload the trace,
//   3. replay it through the simulator under both reconfiguration modes.
//
// The same trace file can come from any external source that follows the
// documented CSV format (see src/workload/trace.hpp).
//
//   ./examples/trace_replay [--trace PATH] [--tasks N] [--nodes N]
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Round-trip a workload through the trace format and replay it under "
      "both reconfiguration modes.");
  cli.AddString("trace", "/tmp/dreamsim_example_trace.csv",
                "trace file to write and replay");
  cli.AddString("input", "",
                "replay an existing trace instead of generating one");
  cli.AddInt("tasks", 3000, "tasks to generate when no --input is given");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  core::SimulationConfig base;
  base.nodes.count = static_cast<int>(cli.GetInt("nodes"));
  base.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
  base.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  // Obtain the workload: load an external trace, or generate + save one.
  workload::Workload workload;
  const std::string input = cli.GetString("input");
  if (!input.empty()) {
    workload = workload::ReadTraceFile(input);
    std::cout << "loaded " << workload.size() << " tasks from " << input
              << "\n";
  } else {
    // Build the catalogue exactly as the simulator will (same sub-seed),
    // so the trace's configuration ids resolve identically on replay.
    Rng workload_rng(DeriveSeed(base.seed, 1));
    Rng catalogue_rng(DeriveSeed(base.seed, 2));
    const auto catalogue = resource::ConfigCatalogue::Generate(
        base.configs, ptype::Catalogue::Default(), catalogue_rng);
    workload = workload::GenerateWorkload(base.tasks, catalogue, workload_rng);
    const std::string path = cli.GetString("trace");
    workload::WriteTraceFile(path, workload);
    std::cout << "generated " << workload.size() << " tasks -> " << path
              << "\n";
    workload = workload::ReadTraceFile(path);  // prove the round trip
  }

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config = base;
    config.mode = mode;
    config.label = std::string(sched::ToString(mode)) + "@trace";
    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.RunWithWorkload(workload));
  }

  std::cout << "\n=== Trace replay, Table I comparison ===\n"
            << core::RenderComparisonTable(reports);
  return 0;
}
