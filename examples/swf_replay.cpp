// Real-workload replay via the Standard Workload Format (SWF), the format
// of the Parallel Workloads Archive. With --input pointing at a real
// archive trace, its jobs replay through the reconfigurable system; without
// one, a demo SWF file is fabricated first so the example is runnable
// offline.
//
//   ./examples/swf_replay [--input trace.swf] [--nodes N]
//                         [--ticks-per-second R] [--area-per-proc A]
#include <fstream>
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "workload/swf.hpp"

namespace {

/// Fabricates a bursty SWF trace reminiscent of cluster logs: waves of
/// small interactive jobs plus occasional wide long-running ones.
std::vector<dreamsim::workload::SwfJob> FabricateDemoTrace(int count,
                                                           std::uint64_t seed) {
  dreamsim::Rng rng(seed);
  std::vector<dreamsim::workload::SwfJob> jobs;
  std::int64_t clock = 0;
  for (int i = 0; i < count; ++i) {
    clock += rng.uniform_int(1, 40);
    dreamsim::workload::SwfJob job;
    job.job_id = i + 1;
    job.submit_time = clock;
    if (rng.uniform() < 0.85) {
      job.run_time = rng.uniform_int(60, 1200);        // interactive-ish
      job.requested_procs = rng.uniform_int(1, 4);
    } else {
      job.run_time = rng.uniform_int(3600, 14400);     // wide batch job
      job.requested_procs = rng.uniform_int(8, 16);
    }
    job.allocated_procs = job.requested_procs;
    job.used_memory_kb = 512 * job.requested_procs;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Replay a Standard Workload Format trace (Parallel Workloads Archive "
      "format) on the reconfigurable system, full vs partial.");
  cli.AddString("input", "", "SWF file to replay (empty = fabricate a demo)");
  cli.AddString("demo-out", "/tmp/dreamsim_demo.swf",
                "where the fabricated demo trace is written");
  cli.AddInt("jobs", 2000, "demo trace size when fabricating");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddDouble("ticks-per-second", 0.2, "simulated ticks per SWF second");
  cli.AddInt("area-per-proc", 120, "area units per requested processor");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::string path = cli.GetString("input");
  if (path.empty()) {
    path = cli.GetString("demo-out");
    const auto jobs = FabricateDemoTrace(
        static_cast<int>(cli.GetInt("jobs")),
        static_cast<std::uint64_t>(cli.GetInt("seed")));
    std::ofstream out(path);
    workload::WriteSwf(out, jobs, "fabricated demo trace (swf_replay)");
    std::cout << "fabricated " << jobs.size() << " jobs -> " << path << "\n";
  }

  workload::SwfMapping mapping;
  mapping.ticks_per_second = cli.GetDouble("ticks-per-second");
  mapping.area_per_processor = cli.GetInt("area-per-proc");
  const workload::SwfConversion converted =
      workload::ReadSwfFile(path, mapping);
  std::cout << Format("converted {} jobs ({} skipped) from {}\n",
                      converted.workload.size(), converted.jobs_skipped, path);

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.mode = mode;
    config.label = std::string(sched::ToString(mode)) + "@swf";
    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.RunWithWorkload(converted.workload));
  }

  std::cout << "\n=== SWF replay, Table I comparison ===\n"
            << core::RenderComparisonTable(reports);
  return 0;
}
