// Quickstart: run one DReAMSim simulation with the paper's Table II
// parameters and print the Table I report for both reconfiguration modes.
//
//   ./examples/quickstart [--nodes N] [--tasks N] [--seed S]
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "DReAMSim quickstart: full vs partial reconfiguration on the paper's "
      "Table II parameters.");
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("configs", 50, "number of processor configurations");
  cli.AddInt("tasks", 5000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.configs.count = static_cast<int>(cli.GetInt("configs"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.mode = mode;
    config.label = std::string(sched::ToString(mode));

    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.Run());
    std::cout << core::RenderReportTable(reports.back()) << "\n";
  }

  std::cout << "Side-by-side comparison (Table I metrics):\n"
            << core::RenderComparisonTable(reports);
  return 0;
}
