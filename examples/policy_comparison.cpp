// Scheduling-policy comparison example: "the task scheduling manager can
// implement different scheduling policies" (Sec. III). Runs the case-study
// algorithm and every baseline on one identical workload, prints a compact
// scoreboard, and reports the load-balance quality each policy achieved.
//
//   ./examples/policy_comparison [--nodes N] [--tasks N] [--seed S]
#include <iostream>

#include "core/simulator.hpp"
#include "rms/load_balancer.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Compare the DReAMSim case-study scheduler against baseline policies "
      "on one identical workload.");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("tasks", 3000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed (shared by all policies)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::cout << Format("{:<14}{:>11}{:>11}{:>15}{:>15}{:>14}{:>11}\n", "policy",
                      "completed", "discarded", "avg_wait", "sim_time",
                      "reconf/node", "fairness");

  for (const auto choice :
       {core::PolicyChoice::kDreamSim, core::PolicyChoice::kFirstFit,
        core::PolicyChoice::kBestFit, core::PolicyChoice::kWorstFit,
        core::PolicyChoice::kRandomFit, core::PolicyChoice::kRoundRobin,
        core::PolicyChoice::kLeastLoaded}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.policy = choice;
    config.enable_monitoring = false;

    core::Simulator simulator(std::move(config));
    const core::MetricsReport report = simulator.Run();

    // Load-balance quality at end of run (the extension the paper lists as
    // future work): Jain's fairness over cumulative per-node activity.
    const rms::LoadBalancer balancer(simulator.store());
    double fairness;
    {
      // Fairness over reconfiguration activity, since running tasks are
      // zero after the run drains.
      double sum = 0.0;
      double sum_sq = 0.0;
      for (const resource::Node& n : simulator.store().nodes()) {
        const auto x = static_cast<double>(n.reconfig_count());
        sum += x;
        sum_sq += x * x;
      }
      const auto count = static_cast<double>(simulator.store().node_count());
      fairness = sum_sq > 0.0 ? (sum * sum) / (count * sum_sq) : 1.0;
    }
    (void)balancer;

    std::cout << Format(
        "{:<14}{:>11}{:>11}{:>15}{:>15}{:>14}{:>11}\n",
        core::ToString(choice), report.completed_tasks,
        report.discarded_tasks,
        Format("{}", report.avg_waiting_time_per_task),
        report.total_simulation_time,
        Format("{}", report.avg_reconfig_count_per_node),
        Format("{}", fairness));
  }

  std::cout << "\nfairness = Jain's index over per-node reconfiguration "
               "activity (1 = perfectly even).\n";
  return 0;
}
