# Empty dependencies file for dreamsim.
# This may be replaced when dependencies are built.
