file(REMOVE_RECURSE
  "CMakeFiles/dreamsim.dir/dreamsim_cli.cpp.o"
  "CMakeFiles/dreamsim.dir/dreamsim_cli.cpp.o.d"
  "dreamsim"
  "dreamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
