# Empty compiler generated dependencies file for dreamsim_core.
# This may be replaced when dependencies are built.
