file(REMOVE_RECURSE
  "libdreamsim_core.a"
)
