file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_core.dir/graph_session.cpp.o"
  "CMakeFiles/dreamsim_core.dir/graph_session.cpp.o.d"
  "CMakeFiles/dreamsim_core.dir/metrics.cpp.o"
  "CMakeFiles/dreamsim_core.dir/metrics.cpp.o.d"
  "CMakeFiles/dreamsim_core.dir/replication.cpp.o"
  "CMakeFiles/dreamsim_core.dir/replication.cpp.o.d"
  "CMakeFiles/dreamsim_core.dir/report.cpp.o"
  "CMakeFiles/dreamsim_core.dir/report.cpp.o.d"
  "CMakeFiles/dreamsim_core.dir/simulator.cpp.o"
  "CMakeFiles/dreamsim_core.dir/simulator.cpp.o.d"
  "CMakeFiles/dreamsim_core.dir/sweep.cpp.o"
  "CMakeFiles/dreamsim_core.dir/sweep.cpp.o.d"
  "libdreamsim_core.a"
  "libdreamsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
