
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rms/detail_report.cpp" "src/rms/CMakeFiles/dreamsim_rms.dir/detail_report.cpp.o" "gcc" "src/rms/CMakeFiles/dreamsim_rms.dir/detail_report.cpp.o.d"
  "/root/repo/src/rms/job_manager.cpp" "src/rms/CMakeFiles/dreamsim_rms.dir/job_manager.cpp.o" "gcc" "src/rms/CMakeFiles/dreamsim_rms.dir/job_manager.cpp.o.d"
  "/root/repo/src/rms/load_balancer.cpp" "src/rms/CMakeFiles/dreamsim_rms.dir/load_balancer.cpp.o" "gcc" "src/rms/CMakeFiles/dreamsim_rms.dir/load_balancer.cpp.o.d"
  "/root/repo/src/rms/monitor.cpp" "src/rms/CMakeFiles/dreamsim_rms.dir/monitor.cpp.o" "gcc" "src/rms/CMakeFiles/dreamsim_rms.dir/monitor.cpp.o.d"
  "/root/repo/src/rms/resource_info.cpp" "src/rms/CMakeFiles/dreamsim_rms.dir/resource_info.cpp.o" "gcc" "src/rms/CMakeFiles/dreamsim_rms.dir/resource_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resource/CMakeFiles/dreamsim_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dreamsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dreamsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ptype/CMakeFiles/dreamsim_ptype.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dreamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
