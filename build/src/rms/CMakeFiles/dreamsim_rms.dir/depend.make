# Empty dependencies file for dreamsim_rms.
# This may be replaced when dependencies are built.
