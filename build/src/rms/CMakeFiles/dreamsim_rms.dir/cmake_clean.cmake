file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_rms.dir/detail_report.cpp.o"
  "CMakeFiles/dreamsim_rms.dir/detail_report.cpp.o.d"
  "CMakeFiles/dreamsim_rms.dir/job_manager.cpp.o"
  "CMakeFiles/dreamsim_rms.dir/job_manager.cpp.o.d"
  "CMakeFiles/dreamsim_rms.dir/load_balancer.cpp.o"
  "CMakeFiles/dreamsim_rms.dir/load_balancer.cpp.o.d"
  "CMakeFiles/dreamsim_rms.dir/monitor.cpp.o"
  "CMakeFiles/dreamsim_rms.dir/monitor.cpp.o.d"
  "CMakeFiles/dreamsim_rms.dir/resource_info.cpp.o"
  "CMakeFiles/dreamsim_rms.dir/resource_info.cpp.o.d"
  "libdreamsim_rms.a"
  "libdreamsim_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
