file(REMOVE_RECURSE
  "libdreamsim_rms.a"
)
