file(REMOVE_RECURSE
  "libdreamsim_resource.a"
)
