file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_resource.dir/config.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/config.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/entry_list.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/entry_list.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/fabric.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/fabric.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/node.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/node.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/store.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/store.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/suspension_queue.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/suspension_queue.cpp.o.d"
  "CMakeFiles/dreamsim_resource.dir/task.cpp.o"
  "CMakeFiles/dreamsim_resource.dir/task.cpp.o.d"
  "libdreamsim_resource.a"
  "libdreamsim_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
