
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resource/config.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/config.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/config.cpp.o.d"
  "/root/repo/src/resource/entry_list.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/entry_list.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/entry_list.cpp.o.d"
  "/root/repo/src/resource/fabric.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/fabric.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/fabric.cpp.o.d"
  "/root/repo/src/resource/node.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/node.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/node.cpp.o.d"
  "/root/repo/src/resource/store.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/store.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/store.cpp.o.d"
  "/root/repo/src/resource/suspension_queue.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/suspension_queue.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/suspension_queue.cpp.o.d"
  "/root/repo/src/resource/task.cpp" "src/resource/CMakeFiles/dreamsim_resource.dir/task.cpp.o" "gcc" "src/resource/CMakeFiles/dreamsim_resource.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dreamsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ptype/CMakeFiles/dreamsim_ptype.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
