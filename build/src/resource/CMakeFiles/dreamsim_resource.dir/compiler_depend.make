# Empty compiler generated dependencies file for dreamsim_resource.
# This may be replaced when dependencies are built.
