file(REMOVE_RECURSE
  "libdreamsim_ptype.a"
)
