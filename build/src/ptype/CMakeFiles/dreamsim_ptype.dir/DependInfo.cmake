
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptype/catalogue.cpp" "src/ptype/CMakeFiles/dreamsim_ptype.dir/catalogue.cpp.o" "gcc" "src/ptype/CMakeFiles/dreamsim_ptype.dir/catalogue.cpp.o.d"
  "/root/repo/src/ptype/ptype.cpp" "src/ptype/CMakeFiles/dreamsim_ptype.dir/ptype.cpp.o" "gcc" "src/ptype/CMakeFiles/dreamsim_ptype.dir/ptype.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dreamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
