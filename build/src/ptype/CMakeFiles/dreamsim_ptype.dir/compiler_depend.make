# Empty compiler generated dependencies file for dreamsim_ptype.
# This may be replaced when dependencies are built.
