file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_ptype.dir/catalogue.cpp.o"
  "CMakeFiles/dreamsim_ptype.dir/catalogue.cpp.o.d"
  "CMakeFiles/dreamsim_ptype.dir/ptype.cpp.o"
  "CMakeFiles/dreamsim_ptype.dir/ptype.cpp.o.d"
  "libdreamsim_ptype.a"
  "libdreamsim_ptype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_ptype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
