file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dreamsim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dreamsim_sim.dir/kernel.cpp.o"
  "CMakeFiles/dreamsim_sim.dir/kernel.cpp.o.d"
  "libdreamsim_sim.a"
  "libdreamsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
