# Empty compiler generated dependencies file for dreamsim_sim.
# This may be replaced when dependencies are built.
