file(REMOVE_RECURSE
  "libdreamsim_sim.a"
)
