file(REMOVE_RECURSE
  "libdreamsim_workload.a"
)
