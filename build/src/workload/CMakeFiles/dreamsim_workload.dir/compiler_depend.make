# Empty compiler generated dependencies file for dreamsim_workload.
# This may be replaced when dependencies are built.
