file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_workload.dir/generator.cpp.o"
  "CMakeFiles/dreamsim_workload.dir/generator.cpp.o.d"
  "CMakeFiles/dreamsim_workload.dir/swf.cpp.o"
  "CMakeFiles/dreamsim_workload.dir/swf.cpp.o.d"
  "CMakeFiles/dreamsim_workload.dir/task_graph.cpp.o"
  "CMakeFiles/dreamsim_workload.dir/task_graph.cpp.o.d"
  "CMakeFiles/dreamsim_workload.dir/trace.cpp.o"
  "CMakeFiles/dreamsim_workload.dir/trace.cpp.o.d"
  "libdreamsim_workload.a"
  "libdreamsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
