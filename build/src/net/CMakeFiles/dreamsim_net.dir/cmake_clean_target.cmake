file(REMOVE_RECURSE
  "libdreamsim_net.a"
)
