file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_net.dir/bitstream_cache.cpp.o"
  "CMakeFiles/dreamsim_net.dir/bitstream_cache.cpp.o.d"
  "CMakeFiles/dreamsim_net.dir/network.cpp.o"
  "CMakeFiles/dreamsim_net.dir/network.cpp.o.d"
  "libdreamsim_net.a"
  "libdreamsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
