# Empty dependencies file for dreamsim_net.
# This may be replaced when dependencies are built.
