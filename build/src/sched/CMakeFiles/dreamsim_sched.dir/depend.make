# Empty dependencies file for dreamsim_sched.
# This may be replaced when dependencies are built.
