
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dreamsim_policy.cpp" "src/sched/CMakeFiles/dreamsim_sched.dir/dreamsim_policy.cpp.o" "gcc" "src/sched/CMakeFiles/dreamsim_sched.dir/dreamsim_policy.cpp.o.d"
  "/root/repo/src/sched/heuristic_policy.cpp" "src/sched/CMakeFiles/dreamsim_sched.dir/heuristic_policy.cpp.o" "gcc" "src/sched/CMakeFiles/dreamsim_sched.dir/heuristic_policy.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/dreamsim_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/dreamsim_sched.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resource/CMakeFiles/dreamsim_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/ptype/CMakeFiles/dreamsim_ptype.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dreamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
