file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_sched.dir/dreamsim_policy.cpp.o"
  "CMakeFiles/dreamsim_sched.dir/dreamsim_policy.cpp.o.d"
  "CMakeFiles/dreamsim_sched.dir/heuristic_policy.cpp.o"
  "CMakeFiles/dreamsim_sched.dir/heuristic_policy.cpp.o.d"
  "CMakeFiles/dreamsim_sched.dir/policy.cpp.o"
  "CMakeFiles/dreamsim_sched.dir/policy.cpp.o.d"
  "libdreamsim_sched.a"
  "libdreamsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
