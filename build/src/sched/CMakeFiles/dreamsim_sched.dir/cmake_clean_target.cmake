file(REMOVE_RECURSE
  "libdreamsim_sched.a"
)
