file(REMOVE_RECURSE
  "libdreamsim_util.a"
)
