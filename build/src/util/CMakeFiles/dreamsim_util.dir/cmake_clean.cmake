file(REMOVE_RECURSE
  "CMakeFiles/dreamsim_util.dir/cli.cpp.o"
  "CMakeFiles/dreamsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/csv.cpp.o"
  "CMakeFiles/dreamsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/fmt.cpp.o"
  "CMakeFiles/dreamsim_util.dir/fmt.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/log.cpp.o"
  "CMakeFiles/dreamsim_util.dir/log.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/rng.cpp.o"
  "CMakeFiles/dreamsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/stats.cpp.o"
  "CMakeFiles/dreamsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/dreamsim_util.dir/xml.cpp.o"
  "CMakeFiles/dreamsim_util.dir/xml.cpp.o.d"
  "libdreamsim_util.a"
  "libdreamsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dreamsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
