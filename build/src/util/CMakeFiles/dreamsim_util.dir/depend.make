# Empty dependencies file for dreamsim_util.
# This may be replaced when dependencies are built.
