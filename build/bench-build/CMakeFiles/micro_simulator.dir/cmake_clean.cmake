file(REMOVE_RECURSE
  "../bench/micro_simulator"
  "../bench/micro_simulator.pdb"
  "CMakeFiles/micro_simulator.dir/micro_simulator.cpp.o"
  "CMakeFiles/micro_simulator.dir/micro_simulator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
