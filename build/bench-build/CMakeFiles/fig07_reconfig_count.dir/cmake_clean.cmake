file(REMOVE_RECURSE
  "../bench/fig07_reconfig_count"
  "../bench/fig07_reconfig_count.pdb"
  "CMakeFiles/fig07_reconfig_count.dir/fig07_reconfig_count.cpp.o"
  "CMakeFiles/fig07_reconfig_count.dir/fig07_reconfig_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_reconfig_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
