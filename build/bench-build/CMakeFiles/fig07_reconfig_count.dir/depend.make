# Empty dependencies file for fig07_reconfig_count.
# This may be replaced when dependencies are built.
