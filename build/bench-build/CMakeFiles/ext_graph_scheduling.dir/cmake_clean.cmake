file(REMOVE_RECURSE
  "../bench/ext_graph_scheduling"
  "../bench/ext_graph_scheduling.pdb"
  "CMakeFiles/ext_graph_scheduling.dir/ext_graph_scheduling.cpp.o"
  "CMakeFiles/ext_graph_scheduling.dir/ext_graph_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_graph_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
