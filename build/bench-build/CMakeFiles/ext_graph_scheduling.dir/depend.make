# Empty dependencies file for ext_graph_scheduling.
# This may be replaced when dependencies are built.
