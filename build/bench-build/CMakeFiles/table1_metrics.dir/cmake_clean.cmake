file(REMOVE_RECURSE
  "../bench/table1_metrics"
  "../bench/table1_metrics.pdb"
  "CMakeFiles/table1_metrics.dir/table1_metrics.cpp.o"
  "CMakeFiles/table1_metrics.dir/table1_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
