file(REMOVE_RECURSE
  "../bench/ablation_waste_accounting"
  "../bench/ablation_waste_accounting.pdb"
  "CMakeFiles/ablation_waste_accounting.dir/ablation_waste_accounting.cpp.o"
  "CMakeFiles/ablation_waste_accounting.dir/ablation_waste_accounting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_waste_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
