# Empty compiler generated dependencies file for ablation_waste_accounting.
# This may be replaced when dependencies are built.
