file(REMOVE_RECURSE
  "../bench/ablation_suspension"
  "../bench/ablation_suspension.pdb"
  "CMakeFiles/ablation_suspension.dir/ablation_suspension.cpp.o"
  "CMakeFiles/ablation_suspension.dir/ablation_suspension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_suspension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
