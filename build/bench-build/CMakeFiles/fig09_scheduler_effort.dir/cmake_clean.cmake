file(REMOVE_RECURSE
  "../bench/fig09_scheduler_effort"
  "../bench/fig09_scheduler_effort.pdb"
  "CMakeFiles/fig09_scheduler_effort.dir/fig09_scheduler_effort.cpp.o"
  "CMakeFiles/fig09_scheduler_effort.dir/fig09_scheduler_effort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scheduler_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
