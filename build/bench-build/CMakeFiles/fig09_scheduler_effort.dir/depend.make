# Empty dependencies file for fig09_scheduler_effort.
# This may be replaced when dependencies are built.
