file(REMOVE_RECURSE
  "../bench/micro_datastructures"
  "../bench/micro_datastructures.pdb"
  "CMakeFiles/micro_datastructures.dir/micro_datastructures.cpp.o"
  "CMakeFiles/micro_datastructures.dir/micro_datastructures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
