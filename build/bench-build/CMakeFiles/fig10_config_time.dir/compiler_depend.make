# Empty compiler generated dependencies file for fig10_config_time.
# This may be replaced when dependencies are built.
