file(REMOVE_RECURSE
  "../bench/fig06_wasted_area"
  "../bench/fig06_wasted_area.pdb"
  "CMakeFiles/fig06_wasted_area.dir/fig06_wasted_area.cpp.o"
  "CMakeFiles/fig06_wasted_area.dir/fig06_wasted_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_wasted_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
