# Empty compiler generated dependencies file for fig06_wasted_area.
# This may be replaced when dependencies are built.
