# Empty compiler generated dependencies file for ablation_bitstream_cache.
# This may be replaced when dependencies are built.
