file(REMOVE_RECURSE
  "../bench/ablation_bitstream_cache"
  "../bench/ablation_bitstream_cache.pdb"
  "CMakeFiles/ablation_bitstream_cache.dir/ablation_bitstream_cache.cpp.o"
  "CMakeFiles/ablation_bitstream_cache.dir/ablation_bitstream_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitstream_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
