file(REMOVE_RECURSE
  "../bench/fig08_waiting_time"
  "../bench/fig08_waiting_time.pdb"
  "CMakeFiles/fig08_waiting_time.dir/fig08_waiting_time.cpp.o"
  "CMakeFiles/fig08_waiting_time.dir/fig08_waiting_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_waiting_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
