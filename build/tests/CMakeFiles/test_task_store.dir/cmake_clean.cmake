file(REMOVE_RECURSE
  "CMakeFiles/test_task_store.dir/test_task_store.cpp.o"
  "CMakeFiles/test_task_store.dir/test_task_store.cpp.o.d"
  "test_task_store"
  "test_task_store.pdb"
  "test_task_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
