
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_task_store.cpp" "tests/CMakeFiles/test_task_store.dir/test_task_store.cpp.o" "gcc" "tests/CMakeFiles/test_task_store.dir/test_task_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dreamsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dreamsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dreamsim_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dreamsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dreamsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dreamsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/dreamsim_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/ptype/CMakeFiles/dreamsim_ptype.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dreamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
