# Empty dependencies file for test_expected.
# This may be replaced when dependencies are built.
