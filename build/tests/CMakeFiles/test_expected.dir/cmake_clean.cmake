file(REMOVE_RECURSE
  "CMakeFiles/test_expected.dir/test_expected.cpp.o"
  "CMakeFiles/test_expected.dir/test_expected.cpp.o.d"
  "test_expected"
  "test_expected.pdb"
  "test_expected[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
