file(REMOVE_RECURSE
  "CMakeFiles/test_drain_semantics.dir/test_drain_semantics.cpp.o"
  "CMakeFiles/test_drain_semantics.dir/test_drain_semantics.cpp.o.d"
  "test_drain_semantics"
  "test_drain_semantics.pdb"
  "test_drain_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drain_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
