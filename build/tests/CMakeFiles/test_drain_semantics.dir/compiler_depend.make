# Empty compiler generated dependencies file for test_drain_semantics.
# This may be replaced when dependencies are built.
