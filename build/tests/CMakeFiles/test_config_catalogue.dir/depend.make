# Empty dependencies file for test_config_catalogue.
# This may be replaced when dependencies are built.
