file(REMOVE_RECURSE
  "CMakeFiles/test_config_catalogue.dir/test_config_catalogue.cpp.o"
  "CMakeFiles/test_config_catalogue.dir/test_config_catalogue.cpp.o.d"
  "test_config_catalogue"
  "test_config_catalogue.pdb"
  "test_config_catalogue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_catalogue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
