file(REMOVE_RECURSE
  "CMakeFiles/test_event_logger.dir/test_event_logger.cpp.o"
  "CMakeFiles/test_event_logger.dir/test_event_logger.cpp.o.d"
  "test_event_logger"
  "test_event_logger.pdb"
  "test_event_logger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
