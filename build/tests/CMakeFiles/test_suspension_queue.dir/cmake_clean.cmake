file(REMOVE_RECURSE
  "CMakeFiles/test_suspension_queue.dir/test_suspension_queue.cpp.o"
  "CMakeFiles/test_suspension_queue.dir/test_suspension_queue.cpp.o.d"
  "test_suspension_queue"
  "test_suspension_queue.pdb"
  "test_suspension_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suspension_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
