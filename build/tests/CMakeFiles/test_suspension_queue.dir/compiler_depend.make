# Empty compiler generated dependencies file for test_suspension_queue.
# This may be replaced when dependencies are built.
