# Empty dependencies file for test_detail_report.
# This may be replaced when dependencies are built.
