file(REMOVE_RECURSE
  "CMakeFiles/test_detail_report.dir/test_detail_report.cpp.o"
  "CMakeFiles/test_detail_report.dir/test_detail_report.cpp.o.d"
  "test_detail_report"
  "test_detail_report.pdb"
  "test_detail_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detail_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
