# Empty dependencies file for test_bitstream_cache.
# This may be replaced when dependencies are built.
