file(REMOVE_RECURSE
  "CMakeFiles/test_bitstream_cache.dir/test_bitstream_cache.cpp.o"
  "CMakeFiles/test_bitstream_cache.dir/test_bitstream_cache.cpp.o.d"
  "test_bitstream_cache"
  "test_bitstream_cache.pdb"
  "test_bitstream_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitstream_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
