# Empty dependencies file for test_ptype.
# This may be replaced when dependencies are built.
