file(REMOVE_RECURSE
  "CMakeFiles/test_ptype.dir/test_ptype.cpp.o"
  "CMakeFiles/test_ptype.dir/test_ptype.cpp.o.d"
  "test_ptype"
  "test_ptype.pdb"
  "test_ptype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
