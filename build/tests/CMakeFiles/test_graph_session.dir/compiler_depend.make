# Empty compiler generated dependencies file for test_graph_session.
# This may be replaced when dependencies are built.
