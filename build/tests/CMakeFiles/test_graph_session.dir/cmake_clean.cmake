file(REMOVE_RECURSE
  "CMakeFiles/test_graph_session.dir/test_graph_session.cpp.o"
  "CMakeFiles/test_graph_session.dir/test_graph_session.cpp.o.d"
  "test_graph_session"
  "test_graph_session.pdb"
  "test_graph_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
