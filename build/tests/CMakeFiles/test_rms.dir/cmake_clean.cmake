file(REMOVE_RECURSE
  "CMakeFiles/test_rms.dir/test_rms.cpp.o"
  "CMakeFiles/test_rms.dir/test_rms.cpp.o.d"
  "test_rms"
  "test_rms.pdb"
  "test_rms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
