# Empty compiler generated dependencies file for test_rms.
# This may be replaced when dependencies are built.
