file(REMOVE_RECURSE
  "CMakeFiles/test_fmt.dir/test_fmt.cpp.o"
  "CMakeFiles/test_fmt.dir/test_fmt.cpp.o.d"
  "test_fmt"
  "test_fmt.pdb"
  "test_fmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
