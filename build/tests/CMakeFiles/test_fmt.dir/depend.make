# Empty dependencies file for test_fmt.
# This may be replaced when dependencies are built.
