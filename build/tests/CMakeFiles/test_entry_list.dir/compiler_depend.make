# Empty compiler generated dependencies file for test_entry_list.
# This may be replaced when dependencies are built.
