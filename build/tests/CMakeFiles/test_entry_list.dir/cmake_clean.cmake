file(REMOVE_RECURSE
  "CMakeFiles/test_entry_list.dir/test_entry_list.cpp.o"
  "CMakeFiles/test_entry_list.dir/test_entry_list.cpp.o.d"
  "test_entry_list"
  "test_entry_list.pdb"
  "test_entry_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entry_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
