# Empty compiler generated dependencies file for test_heuristic_policy.
# This may be replaced when dependencies are built.
