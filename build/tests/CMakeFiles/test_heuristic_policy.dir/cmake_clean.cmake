file(REMOVE_RECURSE
  "CMakeFiles/test_heuristic_policy.dir/test_heuristic_policy.cpp.o"
  "CMakeFiles/test_heuristic_policy.dir/test_heuristic_policy.cpp.o.d"
  "test_heuristic_policy"
  "test_heuristic_policy.pdb"
  "test_heuristic_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristic_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
