# Empty compiler generated dependencies file for test_graph_priority.
# This may be replaced when dependencies are built.
