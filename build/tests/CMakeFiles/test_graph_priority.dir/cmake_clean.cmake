file(REMOVE_RECURSE
  "CMakeFiles/test_graph_priority.dir/test_graph_priority.cpp.o"
  "CMakeFiles/test_graph_priority.dir/test_graph_priority.cpp.o.d"
  "test_graph_priority"
  "test_graph_priority.pdb"
  "test_graph_priority[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
