file(REMOVE_RECURSE
  "CMakeFiles/test_dreamsim_policy.dir/test_dreamsim_policy.cpp.o"
  "CMakeFiles/test_dreamsim_policy.dir/test_dreamsim_policy.cpp.o.d"
  "test_dreamsim_policy"
  "test_dreamsim_policy.pdb"
  "test_dreamsim_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dreamsim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
