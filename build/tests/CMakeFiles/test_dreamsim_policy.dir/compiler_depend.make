# Empty compiler generated dependencies file for test_dreamsim_policy.
# This may be replaced when dependencies are built.
