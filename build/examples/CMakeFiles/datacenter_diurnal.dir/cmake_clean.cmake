file(REMOVE_RECURSE
  "CMakeFiles/datacenter_diurnal.dir/datacenter_diurnal.cpp.o"
  "CMakeFiles/datacenter_diurnal.dir/datacenter_diurnal.cpp.o.d"
  "datacenter_diurnal"
  "datacenter_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
