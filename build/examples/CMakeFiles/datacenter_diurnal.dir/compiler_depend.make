# Empty compiler generated dependencies file for datacenter_diurnal.
# This may be replaced when dependencies are built.
