# Empty dependencies file for task_graph_pipeline.
# This may be replaced when dependencies are built.
