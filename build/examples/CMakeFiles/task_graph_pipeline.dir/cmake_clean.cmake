file(REMOVE_RECURSE
  "CMakeFiles/task_graph_pipeline.dir/task_graph_pipeline.cpp.o"
  "CMakeFiles/task_graph_pipeline.dir/task_graph_pipeline.cpp.o.d"
  "task_graph_pipeline"
  "task_graph_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_graph_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
