// Tests for the per-configuration idle/busy membership lists and their
// step accounting (Fig. 3 structures).
#include "resource/entry_list.hpp"

#include <gtest/gtest.h>

namespace dreamsim::resource {
namespace {

EntryRef E(std::uint32_t node, SlotIndex slot) {
  return EntryRef{NodeId{node}, slot};
}

TEST(EntryList, AddAndContains) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(1, 0), meter);
  list.Add(E(2, 1), meter);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.Contains(E(1, 0), meter, StepKind::kHousekeeping));
  EXPECT_FALSE(list.Contains(E(3, 0), meter, StepKind::kHousekeeping));
}

TEST(EntryList, AddChargesOneHousekeepingStep) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(1, 0), meter);
  EXPECT_EQ(meter.housekeeping_steps_total(), 1u);
  EXPECT_EQ(meter.scheduling_steps_total(), 0u);
}

TEST(EntryList, RemoveExistingAndMissing) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(1, 0), meter);
  list.Add(E(2, 0), meter);
  EXPECT_TRUE(list.Remove(E(1, 0), meter));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.Remove(E(1, 0), meter));
  EXPECT_TRUE(list.Contains(E(2, 0), meter, StepKind::kHousekeeping));
}

TEST(EntryList, RemoveChargesTraversalSteps) {
  EntryList list;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 10; ++i) list.Add(E(i, 0), meter);
  const Steps before = meter.housekeeping_steps_total();
  // Element at position 7 costs 8 visited cells.
  EXPECT_TRUE(list.Remove(E(7, 0), meter));
  EXPECT_EQ(meter.housekeeping_steps_total() - before, 8u);
}

TEST(EntryList, SlotDistinguishesEntriesOnSameNode) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(1, 0), meter);
  list.Add(E(1, 1), meter);
  EXPECT_TRUE(list.Remove(E(1, 1), meter));
  EXPECT_TRUE(list.Contains(E(1, 0), meter, StepKind::kHousekeeping));
  EXPECT_FALSE(list.Contains(E(1, 1), meter, StepKind::kHousekeeping));
}

TEST(EntryList, FindFirstStopsAtMatch) {
  EntryList list;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 10; ++i) list.Add(E(i, 0), meter);
  const Steps before = meter.scheduling_steps_total();
  const auto found = list.FindFirst(
      [](EntryRef e) { return e.node.value() == 3; }, meter,
      StepKind::kSchedulingSearch);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node.value(), 3u);
  EXPECT_EQ(meter.scheduling_steps_total() - before, 4u);
}

TEST(EntryList, FindFirstMissScansAll) {
  EntryList list;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 5; ++i) list.Add(E(i, 0), meter);
  const Steps before = meter.scheduling_steps_total();
  const auto found = list.FindFirst([](EntryRef) { return false; }, meter,
                                    StepKind::kSchedulingSearch);
  EXPECT_FALSE(found.has_value());
  EXPECT_EQ(meter.scheduling_steps_total() - before, 5u);
}

TEST(EntryList, FindMinSelectsSmallestKey) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(5, 0), meter);
  list.Add(E(2, 0), meter);
  list.Add(E(8, 0), meter);
  const auto best = list.FindMin(
      [](EntryRef e) { return static_cast<long long>(e.node.value()); },
      [](EntryRef) { return true; }, meter, StepKind::kSchedulingSearch);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node.value(), 2u);
}

TEST(EntryList, FindMinHonoursAcceptFilter) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(1, 0), meter);
  list.Add(E(2, 0), meter);
  const auto best = list.FindMin(
      [](EntryRef e) { return static_cast<long long>(e.node.value()); },
      [](EntryRef e) { return e.node.value() != 1; }, meter,
      StepKind::kSchedulingSearch);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node.value(), 2u);
}

TEST(EntryList, FindMinEmptyOrAllRejected) {
  EntryList list;
  WorkloadMeter meter;
  EXPECT_FALSE(list.FindMin([](EntryRef) { return 0LL; },
                            [](EntryRef) { return true; }, meter,
                            StepKind::kSchedulingSearch)
                   .has_value());
  list.Add(E(1, 0), meter);
  EXPECT_FALSE(list.FindMin([](EntryRef) { return 0LL; },
                            [](EntryRef) { return false; }, meter,
                            StepKind::kSchedulingSearch)
                   .has_value());
}

TEST(EntryList, FindMinTieKeepsEarliest) {
  EntryList list;
  WorkloadMeter meter;
  list.Add(E(4, 0), meter);
  list.Add(E(4, 1), meter);
  const auto best = list.FindMin(
      [](EntryRef e) { return static_cast<long long>(e.node.value()); },
      [](EntryRef) { return true; }, meter, StepKind::kSchedulingSearch);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->slot, 0u);
}

TEST(WorkloadMeter, SeparatesKindsAndTotals) {
  WorkloadMeter meter;
  meter.BeginTask();
  meter.Add(StepKind::kSchedulingSearch, 3);
  meter.Add(StepKind::kHousekeeping, 2);
  EXPECT_EQ(meter.current_task_steps(), 3u);
  EXPECT_EQ(meter.scheduling_steps_total(), 3u);
  EXPECT_EQ(meter.housekeeping_steps_total(), 2u);
  EXPECT_EQ(meter.total_workload(), 5u);

  meter.BeginTask();
  EXPECT_EQ(meter.current_task_steps(), 0u);
  EXPECT_EQ(meter.total_workload(), 5u);  // totals survive BeginTask
}

TEST(WorkloadMeter, ResetClearsEverything) {
  WorkloadMeter meter;
  meter.Add(StepKind::kSchedulingSearch, 10);
  meter.Reset();
  EXPECT_EQ(meter.total_workload(), 0u);
  EXPECT_EQ(meter.scheduling_steps_total(), 0u);
  EXPECT_EQ(meter.housekeeping_steps_total(), 0u);
}

}  // namespace
}  // namespace dreamsim::resource
