// Unit tests for the multi-class workload generator: per-class seed
// streams, the deterministic k-way merge, arrival shapes, chains, and the
// validator. The bit-identity contract with GenerateWorkload is pinned
// separately in test_scenario_diff.cpp.
#include "workload/task_classes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ptype/catalogue.hpp"
#include "workload/generator.hpp"

namespace dreamsim::workload {
namespace {

resource::ConfigCatalogue MakeConfigs(int count, std::uint64_t seed) {
  Rng rng(seed);
  resource::ConfigGenParams params;
  params.count = count;
  return resource::ConfigCatalogue::Generate(params,
                                             ptype::Catalogue::Default(), rng);
}

TaskClassParams Steady(const char* name, int tasks) {
  TaskClassParams p;
  p.name = name;
  p.base.total_tasks = tasks;
  return p;
}

TEST(TaskClasses, IsPlainSteadyMatchesTheDelegationContract) {
  TaskClassParams p = Steady("s", 100);
  EXPECT_TRUE(IsPlainSteady(p));
  p.start_time = 10;
  EXPECT_FALSE(IsPlainSteady(p));
  p.start_time = 0;
  p.graph_fraction = 0.5;
  EXPECT_FALSE(IsPlainSteady(p));
  p.graph_fraction = 0.0;
  p.shape = ArrivalShape::kBursty;
  EXPECT_FALSE(IsPlainSteady(p));
}

TEST(TaskClasses, MergeIsNonDecreasingAndClassTagged) {
  const auto configs = MakeConfigs(10, 3);
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{Steady("a", 50), Steady("b", 70)}, configs,
      11);
  ASSERT_EQ(wl.tasks.size(), 120u);
  ASSERT_EQ(wl.class_of.size(), 120u);
  for (std::size_t i = 1; i < wl.tasks.size(); ++i) {
    EXPECT_LE(wl.tasks[i - 1].create_time, wl.tasks[i].create_time);
  }
  EXPECT_EQ(std::count(wl.class_of.begin(), wl.class_of.end(), 0u), 50);
  EXPECT_EQ(std::count(wl.class_of.begin(), wl.class_of.end(), 1u), 70);
}

TEST(TaskClasses, SameTickArrivalsMergeLowestClassFirst) {
  // Two identical classes with explicit equal seeds produce identical
  // timelines; ties must break to the lower class index, making the merge
  // fully deterministic.
  TaskClassParams a = Steady("a", 30);
  TaskClassParams b = Steady("b", 30);
  a.seed = 5;
  b.seed = 5;
  const auto configs = MakeConfigs(10, 3);
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{a, b}, configs, 11);
  ASSERT_EQ(wl.tasks.size(), 60u);
  for (std::size_t i = 1; i < wl.tasks.size(); ++i) {
    if (wl.tasks[i - 1].create_time == wl.tasks[i].create_time) {
      EXPECT_LE(wl.class_of[i - 1], wl.class_of[i]);
    }
  }
}

TEST(TaskClasses, ExplicitSeedIsolatesAClassStream) {
  // Re-rolling class b's seed must not disturb class a's draws.
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams a = Steady("a", 40);
  a.seed = 100;
  TaskClassParams b = Steady("b", 40);
  b.seed = 200;
  const auto before = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{a, b}, configs, 11);
  b.seed = 201;
  const auto after = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{a, b}, configs, 11);

  auto extract = [](const MultiClassWorkload& wl, std::uint32_t cls) {
    std::vector<GeneratedTask> out;
    for (std::size_t i = 0; i < wl.tasks.size(); ++i) {
      if (wl.class_of[i] == cls) out.push_back(wl.tasks[i]);
    }
    return out;
  };
  const auto a_before = extract(before, 0);
  const auto a_after = extract(after, 0);
  ASSERT_EQ(a_before.size(), a_after.size());
  for (std::size_t i = 0; i < a_before.size(); ++i) {
    EXPECT_EQ(a_before[i].create_time, a_after[i].create_time);
    EXPECT_EQ(a_before[i].required_time, a_after[i].required_time);
    EXPECT_EQ(a_before[i].needed_area, a_after[i].needed_area);
  }
  // And b's stream really did change.
  const auto b_before = extract(before, 1);
  const auto b_after = extract(after, 1);
  bool b_changed = b_before.size() != b_after.size();
  for (std::size_t i = 0; !b_changed && i < b_before.size(); ++i) {
    b_changed = b_before[i].create_time != b_after[i].create_time ||
                b_before[i].required_time != b_after[i].required_time;
  }
  EXPECT_TRUE(b_changed);
}

TEST(TaskClasses, GenerationIsDeterministic) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams burst = Steady("burst", 60);
  burst.shape = ArrivalShape::kBursty;
  burst.min_burst = 2;
  burst.max_burst = 6;
  burst.min_burst_gap = 100;
  burst.max_burst_gap = 500;
  const std::vector<TaskClassParams> classes{Steady("a", 40), burst};
  const auto x = GenerateMultiClassWorkload(classes, configs, 77);
  const auto y = GenerateMultiClassWorkload(classes, configs, 77);
  ASSERT_EQ(x.tasks.size(), y.tasks.size());
  for (std::size_t i = 0; i < x.tasks.size(); ++i) {
    EXPECT_EQ(x.tasks[i].create_time, y.tasks[i].create_time);
    EXPECT_EQ(x.tasks[i].required_time, y.tasks[i].required_time);
    EXPECT_EQ(x.class_of[i], y.class_of[i]);
  }
}

TEST(TaskClasses, StartTimeDelaysTheFirstArrival) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams late = Steady("late", 20);
  late.start_time = 5000;
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{late}, configs, 9);
  ASSERT_FALSE(wl.tasks.empty());
  EXPECT_GT(wl.tasks.front().create_time, 5000);
}

TEST(TaskClasses, WindowedClassStopsAtItsEndTime) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams windowed;
  windowed.name = "w";
  windowed.shape = ArrivalShape::kWindowed;
  windowed.base.total_tasks = 0;  // end-time budget, no count cap
  windowed.start_time = 100;
  windowed.end_time = 2000;
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{windowed}, configs, 9);
  ASSERT_FALSE(wl.tasks.empty());
  for (const auto& task : wl.tasks) {
    EXPECT_GT(task.create_time, 100);
    EXPECT_LE(task.create_time, 2000);
  }
}

TEST(TaskClasses, BurstyClassClumpsArrivals) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams burst = Steady("burst", 100);
  burst.shape = ArrivalShape::kBursty;
  burst.min_burst = 5;
  burst.max_burst = 5;
  burst.min_burst_gap = 10000;
  burst.max_burst_gap = 10000;
  burst.base.min_interval = 1;
  burst.base.max_interval = 2;
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{burst}, configs, 9);
  ASSERT_EQ(wl.tasks.size(), 100u);
  // Exactly every 5th gap is the large inter-burst one.
  int large_gaps = 0;
  for (std::size_t i = 1; i < wl.tasks.size(); ++i) {
    const Tick gap = wl.tasks[i].create_time - wl.tasks[i - 1].create_time;
    if (gap >= 10000) ++large_gaps;
  }
  EXPECT_EQ(large_gaps, 19);  // 20 bursts of 5 => 19 inter-burst gaps
}

TEST(TaskClasses, ChainsHeadIntoTheTimeline) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams chained = Steady("chained", 100);
  chained.graph_fraction = 1.0;  // every arrival heads a chain
  chained.min_chain = 3;
  chained.max_chain = 3;
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{chained}, configs, 9);
  EXPECT_EQ(wl.tasks.size(), 100u);
  ASSERT_EQ(wl.chains.size(), 100u);
  std::set<std::size_t> heads;
  for (const auto& chain : wl.chains) {
    EXPECT_EQ(chain.links.size(), 2u);  // head + 2 successors = length 3
    EXPECT_LT(chain.head_index, wl.tasks.size());
    heads.insert(chain.head_index);
  }
  EXPECT_EQ(heads.size(), wl.chains.size());  // one chain per head
  // Chains are sorted by head index for the simulator's merge cursor.
  for (std::size_t i = 1; i < wl.chains.size(); ++i) {
    EXPECT_LT(wl.chains[i - 1].head_index, wl.chains[i].head_index);
  }
  EXPECT_EQ(wl.TotalTasks(), 300u);
}

TEST(TaskClasses, PriorityRangeOnlyDrawsWhenSpread) {
  const auto configs = MakeConfigs(10, 3);
  TaskClassParams ranked = Steady("ranked", 50);
  ranked.min_priority = 0.25;
  ranked.max_priority = 0.75;
  const auto wl = GenerateMultiClassWorkload(
      std::vector<TaskClassParams>{ranked}, configs, 9);
  for (const auto& task : wl.tasks) {
    EXPECT_GE(task.priority, 0.25);
    EXPECT_LE(task.priority, 0.75);
  }
}

TEST(TaskClasses, ValidatorRejectsNonsense) {
  TaskClassParams p = Steady("bad", 0);
  EXPECT_FALSE(ValidateTaskClass(p).empty());  // no budget at all

  p = Steady("bad", 10);
  p.graph_fraction = 2.0;
  EXPECT_FALSE(ValidateTaskClass(p).empty());

  p = Steady("bad", 10);
  p.shape = ArrivalShape::kWindowed;
  EXPECT_FALSE(ValidateTaskClass(p).empty());  // windowed needs end_time

  p = Steady("bad", 10);
  p.min_chain = 1;  // a chain of one is not a chain
  p.graph_fraction = 0.5;
  EXPECT_FALSE(ValidateTaskClass(p).empty());

  EXPECT_TRUE(ValidateTaskClass(Steady("good", 10)).empty());
}

TEST(TaskClasses, GeneratorThrowsOnInvalidInput) {
  const auto configs = MakeConfigs(10, 3);
  EXPECT_THROW((void)GenerateMultiClassWorkload(
                   std::vector<TaskClassParams>{}, configs, 1),
               std::invalid_argument);
  TaskClassParams bad = Steady("bad", 0);
  EXPECT_THROW((void)GenerateMultiClassWorkload(
                   std::vector<TaskClassParams>{bad}, configs, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dreamsim::workload
