// Tests for the processor-type catalogue and its cost models.
#include "ptype/catalogue.hpp"

#include <gtest/gtest.h>

namespace dreamsim::ptype {
namespace {

TEST(AreaModels, MonotonicInSize) {
  EXPECT_LT(MultiplierArea(16), MultiplierArea(32));
  EXPECT_LT(MultiplierArea(32), MultiplierArea(64));
  EXPECT_LT(SystolicArea(4, 4), SystolicArea(8, 8));
  EXPECT_LT(DspPipelineArea(32, 16), DspPipelineArea(64, 16));
  EXPECT_LT(DspPipelineArea(64, 16), DspPipelineArea(64, 24));
}

TEST(AreaModels, AlwaysPositive) {
  EXPECT_GT(MultiplierArea(1), 0);
  EXPECT_GT(SystolicArea(1, 1), 0);
  EXPECT_GT(DspPipelineArea(1, 1), 0);
  EXPECT_GT(VliwArea(VliwParams{1, 1, 0, 0, 1}), 0);
}

TEST(VliwArea, GrowsWithEveryParameter) {
  const VliwParams base{4, 4, 2, 1, 1};
  const Area base_area = VliwArea(base);

  VliwParams wider = base;
  wider.issue_width = 8;
  EXPECT_GT(VliwArea(wider), base_area);

  VliwParams more_alus = base;
  more_alus.alus = 8;
  EXPECT_GT(VliwArea(more_alus), base_area);

  VliwParams more_mults = base;
  more_mults.multipliers = 4;
  EXPECT_GT(VliwArea(more_mults), base_area);

  VliwParams more_mem = base;
  more_mem.memory_slots = 3;
  EXPECT_GT(VliwArea(more_mem), base_area);

  VliwParams clustered = base;
  clustered.clusters = 2;
  EXPECT_EQ(VliwArea(clustered), 2 * base_area);
}

TEST(BitstreamModel, LinearInArea) {
  const Bytes small = BitstreamSize(100);
  const Bytes large = BitstreamSize(200);
  EXPECT_GT(large, small);
  EXPECT_EQ(large - small, 96 * 100);
}

TEST(ConfigTimeModel, CeilingDivision) {
  EXPECT_EQ(ConfigTimeFromBitstream(1000, 100), 10);
  EXPECT_EQ(ConfigTimeFromBitstream(1001, 100), 11);
  EXPECT_EQ(ConfigTimeFromBitstream(1, 100), 1);
}

TEST(ConfigTimeModel, DegenerateBandwidth) {
  EXPECT_EQ(ConfigTimeFromBitstream(1000, 0), 1);
  EXPECT_EQ(ConfigTimeFromBitstream(0, 100), 1);  // at least one tick
}

TEST(Catalogue, RegisterAssignsSequentialIds) {
  Catalogue c;
  const PtypeId a = c.AddMultiplier("m32", 32);
  const PtypeId b = c.AddSignalProcessor("sp", 500);
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Get(a).name, "m32");
  EXPECT_EQ(c.Get(b).area, 500);
}

TEST(Catalogue, GetRejectsUnknownIds) {
  Catalogue c;
  EXPECT_THROW((void)c.Get(PtypeId{0}), std::out_of_range);
  EXPECT_THROW((void)c.Get(PtypeId::invalid()), std::out_of_range);
}

TEST(Catalogue, FindByName) {
  Catalogue c = Catalogue::Default();
  const auto id = c.FindByName("rvex_4issue");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(c.Get(*id).kind, PtypeKind::kSoftCoreVliw);
  EXPECT_FALSE(c.FindByName("nonexistent").has_value());
}

TEST(Catalogue, ParamLookup) {
  Catalogue c;
  const PtypeId id = c.AddVliw("v", VliwParams{8, 8, 4, 2, 1});
  const Ptype& t = c.Get(id);
  EXPECT_EQ(t.Param("issue_width"), 8);
  EXPECT_EQ(t.Param("memory_slots"), 2);
  EXPECT_EQ(t.Param("missing", -1), -1);
}

TEST(Catalogue, DefaultCatalogueSpansTableIIAreaRange) {
  const Catalogue c = Catalogue::Default();
  ASSERT_GE(c.size(), 8u);
  Area min_area = c.all().front().area;
  Area max_area = min_area;
  for (const Ptype& t : c.all()) {
    EXPECT_GT(t.area, 0);
    min_area = std::min(min_area, t.area);
    max_area = std::max(max_area, t.area);
  }
  // Spread should roughly cover the paper's configuration range.
  EXPECT_LT(min_area, 500);
  EXPECT_GT(max_area, 1200);
}

TEST(Catalogue, SampleIsUniformish) {
  const Catalogue c = Catalogue::Default();
  Rng rng(5);
  std::vector<int> counts(c.size(), 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ++counts[c.Sample(rng).value()];
  }
  const double expected = static_cast<double>(draws) / c.size();
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.25);
  }
}

TEST(Catalogue, SampleEmptyThrows) {
  Catalogue c;
  Rng rng(1);
  EXPECT_THROW((void)c.Sample(rng), std::logic_error);
}

TEST(PtypeKindNames, AllDistinct) {
  EXPECT_EQ(ToString(PtypeKind::kMultiplier), "multiplier");
  EXPECT_EQ(ToString(PtypeKind::kSystolicArray), "systolic-array");
  EXPECT_EQ(ToString(PtypeKind::kDspPipeline), "dsp-pipeline");
  EXPECT_EQ(ToString(PtypeKind::kSignalProcessor), "signal-processor");
  EXPECT_EQ(ToString(PtypeKind::kSoftCoreVliw), "soft-core-vliw");
}

}  // namespace
}  // namespace dreamsim::ptype
