// Twin-fuzz for the partitioned EntryLists (DESIGN.md §14): a partitioned
// list and a plain one driven by the same operation stream must stay
// bit-identical in results, WorkloadMeter charges, and cell order — and a
// shard-bucket merge (the sharded kernel's BestIdleEntry shape) must pick
// the same winner as the global FindMin. A second suite runs the same twin
// at store level, with shard counts and thread counts in play.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "resource/entry_list.hpp"
#include "resource/shard_engine.hpp"
#include "resource/store.hpp"
#include "util/rng.hpp"

namespace dreamsim::resource {
namespace {

EntryRef E(std::uint32_t node, SlotIndex slot) {
  return EntryRef{NodeId{node}, slot};
}

/// Deterministic pseudo-area per entry so FindMin has meaningful ties.
long long KeyOf(EntryRef e) {
  return static_cast<long long>((e.node.value() * 37 + e.slot * 11) % 23);
}

/// The sharded kernel's merge shape at list level: per-bucket minimum on
/// (key, global position), then a fixed shard-order reduce. Must equal the
/// global FindMin winner for any key.
std::optional<EntryRef> BucketMin(const EntryList& list) {
  std::optional<EntryRef> best;
  long long best_key = 0;
  std::uint32_t best_gpos = 0;
  for (std::size_t s = 0; s < list.shard_count(); ++s) {
    for (const EntryList::ShardCell& c : list.shard_cells(s)) {
      const long long k = KeyOf(c.entry);
      if (!best || k < best_key || (k == best_key && c.gpos < best_gpos)) {
        best = c.entry;
        best_key = k;
        best_gpos = c.gpos;
      }
    }
  }
  return best;
}

TEST(EntryListTwin, PartitionedListIsBitIdenticalToPlainAcrossSeeds) {
  constexpr std::uint32_t kNodes = 40;
  constexpr std::size_t kShards = 3;
  std::vector<std::uint32_t> shard_of(kNodes);
  for (std::uint32_t id = 0; id < kNodes; ++id) shard_of[id] = id % kShards;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 7919);
    EntryList plain;
    EntryList sharded;
    sharded.SetPartition(&shard_of, kShards);
    WorkloadMeter plain_meter;
    WorkloadMeter sharded_meter;

    for (int op = 0; op < 2000; ++op) {
      const EntryRef e = E(static_cast<std::uint32_t>(
                               rng.uniform_int(0, kNodes - 1)),
                           static_cast<SlotIndex>(rng.uniform_int(0, 3)));
      if (rng.uniform_int(0, 9) < 6) {
        // The store never double-adds; mirror that contract here (the
        // membership probe is itself a counted twin operation).
        const bool present =
            plain.Contains(e, plain_meter, StepKind::kHousekeeping);
        ASSERT_EQ(present,
                  sharded.Contains(e, sharded_meter, StepKind::kHousekeeping));
        if (!present) {
          plain.Add(e, plain_meter);
          sharded.Add(e, sharded_meter);
        }
      } else {
        // Remove of present and absent entries alike (miss charges differ
        // from hits, and both must match).
        ASSERT_EQ(plain.Remove(e, plain_meter),
                  sharded.Remove(e, sharded_meter))
            << "seed " << seed << " op " << op;
      }
      ASSERT_EQ(plain_meter.total_workload(), sharded_meter.total_workload())
          << "seed " << seed << " op " << op;
      ASSERT_EQ(plain_meter.housekeeping_steps_total(),
                sharded_meter.housekeeping_steps_total())
          << "seed " << seed << " op " << op;
      ASSERT_EQ(plain.size(), sharded.size());

      if (op % 50 != 0) continue;
      // The partitioned list's global cell order must be untouched by the
      // bucket mirroring, so every scan answers identically...
      ASSERT_TRUE(sharded.PositionsConsistent());
      ASSERT_TRUE(sharded.PartitionConsistent());
      const auto a = plain.FindMin([](EntryRef x) { return KeyOf(x); },
                                   [](EntryRef) { return true; }, plain_meter,
                                   StepKind::kSchedulingSearch);
      const auto b = sharded.FindMin(
          [](EntryRef x) { return KeyOf(x); }, [](EntryRef) { return true; },
          sharded_meter, StepKind::kSchedulingSearch);
      ASSERT_EQ(a, b) << "seed " << seed << " op " << op;
      // ...and the shard-bucket merge must pick the same winner as the
      // global FindMin (the BestIdleEntry equivalence, minus the pool).
      ASSERT_EQ(BucketMin(sharded), a) << "seed " << seed << " op " << op;
      ASSERT_EQ(plain_meter.scheduling_steps_total(),
                sharded_meter.scheduling_steps_total());

      if (op == 1000) {
        // Re-partitioning mid-stream rebuilds the buckets from the current
        // cells without disturbing anything observable.
        sharded.SetPartition(nullptr, 0);
        ASSERT_FALSE(sharded.partitioned());
        sharded.SetPartition(&shard_of, kShards);
        ASSERT_TRUE(sharded.PartitionConsistent());
      }
    }
  }
}

TEST(EntryListTwin, ReserveNeverChangesContentsOrCharges) {
  EntryList reserved;
  EntryList bare;
  WorkloadMeter mr;
  WorkloadMeter mb;
  reserved.Reserve(512);
  for (std::uint32_t i = 0; i < 300; ++i) {
    reserved.Add(E(i, 0), mr);
    bare.Add(E(i, 0), mb);
  }
  EXPECT_EQ(mr.total_workload(), mb.total_workload());
  // lint: allow(entry-cells-iteration) — twin equality needs raw storage
  EXPECT_EQ(reserved.cells(), bare.cells());
  EXPECT_TRUE(reserved.PositionsConsistent());
}

// --- Store-level twin: sharded kernel vs sequential, large lists ------------

/// Enough nodes that the config-0 idle list crosses the parallel-scan
/// threshold (kParallelIdleScanMin = 2048), so the twin exercises the real
/// per-shard bucket broadcast, not just the serial fallback.
constexpr int kTwinNodes = 2300;

ConfigCatalogue TwinCatalogue() {
  ConfigCatalogue c;
  for (const Area a : {300, 500, 800}) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10;
    c.Add(cfg);
  }
  return c;
}

ResourceStore TwinStore(Rng& rng) {
  ResourceStore store(TwinCatalogue());
  for (int i = 0; i < kTwinNodes; ++i) {
    store.AddNode(rng.uniform_int(1000, 4000));
  }
  return store;
}

TEST(EntryListTwin, ShardedStoreMatchesSequentialPerDecision) {
  for (const bool indexed : {false, true}) {
    Rng node_rng_a(4242);
    Rng node_rng_b(4242);
    ResourceStore seq = TwinStore(node_rng_a);
    ResourceStore sharded = TwinStore(node_rng_b);
    seq.SetIndexed(indexed);
    sharded.SetIndexed(indexed);
    // Two pool threads even on a single-core host, so scan mode runs the
    // real parallel bucket broadcast rather than the serial fallback.
    sharded.SetShards(4, 2);

    // Saturate config 0 past the parallel-scan threshold.
    std::vector<EntryRef> idle;
    for (int i = 0; i < kTwinNodes; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      const EntryRef a = seq.Configure(id, ConfigId{0});
      const EntryRef b = sharded.Configure(id, ConfigId{0});
      ASSERT_EQ(a, b);
      idle.push_back(a);
    }
    ASSERT_GE(seq.idle_list(ConfigId{0}).size(), 2048u);

    // Fuzz: queries interleaved with churn; every decision and every meter
    // total must agree between the kernels after each operation.
    Rng rng(99991);
    std::vector<EntryRef> busy;
    for (int op = 0; op < 1500; ++op) {
      const int choice = rng.uniform_int(0, 9);
      if (choice < 4) {
        const auto a = seq.FindBestIdleEntry(ConfigId{0});
        const auto b = sharded.FindBestIdleEntry(ConfigId{0});
        ASSERT_EQ(a, b) << "op " << op;
        if (a && rng.uniform_int(0, 1) == 0) {
          const TaskId task{static_cast<std::uint32_t>(op)};
          seq.AssignTask(*a, task);
          sharded.AssignTask(*a, task);
          busy.push_back(*a);
          idle.erase(std::find(idle.begin(), idle.end(), *a));
        }
      } else if (choice < 7 && !busy.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(busy.size()) - 1));
        const EntryRef e = busy[pick];
        ASSERT_EQ(seq.ReleaseTask(e), sharded.ReleaseTask(e));
        busy.erase(busy.begin() + static_cast<std::ptrdiff_t>(pick));
        idle.push_back(e);
      } else if (!idle.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(idle.size()) - 1));
        const EntryRef e = idle[pick];
        seq.ReclaimSlot(e);
        sharded.ReclaimSlot(e);
        idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      ASSERT_EQ(seq.meter().total_workload(),
                sharded.meter().total_workload())
          << "op " << op;
      ASSERT_EQ(seq.meter().scheduling_steps_total(),
                sharded.meter().scheduling_steps_total())
          << "op " << op;
      ASSERT_EQ(seq.meter().housekeeping_steps_total(),
                sharded.meter().housekeeping_steps_total())
          << "op " << op;
    }
    const auto violations = sharded.ValidateConsistency();
    EXPECT_TRUE(violations.empty())
        << "first violation: " << (violations.empty() ? "" : violations[0]);
  }
}

}  // namespace
}  // namespace dreamsim::resource
