// Tests for synthetic workload generation (input subsystem, Table II) and
// trace round-trips.
#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ptype/catalogue.hpp"
#include "workload/trace.hpp"

namespace dreamsim::workload {
namespace {

resource::ConfigCatalogue MakeConfigs(int count, Rng& rng) {
  resource::ConfigGenParams params;
  params.count = count;
  return resource::ConfigCatalogue::Generate(
      params, ptype::Catalogue::Default(), rng);
}

TEST(Generator, HonoursTableIIRanges) {
  Rng rng(1);
  const auto configs = MakeConfigs(50, rng);
  TaskGenParams params;
  params.total_tasks = 5000;
  const Workload wl = GenerateWorkload(params, configs, rng);
  ASSERT_EQ(wl.size(), 5000u);
  EXPECT_TRUE(ValidateWorkload(wl).empty());

  Tick prev = 0;
  int unknown = 0;
  for (const GeneratedTask& t : wl) {
    EXPECT_GE(t.create_time - prev, 1);
    EXPECT_LE(t.create_time - prev, 50);
    prev = t.create_time;
    EXPECT_GE(t.required_time, 100);
    EXPECT_LE(t.required_time, 100000);
    if (!t.preferred_config.valid()) {
      ++unknown;
      EXPECT_GE(t.needed_area, 200);
      EXPECT_LE(t.needed_area, 2000);
    } else {
      EXPECT_EQ(t.needed_area,
                configs.Get(t.preferred_config).required_area);
    }
  }
  // 15% +- sampling noise.
  EXPECT_NEAR(unknown, 750, 120);
}

TEST(Generator, ZeroClosestMatchFraction) {
  Rng rng(2);
  const auto configs = MakeConfigs(10, rng);
  TaskGenParams params;
  params.total_tasks = 500;
  params.closest_match_fraction = 0.0;
  const Workload wl = GenerateWorkload(params, configs, rng);
  for (const GeneratedTask& t : wl) {
    EXPECT_TRUE(t.preferred_config.valid());
  }
}

TEST(Generator, AllClosestMatchWorksWithEmptyCatalogue) {
  Rng rng(3);
  resource::ConfigCatalogue empty;
  TaskGenParams params;
  params.total_tasks = 100;
  params.closest_match_fraction = 1.0;
  const Workload wl = GenerateWorkload(params, empty, rng);
  for (const GeneratedTask& t : wl) {
    EXPECT_FALSE(t.preferred_config.valid());
  }
}

TEST(Generator, KnownPrefRequiresCatalogue) {
  Rng rng(4);
  resource::ConfigCatalogue empty;
  TaskGenParams params;
  params.closest_match_fraction = 0.5;
  EXPECT_THROW((void)GenerateWorkload(params, empty, rng),
               std::invalid_argument);
}

TEST(Generator, PoissonArrivalsArepositive) {
  Rng rng(5);
  const auto configs = MakeConfigs(5, rng);
  TaskGenParams params;
  params.total_tasks = 2000;
  params.arrivals = ArrivalProcess::kPoisson;
  const Workload wl = GenerateWorkload(params, configs, rng);
  Tick prev = 0;
  double mean_gap = 0.0;
  for (const GeneratedTask& t : wl) {
    EXPECT_GE(t.create_time - prev, 1);
    mean_gap += static_cast<double>(t.create_time - prev);
    prev = t.create_time;
  }
  mean_gap /= static_cast<double>(wl.size());
  EXPECT_NEAR(mean_gap, 25.5, 3.0);  // mean of [1, 50]
}

TEST(Generator, ConstantArrivals) {
  Rng rng(6);
  const auto configs = MakeConfigs(5, rng);
  TaskGenParams params;
  params.total_tasks = 10;
  params.arrivals = ArrivalProcess::kConstant;
  params.max_interval = 7;
  const Workload wl = GenerateWorkload(params, configs, rng);
  for (std::size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ(wl[i].create_time, static_cast<Tick>(7 * (i + 1)));
  }
}

TEST(Generator, DataSizeRange) {
  Rng rng(7);
  const auto configs = MakeConfigs(5, rng);
  TaskGenParams params;
  params.total_tasks = 200;
  params.min_data_size = 100;
  params.max_data_size = 1000;
  const Workload wl = GenerateWorkload(params, configs, rng);
  for (const GeneratedTask& t : wl) {
    EXPECT_GE(t.data_size, 100);
    EXPECT_LE(t.data_size, 1000);
  }
}

TEST(Generator, RejectsBadParams) {
  Rng rng(8);
  const auto configs = MakeConfigs(5, rng);
  TaskGenParams params;
  params.total_tasks = -1;
  EXPECT_THROW((void)GenerateWorkload(params, configs, rng),
               std::invalid_argument);
  params = TaskGenParams{};
  params.min_interval = 10;
  params.max_interval = 5;
  EXPECT_THROW((void)GenerateWorkload(params, configs, rng),
               std::invalid_argument);
  params = TaskGenParams{};
  params.closest_match_fraction = 1.5;
  EXPECT_THROW((void)GenerateWorkload(params, configs, rng),
               std::invalid_argument);
  params = TaskGenParams{};
  params.min_required_time = 0;
  EXPECT_THROW((void)GenerateWorkload(params, configs, rng),
               std::invalid_argument);
}

TEST(Generator, DeterministicPerSeed) {
  Rng rng_cfg(9);
  const auto configs = MakeConfigs(20, rng_cfg);
  TaskGenParams params;
  params.total_tasks = 300;
  Rng a(77);
  Rng b(77);
  const Workload wa = GenerateWorkload(params, configs, a);
  const Workload wb = GenerateWorkload(params, configs, b);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].create_time, wb[i].create_time);
    EXPECT_EQ(wa[i].preferred_config, wb[i].preferred_config);
    EXPECT_EQ(wa[i].required_time, wb[i].required_time);
  }
}

TEST(ValidateWorkload, CatchesViolations) {
  Workload wl;
  GeneratedTask t;
  t.create_time = 10;
  t.needed_area = 100;
  t.required_time = 100;
  wl.push_back(t);
  t.create_time = 5;  // decreasing
  wl.push_back(t);
  t.create_time = 20;
  t.required_time = 0;  // non-positive
  wl.push_back(t);
  const auto violations = ValidateWorkload(wl);
  EXPECT_EQ(violations.size(), 2u);
}

TEST(Trace, RoundTripPreservesEverything) {
  Rng rng(10);
  const auto configs = MakeConfigs(20, rng);
  TaskGenParams params;
  params.total_tasks = 250;
  params.min_data_size = 1;
  params.max_data_size = 500;
  const Workload original = GenerateWorkload(params, configs, rng);

  std::stringstream buffer;
  WriteTrace(buffer, original);
  const Workload replayed = ReadTrace(buffer);

  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(replayed[i].create_time, original[i].create_time);
    EXPECT_EQ(replayed[i].preferred_config, original[i].preferred_config);
    EXPECT_EQ(replayed[i].needed_area, original[i].needed_area);
    EXPECT_EQ(replayed[i].required_time, original[i].required_time);
    EXPECT_EQ(replayed[i].data_size, original[i].data_size);
  }
}

TEST(Trace, UnknownPrefEncodedAsMinusOne) {
  Workload wl;
  GeneratedTask t;
  t.create_time = 1;
  t.preferred_config = ConfigId::invalid();
  t.needed_area = 300;
  t.required_time = 100;
  wl.push_back(t);
  std::stringstream buffer;
  WriteTrace(buffer, wl);
  EXPECT_NE(buffer.str().find("-1"), std::string::npos);
  const Workload replayed = ReadTrace(buffer);
  EXPECT_FALSE(replayed[0].preferred_config.valid());
}

TEST(Trace, RejectsMissingColumns) {
  std::istringstream in("create_time,needed_area\n1,2\n");
  EXPECT_THROW((void)ReadTrace(in), std::runtime_error);
}

TEST(Trace, RejectsMalformedNumbers) {
  std::istringstream in(
      "create_time,preferred_config,needed_area,required_time,data_size\n"
      "1,0,abc,100,0\n");
  EXPECT_THROW((void)ReadTrace(in), std::runtime_error);
}

TEST(Trace, RejectsInvalidOrdering) {
  std::istringstream in(
      "create_time,preferred_config,needed_area,required_time,data_size\n"
      "10,0,300,100,0\n"
      "5,0,300,100,0\n");
  EXPECT_THROW((void)ReadTrace(in), std::runtime_error);
}

TEST(Trace, FileRoundTrip) {
  Rng rng(11);
  const auto configs = MakeConfigs(5, rng);
  TaskGenParams params;
  params.total_tasks = 50;
  const Workload original = GenerateWorkload(params, configs, rng);
  const std::string path = ::testing::TempDir() + "/dreamsim_trace_test.csv";
  WriteTraceFile(path, original);
  const Workload replayed = ReadTraceFile(path);
  EXPECT_EQ(replayed.size(), original.size());
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW((void)ReadTraceFile("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace dreamsim::workload
