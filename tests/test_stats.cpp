// Tests for the streaming statistics substrate.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dreamsim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.Add(1.0);
  a.Add(3.0);
  OnlineStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  OnlineStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // underflow
  h.Add(0.0);    // bin 0
  h.Add(1.9);    // bin 0
  h.Add(2.0);    // bin 1
  h.Add(9.99);   // bin 4
  h.Add(10.0);   // overflow
  h.Add(100.0);  // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, BinLowerEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 20.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, AsciiRenderingContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string ascii = h.ToAscii(10);
  EXPECT_NE(ascii.find("2"), std::string::npos);
  EXPECT_NE(ascii.find("#"), std::string::npos);
}

TEST(TimeWeightedValue, ConstantSignal) {
  TimeWeightedValue v;
  v.Set(0, 5.0);
  EXPECT_DOUBLE_EQ(v.AverageUntil(10), 5.0);
  EXPECT_DOUBLE_EQ(v.IntegralUntil(10), 50.0);
}

TEST(TimeWeightedValue, StepSignal) {
  TimeWeightedValue v;
  v.Set(0, 0.0);
  v.Set(10, 10.0);  // 0 for [0,10), 10 for [10,20)
  EXPECT_DOUBLE_EQ(v.IntegralUntil(20), 100.0);
  EXPECT_DOUBLE_EQ(v.AverageUntil(20), 5.0);
}

TEST(TimeWeightedValue, BeforeAnySample) {
  TimeWeightedValue v;
  EXPECT_DOUBLE_EQ(v.IntegralUntil(100), 0.0);
  EXPECT_DOUBLE_EQ(v.AverageUntil(100), 0.0);
}

TEST(TimeWeightedValue, RepeatedSetsAtSameTick) {
  TimeWeightedValue v;
  v.Set(5, 1.0);
  v.Set(5, 3.0);  // instantaneous override, zero-width segment
  EXPECT_DOUBLE_EQ(v.IntegralUntil(15), 30.0);
}

}  // namespace
}  // namespace dreamsim
