// Tests for device-family bitstream compatibility (the `family` of Eq. 1:
// "a device family defines the group of compatible nodes") and for the
// closest-match execution slowdown.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sched/dreamsim_policy.hpp"

namespace dreamsim {
namespace {

using resource::Caps;
using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::ResourceStore;

Configuration FamilyConfig(std::uint32_t id, Area area, std::uint32_t family) {
  Configuration c;
  c.id = ConfigId{id};
  c.required_area = area;
  c.config_time = 10;
  c.family = FamilyId{family};
  return c;
}

TEST(FamilyCompatibility, UniversalConfigMatchesEverything) {
  Configuration c;
  c.required_area = 100;
  EXPECT_TRUE(c.CompatibleWith(FamilyId{0}));
  EXPECT_TRUE(c.CompatibleWith(FamilyId{7}));
}

TEST(FamilyCompatibility, FamilyBoundConfigMatchesOnlyItsFamily) {
  const Configuration c = FamilyConfig(0, 100, 2);
  EXPECT_TRUE(c.CompatibleWith(FamilyId{2}));
  EXPECT_FALSE(c.CompatibleWith(FamilyId{0}));
  EXPECT_FALSE(c.CompatibleWith(FamilyId{3}));
}

TEST(FamilyCompatibility, GenerateAssignsFamiliesRoundRobin) {
  resource::ConfigGenParams params;
  params.count = 10;
  params.family_count = 3;
  Rng rng(3);
  const auto catalogue = ConfigCatalogue::Generate(
      params, ptype::Catalogue::Default(), rng);
  EXPECT_EQ(catalogue.Get(ConfigId{0}).family, FamilyId{0});
  EXPECT_EQ(catalogue.Get(ConfigId{1}).family, FamilyId{1});
  EXPECT_EQ(catalogue.Get(ConfigId{2}).family, FamilyId{2});
  EXPECT_EQ(catalogue.Get(ConfigId{3}).family, FamilyId{0});
}

TEST(FamilyCompatibility, SingleFamilyKeepsConfigsUniversal) {
  resource::ConfigGenParams params;
  params.count = 5;
  params.family_count = 1;
  Rng rng(3);
  const auto catalogue = ConfigCatalogue::Generate(
      params, ptype::Catalogue::Default(), rng);
  for (const Configuration& c : catalogue.all()) {
    EXPECT_FALSE(c.family.valid());
  }
}

TEST(FamilyCompatibility, ConfigureRejectsWrongFamily) {
  ConfigCatalogue catalogue;
  catalogue.Add(FamilyConfig(0, 300, 1));
  ResourceStore store(std::move(catalogue));
  const NodeId wrong = store.AddNode(1000, FamilyId{0});
  const NodeId right = store.AddNode(1000, FamilyId{1});
  EXPECT_THROW((void)store.Configure(wrong, ConfigId{0}), std::logic_error);
  EXPECT_NO_THROW((void)store.Configure(right, ConfigId{0}));
}

TEST(FamilyCompatibility, QueriesFilterByFamily) {
  ConfigCatalogue catalogue;
  catalogue.Add(FamilyConfig(0, 300, 1));
  ResourceStore store(std::move(catalogue));
  (void)store.AddNode(1000, FamilyId{0});   // incompatible, bigger
  const NodeId right = store.AddNode(900, FamilyId{1});

  const auto blank = store.FindBestBlankNode(300, FamilyId{1});
  ASSERT_TRUE(blank.has_value());
  EXPECT_EQ(*blank, right);
  EXPECT_FALSE(store.FindBestBlankNode(300, FamilyId{5}).has_value());
  EXPECT_FALSE(store.AnyBusyNodeCouldFit(300, FamilyId{1}));

  const auto plan = store.FindAnyIdleNode(300, FamilyId{1});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node, right);
}

TEST(FamilyCompatibility, PolicyPlacesOnlyOnCompatibleNodes) {
  ConfigCatalogue catalogue;
  catalogue.Add(FamilyConfig(0, 300, 0));
  catalogue.Add(FamilyConfig(1, 300, 1));
  ResourceStore store(std::move(catalogue));
  const NodeId family0 = store.AddNode(4000, FamilyId{0});
  const NodeId family1 = store.AddNode(1000, FamilyId{1});

  sched::DreamSimPolicy policy(sched::ReconfigMode::kPartial);
  resource::Task task;
  task.id = TaskId{1};
  task.preferred_config = ConfigId{1};
  task.needed_area = 300;
  task.required_time = 100;

  const sched::Decision d = policy.Schedule(task, store);
  ASSERT_EQ(d.outcome, sched::Outcome::kPlaced);
  EXPECT_EQ(d.entry.node, family1);  // the big family-0 node is off limits
  (void)family0;
}

TEST(FamilyCompatibility, EndToEndSimulationWithFamilies) {
  core::SimulationConfig config;
  config.nodes.count = 20;
  config.nodes.family_count = 4;
  config.configs.count = 12;
  config.configs.family_count = 4;
  config.tasks.total_tasks = 500;
  config.seed = 19;
  core::Simulator sim(std::move(config));
  const core::MetricsReport report = sim.Run();
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 500u);
  EXPECT_TRUE(sim.store().ValidateConsistency().empty());
  // Spot-check: every configuration landed on a compatible node.
  for (const resource::Node& n : sim.store().nodes()) {
    n.ForEachSlot([&](resource::SlotIndex,
                      const resource::ConfigTaskPair& pair) {
      EXPECT_TRUE(
          sim.store().configs().Get(pair.config).CompatibleWith(n.family()));
    });
  }
}

TEST(FamilyCompatibility, MoreFamiliesMeanMoreContention) {
  // Splitting nodes/configs into incompatible groups shrinks each task's
  // candidate set; waiting cannot improve.
  double waits[2];
  int i = 0;
  for (const int families : {1, 4}) {
    core::SimulationConfig config;
    config.nodes.count = 40;
    config.nodes.family_count = families;
    config.configs.count = 12;
    config.configs.family_count = families;
    config.tasks.total_tasks = 1500;
    config.seed = 23;
    core::Simulator sim(std::move(config));
    waits[i++] = sim.Run().avg_waiting_time_per_task;
  }
  EXPECT_GE(waits[1], waits[0] * 0.9);  // allow noise, expect >= roughly
}

// ---- Closest-match slowdown ----

TEST(ClosestMatchSlowdown, StretchesExecutionOnClosestMatch) {
  const auto run = [](double slowdown) {
    core::SimulationConfig config;
    config.nodes.count = 40;
    config.configs.count = 10;
    config.tasks.total_tasks = 400;
    config.tasks.closest_match_fraction = 0.5;  // plenty of affected tasks
    config.seed = 29;
    config.closest_match_slowdown = slowdown;
    core::Simulator sim(std::move(config));
    return sim.Run();
  };
  const core::MetricsReport baseline = run(1.0);
  const core::MetricsReport slowed = run(2.0);
  EXPECT_EQ(baseline.completed_tasks, slowed.completed_tasks);
  // Longer executions => longer turnaround and total simulation time.
  EXPECT_GT(slowed.avg_task_running_time, baseline.avg_task_running_time);
  EXPECT_GT(slowed.total_simulation_time, baseline.total_simulation_time);
}

TEST(ClosestMatchSlowdown, DefaultReproducesPaperTiming) {
  core::SimulationConfig config;
  config.nodes.count = 20;
  config.configs.count = 8;
  config.tasks.total_tasks = 200;
  config.seed = 31;
  core::Simulator sim(std::move(config));
  (void)sim.Run();
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state != resource::TaskState::kCompleted) continue;
    EXPECT_EQ(t.completion_time,
              t.start_time + t.comm_time + t.config_wait + t.required_time);
  }
}

}  // namespace
}  // namespace dreamsim
