// Tests for the simulator's event logger: completeness, ordering, and
// consistency with the metrics report.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/simulator.hpp"

namespace dreamsim::core {
namespace {

SimulationConfig SmallConfig(int tasks, int nodes, std::uint64_t seed = 3) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.configs.count = 6;
  config.tasks.total_tasks = tasks;
  config.seed = seed;
  return config;
}

struct Recorded {
  std::vector<SimEvent> events;
  std::map<SimEvent::Kind, std::size_t> counts;
};

Recorded RunWithLogger(SimulationConfig config, MetricsReport* report_out) {
  Recorded recorded;
  Simulator sim(std::move(config));
  sim.SetEventLogger([&recorded](const SimEvent& event) {
    recorded.events.push_back(event);
    ++recorded.counts[event.kind];
  });
  const MetricsReport report = sim.Run();
  if (report_out) *report_out = report;
  return recorded;
}

TEST(EventLogger, CountsMatchMetricsReport) {
  MetricsReport report;
  const Recorded recorded = RunWithLogger(SmallConfig(400, 8), &report);

  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kArrival), report.total_tasks);
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kCompleted),
            report.completed_tasks);
  const auto discarded =
      recorded.counts.count(SimEvent::Kind::kDiscarded)
          ? recorded.counts.at(SimEvent::Kind::kDiscarded)
          : 0;
  EXPECT_EQ(discarded, report.discarded_tasks);
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kSuspended),
            report.suspended_ever);
  // Every completion was preceded by exactly one placement for that task.
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kPlaced),
            report.completed_tasks);
}

TEST(EventLogger, TicksAreMonotone) {
  const Recorded recorded = RunWithLogger(SmallConfig(300, 8), nullptr);
  Tick last = 0;
  for (const SimEvent& event : recorded.events) {
    EXPECT_GE(event.tick, last);
    last = event.tick;
  }
}

TEST(EventLogger, PerTaskLifecycleOrder) {
  const Recorded recorded = RunWithLogger(SmallConfig(300, 8), nullptr);
  // For each task: arrival first; placed before completed; completed or
  // discarded terminal.
  std::map<std::uint32_t, std::vector<SimEvent::Kind>> per_task;
  for (const SimEvent& event : recorded.events) {
    per_task[event.task.value()].push_back(event.kind);
  }
  for (const auto& [task, kinds] : per_task) {
    ASSERT_FALSE(kinds.empty());
    EXPECT_EQ(kinds.front(), SimEvent::Kind::kArrival) << "task " << task;
    const SimEvent::Kind terminal = kinds.back();
    EXPECT_TRUE(terminal == SimEvent::Kind::kCompleted ||
                terminal == SimEvent::Kind::kDiscarded)
        << "task " << task;
    // A placement, if any, must precede the completion.
    int placed_at = -1;
    int completed_at = -1;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == SimEvent::Kind::kPlaced) placed_at = static_cast<int>(i);
      if (kinds[i] == SimEvent::Kind::kCompleted) {
        completed_at = static_cast<int>(i);
      }
    }
    if (completed_at >= 0) {
      ASSERT_GE(placed_at, 0) << "task " << task;
      EXPECT_LT(placed_at, completed_at) << "task " << task;
    }
  }
}

TEST(EventLogger, PlacedEventsCarryNodeAndConfig) {
  const Recorded recorded = RunWithLogger(SmallConfig(200, 8), nullptr);
  for (const SimEvent& event : recorded.events) {
    if (event.kind == SimEvent::Kind::kPlaced ||
        event.kind == SimEvent::Kind::kCompleted) {
      EXPECT_TRUE(event.node.valid());
      EXPECT_TRUE(event.config.valid());
    }
  }
}

TEST(EventLogger, KindNames) {
  EXPECT_EQ(ToString(SimEvent::Kind::kArrival), "arrival");
  EXPECT_EQ(ToString(SimEvent::Kind::kPlaced), "placed");
  EXPECT_EQ(ToString(SimEvent::Kind::kSuspended), "suspended");
  EXPECT_EQ(ToString(SimEvent::Kind::kRequeued), "requeued");
  EXPECT_EQ(ToString(SimEvent::Kind::kDiscarded), "discarded");
  EXPECT_EQ(ToString(SimEvent::Kind::kCompleted), "completed");
  EXPECT_EQ(ToString(SimEvent::Kind::kKilled), "killed");
  EXPECT_EQ(ToString(SimEvent::Kind::kNodeFailed), "node-failed");
  EXPECT_EQ(ToString(SimEvent::Kind::kNodeRepaired), "node-repaired");
}

/// A configuration whose faults reliably kill running tasks and exhaust a
/// few retry budgets, so the conservation audit sees every lifecycle edge.
SimulationConfig FaultyConfig(std::uint64_t seed) {
  SimulationConfig config = SmallConfig(350, 10, seed);
  // Short tasks relative to the MTBF: kills do not consume the retry
  // budget, so long tasks + frequent faults would livelock.
  config.tasks.min_required_time = 80;
  config.tasks.max_required_time = 900;
  config.faults.mtbf = 3'000;
  config.faults.mttr = 600;
  config.faults.script = {{250, NodeId{1}, FaultAction::kFail},
                          {1'200, NodeId{1}, FaultAction::kRepair},
                          {2'000, NodeId{4}, FaultAction::kFail}};
  config.max_suspension_retries = 4;
  return config;
}

std::size_t Count(const Recorded& recorded, SimEvent::Kind kind) {
  const auto it = recorded.counts.find(kind);
  return it == recorded.counts.end() ? 0 : it->second;
}

/// Satellite (b): the event-stream conservation audit. Every generated
/// task reaches exactly one terminal event (completed or discarded), and
/// every placement is closed by exactly one completion or kill — in plain
/// runs and under fault injection alike.
void AuditConservation(SimulationConfig config) {
  MetricsReport report;
  const Recorded recorded = RunWithLogger(std::move(config), &report);

  std::map<std::uint32_t, std::size_t> terminals;
  std::size_t arrivals = 0;
  for (const SimEvent& event : recorded.events) {
    if (event.kind == SimEvent::Kind::kArrival) ++arrivals;
    if (event.kind == SimEvent::Kind::kCompleted ||
        event.kind == SimEvent::Kind::kDiscarded) {
      ++terminals[event.task.value()];
    }
  }
  EXPECT_EQ(arrivals, report.total_tasks);
  ASSERT_EQ(terminals.size(), report.total_tasks)
      << "some task never reached a terminal event";
  for (const auto& [task, count] : terminals) {
    EXPECT_EQ(count, 1u) << "task " << task
                         << " has multiple terminal events";
  }
  EXPECT_EQ(report.total_tasks, report.completed_tasks +
                                    report.discarded_tasks);
  // Every placement ends in exactly one completion or kill.
  EXPECT_EQ(Count(recorded, SimEvent::Kind::kPlaced),
            Count(recorded, SimEvent::Kind::kCompleted) +
                Count(recorded, SimEvent::Kind::kKilled));
  EXPECT_EQ(Count(recorded, SimEvent::Kind::kKilled), report.tasks_killed);
  // kSuspended is the voluntary count the report meters; fault re-queues
  // are kRequeued and must not inflate it.
  EXPECT_EQ(Count(recorded, SimEvent::Kind::kSuspended),
            report.suspended_ever);
}

TEST(EventLogger, ConservationPlainRun) {
  AuditConservation(SmallConfig(400, 8, 21));
}

TEST(EventLogger, ConservationUnderFaults) {
  MetricsReport probe;
  (void)RunWithLogger(FaultyConfig(13), &probe);
  ASSERT_GT(probe.tasks_killed, 0u) << "fault config too tame for the audit";
  AuditConservation(FaultyConfig(13));
}

TEST(EventLogger, EveryRequeueFollowsAKillForThatTask) {
  MetricsReport report;
  const Recorded recorded = RunWithLogger(FaultyConfig(13), &report);
  ASSERT_GT(report.tasks_killed, 0u);
  // A kill is immediately resolved for its task: the task's next event is
  // either the involuntary re-queue or the discard, never anything else.
  std::map<std::uint32_t, bool> kill_pending;
  std::size_t requeues = 0;
  for (const SimEvent& event : recorded.events) {
    if (!event.task.valid()) continue;
    const std::uint32_t task = event.task.value();
    if (event.kind == SimEvent::Kind::kKilled) {
      EXPECT_FALSE(kill_pending[task]) << "task " << task;
      kill_pending[task] = true;
      continue;
    }
    if (event.kind == SimEvent::Kind::kRequeued) {
      ++requeues;
      EXPECT_TRUE(kill_pending[task])
          << "task " << task << " requeued without a preceding kill";
      kill_pending[task] = false;
      continue;
    }
    if (kill_pending[task]) {
      EXPECT_EQ(event.kind, SimEvent::Kind::kDiscarded) << "task " << task;
      kill_pending[task] = false;
    }
  }
  EXPECT_GT(requeues, 0u);
  for (const auto& [task, pending] : kill_pending) {
    EXPECT_FALSE(pending) << "task " << task << " left with an open kill";
  }
}

TEST(EventLogger, PlacedEventsCarryPlacementAndSetupFields) {
  const Recorded recorded = RunWithLogger(SmallConfig(300, 8), nullptr);
  std::size_t placed = 0;
  for (const SimEvent& event : recorded.events) {
    if (event.kind != SimEvent::Kind::kPlaced) continue;
    ++placed;
    const auto kind = static_cast<int>(event.placement);
    EXPECT_GE(kind, 0);
    EXPECT_LT(kind, 5);
    // Allocation reuses a live configuration: no configuration wait.
    if (event.placement == sched::PlacementKind::kAllocation) {
      EXPECT_EQ(event.config_wait, 0u);
    }
  }
  EXPECT_GT(placed, 0u);
}

TEST(EventLogger, DisabledByDefaultCostsNothing) {
  // No logger: the simulation must run exactly as before (determinism
  // check against a logged twin).
  MetricsReport with_logger;
  (void)RunWithLogger(SmallConfig(200, 8, 9), &with_logger);
  Simulator plain(SmallConfig(200, 8, 9));
  const MetricsReport without_logger = plain.Run();
  EXPECT_EQ(with_logger.total_scheduler_workload,
            without_logger.total_scheduler_workload);
  EXPECT_EQ(with_logger.total_simulation_time,
            without_logger.total_simulation_time);
}

}  // namespace
}  // namespace dreamsim::core
