// Tests for the simulator's event logger: completeness, ordering, and
// consistency with the metrics report.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/simulator.hpp"

namespace dreamsim::core {
namespace {

SimulationConfig SmallConfig(int tasks, int nodes, std::uint64_t seed = 3) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.configs.count = 6;
  config.tasks.total_tasks = tasks;
  config.seed = seed;
  return config;
}

struct Recorded {
  std::vector<SimEvent> events;
  std::map<SimEvent::Kind, std::size_t> counts;
};

Recorded RunWithLogger(SimulationConfig config, MetricsReport* report_out) {
  Recorded recorded;
  Simulator sim(std::move(config));
  sim.SetEventLogger([&recorded](const SimEvent& event) {
    recorded.events.push_back(event);
    ++recorded.counts[event.kind];
  });
  const MetricsReport report = sim.Run();
  if (report_out) *report_out = report;
  return recorded;
}

TEST(EventLogger, CountsMatchMetricsReport) {
  MetricsReport report;
  const Recorded recorded = RunWithLogger(SmallConfig(400, 8), &report);

  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kArrival), report.total_tasks);
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kCompleted),
            report.completed_tasks);
  const auto discarded =
      recorded.counts.count(SimEvent::Kind::kDiscarded)
          ? recorded.counts.at(SimEvent::Kind::kDiscarded)
          : 0;
  EXPECT_EQ(discarded, report.discarded_tasks);
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kSuspended),
            report.suspended_ever);
  // Every completion was preceded by exactly one placement for that task.
  EXPECT_EQ(recorded.counts.at(SimEvent::Kind::kPlaced),
            report.completed_tasks);
}

TEST(EventLogger, TicksAreMonotone) {
  const Recorded recorded = RunWithLogger(SmallConfig(300, 8), nullptr);
  Tick last = 0;
  for (const SimEvent& event : recorded.events) {
    EXPECT_GE(event.tick, last);
    last = event.tick;
  }
}

TEST(EventLogger, PerTaskLifecycleOrder) {
  const Recorded recorded = RunWithLogger(SmallConfig(300, 8), nullptr);
  // For each task: arrival first; placed before completed; completed or
  // discarded terminal.
  std::map<std::uint32_t, std::vector<SimEvent::Kind>> per_task;
  for (const SimEvent& event : recorded.events) {
    per_task[event.task.value()].push_back(event.kind);
  }
  for (const auto& [task, kinds] : per_task) {
    ASSERT_FALSE(kinds.empty());
    EXPECT_EQ(kinds.front(), SimEvent::Kind::kArrival) << "task " << task;
    const SimEvent::Kind terminal = kinds.back();
    EXPECT_TRUE(terminal == SimEvent::Kind::kCompleted ||
                terminal == SimEvent::Kind::kDiscarded)
        << "task " << task;
    // A placement, if any, must precede the completion.
    int placed_at = -1;
    int completed_at = -1;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == SimEvent::Kind::kPlaced) placed_at = static_cast<int>(i);
      if (kinds[i] == SimEvent::Kind::kCompleted) {
        completed_at = static_cast<int>(i);
      }
    }
    if (completed_at >= 0) {
      ASSERT_GE(placed_at, 0) << "task " << task;
      EXPECT_LT(placed_at, completed_at) << "task " << task;
    }
  }
}

TEST(EventLogger, PlacedEventsCarryNodeAndConfig) {
  const Recorded recorded = RunWithLogger(SmallConfig(200, 8), nullptr);
  for (const SimEvent& event : recorded.events) {
    if (event.kind == SimEvent::Kind::kPlaced ||
        event.kind == SimEvent::Kind::kCompleted) {
      EXPECT_TRUE(event.node.valid());
      EXPECT_TRUE(event.config.valid());
    }
  }
}

TEST(EventLogger, KindNames) {
  EXPECT_EQ(ToString(SimEvent::Kind::kArrival), "arrival");
  EXPECT_EQ(ToString(SimEvent::Kind::kPlaced), "placed");
  EXPECT_EQ(ToString(SimEvent::Kind::kSuspended), "suspended");
  EXPECT_EQ(ToString(SimEvent::Kind::kDiscarded), "discarded");
  EXPECT_EQ(ToString(SimEvent::Kind::kCompleted), "completed");
}

TEST(EventLogger, DisabledByDefaultCostsNothing) {
  // No logger: the simulation must run exactly as before (determinism
  // check against a logged twin).
  MetricsReport with_logger;
  (void)RunWithLogger(SmallConfig(200, 8, 9), &with_logger);
  Simulator plain(SmallConfig(200, 8, 9));
  const MetricsReport without_logger = plain.Run();
  EXPECT_EQ(with_logger.total_scheduler_workload,
            without_logger.total_scheduler_workload);
  EXPECT_EQ(with_logger.total_simulation_time,
            without_logger.total_simulation_time);
}

}  // namespace
}  // namespace dreamsim::core
