// Tests for the ResourceStore: counted scheduler queries, mutations, and —
// most importantly — the structural invariants of the Fig. 3 data
// structures under randomized operation sequences.
#include "resource/store.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace dreamsim::resource {
namespace {

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  std::uint32_t i = 0;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10 + static_cast<Tick>(i++);
    c.Add(cfg);
  }
  return c;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(MakeCatalogue({300, 500, 800})) {
    node_a_ = store_.AddNode(1000);
    node_b_ = store_.AddNode(2000);
    node_c_ = store_.AddNode(4000);
  }

  void ExpectConsistent() {
    const auto violations = store_.ValidateConsistency();
    EXPECT_TRUE(violations.empty())
        << "first violation: " << (violations.empty() ? "" : violations[0]);
  }

  ResourceStore store_;
  NodeId node_a_, node_b_, node_c_;
};

TEST_F(StoreTest, FreshStoreIsConsistent) {
  ExpectConsistent();
  EXPECT_EQ(store_.node_count(), 3u);
  EXPECT_EQ(store_.blank_node_count(), 3u);
  EXPECT_EQ(store_.TotalWastedArea(), 0);  // no configured nodes
}

TEST_F(StoreTest, ConfigureMovesNodeOutOfBlankList) {
  const EntryRef e = store_.Configure(node_a_, ConfigId{0});
  EXPECT_EQ(store_.blank_node_count(), 2u);
  EXPECT_EQ(store_.node(node_a_).available_area(), 700);
  EXPECT_EQ(store_.idle_list(ConfigId{0}).size(), 1u);
  EXPECT_TRUE(store_.node(e.node).Slot(e.slot).idle());
  ExpectConsistent();
}

TEST_F(StoreTest, ConfigureAreaOverflowThrows) {
  (void)store_.Configure(node_a_, ConfigId{2});  // 800 of 1000
  EXPECT_THROW((void)store_.Configure(node_a_, ConfigId{0}),
               std::logic_error);  // 300 > 200 left
  ExpectConsistent();
}

TEST_F(StoreTest, AssignAndReleaseMoveBetweenLists) {
  const EntryRef e = store_.Configure(node_a_, ConfigId{0});
  store_.AssignTask(e, TaskId{42});
  EXPECT_EQ(store_.idle_list(ConfigId{0}).size(), 0u);
  EXPECT_EQ(store_.busy_list(ConfigId{0}).size(), 1u);
  EXPECT_TRUE(store_.node(node_a_).busy());
  ExpectConsistent();

  const TaskId released = store_.ReleaseTask(e);
  EXPECT_EQ(released, TaskId{42});
  EXPECT_EQ(store_.idle_list(ConfigId{0}).size(), 1u);
  EXPECT_EQ(store_.busy_list(ConfigId{0}).size(), 0u);
  EXPECT_FALSE(store_.node(node_a_).busy());
  ExpectConsistent();
}

TEST_F(StoreTest, ReclaimSlotRestoresAreaAndBlankList) {
  const EntryRef e = store_.Configure(node_a_, ConfigId{0});
  store_.ReclaimSlot(e);
  EXPECT_EQ(store_.node(node_a_).available_area(), 1000);
  EXPECT_EQ(store_.blank_node_count(), 3u);
  EXPECT_EQ(store_.idle_list(ConfigId{0}).size(), 0u);
  ExpectConsistent();
}

TEST_F(StoreTest, ReclaimBusySlotThrows) {
  const EntryRef e = store_.Configure(node_a_, ConfigId{0});
  store_.AssignTask(e, TaskId{1});
  EXPECT_THROW(store_.ReclaimSlot(e), std::logic_error);
}

TEST_F(StoreTest, BlankNodeRemovesAllIdleEntries) {
  (void)store_.Configure(node_c_, ConfigId{0});
  (void)store_.Configure(node_c_, ConfigId{1});
  store_.BlankNode(node_c_);
  EXPECT_TRUE(store_.node(node_c_).blank());
  EXPECT_EQ(store_.blank_node_count(), 3u);
  ExpectConsistent();
}

TEST_F(StoreTest, BlankNodeWithRunningTaskThrows) {
  const EntryRef e = store_.Configure(node_c_, ConfigId{0});
  store_.AssignTask(e, TaskId{1});
  EXPECT_THROW(store_.BlankNode(node_c_), std::logic_error);
}

TEST_F(StoreTest, FindBestIdleEntryPicksMinAvailableArea) {
  (void)store_.Configure(node_a_, ConfigId{0});  // avail 700
  (void)store_.Configure(node_c_, ConfigId{0});  // avail 3700
  const auto best = store_.FindBestIdleEntry(ConfigId{0});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node, node_a_);
}

TEST_F(StoreTest, FindBestIdleEntryIgnoresBusyEntries) {
  const EntryRef e = store_.Configure(node_a_, ConfigId{0});
  store_.AssignTask(e, TaskId{1});
  EXPECT_FALSE(store_.FindBestIdleEntry(ConfigId{0}).has_value());
}

TEST_F(StoreTest, FindBestBlankNodeTightestFit) {
  const auto best = store_.FindBestBlankNode(900);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, node_a_);  // 1000 is the tightest >= 900
  const auto big = store_.FindBestBlankNode(2500);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(*big, node_c_);
  EXPECT_FALSE(store_.FindBestBlankNode(5000).has_value());
}

TEST_F(StoreTest, FindBestPartiallyBlankNode) {
  (void)store_.Configure(node_b_, ConfigId{0});  // b: avail 1700
  (void)store_.Configure(node_c_, ConfigId{0});  // c: avail 3700
  const auto best = store_.FindBestPartiallyBlankNode(1000);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, node_b_);  // tightest sufficient spare area
  // Blank nodes are not "partially blank".
  const auto none = store_.FindBestPartiallyBlankNode(1800);
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(*none, node_c_);
}

TEST_F(StoreTest, FindAnyIdleNodeReclaimPlan) {
  // Fill node_a with two configs, both idle; no spare area for 800.
  (void)store_.Configure(node_a_, ConfigId{0});  // 300
  (void)store_.Configure(node_a_, ConfigId{1});  // 500; avail now 200
  const auto plan = store_.FindAnyIdleNode(800);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node, node_a_);
  // 200 spare + 300 (slot 0) + 500 (slot 1) covers 800; the minimal prefix
  // in slot order needs both entries (200+300 = 500 < 800).
  EXPECT_EQ(plan->removable_entries.size(), 2u);
}

TEST_F(StoreTest, FindAnyIdleNodeSkipsBusyEntries) {
  const EntryRef e0 = store_.Configure(node_a_, ConfigId{0});
  (void)store_.Configure(node_a_, ConfigId{1});
  store_.AssignTask(e0, TaskId{1});
  // Only the idle 500-entry plus 200 spare: 700 < 800 -> must fail on a,
  // and other nodes are blank (not candidates for Algorithm 1 reclaim,
  // though their spare area path is FindBestPartiallyBlankNode's job).
  const auto plan = store_.FindAnyIdleNode(800);
  ASSERT_TRUE(plan.has_value());
  // Blank nodes b and c have avail >= 800 with zero reclaimed entries, so
  // Algorithm 1 legitimately returns one of them with an empty entry list.
  EXPECT_TRUE(plan->removable_entries.empty());
}

TEST_F(StoreTest, AnyBusyNodeCouldFit) {
  EXPECT_FALSE(store_.AnyBusyNodeCouldFit(500));  // nothing busy
  const EntryRef e = store_.Configure(node_c_, ConfigId{0});
  store_.AssignTask(e, TaskId{1});
  EXPECT_TRUE(store_.AnyBusyNodeCouldFit(3500));
  EXPECT_FALSE(store_.AnyBusyNodeCouldFit(4500));
}

TEST_F(StoreTest, WastedAreaMetrics) {
  (void)store_.Configure(node_a_, ConfigId{0});  // avail 700
  const EntryRef e = store_.Configure(node_b_, ConfigId{1});  // avail 1500
  EXPECT_EQ(store_.TotalWastedArea(), 700 + 1500);
  EXPECT_EQ(store_.TotalIdleWastedArea(), 700 + 1500);
  store_.AssignTask(e, TaskId{1});
  // b is busy now: still counted by Eq. 6, excluded by the idle variant.
  EXPECT_EQ(store_.TotalWastedArea(), 700 + 1500);
  EXPECT_EQ(store_.TotalIdleWastedArea(), 700);
}

TEST_F(StoreTest, ReconfigurationAggregates) {
  (void)store_.Configure(node_a_, ConfigId{0});
  const EntryRef e = store_.Configure(node_b_, ConfigId{0});
  store_.ReclaimSlot(e);
  (void)store_.Configure(node_b_, ConfigId{1});
  EXPECT_EQ(store_.TotalReconfigurations(), 3u);
  EXPECT_EQ(store_.UsedNodeCount(), 2u);
}

TEST_F(StoreTest, QueriesChargeSchedulingSteps) {
  (void)store_.Configure(node_a_, ConfigId{0});
  const Steps before = store_.meter().scheduling_steps_total();
  (void)store_.FindBestIdleEntry(ConfigId{0});
  (void)store_.FindBestBlankNode(500);
  (void)store_.FindBestPartiallyBlankNode(500);
  (void)store_.FindAnyIdleNode(500);
  (void)store_.AnyBusyNodeCouldFit(500);
  EXPECT_GT(store_.meter().scheduling_steps_total(), before);
}

TEST_F(StoreTest, InitNodesGeneratesWithinRanges) {
  ResourceStore store(MakeCatalogue({300}));
  NodeGenParams params;
  params.count = 100;
  params.min_area = 1000;
  params.max_area = 4000;
  params.family_count = 4;
  Rng rng(17);
  store.InitNodes(params, rng);
  ASSERT_EQ(store.node_count(), 100u);
  for (const Node& n : store.nodes()) {
    EXPECT_GE(n.total_area(), 1000);
    EXPECT_LE(n.total_area(), 4000);
    EXPECT_LT(n.family().value(), 4u);
    EXPECT_GT(n.caps().embedded_memory_kb, 0);
  }
  EXPECT_TRUE(store.ValidateConsistency().empty());
}

TEST_F(StoreTest, InitNodesRejectsBadRanges) {
  ResourceStore store(MakeCatalogue({300}));
  NodeGenParams params;
  params.min_area = 0;
  Rng rng(1);
  EXPECT_THROW(store.InitNodes(params, rng), std::invalid_argument);
}

// -------- Property test: invariants under random operation sequences ----

struct FuzzCase {
  std::uint64_t seed;
  int nodes;
  int configs;
};

class StoreFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(StoreFuzzTest, InvariantsSurviveRandomOperations) {
  const FuzzCase param = GetParam();
  Rng rng(param.seed);

  ConfigCatalogue catalogue;
  for (int i = 0; i < param.configs; ++i) {
    Configuration cfg;
    cfg.required_area = rng.uniform_int(200, 2000);
    cfg.config_time = rng.uniform_int(10, 20);
    catalogue.Add(cfg);
  }
  ResourceStore store(std::move(catalogue));
  for (int i = 0; i < param.nodes; ++i) {
    (void)store.AddNode(rng.uniform_int(1000, 4000));
  }

  std::vector<EntryRef> idle_entries;
  std::vector<EntryRef> busy_entries;
  std::uint32_t next_task = 0;

  for (int op = 0; op < 2000; ++op) {
    switch (rng.uniform_int(0, 4)) {
      case 0: {  // configure a random config onto a random fitting node
        const auto cfg_id = ConfigId{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(store.configs().size()) - 1))};
        const Area needed = store.configs().Get(cfg_id).required_area;
        const auto node_id = NodeId{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(store.node_count()) - 1))};
        if (store.node(node_id).available_area() >= needed) {
          idle_entries.push_back(store.Configure(node_id, cfg_id));
        }
        break;
      }
      case 1: {  // assign a task to a random idle entry
        if (idle_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(idle_entries.size()) - 1));
        const EntryRef e = idle_entries[pick];
        idle_entries[pick] = idle_entries.back();
        idle_entries.pop_back();
        store.AssignTask(e, TaskId{next_task++});
        busy_entries.push_back(e);
        break;
      }
      case 2: {  // release a random busy entry
        if (busy_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(busy_entries.size()) - 1));
        const EntryRef e = busy_entries[pick];
        busy_entries[pick] = busy_entries.back();
        busy_entries.pop_back();
        (void)store.ReleaseTask(e);
        idle_entries.push_back(e);
        break;
      }
      case 3: {  // reclaim a random idle entry
        if (idle_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(idle_entries.size()) - 1));
        const EntryRef e = idle_entries[pick];
        idle_entries[pick] = idle_entries.back();
        idle_entries.pop_back();
        store.ReclaimSlot(e);
        break;
      }
      case 4: {  // run the counted queries (must never corrupt state)
        (void)store.FindBestIdleEntry(ConfigId{0});
        (void)store.FindBestBlankNode(1000);
        (void)store.FindBestPartiallyBlankNode(1000);
        (void)store.FindAnyIdleNode(1500);
        (void)store.AnyBusyNodeCouldFit(1500);
        break;
      }
    }
    if (op % 100 == 0) {
      const auto violations = store.ValidateConsistency();
      ASSERT_TRUE(violations.empty())
          << "op " << op << ": " << violations.front();
    }
  }
  const auto violations = store.ValidateConsistency();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StoreFuzzTest,
    ::testing::Values(FuzzCase{1, 5, 3}, FuzzCase{2, 20, 10},
                      FuzzCase{3, 50, 25}, FuzzCase{4, 100, 50},
                      FuzzCase{5, 10, 2}, FuzzCase{6, 3, 30}));

}  // namespace
}  // namespace dreamsim::resource
