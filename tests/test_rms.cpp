// Tests for the RMS layer: resource information manager, job submission
// manager, monitoring module, and the load balancer.
#include <gtest/gtest.h>

#include "rms/job_manager.hpp"
#include "rms/load_balancer.hpp"
#include "rms/monitor.hpp"
#include "rms/resource_info.hpp"

namespace dreamsim::rms {
namespace {

using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::ResourceStore;

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10;
    c.Add(cfg);
  }
  return c;
}

TEST(ResourceInformationManager, StaticInfo) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId id = store.AddNode(1500, FamilyId{2},
                                  resource::Caps{256, 10, 400}, 7);
  const ResourceInformationManager info(store);
  const NodeStaticInfo s = info.StaticInfo(id);
  EXPECT_EQ(s.total_area, 1500);
  EXPECT_EQ(s.family.value(), 2u);
  EXPECT_EQ(s.caps.embedded_memory_kb, 256);
  EXPECT_EQ(s.network_delay, 7);
}

TEST(ResourceInformationManager, DynamicInfoTracksState) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId id = store.AddNode(1000);
  const ResourceInformationManager info(store);

  NodeDynamicInfo d = info.DynamicInfo(id);
  EXPECT_EQ(d.available_area, 1000);
  EXPECT_EQ(d.config_count, 0u);
  EXPECT_FALSE(d.busy);

  const EntryRef e = store.Configure(id, ConfigId{0});
  store.AssignTask(e, TaskId{1});
  d = info.DynamicInfo(id);
  EXPECT_EQ(d.available_area, 700);
  EXPECT_EQ(d.config_count, 1u);
  EXPECT_EQ(d.running_tasks, 1u);
  EXPECT_TRUE(d.busy);
  EXPECT_EQ(d.reconfig_count, 1u);
}

TEST(ResourceInformationManager, SnapshotAggregates) {
  ResourceStore store(MakeCatalogue({300, 500}));
  const NodeId a = store.AddNode(1000);
  const NodeId b = store.AddNode(2000);
  (void)store.AddNode(4000);  // stays blank
  const EntryRef ea = store.Configure(a, ConfigId{0});
  store.AssignTask(ea, TaskId{1});
  (void)store.Configure(b, ConfigId{1});  // idle

  const ResourceInformationManager info(store);
  const SystemSnapshot snap = info.Snapshot(123);
  EXPECT_EQ(snap.at, 123);
  EXPECT_EQ(snap.total_nodes, 3u);
  EXPECT_EQ(snap.blank_nodes, 1u);
  EXPECT_EQ(snap.busy_nodes, 1u);
  EXPECT_EQ(snap.running_tasks, 1u);
  EXPECT_EQ(snap.total_fabric_area, 7000);
  EXPECT_EQ(snap.configured_area, 800);
  EXPECT_EQ(snap.wasted_area, 700 + 1500);
  EXPECT_NEAR(snap.area_utilization, 800.0 / 7000.0, 1e-12);
}

TEST(JobSubmissionManager, SubmitsArrivalsInOrder) {
  sim::Kernel kernel;
  resource::TaskStore tasks;
  JobSubmissionManager jobs(kernel, tasks);

  workload::Workload wl;
  for (int i = 1; i <= 3; ++i) {
    workload::GeneratedTask t;
    t.create_time = i * 10;
    t.needed_area = 100;
    t.required_time = 50;
    wl.push_back(t);
  }
  std::vector<std::pair<Tick, std::uint32_t>> arrivals;
  const std::size_t n = jobs.Submit(wl, [&](TaskId id) {
    arrivals.emplace_back(kernel.now(), id.value());
  });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(tasks.size(), 3u);
  (void)kernel.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], (std::pair<Tick, std::uint32_t>{10, 0}));
  EXPECT_EQ(arrivals[2], (std::pair<Tick, std::uint32_t>{30, 2}));
  // Task records carry their creation times.
  EXPECT_EQ(tasks.Get(TaskId{1}).create_time, 20);
  EXPECT_EQ(tasks.Get(TaskId{1}).state, resource::TaskState::kCreated);
}

TEST(JobSubmissionManager, RejectsNullHandler) {
  sim::Kernel kernel;
  resource::TaskStore tasks;
  JobSubmissionManager jobs(kernel, tasks);
  EXPECT_THROW((void)jobs.Submit({}, nullptr), std::invalid_argument);
}

TEST(MonitoringModule, TimeWeightedUtilization) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId id = store.AddNode(1000);
  const ResourceInformationManager info(store);
  MonitoringModule monitor(info);

  monitor.Observe(0, 0);  // idle system
  const EntryRef e = store.Configure(id, ConfigId{0});
  store.AssignTask(e, TaskId{1});
  monitor.Observe(10, 2);  // busy from tick 10
  const UtilizationReport report = monitor.Finish(20);

  // Running tasks: 0 over [0,10), 1 over [10,20) -> average 0.5.
  EXPECT_NEAR(report.avg_running_tasks, 0.5, 1e-12);
  EXPECT_NEAR(report.avg_busy_nodes, 0.5, 1e-12);
  EXPECT_EQ(report.peak_running_tasks, 1u);
  EXPECT_EQ(report.peak_suspended_tasks, 2u);
  EXPECT_EQ(monitor.observations(), 2u);
  EXPECT_EQ(report.observed_until, 20);
}

TEST(LoadBalancer, MeasureOnEmptySystem) {
  ResourceStore store(MakeCatalogue({300}));
  const LoadBalancer lb(store);
  const LoadMetrics m = lb.Measure();
  EXPECT_DOUBLE_EQ(m.mean_running_tasks, 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(m.fairness, 1.0);
}

TEST(LoadBalancer, MeasureDetectsImbalance) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId a = store.AddNode(2000);
  (void)store.AddNode(2000);
  const EntryRef e1 = store.Configure(a, ConfigId{0});
  store.AssignTask(e1, TaskId{1});
  const EntryRef e2 = store.Configure(a, ConfigId{0});
  store.AssignTask(e2, TaskId{2});

  const LoadBalancer lb(store);
  const LoadMetrics m = lb.Measure();
  EXPECT_DOUBLE_EQ(m.mean_running_tasks, 1.0);
  EXPECT_GT(m.imbalance, 0.9);
  EXPECT_LT(m.fairness, 0.75);
}

TEST(LoadBalancer, PickLeastLoaded) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId a = store.AddNode(1000);
  const NodeId b = store.AddNode(2000);
  const NodeId c = store.AddNode(3000);
  const EntryRef e = store.Configure(a, ConfigId{0});
  store.AssignTask(e, TaskId{1});

  const LoadBalancer lb(store);
  const std::vector<NodeId> candidates{a, b, c};
  const auto pick = lb.PickLeastLoaded(candidates);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, c);  // zero load, largest available area

  EXPECT_FALSE(lb.PickLeastLoaded({}).has_value());
}

TEST(LoadBalancer, PickBreaksTiesByIdWhenAreasEqual) {
  ResourceStore store(MakeCatalogue({300}));
  const NodeId a = store.AddNode(1000);
  const NodeId b = store.AddNode(1000);
  const LoadBalancer lb(store);
  const std::vector<NodeId> candidates{b, a};
  const auto pick = lb.PickLeastLoaded(candidates);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, a);
}

}  // namespace
}  // namespace dreamsim::rms
