// Differential proof of the drain-index contract (DESIGN.md "Scheduler
// index"): with the suspension queue's O(log Q) index on or off, every
// drain decision is identical and every counted operation charges the
// WorkloadMeter the same step counts.
//
// Two layers:
//   1. Queue-level twin fuzz: one random operation stream applied to an
//      indexed and a scan queue in lockstep; results and meters must agree
//      after every step, and the index's drain queries must match a
//      brute-force rescan of the queue.
//   2. Simulator-level: full runs across both reconfiguration modes,
//      priority scheduling on/off, suspension_batch in {0, 1, 8}, retry
//      budgets, bounded-capacity overflow, and contiguous placement —
//      identical event sequences and bit-identical MetricsReport fields
//      across > 100 seeded differential run pairs.
//
// The twin fuzz calls the drain queries raw to compare them against the
// brute-force rescan; meter agreement is asserted separately on the
// counted operations, so the query sites themselves carry no charge.
// lint: allow-file(uncharged-index-query)
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/simulator.hpp"
#include "resource/suspension_queue.hpp"
#include "util/rng.hpp"

namespace dreamsim {
namespace {

using core::SimEvent;
using core::SimulationConfig;
using core::Simulator;
using resource::SusEntryAttrs;
using resource::SuspensionQueue;
using resource::WorkloadMeter;

// --- Layer 1: queue-level twin fuzz ---------------------------------------

/// The CouldUseNode / full-mode-fallback predicate in attribute form (the
/// ground truth the index must reproduce).
bool Eligible(const SusEntryAttrs& a, FamilyId family, Area bound,
              ConfigId match) {
  if (match.valid() && a.resolved_config == match) return true;
  const bool compatible =
      !a.config_family.valid() || a.config_family == family;
  return compatible && a.needed_area <= bound;
}

/// Brute-force rescans of the queue, mirroring the simulator's literal
/// loops (first match wins; priority replaces only when strictly greater).
struct BruteForce {
  const std::vector<TaskId>& queue;
  const std::unordered_map<std::uint32_t, SusEntryAttrs>& attrs;

  [[nodiscard]] const SusEntryAttrs& At(std::size_t i) const {
    return attrs.at(queue[i].value());
  }

  [[nodiscard]] std::optional<std::size_t> OldestExactMatch(
      ConfigId config) const {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (At(i).resolved_config == config) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::size_t> BestPriorityExactMatch(
      ConfigId config) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (At(i).resolved_config != config) continue;
      if (!best || At(i).priority > At(*best).priority) best = i;
    }
    return best;
  }

  [[nodiscard]] std::optional<std::size_t> OldestEligible(
      FamilyId family, Area bound, std::size_t from, ConfigId match) const {
    for (std::size_t i = from; i < queue.size(); ++i) {
      if (Eligible(At(i), family, bound, match)) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::size_t> BestPriorityEligible(
      FamilyId family, Area bound, ConfigId match) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!Eligible(At(i), family, bound, match)) continue;
      if (!best || At(i).priority > At(*best).priority) best = i;
    }
    return best;
  }
};

struct QueueTwinCase {
  std::uint64_t seed = 0;
  std::size_t capacity = 0;  // 0 = unbounded
};

void PrintTo(const QueueTwinCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " capacity=" << c.capacity;
}

class SusDrainTwinFuzz : public ::testing::TestWithParam<QueueTwinCase> {};

TEST_P(SusDrainTwinFuzz, QueriesAndMetersAgreeUnderRandomOperations) {
  const QueueTwinCase param = GetParam();
  Rng rng(param.seed);
  SuspensionQueue indexed(param.capacity);
  SuspensionQueue scan(param.capacity);
  indexed.SetDrainIndexed(true);
  ASSERT_TRUE(indexed.drain_indexed());
  ASSERT_FALSE(scan.drain_indexed());
  WorkloadMeter meter_indexed;
  WorkloadMeter meter_scan;
  std::unordered_map<std::uint32_t, SusEntryAttrs> attrs_oracle;
  std::uint32_t next_task = 0;

  // Families are a function of the resolved config, as in the simulator
  // (FamilyId of the config, or invalid for unresolved / family-less).
  const auto attrs_for_config = [&rng](ConfigId config) {
    SusEntryAttrs a;
    a.resolved_config = config;
    if (config.valid() && config.value() % 2 == 1) {
      a.config_family = FamilyId{config.value() % 3};
    }
    a.needed_area = rng.uniform_int(100, 2000);
    a.priority = static_cast<double>(rng.uniform_int(0, 8));
    return a;
  };
  const auto random_config = [&rng] {
    const std::int64_t pick = rng.uniform_int(0, 6);
    if (pick == 6) return ConfigId::invalid();
    return ConfigId{static_cast<std::uint32_t>(pick)};
  };
  const auto random_family = [&rng] {
    const std::int64_t pick = rng.uniform_int(0, 3);
    if (pick == 3) return FamilyId::invalid();
    return FamilyId{static_cast<std::uint32_t>(pick)};
  };
  const auto random_queued = [&]() -> TaskId {
    if (scan.empty()) return TaskId::invalid();
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(scan.size()) - 1));
    return scan.tasks()[pick];
  };

  for (int op = 0; op < 3000; ++op) {
    const BruteForce brute{scan.tasks(), attrs_oracle};
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1: {  // enqueue a fresh task (overflow exercised via capacity)
        const TaskId task{next_task++};
        const SusEntryAttrs attrs = attrs_for_config(random_config());
        const bool ok_indexed = indexed.Add(task, attrs, meter_indexed);
        const bool ok_scan = scan.Add(task, attrs, meter_scan);
        ASSERT_EQ(ok_indexed, ok_scan);
        if (ok_scan) attrs_oracle[task.value()] = attrs;
        break;
      }
      case 2: {  // counted membership, present or absent
        const TaskId present = random_queued();
        const TaskId task = (present.valid() && rng.uniform_int(0, 1) == 0)
                                ? present
                                : TaskId{next_task + 17};
        ASSERT_EQ(indexed.Contains(task, meter_indexed),
                  scan.Contains(task, meter_scan));
        break;
      }
      case 3: {  // counted removal, present or absent
        const TaskId present = random_queued();
        const TaskId task = (present.valid() && rng.uniform_int(0, 1) == 0)
                                ? present
                                : TaskId{next_task + 23};
        ASSERT_EQ(indexed.Remove(task, meter_indexed),
                  scan.Remove(task, meter_scan));
        attrs_oracle.erase(task.value());
        break;
      }
      case 4: {  // positional removal
        if (scan.empty()) break;
        const auto pos = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(scan.size()) - 1));
        attrs_oracle.erase(scan.tasks()[pos].value());
        indexed.RemoveAt(pos, meter_indexed);
        scan.RemoveAt(pos, meter_scan);
        break;
      }
      case 5: {  // predicate pop (FinishReport-style drain step)
        const std::uint32_t residue =
            static_cast<std::uint32_t>(rng.uniform_int(0, 2));
        const auto pred = [residue](TaskId t) {
          return t.value() % 3 == residue;
        };
        const auto popped_indexed =
            indexed.PopFirstMatching(pred, meter_indexed);
        const auto popped_scan = scan.PopFirstMatching(pred, meter_scan);
        ASSERT_EQ(popped_indexed, popped_scan);
        if (popped_scan) attrs_oracle.erase(popped_scan->value());
        break;
      }
      case 6: {  // attribute re-sync after a failed drain attempt
        const TaskId task = random_queued();
        if (!task.valid()) break;
        const SusEntryAttrs attrs = attrs_for_config(random_config());
        indexed.RefreshAttrs(task, attrs);
        scan.RefreshAttrs(task, attrs);
        attrs_oracle[task.value()] = attrs;
        break;
      }
      case 7: {  // full-mode exact-match picks
        const ConfigId config = random_config();
        ASSERT_EQ(indexed.OldestExactMatch(config),
                  brute.OldestExactMatch(config));
        ASSERT_EQ(indexed.BestPriorityExactMatch(config),
                  brute.BestPriorityExactMatch(config));
        break;
      }
      case 8: {  // partial FIFO / full-mode fallback pick
        if (scan.empty()) break;
        const FamilyId family = random_family();
        const Area bound = rng.uniform_int(0, 2200);
        const auto from = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(scan.size()) - 1));
        const ConfigId match = random_config();
        ASSERT_EQ(indexed.OldestEligible(family, bound, from, match),
                  brute.OldestEligible(family, bound, from, match));
        break;
      }
      case 9: {  // partial priority pick
        const FamilyId family = random_family();
        const Area bound = rng.uniform_int(0, 2200);
        const ConfigId match = random_config();
        ASSERT_EQ(indexed.BestPriorityEligible(family, bound, match),
                  brute.BestPriorityEligible(family, bound, match));
        break;
      }
    }
    ASSERT_EQ(meter_indexed.scheduling_steps_total(),
              meter_scan.scheduling_steps_total());
    ASSERT_EQ(meter_indexed.housekeeping_steps_total(),
              meter_scan.housekeeping_steps_total());
    ASSERT_EQ(indexed.size(), scan.size());
    if (op % 250 == 0) {
      const auto violations = indexed.ValidateIndex();
      ASSERT_TRUE(violations.empty())
          << "first violation: " << (violations.empty() ? "" : violations[0]);
    }
  }

  // Rebuilding from live content (index toggled mid-run) preserves both
  // attributes and query answers.
  indexed.SetDrainIndexed(false);
  indexed.SetDrainIndexed(true);
  const auto violations = indexed.ValidateIndex();
  ASSERT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  const BruteForce brute{scan.tasks(), attrs_oracle};
  ASSERT_EQ(indexed.OldestEligible(FamilyId{1}, 1500, 0, ConfigId{2}),
            brute.OldestEligible(FamilyId{1}, 1500, 0, ConfigId{2}));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SusDrainTwinFuzz,
    ::testing::Values(QueueTwinCase{201, 0}, QueueTwinCase{202, 0},
                      QueueTwinCase{203, 25}, QueueTwinCase{204, 8},
                      QueueTwinCase{205, 0}, QueueTwinCase{206, 40}));

// --- Layer 2: full-simulation differential runs ---------------------------

struct SimCase {
  sched::ReconfigMode mode = sched::ReconfigMode::kPartial;
  bool priority = false;
  std::size_t batch = 8;       // suspension_batch (0 = whole queue)
  std::uint32_t retries = 0;   // max_suspension_retries (0 = unbounded)
  std::size_t capacity = 0;    // suspension_capacity (0 = unbounded)
  bool contiguous = false;
  int families = 1;
};

void PrintTo(const SimCase& c, std::ostream* os) {
  *os << (c.mode == sched::ReconfigMode::kPartial ? "partial" : "full")
      << (c.priority ? " priority" : " fifo") << " batch=" << c.batch
      << " retries=" << c.retries << " capacity=" << c.capacity
      << (c.contiguous ? " contiguous" : " scalar")
      << " families=" << c.families;
}

/// A saturating workload with non-degenerate priorities (the generator
/// leaves priority at 0; drawing it here exercises the priority-ordered
/// drain paths for real).
std::vector<workload::GeneratedTask> MakeWorkload(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<workload::GeneratedTask> tasks;
  Tick at = 0;
  for (int i = 0; i < 140; ++i) {
    workload::GeneratedTask t;
    at += rng.uniform_int(1, 4);
    t.create_time = at;
    if (rng.uniform_int(0, 9) < 8) {
      t.preferred_config =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 7))};
    }
    t.needed_area = rng.uniform_int(200, 2000);
    t.required_time = rng.uniform_int(60, 600);
    t.priority = static_cast<double>(rng.uniform_int(0, 9));
    tasks.push_back(t);
  }
  return tasks;
}

struct RunResult {
  std::vector<SimEvent> events;
  core::MetricsReport report;
};

RunResult RunOne(const SimCase& c, std::uint64_t seed, bool indexed) {
  SimulationConfig config;
  config.nodes.count = 16;
  config.nodes.family_count = c.families;
  config.nodes.contiguous_placement = c.contiguous;
  config.configs.count = 8;
  config.configs.family_count = c.families;
  config.mode = c.mode;
  config.priority_scheduling = c.priority;
  config.suspension_batch = c.batch;
  config.max_suspension_retries = c.retries;
  config.suspension_capacity = c.capacity;
  config.drain_index = indexed;
  config.seed = seed;
  // Structure audit rides along: every decision in Debug, end-of-run in
  // Release (see test_simulator_fuzz.cpp).
#ifndef NDEBUG
  config.audit = analysis::AuditMode::kStep;
#else
  config.audit = analysis::AuditMode::kEnd;
#endif
  Simulator sim(std::move(config));
  RunResult result;
  sim.SetEventLogger([&](const SimEvent& e) { result.events.push_back(e); });
  result.report = sim.RunWithWorkload(MakeWorkload(seed));
  EXPECT_EQ(sim.suspension().drain_indexed(), indexed);
  const auto violations = sim.suspension().ValidateIndex();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  return result;
}

void ExpectIdentical(const RunResult& idx, const RunResult& ref) {
  ASSERT_EQ(idx.events.size(), ref.events.size());
  for (std::size_t i = 0; i < idx.events.size(); ++i) {
    const SimEvent& a = idx.events[i];
    const SimEvent& b = ref.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.tick, b.tick) << "event " << i;
    ASSERT_EQ(a.task, b.task) << "event " << i;
    ASSERT_EQ(a.node, b.node) << "event " << i;
    ASSERT_EQ(a.config, b.config) << "event " << i;
  }
  const core::MetricsReport& x = idx.report;
  const core::MetricsReport& y = ref.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
}

class SusDrainSimDiff : public ::testing::TestWithParam<SimCase> {};

TEST_P(SusDrainSimDiff, IndexedRunsAreBitIdenticalAcrossSeeds) {
  const SimCase c = GetParam();
  // 9 combos x 13 seeds = 117 seeded differential run pairs overall.
  std::uint64_t suspended_total = 0;
  for (std::uint64_t seed = 1; seed <= 13; ++seed) {
    const RunResult idx = RunOne(c, seed * 6151, true);
    const RunResult ref = RunOne(c, seed * 6151, false);
    ExpectIdentical(idx, ref);
    suspended_total += idx.report.suspended_ever;
    if (HasFatalFailure()) return;
  }
  // The workload must actually exercise the drain paths being compared.
  EXPECT_GT(suspended_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DrainCombos, SusDrainSimDiff,
    ::testing::Values(
        SimCase{sched::ReconfigMode::kPartial, false, 8, 0, 0, false, 1},
        SimCase{sched::ReconfigMode::kPartial, false, 0, 2, 0, true, 1},
        SimCase{sched::ReconfigMode::kPartial, false, 1, 0, 12, false, 2},
        SimCase{sched::ReconfigMode::kPartial, true, 8, 3, 0, false, 1},
        SimCase{sched::ReconfigMode::kPartial, true, 0, 0, 10, false, 2},
        SimCase{sched::ReconfigMode::kPartial, true, 1, 1, 0, true, 1},
        SimCase{sched::ReconfigMode::kFull, false, 8, 0, 0, false, 1},
        SimCase{sched::ReconfigMode::kFull, true, 8, 2, 0, false, 2},
        SimCase{sched::ReconfigMode::kFull, false, 1, 1, 8, true, 1}));

}  // namespace
}  // namespace dreamsim
