// Tests for the critical-path-first graph scheduler (HEFT-style upward
// ranks + priority-aware suspension drain).
#include <gtest/gtest.h>

#include "core/graph_session.hpp"
#include "workload/task_graph.hpp"

namespace dreamsim::core {
namespace {

workload::GeneratedTask Payload(Tick required, Area area = 900) {
  workload::GeneratedTask t;
  t.preferred_config = ConfigId{0};
  t.needed_area = area;
  t.required_time = required;
  return t;
}

TEST(UpwardRanks, ChainAccumulates) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(100));
  const auto b = g.AddVertex(Payload(50));
  const auto c = g.AddVertex(Payload(25));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  const auto ranks = workload::UpwardRanks(g);
  EXPECT_DOUBLE_EQ(ranks[c], 25.0);
  EXPECT_DOUBLE_EQ(ranks[b], 75.0);
  EXPECT_DOUBLE_EQ(ranks[a], 175.0);
}

TEST(UpwardRanks, TakesLongestSuccessorPath) {
  workload::TaskGraph g;
  const auto root = g.AddVertex(Payload(10));
  const auto short_branch = g.AddVertex(Payload(20));
  const auto long_branch = g.AddVertex(Payload(200));
  g.AddEdge(root, short_branch);
  g.AddEdge(root, long_branch);
  const auto ranks = workload::UpwardRanks(g);
  EXPECT_DOUBLE_EQ(ranks[root], 210.0);
}

TEST(UpwardRanks, CyclicThrows) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(10));
  const auto b = g.AddVertex(Payload(10));
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  EXPECT_THROW((void)workload::UpwardRanks(g), std::runtime_error);
}

/// Builds the contention scenario where critical-path-first provably wins:
/// a 3-vertex chain (C -> C2 -> C3, 100 ticks each) competing with four
/// independent 100-tick leaves for two single-task nodes. FIFO runs the
/// leaves first and finishes at ~500; rank-first starts the chain
/// immediately and finishes at ~400.
workload::TaskGraph ContendedGraph() {
  workload::TaskGraph g;
  for (int i = 0; i < 4; ++i) (void)g.AddVertex(Payload(100));  // leaves
  const auto c1 = g.AddVertex(Payload(100));
  const auto c2 = g.AddVertex(Payload(100));
  const auto c3 = g.AddVertex(Payload(100));
  g.AddEdge(c1, c2);
  g.AddEdge(c2, c3);
  return g;
}

SimulationConfig TwoTightNodes() {
  SimulationConfig config;
  config.nodes.count = 2;
  config.nodes.min_area = 1000;
  config.nodes.max_area = 1000;
  config.configs.count = 1;
  config.configs.min_area = 900;  // exactly one task per node
  config.configs.max_area = 900;
  config.configs.min_config_time = 1;
  config.configs.max_config_time = 1;
  config.tasks.closest_match_fraction = 0.0;
  config.seed = 11;
  return config;
}

TEST(CriticalPathFirst, BeatsFifoOnContendedChain) {
  const workload::TaskGraph graph = ContendedGraph();
  const GraphRunResult fifo = RunGraph(TwoTightNodes(), graph,
                                       GraphOrder::kFifo);
  const GraphRunResult prioritized =
      RunGraph(TwoTightNodes(), graph, GraphOrder::kCriticalPathFirst);

  EXPECT_EQ(fifo.completed_vertices, 7u);
  EXPECT_EQ(prioritized.completed_vertices, 7u);
  // FIFO serves the leaves first and serializes behind the chain tail;
  // rank-first starts the chain at t=0.
  EXPECT_LT(prioritized.makespan, fifo.makespan);
}

TEST(CriticalPathFirst, MatchesFifoWithoutContention) {
  // With plenty of nodes the discipline cannot matter.
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(100, 500));
  const auto b = g.AddVertex(Payload(100, 500));
  g.AddEdge(a, b);
  SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 4;
  config.seed = 13;
  const auto fifo = RunGraph(config, g, GraphOrder::kFifo);
  const auto cp = RunGraph(config, g, GraphOrder::kCriticalPathFirst);
  EXPECT_EQ(fifo.makespan, cp.makespan);
}

TEST(CriticalPathFirst, LayeredGraphNoWorseThanFifo) {
  Rng rng(17);
  SimulationConfig config;
  config.nodes.count = 6;
  config.configs.count = 8;
  config.seed = 17;
  Rng catalogue_rng(DeriveSeed(config.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      config.configs, ptype::Catalogue::Default(), catalogue_rng);

  workload::GraphGenParams params;
  params.layers = 6;
  params.width = 8;
  params.task_params.min_required_time = 100;
  params.task_params.max_required_time = 2000;
  params.task_params.closest_match_fraction = 0.0;
  const auto graph = workload::GenerateLayeredGraph(params, catalogue, rng);

  const auto fifo = RunGraph(config, graph, GraphOrder::kFifo);
  const auto cp = RunGraph(config, graph, GraphOrder::kCriticalPathFirst);
  EXPECT_EQ(cp.completed_vertices, fifo.completed_vertices);
  // List scheduling is a heuristic, but on layered graphs it should not
  // lose more than a small tolerance to FIFO.
  EXPECT_LE(cp.makespan, static_cast<Tick>(1.10 * fifo.makespan));
}

}  // namespace
}  // namespace dreamsim::core
