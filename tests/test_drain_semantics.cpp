// Targeted tests for the suspension-queue drain semantics (DESIGN.md §4):
// the reproduction decision that produces the paper's Fig. 7-10 orderings.
// Each scenario pins the node/configuration population exactly (degenerate
// generation ranges) and hand-builds the workload.
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace dreamsim::core {
namespace {

/// One node of exactly `node_area`; `configs` configurations of exactly
/// 900 area units and 10-tick configuration time.
SimulationConfig PinnedConfig(Area node_area, int configs,
                              sched::ReconfigMode mode) {
  SimulationConfig config;
  config.nodes.count = 1;
  config.nodes.min_area = node_area;
  config.nodes.max_area = node_area;
  config.configs.count = configs;
  config.configs.min_area = 900;
  config.configs.max_area = 900;
  config.configs.min_config_time = 10;
  config.configs.max_config_time = 10;
  config.mode = mode;
  config.seed = 1;
  return config;
}

workload::GeneratedTask TaskFor(std::uint32_t config_id, Tick at,
                                Tick run = 100) {
  workload::GeneratedTask t;
  t.create_time = at;
  t.preferred_config = ConfigId{config_id};
  t.needed_area = 900;
  t.required_time = run;
  return t;
}

TEST(DrainSemantics, FullModeReusesMatchingQueuedTaskWithoutReconfig) {
  // Two tasks want the same configuration on a one-task node: the second
  // waits in the queue and must reuse the freed configuration — exactly
  // one (re)configuration in the whole run (the Fig. 7 "full stays low"
  // mechanism).
  Simulator sim(PinnedConfig(1000, 1, sched::ReconfigMode::kFull));
  const MetricsReport report = sim.RunWithWorkload(
      {TaskFor(0, 1), TaskFor(0, 2)});
  EXPECT_EQ(report.completed_tasks, 2u);
  EXPECT_EQ(report.suspended_ever, 1u);
  EXPECT_EQ(report.total_reconfigurations, 1u);
  // Second placement was a pure allocation.
  EXPECT_EQ(report.placements_by_kind[0], 1u);  // allocation
  EXPECT_EQ(report.placements_by_kind[1], 1u);  // initial configuration
}

TEST(DrainSemantics, PartialModeReconfiguresRegionForNonMatchingTask) {
  // The queued task wants a *different* configuration; partial mode
  // reclaims the freed idle region and reconfigures it (the Fig. 7
  // "partial reconfigures more" mechanism).
  Simulator sim(PinnedConfig(1000, 2, sched::ReconfigMode::kPartial));
  const MetricsReport report = sim.RunWithWorkload(
      {TaskFor(0, 1), TaskFor(1, 2)});
  EXPECT_EQ(report.completed_tasks, 2u);
  EXPECT_EQ(report.total_reconfigurations, 2u);
  EXPECT_EQ(report.placements_by_kind[3], 1u);  // partial-reconfiguration
}

TEST(DrainSemantics, FullModeFallbackPreventsStranding) {
  // Full mode, non-matching queued task, arrivals over: without the
  // area-based fallback the node would idle forever and the task would be
  // bulk-discarded at drain-out.
  Simulator sim(PinnedConfig(1000, 2, sched::ReconfigMode::kFull));
  const MetricsReport report = sim.RunWithWorkload(
      {TaskFor(0, 1), TaskFor(1, 2)});
  EXPECT_EQ(report.completed_tasks, 2u);
  EXPECT_EQ(report.discarded_tasks, 0u);
  EXPECT_EQ(report.placements_by_kind[4], 1u);  // full-reconfiguration
  EXPECT_EQ(report.total_reconfigurations, 2u);
}

TEST(DrainSemantics, FullModePrefersMatchOverOlderNonMatch) {
  // Queue holds an older non-matching task and a younger matching one:
  // the freed node serves the *matching* task (configuration reuse), the
  // non-matching one waits for the next completion.
  Simulator sim(PinnedConfig(1000, 2, sched::ReconfigMode::kFull));
  const MetricsReport report = sim.RunWithWorkload({
      TaskFor(0, 1, 100),   // runs first
      TaskFor(1, 2, 100),   // older queued non-match
      TaskFor(0, 3, 100),   // younger queued match
  });
  EXPECT_EQ(report.completed_tasks, 3u);
  // Reuse for the matching task + one reconfiguration for the non-match.
  EXPECT_EQ(report.total_reconfigurations, 2u);
  const resource::Task& non_match = sim.tasks().Get(TaskId{1});
  const resource::Task& match = sim.tasks().Get(TaskId{2});
  EXPECT_GT(non_match.start_time, match.start_time);
}

TEST(DrainSemantics, PartialModeFifoAmongEquallyEligible) {
  // Two queued tasks both fit the freed region: FIFO order wins.
  Simulator sim(PinnedConfig(1000, 2, sched::ReconfigMode::kPartial));
  const MetricsReport report = sim.RunWithWorkload({
      TaskFor(0, 1, 100),
      TaskFor(1, 2, 100),  // older
      TaskFor(1, 3, 100),  // younger, same needs
  });
  EXPECT_EQ(report.completed_tasks, 3u);
  EXPECT_LT(sim.tasks().Get(TaskId{1}).start_time,
            sim.tasks().Get(TaskId{2}).start_time);
}

TEST(DrainSemantics, PriorityOverridesFifoWhenEnabled) {
  SimulationConfig config = PinnedConfig(1000, 2,
                                         sched::ReconfigMode::kPartial);
  config.priority_scheduling = true;
  Simulator sim(std::move(config));
  workload::GeneratedTask older = TaskFor(1, 2, 100);
  older.priority = 1.0;
  workload::GeneratedTask younger = TaskFor(1, 3, 100);
  younger.priority = 10.0;  // jumps the queue
  const MetricsReport report =
      sim.RunWithWorkload({TaskFor(0, 1, 100), older, younger});
  EXPECT_EQ(report.completed_tasks, 3u);
  EXPECT_GT(sim.tasks().Get(TaskId{1}).start_time,
            sim.tasks().Get(TaskId{2}).start_time);
}

TEST(DrainSemantics, QueueScanChargedAsSchedulerEffort) {
  // The per-completion queue walk must appear in the step accounting
  // (it is what makes the paper's Fig. 9 full-mode curves grow).
  Simulator with_queue(PinnedConfig(1000, 1, sched::ReconfigMode::kFull));
  const MetricsReport queued = with_queue.RunWithWorkload(
      {TaskFor(0, 1), TaskFor(0, 2), TaskFor(0, 3), TaskFor(0, 4)});

  Simulator without_queue(PinnedConfig(1000, 1, sched::ReconfigMode::kFull));
  // Arrivals spaced beyond completion: the queue never forms.
  const MetricsReport unqueued = without_queue.RunWithWorkload(
      {TaskFor(0, 1), TaskFor(0, 500), TaskFor(0, 1000), TaskFor(0, 1500)});

  EXPECT_EQ(queued.completed_tasks, 4u);
  EXPECT_EQ(unqueued.completed_tasks, 4u);
  EXPECT_GT(queued.scheduling_steps_total, unqueued.scheduling_steps_total);
}

}  // namespace
}  // namespace dreamsim::core
