// Tests for the baseline scheduling policies.
#include "sched/heuristic_policy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dreamsim::sched {
namespace {

using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::ResourceStore;
using resource::Task;

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10;
    c.Add(cfg);
  }
  return c;
}

Task MakeTask(std::uint32_t preferred, Area area, std::uint32_t id = 0) {
  Task t;
  t.id = TaskId{id};
  t.preferred_config = ConfigId{preferred};
  t.needed_area = area;
  t.required_time = 100;
  return t;
}

TEST(HeuristicNames, AllDistinct) {
  std::set<std::string_view> names;
  for (const Heuristic h :
       {Heuristic::kFirstFit, Heuristic::kBestFit, Heuristic::kWorstFit,
        Heuristic::kRandomFit, Heuristic::kRoundRobin,
        Heuristic::kLeastLoaded}) {
    names.insert(ToString(h));
  }
  EXPECT_EQ(names.size(), 6u);
}

class HeuristicFixture : public ::testing::Test {
 protected:
  HeuristicFixture() : store_(MakeCatalogue({300, 500})) {
    n1_ = store_.AddNode(1000);
    n2_ = store_.AddNode(2000);
    n3_ = store_.AddNode(4000);
  }
  ResourceStore store_;
  NodeId n1_, n2_, n3_;
};

class FirstFitTest : public HeuristicFixture {};

TEST_F(FirstFitTest, TakesFirstFeasibleNode) {
  HeuristicPolicy policy(Heuristic::kFirstFit);
  const Decision d = policy.Schedule(MakeTask(0, 300), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.entry.node, n1_);
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(FirstFitTest, PrefersIdleEntryOverNewConfiguration) {
  HeuristicPolicy policy(Heuristic::kFirstFit);
  (void)store_.Configure(n3_, ConfigId{0});
  const Decision d = policy.Schedule(MakeTask(0, 300), store_);
  EXPECT_EQ(d.kind, PlacementKind::kAllocation);
  EXPECT_EQ(d.entry.node, n3_);
  EXPECT_EQ(d.config_time, 0);
}

class BestFitTest : public HeuristicFixture {};

TEST_F(BestFitTest, PicksMinimalLeftoverNode) {
  HeuristicPolicy policy(Heuristic::kBestFit);
  const Decision d = policy.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.entry.node, n1_);  // 1000 is the tightest
}

class WorstFitTest : public HeuristicFixture {};

TEST_F(WorstFitTest, PicksLargestLeftoverNode) {
  HeuristicPolicy policy(Heuristic::kWorstFit);
  const Decision d = policy.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.entry.node, n3_);  // 4000 is the roomiest
}

class RoundRobinTest : public HeuristicFixture {};

TEST_F(RoundRobinTest, RotatesAcrossNodes) {
  HeuristicPolicy policy(Heuristic::kRoundRobin);
  std::vector<std::uint32_t> picks;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const Decision d = policy.Schedule(MakeTask(0, 300, i), store_);
    ASSERT_EQ(d.outcome, Outcome::kPlaced);
    picks.push_back(d.entry.node.value());
  }
  // Each placement advances the cursor past the chosen node.
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1, 2}));
}

class RandomFitTest : public HeuristicFixture {};

TEST_F(RandomFitTest, DeterministicPerSeedAndSpreads) {
  HeuristicPolicy a(Heuristic::kRandomFit, 5);
  HeuristicPolicy b(Heuristic::kRandomFit, 5);
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < 12; ++i) {
    ResourceStore sa(MakeCatalogue({300}));
    ResourceStore sb(MakeCatalogue({300}));
    for (int n = 0; n < 3; ++n) {
      (void)sa.AddNode(1000);
      (void)sb.AddNode(1000);
    }
    const Decision da = a.Schedule(MakeTask(0, 300, i), sa);
    const Decision db = b.Schedule(MakeTask(0, 300, i), sb);
    ASSERT_EQ(da.outcome, Outcome::kPlaced);
    EXPECT_EQ(da.entry.node, db.entry.node);
    seen.insert(da.entry.node.value());
  }
  EXPECT_GT(seen.size(), 1u);  // actually randomizes
}

class LeastLoadedTest : public HeuristicFixture {};

TEST_F(LeastLoadedTest, AvoidsBusyNodes) {
  HeuristicPolicy policy(Heuristic::kLeastLoaded);
  // Load up n1 and n2 with running tasks.
  const EntryRef e1 = store_.Configure(n1_, ConfigId{0});
  store_.AssignTask(e1, TaskId{90});
  const EntryRef e2 = store_.Configure(n2_, ConfigId{0});
  store_.AssignTask(e2, TaskId{91});
  const Decision d = policy.Schedule(MakeTask(1, 500, 1), store_);
  ASSERT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.entry.node, n3_);  // zero running tasks
}

TEST(HeuristicPolicy, ReclaimPathWhenNoSpareArea) {
  ResourceStore store(MakeCatalogue({300, 500}));
  const NodeId node = store.AddNode(600);
  const EntryRef busy = store.Configure(node, ConfigId{0});  // 300 busy
  store.AssignTask(busy, TaskId{99});
  (void)store.Configure(node, ConfigId{0});  // 300 idle; avail 0

  HeuristicPolicy policy(Heuristic::kFirstFit);
  // Wants 500: no idle entry with config 1, no spare area anywhere, but
  // reclaiming the idle 300-entry frees 300 -> 300 avail < 500? avail was
  // 0; reclaim gives 300 -> still short. Expect suspend (busy node total
  // 600 >= 500).
  const Decision d = policy.Schedule(MakeTask(1, 500, 1), store);
  EXPECT_EQ(d.outcome, Outcome::kSuspend);

  // A 300-area task CAN be placed via allocation on the idle entry.
  const Decision d2 = policy.Schedule(MakeTask(0, 300, 2), store);
  EXPECT_EQ(d2.outcome, Outcome::kPlaced);
  EXPECT_EQ(d2.kind, PlacementKind::kAllocation);
}

TEST(HeuristicPolicy, PartialReconfigurationViaAlgorithm1) {
  ResourceStore store(MakeCatalogue({300, 500}));
  const NodeId node = store.AddNode(800);
  const EntryRef idle_a = store.Configure(node, ConfigId{0});  // 300
  (void)idle_a;
  (void)store.Configure(node, ConfigId{0});  // 300; avail 200

  HeuristicPolicy policy(Heuristic::kFirstFit);
  // Wants 500: spare 200 < 500; reclaim one idle 300 -> 500. Fits.
  const Decision d = policy.Schedule(MakeTask(1, 500, 1), store);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kPartialReconfiguration);
  EXPECT_TRUE(store.ValidateConsistency().empty());
}

TEST(HeuristicPolicy, DiscardWhenNothingEverFits) {
  ResourceStore store(MakeCatalogue({300}));
  (void)store.AddNode(250);  // smaller than every config
  HeuristicPolicy policy(Heuristic::kBestFit);
  const Decision d = policy.Schedule(MakeTask(0, 300, 1), store);
  EXPECT_EQ(d.outcome, Outcome::kDiscard);
}

TEST(HeuristicPolicy, ClosestMatchFlagPropagates) {
  ResourceStore store(MakeCatalogue({300, 500}));
  (void)store.AddNode(1000);
  HeuristicPolicy policy(Heuristic::kFirstFit);
  Task t;
  t.id = TaskId{1};
  t.preferred_config = ConfigId::invalid();
  t.needed_area = 400;
  t.required_time = 100;
  const Decision d = policy.Schedule(t, store);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_TRUE(d.used_closest_match);
  EXPECT_EQ(d.config, ConfigId{1});
}

}  // namespace
}  // namespace dreamsim::sched
