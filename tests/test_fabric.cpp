// Tests for the contiguous-placement fabric model (extension): extent
// allocation, coalescing frees, fragmentation metrics, and the node/store
// integration that makes fragmentation observable to the scheduler.
#include "resource/fabric.hpp"

#include <gtest/gtest.h>

#include "resource/store.hpp"
#include "util/rng.hpp"

namespace dreamsim::resource {
namespace {

TEST(FabricLayout, StartsFullyFree) {
  FabricLayout fabric(1000);
  EXPECT_EQ(fabric.free_area(), 1000);
  EXPECT_EQ(fabric.largest_free_extent(), 1000);
  EXPECT_EQ(fabric.hole_count(), 1u);
  EXPECT_DOUBLE_EQ(fabric.FragmentationIndex(), 0.0);
  EXPECT_TRUE(fabric.Validate().empty());
}

TEST(FabricLayout, RejectsBadConstruction) {
  EXPECT_THROW(FabricLayout(0), std::invalid_argument);
  EXPECT_THROW(FabricLayout(-5), std::invalid_argument);
}

TEST(FabricLayout, FirstFitAllocatesLowestOffset) {
  FabricLayout fabric(1000);
  const auto a = fabric.Allocate(300, Placement::kFirstFit);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->offset, 0);
  EXPECT_EQ(a->size, 300);
  const auto b = fabric.Allocate(200, Placement::kFirstFit);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->offset, 300);
  EXPECT_EQ(fabric.free_area(), 500);
}

TEST(FabricLayout, AllocationFailsWhenFragmented) {
  FabricLayout fabric(1000);
  const auto a = fabric.Allocate(400, Placement::kFirstFit);  // [0, 400)
  const auto b = fabric.Allocate(200, Placement::kFirstFit);  // [400, 600)
  const auto c = fabric.Allocate(400, Placement::kFirstFit);  // [600, 1000)
  ASSERT_TRUE(a && b && c);
  fabric.Free(*a);
  fabric.Free(*c);
  // 800 units free, but the largest hole is 400.
  EXPECT_EQ(fabric.free_area(), 800);
  EXPECT_EQ(fabric.largest_free_extent(), 400);
  EXPECT_FALSE(fabric.CanAllocate(500));
  EXPECT_FALSE(fabric.Allocate(500, Placement::kFirstFit).has_value());
  EXPECT_TRUE(fabric.CanAllocate(400));
  EXPECT_DOUBLE_EQ(fabric.FragmentationIndex(), 0.5);
}

TEST(FabricLayout, BestFitPicksSmallestHole) {
  FabricLayout fabric(1000);
  const auto a = fabric.Allocate(200, Placement::kFirstFit);  // [0, 200)
  const auto b = fabric.Allocate(100, Placement::kFirstFit);  // [200, 300)
  ASSERT_TRUE(a && b);
  fabric.Free(*a);  // holes: [0,200) and [300,1000)
  const auto c = fabric.Allocate(150, Placement::kBestFit);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->offset, 0);  // the 200-hole, not the 700-hole
}

TEST(FabricLayout, WorstFitPicksLargestHole) {
  FabricLayout fabric(1000);
  const auto a = fabric.Allocate(200, Placement::kFirstFit);
  const auto b = fabric.Allocate(100, Placement::kFirstFit);
  ASSERT_TRUE(a && b);
  fabric.Free(*a);  // holes: [0,200) and [300,1000)
  const auto c = fabric.Allocate(150, Placement::kWorstFit);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->offset, 300);
}

TEST(FabricLayout, FreeCoalescesBothNeighbours) {
  FabricLayout fabric(900);
  const auto a = fabric.Allocate(300, Placement::kFirstFit);
  const auto b = fabric.Allocate(300, Placement::kFirstFit);
  const auto c = fabric.Allocate(300, Placement::kFirstFit);
  ASSERT_TRUE(a && b && c);
  fabric.Free(*a);
  fabric.Free(*c);
  EXPECT_EQ(fabric.hole_count(), 2u);
  fabric.Free(*b);  // merges everything back into one hole
  EXPECT_EQ(fabric.hole_count(), 1u);
  EXPECT_EQ(fabric.largest_free_extent(), 900);
  EXPECT_TRUE(fabric.Validate().empty());
}

TEST(FabricLayout, DoubleFreeDetected) {
  FabricLayout fabric(500);
  const auto a = fabric.Allocate(200, Placement::kFirstFit);
  ASSERT_TRUE(a.has_value());
  fabric.Free(*a);
  EXPECT_THROW(fabric.Free(*a), std::logic_error);
  EXPECT_THROW(fabric.Free(Extent{400, 200}), std::logic_error);  // bounds
}

TEST(FabricLayout, CanAllocateAfterFreeing) {
  FabricLayout fabric(1000);
  const auto a = fabric.Allocate(400, Placement::kFirstFit);  // [0,400)
  const auto b = fabric.Allocate(300, Placement::kFirstFit);  // [400,700)
  ASSERT_TRUE(a && b);
  // Current largest hole: [700,1000) = 300.
  EXPECT_FALSE(fabric.CanAllocate(600));
  // Freeing b would merge [400,700) with [700,1000): hole of 600.
  const Extent pending[] = {*b};
  EXPECT_TRUE(fabric.CanAllocateAfterFreeing(pending, 600));
  EXPECT_FALSE(fabric.CanAllocateAfterFreeing(pending, 700));
  // Freeing a too joins nothing extra (a is not adjacent to the rest).
  const Extent both[] = {*a, *b};
  EXPECT_TRUE(fabric.CanAllocateAfterFreeing(both, 1000));
}

TEST(FabricLayout, RandomizedAllocFreeKeepsInvariants) {
  Rng rng(31);
  FabricLayout fabric(4000);
  std::vector<Extent> live;
  Area live_area = 0;
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.uniform() < 0.55) {
      const Area size = rng.uniform_int(50, 600);
      const auto placement = static_cast<Placement>(rng.uniform_int(0, 2));
      const auto extent = fabric.Allocate(size, placement);
      if (extent) {
        live.push_back(*extent);
        live_area += size;
      }
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      fabric.Free(live[pick]);
      live_area -= live[pick].size;
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(fabric.free_area(), 4000 - live_area) << "op " << op;
    const auto violations = fabric.Validate();
    ASSERT_TRUE(violations.empty()) << "op " << op << ": " << violations[0];
  }
}

// ---- Node / store integration ----

Configuration MakeConfig(std::uint32_t id, Area area) {
  Configuration c;
  c.id = ConfigId{id};
  c.required_area = area;
  c.config_time = 10;
  return c;
}

TEST(ContiguousNode, FragmentationBlocksPlacement) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{}, /*contiguous=*/true);
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 400));
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 200));
  const SlotIndex c = n.SendBitstream(MakeConfig(2, 400));
  (void)b;
  n.MakeNodePartiallyBlank(a, 400);
  n.MakeNodePartiallyBlank(c, 400);
  // 800 free but split 400 + 400: a 500-unit configuration cannot land.
  EXPECT_EQ(n.available_area(), 800);
  EXPECT_FALSE(n.CanHost(500));
  EXPECT_FALSE(n.TrySendBitstream(MakeConfig(3, 500)).has_value());
  EXPECT_THROW((void)n.SendBitstream(MakeConfig(3, 500)), std::logic_error);
  EXPECT_GT(n.Fragmentation(), 0.4);
  // The scalar model would have accepted it.
  Node scalar(NodeId{1}, 1000, FamilyId{0}, Caps{});
  EXPECT_TRUE(scalar.CanHost(500));
}

TEST(ContiguousNode, CanHostAfterReclaimingRespectsAdjacency) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{}, /*contiguous=*/true);
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 400));  // [0,400)
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 300));  // [400,700)
  (void)a;
  // Holes: [700,1000). Reclaiming b merges to [400,1000) = 600.
  const SlotIndex reclaim[] = {b};
  EXPECT_TRUE(n.CanHostAfterReclaiming(reclaim, 600));
  EXPECT_FALSE(n.CanHostAfterReclaiming(reclaim, 700));
}

TEST(ContiguousNode, ScalarNodeRejectsLayoutQueries) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  EXPECT_FALSE(n.contiguous());
  EXPECT_THROW((void)n.layout(), std::logic_error);
  EXPECT_THROW((void)n.CanHostAfterReclaiming({}, 100), std::logic_error);
  EXPECT_DOUBLE_EQ(n.Fragmentation(), 0.0);
}

TEST(ContiguousNode, BlankResetsLayout) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{}, /*contiguous=*/true);
  (void)n.SendBitstream(MakeConfig(0, 400));
  (void)n.SendBitstream(MakeConfig(1, 300));
  n.MakeNodeBlank();
  EXPECT_EQ(n.layout().free_area(), 1000);
  EXPECT_EQ(n.layout().hole_count(), 1u);
  EXPECT_TRUE(n.CanHost(1000));
}

TEST(ContiguousStore, ConsistencyHoldsUnderOperations) {
  ConfigCatalogue catalogue;
  catalogue.Add(MakeConfig(0, 300));
  catalogue.Add(MakeConfig(1, 500));
  ResourceStore store(std::move(catalogue));
  const NodeId node = store.AddNode(1000, FamilyId{0}, Caps{}, 0,
                                    /*contiguous=*/true);
  const EntryRef a = store.Configure(node, ConfigId{0});
  const EntryRef b = store.Configure(node, ConfigId{1});
  store.AssignTask(b, TaskId{1});
  store.ReclaimSlot(a);
  EXPECT_TRUE(store.ValidateConsistency().empty());
  (void)store.ReleaseTask(b);
  store.BlankNode(node);
  EXPECT_TRUE(store.ValidateConsistency().empty());
  const auto frag = store.Fragmentation();
  EXPECT_DOUBLE_EQ(frag.mean, 0.0);
}

TEST(ContiguousStore, FindAnyIdleNodeRespectsContiguity) {
  ConfigCatalogue catalogue;
  catalogue.Add(MakeConfig(0, 400));  // will sit at [0,400)
  catalogue.Add(MakeConfig(1, 200));  // busy divider at [400,600)
  catalogue.Add(MakeConfig(2, 400));  // [600,1000)
  catalogue.Add(MakeConfig(3, 700));  // the request that cannot fit
  ResourceStore store(std::move(catalogue));
  const NodeId node = store.AddNode(1000, FamilyId{0}, Caps{}, 0,
                                    /*contiguous=*/true);
  const EntryRef a = store.Configure(node, ConfigId{0});
  const EntryRef divider = store.Configure(node, ConfigId{1});
  const EntryRef c = store.Configure(node, ConfigId{2});
  store.AssignTask(divider, TaskId{1});
  (void)a;
  (void)c;
  // Idle entries a (400) + c (400) + 0 spare = 800 >= 700 scalar-wise, but
  // the busy divider at [400,600) caps any merged hole at 400.
  EXPECT_FALSE(store.FindAnyIdleNode(700).has_value());
  // A 400-unit request fits by reclaiming just the first idle entry.
  const auto plan = store.FindAnyIdleNode(400);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node, node);
}

TEST(ContiguousSimulation, EndToEndWithFragmentation) {
  // Whole simulations run correctly under the contiguous model and leave
  // consistent stores. Fragmentation should not inflate terminal states.
  ConfigCatalogue catalogue;
  for (std::uint32_t i = 0; i < 6; ++i) {
    catalogue.Add(MakeConfig(i, 200 + 150 * static_cast<Area>(i)));
  }
  ResourceStore store(std::move(catalogue));
  Rng rng(77);
  NodeGenParams params;
  params.count = 20;
  params.contiguous_placement = true;
  params.placement = Placement::kBestFit;
  store.InitNodes(params, rng);
  for (const Node& n : store.nodes()) {
    EXPECT_TRUE(n.contiguous());
  }
  EXPECT_TRUE(store.ValidateConsistency().empty());
}

}  // namespace
}  // namespace dreamsim::resource
