// Scenario-grid smoke: every shipped scenario in scenarios/ must parse,
// round-trip through its canonical form, and run to completion with the
// end-of-run structure audit enabled (an audit violation throws). This is
// the same sweep the Release CI job runs through the CLI; keeping it in
// ctest means a broken scenario fails locally before it fails in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "scenario/scenario.hpp"

#ifndef DREAMSIM_SCENARIO_DIR
#error "build must define DREAMSIM_SCENARIO_DIR (see tests/CMakeLists.txt)"
#endif

namespace dreamsim::scenario {
namespace {

std::vector<std::filesystem::path> ScenarioFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DREAMSIM_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioGrid, LibraryShipsAtLeastTenScenarios) {
  EXPECT_GE(ScenarioFiles().size(), 10u);
}

TEST(ScenarioGrid, AtLeastFourScenariosAreHeterogeneous) {
  int heterogeneous = 0;
  for (const auto& path : ScenarioFiles()) {
    auto result = ParseScenarioFile(path.string());
    ASSERT_TRUE(result.has_value())
        << path << "\n"
        << Render(result.error());
    if (result.value().config.device_classes.size() >= 2) ++heterogeneous;
  }
  EXPECT_GE(heterogeneous, 4);
}

TEST(ScenarioGrid, EveryScenarioRoundTripsAndHashes) {
  for (const auto& path : ScenarioFiles()) {
    SCOPED_TRACE(path.string());
    auto result = ParseScenarioFile(path.string());
    ASSERT_TRUE(result.has_value()) << Render(result.error());
    const std::string canonical = CanonicalScenario(result.value());
    auto again = ParseScenario(canonical);
    ASSERT_TRUE(again.has_value()) << Render(again.error());
    EXPECT_EQ(CanonicalScenario(again.value()), canonical);
    EXPECT_EQ(result.value().config.scenario_hash,
              ScenarioHash(again.value()));
  }
}

TEST(ScenarioGrid, EveryScenarioRunsCleanUnderEndAudit) {
  for (const auto& path : ScenarioFiles()) {
    SCOPED_TRACE(path.string());
    auto result = ParseScenarioFile(path.string());
    ASSERT_TRUE(result.has_value()) << Render(result.error());
    core::SimulationConfig config = std::move(result.value().config);
    config.audit = analysis::AuditMode::kEnd;
    core::Simulator sim(std::move(config));
    const core::MetricsReport report = sim.Run();  // audit throws on damage
    EXPECT_GT(report.total_tasks, 0u);
    // Every generated task is accounted for: completed, discarded, or
    // still in flight when the clock drained (which Run() flushes).
    EXPECT_LE(report.completed_tasks + report.discarded_tasks,
              report.total_tasks);
    EXPECT_GT(report.total_simulation_time, 0);
  }
}

}  // namespace
}  // namespace dreamsim::scenario
