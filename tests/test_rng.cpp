// Statistical and determinism tests for the RNG suite (paper Sec. IV-C:
// Ziggurat normal, Marsaglia-Tsang gamma, Poisson, binomial, multinomial).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace dreamsim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.rand_int32(), b.rand_int32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.rand_int32() == b.rand_int32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, DeriveSeedIsDeterministicAndSpread) {
  EXPECT_EQ(DeriveSeed(42, 1), DeriveSeed(42, 1));
  EXPECT_NE(DeriveSeed(42, 1), DeriveSeed(42, 2));
  EXPECT_NE(DeriveSeed(42, 1), DeriveSeed(43, 1));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<std::size_t>(v - 10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

struct GammaCase {
  double alpha;
  double theta;
};

class RngGammaTest : public ::testing::TestWithParam<GammaCase> {};

TEST_P(RngGammaTest, MomentsMatch) {
  const auto [alpha, theta] = GetParam();
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(alpha, theta);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, alpha * theta, 0.03 * alpha * theta + 0.01);
  EXPECT_NEAR(var, alpha * theta * theta,
              0.08 * alpha * theta * theta + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RngGammaTest,
                         ::testing::Values(GammaCase{0.5, 1.0},
                                           GammaCase{1.0, 1.0},
                                           GammaCase{2.5, 1.0},
                                           GammaCase{4.0, 2.0},
                                           GammaCase{16.0, 0.5}));

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MomentsMatch) {
  const double lambda = GetParam();
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const int k = rng.poisson(lambda);
    ASSERT_GE(k, 0);
    sum += k;
    sum_sq += static_cast<double>(k) * k;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.03 * lambda + 0.02);
  EXPECT_NEAR(var, lambda, 0.08 * lambda + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.5, 2.0, 8.0, 12.0, 30.0, 100.0));

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

struct BinomialCase {
  double p;
  int n;
};

class RngBinomialTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(RngBinomialTest, MomentsMatch) {
  const auto [p, trials] = GetParam();
  Rng rng(37);
  const int samples = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const int k = rng.binomial(p, trials);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, trials);
    sum += k;
    sum_sq += static_cast<double>(k) * k;
  }
  const double mean = sum / samples;
  const double var = sum_sq / samples - mean * mean;
  const double expect_mean = p * trials;
  const double expect_var = trials * p * (1.0 - p);
  EXPECT_NEAR(mean, expect_mean, 0.03 * expect_mean + 0.03);
  EXPECT_NEAR(var, expect_var, 0.08 * expect_var + 0.08);
}

INSTANTIATE_TEST_SUITE_P(Cases, RngBinomialTest,
                         ::testing::Values(BinomialCase{0.5, 10},
                                           BinomialCase{0.1, 100},
                                           BinomialCase{0.9, 100},
                                           BinomialCase{0.3, 1000},
                                           BinomialCase{0.0, 50},
                                           BinomialCase{1.0, 50}));

TEST(Rng, MultinomialCountsSumToN) {
  Rng rng(41);
  const std::vector<double> probs{0.2, 0.3, 0.5};
  for (int i = 0; i < 200; ++i) {
    const auto counts = rng.multinomial(100, probs);
    ASSERT_EQ(counts.size(), 3u);
    int total = 0;
    for (const int c : counts) {
      ASSERT_GE(c, 0);
      total += c;
    }
    EXPECT_EQ(total, 100);
  }
}

TEST(Rng, MultinomialProportions) {
  Rng rng(43);
  const std::vector<double> probs{0.2, 0.3, 0.5};
  std::array<long, 3> totals{};
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    const auto counts = rng.multinomial(100, probs);
    for (std::size_t j = 0; j < 3; ++j) totals[j] += counts[j];
  }
  EXPECT_NEAR(totals[0] / (100.0 * reps), 0.2, 0.01);
  EXPECT_NEAR(totals[1] / (100.0 * reps), 0.3, 0.01);
  EXPECT_NEAR(totals[2] / (100.0 * reps), 0.5, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(47);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    const std::size_t idx = rng.weighted_index(weights);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], 10000, 500);
  EXPECT_NEAR(counts[2], 30000, 500);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(53);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, GammaRejectsNonPositiveParams) {
  Rng rng(59);
  EXPECT_THROW((void)rng.gamma(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(-1.0), std::invalid_argument);
}

TEST(Rng, BinomialRejectsInvalidParams) {
  Rng rng(61);
  EXPECT_THROW((void)rng.binomial(-0.1, 10), std::invalid_argument);
  EXPECT_THROW((void)rng.binomial(1.1, 10), std::invalid_argument);
  EXPECT_THROW((void)rng.binomial(0.5, -1), std::invalid_argument);
}

TEST(Rng, PoissonRejectsNegativeLambda) {
  Rng rng(67);
  EXPECT_THROW((void)rng.poisson(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dreamsim
