// Negative-path tests for the scenario parser: every rejected input must
// produce a diagnostic anchored to the offending 1-based source line, and
// the parser must recover and keep reporting (one pass finds all problems).
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim::scenario {
namespace {

// Parses and returns the diagnostics, failing the test if the input was
// accepted.
std::vector<ScenarioError> MustFail(std::string_view text) {
  auto result = ParseScenario(text);
  if (result.has_value()) {
    ADD_FAILURE() << "parser accepted invalid input:\n" << text;
    return {};
  }
  EXPECT_FALSE(result.error().empty());
  return std::move(result.error());
}

// True if any diagnostic sits on `line` and mentions `needle`.
bool HasError(const std::vector<ScenarioError>& errors, int line,
              std::string_view needle) {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const ScenarioError& e) {
                       return e.line == line &&
                              e.message.find(needle) != std::string::npos;
                     });
}

std::string Dump(const std::vector<ScenarioError>& errors) {
  return Render(errors);
}

// A minimal valid scenario to splice bad fragments into.
constexpr std::string_view kValid = R"(simulation: {
  name: ok
  seed: 1
}
device class: {
  name: fabric
  count: 10
  area: [1000, 4000]
}
task class: {
  name: t
  count: 10
  interval: [1, 50]
}
)";

TEST(ScenarioParser, AcceptsTheMinimalScenario) {
  auto result = ParseScenario(kValid);
  ASSERT_TRUE(result.has_value()) << Render(result.error());
  EXPECT_EQ(result.value().name, "ok");
  EXPECT_EQ(result.value().config.seed, 1u);
  ASSERT_EQ(result.value().config.device_classes.size(), 1u);
  ASSERT_EQ(result.value().config.task_classes.size(), 1u);
}

TEST(ScenarioParser, EmptyInputIsAValidDefaultScenario) {
  // No blocks at all: Table II defaults throughout.
  auto result = ParseScenario("");
  ASSERT_TRUE(result.has_value()) << Render(result.error());
  EXPECT_TRUE(result.value().config.device_classes.empty());
  EXPECT_TRUE(result.value().config.task_classes.empty());
}

TEST(ScenarioParser, UnknownBlockIsAnchoredToItsHeaderLine) {
  const auto errors = MustFail(
      "widget class: {\n"
      "  name: x\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 1, "unknown block 'widget class:'"))
      << Dump(errors);
}

TEST(ScenarioParser, UnknownBlockBodyIsConsumedWithoutCascade) {
  // Recovery: the bogus block errors once; the valid block after it still
  // parses, so the only diagnostic is the header's.
  const auto errors = MustFail(
      "widget class: {\n"
      "  name: x\n"
      "  count: 3\n"
      "}\n"
      "simulation: {\n"
      "  seed: 7\n"
      "}\n");
  ASSERT_EQ(errors.size(), 1u) << Dump(errors);
  EXPECT_EQ(errors[0].line, 1);
}

TEST(ScenarioParser, DuplicateSimulationBlock) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed: 1\n"
      "}\n"
      "simulation: {\n"
      "  seed: 2\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 4, "duplicate 'simulation:' block"))
      << Dump(errors);
}

TEST(ScenarioParser, UnterminatedBlockPointsAtTheHeader) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed: 1\n");
  EXPECT_TRUE(HasError(errors, 1, "never closed")) << Dump(errors);
}

TEST(ScenarioParser, HeaderWithoutBraceOnNextLine) {
  const auto errors = MustFail(
      "simulation:\n"
      "seed: 1\n"
      "}\n");
  EXPECT_TRUE(
      HasError(errors, 2, "expected '{' to open the 'simulation:' block"))
      << Dump(errors);
}

TEST(ScenarioParser, StrayTextOutsideBlocks) {
  const auto errors = MustFail("hello world\n");
  EXPECT_TRUE(HasError(errors, 1, "expected a block header")) << Dump(errors);
}

TEST(ScenarioParser, MissingValue) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed:\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "key 'seed' has no value")) << Dump(errors);
}

TEST(ScenarioParser, DuplicateKeyInsideABlock) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed: 1\n"
      "  seed: 2\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 3, "duplicate key 'seed'")) << Dump(errors);
}

TEST(ScenarioParser, UnknownKeyNamesTheBlock) {
  const auto errors = MustFail(
      "configurations: {\n"
      "  colour: blue\n"
      "}\n");
  EXPECT_TRUE(
      HasError(errors, 2, "unknown key 'colour' in 'configurations:' block"))
      << Dump(errors);
}

TEST(ScenarioParser, MalformedInteger) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed: banana\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "expected a non-negative integer"))
      << Dump(errors);
}

TEST(ScenarioParser, UnknownPtypeName) {
  const auto errors = MustFail(
      "configurations: {\n"
      "  ptypes: mult32 quantum_alu\n"
      "}\n");
  EXPECT_TRUE(
      HasError(errors, 2, "unknown processor type 'quantum_alu'"))
      << Dump(errors);
}

TEST(ScenarioParser, DuplicatePtypeName) {
  const auto errors = MustFail(
      "configurations: {\n"
      "  ptypes: mult32 mult32\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "duplicate processor type 'mult32'"))
      << Dump(errors);
}

TEST(ScenarioParser, PtypeSelectionIsParsedInOrder) {
  auto result = ParseScenario(
      "configurations: {\n"
      "  ptypes: systolic8x8 mult32\n"
      "}\n");
  ASSERT_TRUE(result.has_value()) << Render(result.error());
  const auto& ptypes = result.value().config.configs.ptypes;
  ASSERT_EQ(ptypes.size(), 2u);
  EXPECT_EQ(ptypes[0], "systolic8x8");
  EXPECT_EQ(ptypes[1], "mult32");
}

TEST(ScenarioParser, PtypesAllMeansTheWholeCatalogue) {
  auto result = ParseScenario(
      "configurations: {\n"
      "  ptypes: all\n"
      "}\n");
  ASSERT_TRUE(result.has_value()) << Render(result.error());
  EXPECT_TRUE(result.value().config.configs.ptypes.empty());
}

TEST(ScenarioParser, MalformedRange) {
  const auto errors = MustFail(
      "configurations: {\n"
      "  area: 200-2000\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "expected a range '[lo, hi]'"))
      << Dump(errors);
}

TEST(ScenarioParser, InvertedRange) {
  const auto errors = MustFail(
      "configurations: {\n"
      "  area: [2000, 200]\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "area")) << Dump(errors);
}

TEST(ScenarioParser, UnknownMode) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  mode: sideways\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "mode")) << Dump(errors);
}

TEST(ScenarioParser, UnknownPolicy) {
  const auto errors = MustFail(
      "simulation: {\n"
      "  policy: magic\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "unknown policy 'magic'")) << Dump(errors);
}

TEST(ScenarioParser, DeviceClassWithoutName) {
  const auto errors = MustFail(
      "device class: {\n"
      "  count: 10\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 1, "device class needs a 'name:'"))
      << Dump(errors);
}

TEST(ScenarioParser, DeviceClassWithoutCount) {
  const auto errors = MustFail(
      "device class: {\n"
      "  name: fabric\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 1, "needs a 'count:'")) << Dump(errors);
}

TEST(ScenarioParser, DuplicateDeviceClassName) {
  const auto errors = MustFail(
      "device class: {\n"
      "  name: fabric\n"
      "  count: 10\n"
      "}\n"
      "device class: {\n"
      "  name: fabric\n"
      "  count: 20\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 5, "duplicate device class name 'fabric'"))
      << Dump(errors);
}

TEST(ScenarioParser, DuplicateTaskClassName) {
  const auto errors = MustFail(
      "task class: {\n"
      "  name: t\n"
      "  count: 10\n"
      "}\n"
      "task class: {\n"
      "  name: t\n"
      "  count: 10\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 5, "duplicate task class name 't'"))
      << Dump(errors);
}

TEST(ScenarioParser, TaskClassCountDefaultsToTableII) {
  // An omitted count inherits the Table II budget of 1000 — minimal
  // scenarios stay minimal.
  auto result = ParseScenario(
      "task class: {\n"
      "  name: t\n"
      "  interval: [1, 50]\n"
      "}\n");
  ASSERT_TRUE(result.has_value()) << Render(result.error());
  ASSERT_EQ(result.value().config.task_classes.size(), 1u);
  EXPECT_EQ(result.value().config.task_classes[0].base.total_tasks, 1000);
}

TEST(ScenarioParser, TaskClassWithoutBudget) {
  // An explicit zero count with no end-time budget: the semantic
  // validator fires, anchored at the block header.
  const auto errors = MustFail(
      "task class: {\n"
      "  name: t\n"
      "  count: 0\n"
      "  interval: [1, 50]\n"
      "}\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].line, 1) << Dump(errors);
}

TEST(ScenarioParser, WindowedTaskClassNeedsAnEndTime) {
  const auto errors = MustFail(
      "task class: {\n"
      "  name: t\n"
      "  arrivals: windowed\n"
      "  start time: 100\n"
      "}\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].line, 1) << Dump(errors);
}

TEST(ScenarioParser, GraphFractionOutOfRange) {
  const auto errors = MustFail(
      "task class: {\n"
      "  name: t\n"
      "  count: 10\n"
      "  graph fraction: 1.5\n"
      "}\n");
  ASSERT_FALSE(errors.empty()) << Dump(errors);
}

TEST(ScenarioParser, LiteralZeroTaskClassSeedIsRejected) {
  const auto errors = MustFail(
      "task class: {\n"
      "  name: t\n"
      "  count: 10\n"
      "  seed: 0\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 4, "seed")) << Dump(errors);
}

TEST(ScenarioParser, BadNameToken) {
  const auto errors = MustFail(
      "device class: {\n"
      "  name: two words\n"
      "  count: 10\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "single tokens")) << Dump(errors);
}

TEST(ScenarioParser, OnePassReportsEveryProblem) {
  // Three independent mistakes on three lines: all reported, all anchored.
  const auto errors = MustFail(
      "simulation: {\n"
      "  seed: x\n"
      "  mode: diagonal\n"
      "  colour: red\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 2, "seed")) << Dump(errors);
  EXPECT_TRUE(HasError(errors, 3, "mode")) << Dump(errors);
  EXPECT_TRUE(HasError(errors, 4, "unknown key 'colour'")) << Dump(errors);
}

TEST(ScenarioParser, CommentsAndBlankLinesDoNotShiftLineNumbers) {
  const auto errors = MustFail(
      "# leading comment\n"
      "\n"
      "simulation: {\n"
      "  # inner comment\n"
      "  seed: banana\n"
      "}\n");
  EXPECT_TRUE(HasError(errors, 5, "seed")) << Dump(errors);
}

TEST(ScenarioParser, UnreadableFileReportsLineZero) {
  auto result = ParseScenarioFile("/nonexistent/path/to/scenario.scn");
  ASSERT_FALSE(result.has_value());
  ASSERT_EQ(result.error().size(), 1u);
  EXPECT_EQ(result.error()[0].line, 0);
}

TEST(ScenarioParser, RenderFormatsOnePerLine) {
  const std::vector<ScenarioError> errors = {{3, "bad thing"},
                                             {7, "worse thing"}};
  EXPECT_EQ(Render(errors), "line 3: bad thing\nline 7: worse thing\n");
}

TEST(ScenarioParser, TotalNodeBudgetIsEnforced) {
  const auto errors = MustFail(
      "device class: {\n"
      "  name: a\n"
      "  count: 16000000\n"
      "}\n"
      "device class: {\n"
      "  name: b\n"
      "  count: 16000000\n"
      "}\n");
  ASSERT_FALSE(errors.empty()) << Dump(errors);
}

}  // namespace
}  // namespace dreamsim::scenario
