// Differential proof that the observability layer is a pure observer
// (ISSUE acceptance): with RunTracer, TimeSeriesSampler, and the
// PhaseProfiler all enabled, every MetricsReport field — fault block
// included — and the UtilizationReport are bit-identical to an
// observability-free run, in both index modes, with and without faults.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/simulator.hpp"
#include "obs/profiler.hpp"
#include "obs/run_tracer.hpp"
#include "obs/timeline.hpp"

namespace dreamsim {
namespace {

using core::FaultAction;
using core::MetricsReport;
using core::SimulationConfig;
using core::Simulator;

struct ObsCase {
  bool indexed = true;
  bool faults = false;
};

void PrintTo(const ObsCase& c, std::ostream* os) {
  *os << (c.indexed ? "indexed" : "scan") << (c.faults ? " faults" : "");
}

SimulationConfig MakeConfig(const ObsCase& c, std::uint64_t seed) {
  SimulationConfig config;
  config.nodes.count = 12;
  config.configs.count = 8;
  config.tasks.total_tasks = 350;
  config.scheduler_index = c.indexed;
  config.drain_index = c.indexed;
  config.seed = seed;
  if (c.faults) {
    // Short tasks relative to the MTBF: failures interrupt running work
    // without statistically livelocking the retry loop (kills do not
    // consume the retry budget).
    config.tasks.min_required_time = 80;
    config.tasks.max_required_time = 900;
    config.faults.mtbf = 4'000;
    config.faults.mttr = 800;
    config.faults.script = {{300, NodeId{2}, FaultAction::kFail},
                            {1'500, NodeId{2}, FaultAction::kRepair}};
    config.max_suspension_retries = 8;
  }
  return config;
}

struct RunResult {
  MetricsReport report;
  rms::UtilizationReport utilization;
};

RunResult RunPlain(const ObsCase& c, std::uint64_t seed) {
  Simulator sim(MakeConfig(c, seed));
  RunResult result;
  result.report = sim.Run();
  result.utilization = sim.utilization();
  return result;
}

/// Same run with the full observability stack attached: both trace formats
/// exercised across the suite, fine-grained sampling, profiler recording.
RunResult RunObserved(const ObsCase& c, std::uint64_t seed,
                      obs::TraceFormat format) {
  obs::PhaseProfiler::SetEnabled(true);
  obs::PhaseProfiler::Instance().Reset();
  std::ostringstream trace_out;
  std::ostringstream timeline_out;
  Simulator sim(MakeConfig(c, seed));
  obs::RunTracer::RunInfo info;
  info.label = "obs-diff";
  info.mode = "partial";
  info.seed = seed;
  info.nodes = sim.store().node_count();
  obs::RunTracer tracer(trace_out, format, info);
  obs::TimeSeriesSampler sampler(timeline_out, 50);
  sim.SetEventLogger(
      [&tracer](const core::SimEvent& e) { tracer.OnEvent(e); });
  sim.SetStateObserver(
      [&sampler](const core::StateSample& s) { sampler.Observe(s); });
  RunResult result;
  result.report = sim.Run();
  result.utilization = sim.utilization();
  tracer.Finish(sim.kernel().now());
  sampler.Finish(sim.kernel().now());
  obs::PhaseProfiler::SetEnabled(false);
  // The observers must actually have seen the run for this diff to mean
  // anything.
  EXPECT_GT(tracer.events_seen(), 0u);
  EXPECT_GT(sampler.observations(), 0u);
  EXPECT_GT(
      obs::PhaseProfiler::Instance().stats(obs::ProfPhase::kAllocation).calls,
      0u);
  EXPECT_FALSE(trace_out.str().empty());
  EXPECT_FALSE(timeline_out.str().empty());
  return result;
}

void ExpectIdentical(const RunResult& obs_run, const RunResult& plain) {
  const MetricsReport& x = obs_run.report;
  const MetricsReport& y = plain.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
  EXPECT_EQ(x.failures_injected, y.failures_injected);
  EXPECT_EQ(x.repairs_completed, y.repairs_completed);
  EXPECT_EQ(x.tasks_killed, y.tasks_killed);
  EXPECT_EQ(x.tasks_recovered, y.tasks_recovered);
  EXPECT_EQ(x.tasks_lost_to_failure, y.tasks_lost_to_failure);
  EXPECT_EQ(x.lost_work_area_ticks, y.lost_work_area_ticks);
  EXPECT_EQ(x.total_downtime, y.total_downtime);
  // The monitoring integrals must be untouched as well (the sampler shares
  // the monitor's snapshots, it must not perturb them).
  EXPECT_EQ(obs_run.utilization.avg_running_tasks,
            plain.utilization.avg_running_tasks);
  EXPECT_EQ(obs_run.utilization.avg_busy_nodes,
            plain.utilization.avg_busy_nodes);
  EXPECT_EQ(obs_run.utilization.avg_wasted_area,
            plain.utilization.avg_wasted_area);
  EXPECT_EQ(obs_run.utilization.peak_running_tasks,
            plain.utilization.peak_running_tasks);
  EXPECT_EQ(obs_run.utilization.peak_suspended_tasks,
            plain.utilization.peak_suspended_tasks);
  EXPECT_EQ(obs_run.utilization.observed_until,
            plain.utilization.observed_until);
}

class ObsDiff : public ::testing::TestWithParam<ObsCase> {};

TEST_P(ObsDiff, ObservedRunsAreBitIdentical) {
  const ObsCase c = GetParam();
  // Seed 42 is the acceptance seed; two more guard against coincidence.
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull}) {
    const RunResult plain = RunPlain(c, seed);
    ExpectIdentical(RunObserved(c, seed, obs::TraceFormat::kJsonl), plain);
    ExpectIdentical(RunObserved(c, seed, obs::TraceFormat::kChrome), plain);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(ObsCombos, ObsDiff,
                         ::testing::Values(ObsCase{true, false},
                                           ObsCase{false, false},
                                           ObsCase{true, true},
                                           ObsCase{false, true}));

}  // namespace
}  // namespace dreamsim
