// Differential proof that the observability layer is a pure observer
// (ISSUE acceptance): with RunTracer, TimeSeriesSampler, the PhaseProfiler,
// the live MetricsRegistry, and the --explain decision observer all
// enabled, every MetricsReport field — fault block included — and the
// UtilizationReport are bit-identical to an observability-free run, in both
// index modes, with and without faults, across 20+ seeds including
// multi-class scenario workloads.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/run_tracer.hpp"
#include "obs/timeline.hpp"

namespace dreamsim {
namespace {

using core::FaultAction;
using core::MetricsReport;
using core::SimulationConfig;
using core::Simulator;

struct ObsCase {
  bool indexed = true;
  bool faults = false;
  bool multi_class = false;
};

void PrintTo(const ObsCase& c, std::ostream* os) {
  *os << (c.indexed ? "indexed" : "scan") << (c.faults ? " faults" : "")
      << (c.multi_class ? " multi-class" : "");
}

SimulationConfig MakeConfig(const ObsCase& c, std::uint64_t seed) {
  SimulationConfig config;
  config.nodes.count = 12;
  config.configs.count = 8;
  config.tasks.total_tasks = 350;
  config.scheduler_index = c.indexed;
  config.drain_index = c.indexed;
  config.seed = seed;
  if (c.faults) {
    // Short tasks relative to the MTBF: failures interrupt running work
    // without statistically livelocking the retry loop (kills do not
    // consume the retry budget).
    config.tasks.min_required_time = 80;
    config.tasks.max_required_time = 900;
    config.faults.mtbf = 4'000;
    config.faults.mttr = 800;
    config.faults.script = {{300, NodeId{2}, FaultAction::kFail},
                            {1'500, NodeId{2}, FaultAction::kRepair}};
    config.max_suspension_retries = 8;
  }
  if (c.multi_class) {
    // A steady class plus a bursty chain-bearing class: the merged
    // multi-class timeline and chain-release hooks must stay untouched by
    // the observers just like the single-stream path.
    workload::TaskClassParams steady;
    steady.name = "steady";
    steady.base = config.tasks;
    steady.base.total_tasks = 160;
    workload::TaskClassParams bursty;
    bursty.name = "bursty";
    bursty.base = config.tasks;
    bursty.base.total_tasks = 120;
    bursty.shape = workload::ArrivalShape::kBursty;
    bursty.min_burst = 3;
    bursty.max_burst = 6;
    bursty.min_burst_gap = 200;
    bursty.max_burst_gap = 600;
    bursty.graph_fraction = 0.2;
    config.task_classes = {steady, bursty};
  }
  return config;
}

struct RunResult {
  MetricsReport report;
  rms::UtilizationReport utilization;
};

RunResult RunPlain(const ObsCase& c, std::uint64_t seed) {
  Simulator sim(MakeConfig(c, seed));
  RunResult result;
  result.report = sim.Run();
  result.utilization = sim.utilization();
  return result;
}

/// Same run with the full observability stack attached: both trace formats
/// exercised across the suite, fine-grained sampling, profiler recording.
RunResult RunObserved(const ObsCase& c, std::uint64_t seed,
                      obs::TraceFormat format) {
  obs::PhaseProfiler::SetEnabled(true);
  obs::PhaseProfiler::Instance().Reset();
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry::Instance().Reset();
  std::ostringstream trace_out;
  std::ostringstream timeline_out;
  Simulator sim(MakeConfig(c, seed));
  obs::RunTracer::RunInfo info;
  info.label = "obs-diff";
  info.mode = "partial";
  info.seed = seed;
  info.nodes = sim.store().node_count();
  obs::RunTracer tracer(trace_out, format, info);
  obs::TimeSeriesSampler sampler(timeline_out, 50);
  sim.SetEventLogger(
      [&tracer](const core::SimEvent& e) { tracer.OnEvent(e); });
  sim.SetStateObserver(
      [&sampler](const core::StateSample& s) { sampler.Observe(s); });
  // Every scheduling decision is explained (empty filter = all tasks).
  std::size_t explained = 0;
  sim.SetExplainObserver([&tracer, &explained](const core::ExplainRecord& r) {
    ++explained;
    tracer.OnExplain(r);
  });
  RunResult result;
  result.report = sim.Run();
  result.utilization = sim.utilization();
  tracer.Finish(sim.kernel().now());
  sampler.Finish(sim.kernel().now());
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Instance().TakeSnapshot();
  obs::MetricsRegistry::SetEnabled(false);
  obs::MetricsRegistry::Instance().Reset();
  obs::PhaseProfiler::SetEnabled(false);
  // The observers must actually have seen the run for this diff to mean
  // anything.
  EXPECT_GT(tracer.events_seen(), 0u);
  EXPECT_GT(sampler.observations(), 0u);
  EXPECT_GT(explained, 0u);
  EXPECT_GT(snap.value[static_cast<std::size_t>(
                obs::MetricId::kTasksCompleted)],
            0u);
  EXPECT_GT(
      obs::PhaseProfiler::Instance().stats(obs::ProfPhase::kAllocation).calls,
      0u);
  EXPECT_FALSE(trace_out.str().empty());
  EXPECT_FALSE(timeline_out.str().empty());
  return result;
}

void ExpectIdentical(const RunResult& obs_run, const RunResult& plain) {
  const MetricsReport& x = obs_run.report;
  const MetricsReport& y = plain.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
  EXPECT_EQ(x.failures_injected, y.failures_injected);
  EXPECT_EQ(x.repairs_completed, y.repairs_completed);
  EXPECT_EQ(x.tasks_killed, y.tasks_killed);
  EXPECT_EQ(x.tasks_recovered, y.tasks_recovered);
  EXPECT_EQ(x.tasks_lost_to_failure, y.tasks_lost_to_failure);
  EXPECT_EQ(x.lost_work_area_ticks, y.lost_work_area_ticks);
  EXPECT_EQ(x.total_downtime, y.total_downtime);
  // The monitoring integrals must be untouched as well (the sampler shares
  // the monitor's snapshots, it must not perturb them).
  EXPECT_EQ(obs_run.utilization.avg_running_tasks,
            plain.utilization.avg_running_tasks);
  EXPECT_EQ(obs_run.utilization.avg_busy_nodes,
            plain.utilization.avg_busy_nodes);
  EXPECT_EQ(obs_run.utilization.avg_wasted_area,
            plain.utilization.avg_wasted_area);
  EXPECT_EQ(obs_run.utilization.peak_running_tasks,
            plain.utilization.peak_running_tasks);
  EXPECT_EQ(obs_run.utilization.peak_suspended_tasks,
            plain.utilization.peak_suspended_tasks);
  EXPECT_EQ(obs_run.utilization.observed_until,
            plain.utilization.observed_until);
}

class ObsDiff : public ::testing::TestWithParam<ObsCase> {};

TEST_P(ObsDiff, ObservedRunsAreBitIdentical) {
  const ObsCase c = GetParam();
  // Seed 42 is the acceptance seed; two more guard against coincidence.
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull}) {
    const RunResult plain = RunPlain(c, seed);
    ExpectIdentical(RunObserved(c, seed, obs::TraceFormat::kJsonl), plain);
    ExpectIdentical(RunObserved(c, seed, obs::TraceFormat::kChrome), plain);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(ObsCombos, ObsDiff,
                         ::testing::Values(ObsCase{true, false, false},
                                           ObsCase{false, false, false},
                                           ObsCase{true, true, false},
                                           ObsCase{false, true, false},
                                           ObsCase{true, false, true},
                                           ObsCase{false, false, true}));

// ISSUE acceptance: bit-identity across >= 20 seeds, fault runs and
// multi-class scenario runs included, with the metrics registry and the
// explain observer live in every observed run.
TEST(ObsDiffSeeds, TwentySeedsBitIdenticalWithMetricsAndExplain) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ObsCase c;
    c.indexed = (seed % 2) == 0;
    c.faults = (seed % 4) == 1;       // seeds 1, 5, 9, 13, 17
    c.multi_class = (seed % 4) == 3;  // seeds 3, 7, 11, 15, 19
    const RunResult plain = RunPlain(c, seed);
    ExpectIdentical(RunObserved(c, seed, obs::TraceFormat::kJsonl), plain);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace dreamsim
