// Tests for report rendering: XML, CSV, and console tables.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "util/csv.hpp"

namespace dreamsim::core {
namespace {

MetricsReport SampleReport() {
  SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 8;
  config.tasks.total_tasks = 150;
  config.label = "sample";
  Simulator sim(std::move(config));
  return sim.Run();
}

TEST(XmlReport, WellFormedAndComplete) {
  const MetricsReport report = SampleReport();
  std::ostringstream out;
  WriteXmlReport(out, report);
  const std::string doc = out.str();

  EXPECT_NE(doc.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(doc.find("<dreamsim-report"), std::string::npos);
  EXPECT_NE(doc.find("</dreamsim-report>"), std::string::npos);
  // Every Table I metric appears.
  for (const char* element :
       {"avg-wasted-area-per-task", "avg-task-running-time",
        "avg-reconfig-count-per-node", "avg-config-time-per-task",
        "avg-waiting-time-per-task", "avg-scheduling-steps-per-task",
        "total-scheduler-workload", "total-used-nodes",
        "total-simulation-time"}) {
    EXPECT_NE(doc.find(element), std::string::npos) << element;
  }
  // Open/close tags balance for the nested sections.
  for (const char* section : {"system", "tasks", "metrics", "diagnostics"}) {
    EXPECT_NE(doc.find(std::string("<") + section), std::string::npos);
    EXPECT_NE(doc.find(std::string("</") + section + ">"), std::string::npos);
  }
}

TEST(CsvReport, HeaderMatchesRows) {
  const MetricsReport report = SampleReport();
  EXPECT_EQ(CsvReportHeader().size(), CsvReportRow(report).size());
}

TEST(CsvReport, RoundTripsThroughCsvReader) {
  const MetricsReport report = SampleReport();
  std::stringstream buffer;
  WriteCsvReports(buffer, {report, report});
  const CsvTable table = CsvRead(buffer);
  ASSERT_EQ(table.rows.size(), 2u);
  const std::size_t col = table.ColumnIndex("total_tasks");
  ASSERT_NE(col, CsvTable::npos);
  EXPECT_EQ(table.rows[0][col], "150");
}

TEST(ConsoleReport, ContainsTableIMetricNames) {
  const MetricsReport report = SampleReport();
  const std::string table = RenderReportTable(report);
  EXPECT_NE(table.find("avg wasted area per task"), std::string::npos);
  EXPECT_NE(table.find("total scheduler workload"), std::string::npos);
  EXPECT_NE(table.find("sample"), std::string::npos);
}

TEST(ComparisonTable, OneColumnPerReport) {
  MetricsReport a = SampleReport();
  a.label = "full";
  MetricsReport b = a;
  b.label = "partial";
  const std::string table = RenderComparisonTable({a, b});
  EXPECT_NE(table.find("full"), std::string::npos);
  EXPECT_NE(table.find("partial"), std::string::npos);
  EXPECT_NE(table.find("total discarded tasks"), std::string::npos);
}

TEST(MetricsEnums, PolicyChoiceNames) {
  EXPECT_EQ(ToString(PolicyChoice::kDreamSim), "dreamsim");
  EXPECT_EQ(ToString(PolicyChoice::kBestFit), "best-fit");
  EXPECT_EQ(ToString(WasteAccounting::kOnSchedule), "on-schedule");
  EXPECT_EQ(ToString(WasteAccounting::kIdleConfigured), "idle-configured");
}

TEST(MetricsReport, EquationTenDecomposition) {
  // Eq. 10: total configuration time = sum over configure events; the
  // per-task average must equal total / tasks.
  const MetricsReport r = SampleReport();
  EXPECT_NEAR(r.avg_config_time_per_task,
              static_cast<double>(r.total_configuration_time) /
                  static_cast<double>(r.total_tasks),
              1e-9);
}

TEST(MetricsReport, WorkloadDecomposition) {
  const MetricsReport r = SampleReport();
  EXPECT_EQ(r.total_scheduler_workload,
            r.scheduling_steps_total + r.housekeeping_steps_total);
}

TEST(MetricsReport, PlacementsSumToCompletedOrLess) {
  const MetricsReport r = SampleReport();
  std::uint64_t placements = 0;
  for (const std::uint64_t p : r.placements_by_kind) placements += p;
  // Every completed task was placed exactly once.
  EXPECT_EQ(placements, r.completed_tasks);
}

}  // namespace
}  // namespace dreamsim::core
