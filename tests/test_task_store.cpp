// Tests for the Task model (Eq. 3) and its store.
#include "resource/task.hpp"

#include <gtest/gtest.h>

namespace dreamsim::resource {
namespace {

Task MakeTask(Area area = 500, Tick required = 1000) {
  Task t;
  t.preferred_config = ConfigId{0};
  t.needed_area = area;
  t.required_time = required;
  return t;
}

TEST(TaskStore, CreateAssignsSequentialIds) {
  TaskStore store;
  const TaskId a = store.Create(MakeTask());
  const TaskId b = store.Create(MakeTask());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(TaskStore, CreateValidates) {
  TaskStore store;
  EXPECT_THROW((void)store.Create(MakeTask(500, 0)), std::invalid_argument);
  EXPECT_THROW((void)store.Create(MakeTask(0, 100)), std::invalid_argument);
}

TEST(TaskStore, GetRejectsUnknownIds) {
  TaskStore store;
  EXPECT_THROW((void)store.Get(TaskId{0}), std::out_of_range);
  EXPECT_THROW((void)store.Get(TaskId::invalid()), std::out_of_range);
}

TEST(TaskStore, MutationThroughGet) {
  TaskStore store;
  const TaskId id = store.Create(MakeTask());
  store.Get(id).state = TaskState::kRunning;
  EXPECT_EQ(store.Get(id).state, TaskState::kRunning);
}

TEST(TaskStore, CountInState) {
  TaskStore store;
  for (int i = 0; i < 5; ++i) (void)store.Create(MakeTask());
  store.Get(TaskId{0}).state = TaskState::kCompleted;
  store.Get(TaskId{1}).state = TaskState::kCompleted;
  store.Get(TaskId{2}).state = TaskState::kDiscarded;
  EXPECT_EQ(store.CountInState(TaskState::kCompleted), 2u);
  EXPECT_EQ(store.CountInState(TaskState::kDiscarded), 1u);
  EXPECT_EQ(store.CountInState(TaskState::kCreated), 2u);
}

TEST(Task, WaitingTimeEq8) {
  Task t = MakeTask();
  t.create_time = 100;
  t.start_time = 150;
  t.comm_time = 5;
  t.config_wait = 12;
  // Eq. 8: t_start - t_create + t_comm + t_config.
  EXPECT_EQ(t.WaitingTime(), 67);
}

TEST(Task, TurnaroundTime) {
  Task t = MakeTask();
  t.create_time = 100;
  t.completion_time = 450;
  EXPECT_EQ(t.TurnaroundTime(), 350);
}

TEST(Task, DefaultStateIsCreated) {
  const Task t = MakeTask();
  EXPECT_EQ(t.state, TaskState::kCreated);
  EXPECT_FALSE(t.assigned_config.valid());
  EXPECT_FALSE(t.resolved_config.valid());
  EXPECT_EQ(t.sus_retry, 0u);
}

TEST(TaskStateNames, AllCovered) {
  EXPECT_EQ(ToString(TaskState::kCreated), "created");
  EXPECT_EQ(ToString(TaskState::kSuspended), "suspended");
  EXPECT_EQ(ToString(TaskState::kRunning), "running");
  EXPECT_EQ(ToString(TaskState::kCompleted), "completed");
  EXPECT_EQ(ToString(TaskState::kDiscarded), "discarded");
}

}  // namespace
}  // namespace dreamsim::resource
