// Tests for the Node model (Eq. 1) and its config-task-pair slots.
#include "resource/node.hpp"

#include <gtest/gtest.h>

namespace dreamsim::resource {
namespace {

Configuration MakeConfig(std::uint32_t id, Area area) {
  Configuration c;
  c.id = ConfigId{id};
  c.required_area = area;
  c.config_time = 10;
  return c;
}

TEST(Node, ConstructionInvariants) {
  Node n(NodeId{3}, 2000, FamilyId{1}, Caps{512, 40, 400});
  EXPECT_EQ(n.id().value(), 3u);
  EXPECT_EQ(n.total_area(), 2000);
  EXPECT_EQ(n.available_area(), 2000);
  EXPECT_TRUE(n.blank());
  EXPECT_FALSE(n.busy());
  EXPECT_EQ(n.config_count(), 0u);
  EXPECT_EQ(n.reconfig_count(), 0u);
  EXPECT_EQ(n.caps().embedded_memory_kb, 512);
}

TEST(Node, RejectsNonPositiveArea) {
  EXPECT_THROW(Node(NodeId{0}, 0, FamilyId{0}, Caps{}), std::invalid_argument);
  EXPECT_THROW(Node(NodeId{0}, -5, FamilyId{0}, Caps{}), std::invalid_argument);
}

TEST(Node, SendBitstreamConsumesAreaAndCounts) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex s0 = n.SendBitstream(MakeConfig(0, 300));
  EXPECT_EQ(n.available_area(), 700);
  EXPECT_EQ(n.config_count(), 1u);
  EXPECT_EQ(n.reconfig_count(), 1u);
  EXPECT_FALSE(n.blank());
  EXPECT_TRUE(n.Slot(s0).idle());

  const SlotIndex s1 = n.SendBitstream(MakeConfig(1, 700));
  EXPECT_EQ(n.available_area(), 0);
  EXPECT_EQ(n.config_count(), 2u);
  EXPECT_NE(s0, s1);
}

TEST(Node, SendBitstreamRejectsOversize) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  EXPECT_THROW((void)n.SendBitstream(MakeConfig(0, 1001)), std::logic_error);
  (void)n.SendBitstream(MakeConfig(0, 600));
  EXPECT_THROW((void)n.SendBitstream(MakeConfig(1, 500)), std::logic_error);
}

TEST(Node, TaskLifecycleOnSlot) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex slot = n.SendBitstream(MakeConfig(0, 400));
  n.AddTaskToNode(slot, TaskId{7});
  EXPECT_TRUE(n.busy());
  EXPECT_EQ(n.running_tasks(), 1u);
  EXPECT_FALSE(n.Slot(slot).idle());
  EXPECT_EQ(n.Slot(slot).task, TaskId{7});

  n.RemoveTaskFromNode(slot);
  EXPECT_FALSE(n.busy());
  EXPECT_TRUE(n.Slot(slot).idle());
  // The configuration survives the task.
  EXPECT_EQ(n.config_count(), 1u);
  EXPECT_EQ(n.available_area(), 600);
}

TEST(Node, AddTaskErrors) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex slot = n.SendBitstream(MakeConfig(0, 400));
  EXPECT_THROW(n.AddTaskToNode(99, TaskId{1}), std::out_of_range);
  EXPECT_THROW(n.AddTaskToNode(slot, TaskId::invalid()),
               std::invalid_argument);
  n.AddTaskToNode(slot, TaskId{1});
  EXPECT_THROW(n.AddTaskToNode(slot, TaskId{2}), std::logic_error);
}

TEST(Node, RemoveTaskErrors) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex slot = n.SendBitstream(MakeConfig(0, 400));
  EXPECT_THROW(n.RemoveTaskFromNode(slot), std::logic_error);  // idle slot
  EXPECT_THROW(n.RemoveTaskFromNode(5), std::out_of_range);
}

TEST(Node, MakeNodeBlankRestoresArea) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  (void)n.SendBitstream(MakeConfig(0, 300));
  (void)n.SendBitstream(MakeConfig(1, 300));
  n.MakeNodeBlank();
  EXPECT_TRUE(n.blank());
  EXPECT_EQ(n.available_area(), 1000);
  EXPECT_EQ(n.config_count(), 0u);
  // Reconfiguration history is preserved.
  EXPECT_EQ(n.reconfig_count(), 2u);
}

TEST(Node, MakeNodeBlankRejectsRunningTasks) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex slot = n.SendBitstream(MakeConfig(0, 300));
  n.AddTaskToNode(slot, TaskId{1});
  EXPECT_THROW(n.MakeNodeBlank(), std::logic_error);
}

TEST(Node, MakeNodePartiallyBlankReclaimsOneSlot) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 300));
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 200));
  n.MakeNodePartiallyBlank(a, 300);
  EXPECT_EQ(n.available_area(), 800);
  EXPECT_EQ(n.config_count(), 1u);
  EXPECT_FALSE(n.SlotLive(a));
  EXPECT_TRUE(n.SlotLive(b));
}

TEST(Node, MakeNodePartiallyBlankLastSlotMakesBlank) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 300));
  n.MakeNodePartiallyBlank(a, 300);
  EXPECT_TRUE(n.blank());
  EXPECT_EQ(n.available_area(), 1000);
}

TEST(Node, MakeNodePartiallyBlankErrors) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 300));
  n.AddTaskToNode(a, TaskId{1});
  EXPECT_THROW(n.MakeNodePartiallyBlank(a, 300), std::logic_error);  // busy
  n.RemoveTaskFromNode(a);
  EXPECT_THROW(n.MakeNodePartiallyBlank(a, 9999), std::logic_error);  // Eq.4
}

TEST(Node, SlotReuseAfterReclaim) {
  Node n(NodeId{0}, 1000, FamilyId{0}, Caps{});
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 300));
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 300));
  n.MakeNodePartiallyBlank(a, 300);
  // The freed slot index is recycled for the next configuration.
  const SlotIndex c = n.SendBitstream(MakeConfig(2, 100));
  EXPECT_EQ(c, a);
  EXPECT_TRUE(n.SlotLive(b));
  EXPECT_EQ(n.Slot(c).config, ConfigId{2});
}

TEST(Node, ForEachSlotVisitsOnlyLive) {
  Node n(NodeId{0}, 2000, FamilyId{0}, Caps{});
  (void)n.SendBitstream(MakeConfig(0, 300));
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 300));
  (void)n.SendBitstream(MakeConfig(2, 300));
  n.MakeNodePartiallyBlank(b, 300);
  int visited = 0;
  n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
    ++visited;
    EXPECT_NE(slot, b);
    EXPECT_NE(pair.config, ConfigId{1});
  });
  EXPECT_EQ(visited, 2);
}

TEST(Node, MultipleRunningTasks) {
  Node n(NodeId{0}, 3000, FamilyId{0}, Caps{});
  const SlotIndex a = n.SendBitstream(MakeConfig(0, 1000));
  const SlotIndex b = n.SendBitstream(MakeConfig(1, 1000));
  n.AddTaskToNode(a, TaskId{1});
  n.AddTaskToNode(b, TaskId{2});
  EXPECT_EQ(n.running_tasks(), 2u);
  n.RemoveTaskFromNode(a);
  EXPECT_EQ(n.running_tasks(), 1u);
  EXPECT_TRUE(n.busy());
}

}  // namespace
}  // namespace dreamsim::resource
