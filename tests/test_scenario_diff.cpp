// Differential test: a single-class scenario must be bit-identical to the
// flag-driven path — same generated tasks, same scheduler decisions (step
// meter charges, placements), same Table I metrics — across many seeds.
// This is the contract that makes scenario files a safe replacement for
// flag soup: `--scenario table2_baseline.scn` IS `--seed 42 --tasks 1000`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/simulator.hpp"
#include "ptype/catalogue.hpp"
#include "scenario/scenario.hpp"
#include "util/fmt.hpp"
#include "workload/generator.hpp"
#include "workload/task_classes.hpp"

namespace dreamsim::core {
namespace {

constexpr int kNodes = 24;
constexpr int kConfigs = 12;
constexpr int kTasks = 300;

// Scenario text that mirrors FlagConfig() below, knob for knob.
std::string ScenarioText(std::uint64_t seed, sched::ReconfigMode mode) {
  return Format(
      "simulation: {{\n"
      "  name: diff\n"
      "  seed: {}\n"
      "  mode: {}\n"
      "}}\n"
      "configurations: {{\n"
      "  count: {}\n"
      "  area: [200, 2000]\n"
      "  config time: [10, 20]\n"
      "}}\n"
      "device class: {{\n"
      "  name: fabric\n"
      "  count: {}\n"
      "  area: [1000, 4000]\n"
      "}}\n"
      "task class: {{\n"
      "  name: steady\n"
      "  count: {}\n"
      "  interval: [1, 50]\n"
      "  required time: [100, 100000]\n"
      "  closest match: 0.15\n"
      "  unknown area: [200, 2000]\n"
      "}}\n",
      seed, mode == sched::ReconfigMode::kFull ? "full" : "partial", kConfigs,
      kNodes, kTasks);
}

SimulationConfig FlagConfig(std::uint64_t seed, sched::ReconfigMode mode) {
  SimulationConfig config;
  config.seed = seed;
  config.mode = mode;
  config.nodes.count = kNodes;
  config.configs.count = kConfigs;
  config.tasks.total_tasks = kTasks;
  return config;
}

SimulationConfig ScenarioConfig(std::uint64_t seed, sched::ReconfigMode mode) {
  auto result = scenario::ParseScenario(ScenarioText(seed, mode));
  EXPECT_TRUE(result.has_value()) << scenario::Render(result.error());
  return result.value().config;
}

// Every numeric field of the two reports must match exactly — no
// tolerances. Doubles are averages of identical integer meters, so they
// are bit-equal when the decisions are.
void ExpectIdentical(const MetricsReport& s, const MetricsReport& f) {
  EXPECT_EQ(s.seed, f.seed);
  EXPECT_EQ(s.mode_name, f.mode_name);
  EXPECT_EQ(s.policy_name, f.policy_name);
  EXPECT_EQ(s.total_nodes, f.total_nodes);
  EXPECT_EQ(s.total_configs, f.total_configs);
  EXPECT_EQ(s.total_tasks, f.total_tasks);
  EXPECT_EQ(s.completed_tasks, f.completed_tasks);
  EXPECT_EQ(s.discarded_tasks, f.discarded_tasks);
  EXPECT_EQ(s.suspended_ever, f.suspended_ever);
  EXPECT_EQ(s.closest_match_tasks, f.closest_match_tasks);
  EXPECT_EQ(s.avg_wasted_area_per_task, f.avg_wasted_area_per_task);
  EXPECT_EQ(s.avg_task_running_time, f.avg_task_running_time);
  EXPECT_EQ(s.avg_reconfig_count_per_node, f.avg_reconfig_count_per_node);
  EXPECT_EQ(s.avg_config_time_per_task, f.avg_config_time_per_task);
  EXPECT_EQ(s.avg_waiting_time_per_task, f.avg_waiting_time_per_task);
  EXPECT_EQ(s.avg_scheduling_steps_per_task, f.avg_scheduling_steps_per_task);
  EXPECT_EQ(s.total_scheduler_workload, f.total_scheduler_workload);
  EXPECT_EQ(s.total_used_nodes, f.total_used_nodes);
  EXPECT_EQ(s.total_simulation_time, f.total_simulation_time);
  EXPECT_EQ(s.scheduling_steps_total, f.scheduling_steps_total);
  EXPECT_EQ(s.housekeeping_steps_total, f.housekeeping_steps_total);
  EXPECT_EQ(s.total_reconfigurations, f.total_reconfigurations);
  EXPECT_EQ(s.total_configuration_time, f.total_configuration_time);
  EXPECT_EQ(s.avg_suspension_retries, f.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(s.placements_by_kind[k], f.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(s.placements_per_config, f.placements_per_config);
}

// The generation layer alone: a plain-steady task class consumes the
// workload seed stream exactly like the single-stream generator.
TEST(ScenarioDiff, GeneratedWorkloadsAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimulationConfig config = FlagConfig(seed, sched::ReconfigMode::kPartial);
    Rng catalogue_rng(DeriveSeed(seed, /*stream=*/2));
    const auto catalogue = resource::ConfigCatalogue::Generate(
        config.configs, ptype::Catalogue::Default(), catalogue_rng);

    const std::uint64_t workload_seed = DeriveSeed(seed, /*stream=*/1);
    Rng flag_rng(workload_seed);
    const auto flag_tasks =
        workload::GenerateWorkload(config.tasks, catalogue, flag_rng);

    workload::TaskClassParams cls;
    cls.name = "steady";
    cls.base = config.tasks;
    const auto multi = workload::GenerateMultiClassWorkload(
        {&cls, 1}, catalogue, workload_seed);

    ASSERT_EQ(multi.tasks.size(), flag_tasks.size()) << "seed " << seed;
    EXPECT_TRUE(multi.chains.empty());
    for (std::size_t i = 0; i < flag_tasks.size(); ++i) {
      EXPECT_EQ(multi.tasks[i].create_time, flag_tasks[i].create_time);
      EXPECT_EQ(multi.tasks[i].preferred_config,
                flag_tasks[i].preferred_config);
      EXPECT_EQ(multi.tasks[i].needed_area, flag_tasks[i].needed_area);
      EXPECT_EQ(multi.tasks[i].required_time, flag_tasks[i].required_time);
      EXPECT_EQ(multi.tasks[i].data_size, flag_tasks[i].data_size);
      EXPECT_EQ(multi.tasks[i].priority, flag_tasks[i].priority);
    }
  }
}

// End to end across 20 seeds: scenario-built config vs flag-built config,
// full MetricsReport equality (partial mode, the paper's focus).
TEST(ScenarioDiff, PartialModeRunsAreBitIdenticalAcross20Seeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Simulator scn(ScenarioConfig(seed, sched::ReconfigMode::kPartial));
    Simulator flg(FlagConfig(seed, sched::ReconfigMode::kPartial));
    SCOPED_TRACE(Format("seed {}", seed));
    ExpectIdentical(scn.Run(), flg.Run());
  }
}

// Both reconfiguration modes on a few seeds — the mode token round-trips
// through the scenario grammar too.
TEST(ScenarioDiff, FullModeRunsAreBitIdentical) {
  for (std::uint64_t seed : {3u, 17u, 42u, 1000u}) {
    Simulator scn(ScenarioConfig(seed, sched::ReconfigMode::kFull));
    Simulator flg(FlagConfig(seed, sched::ReconfigMode::kFull));
    SCOPED_TRACE(Format("seed {}", seed));
    ExpectIdentical(scn.Run(), flg.Run());
  }
}

// A single device class with flag-default knobs is the flag-driven node
// fleet: same per-node areas, same caps.
TEST(ScenarioDiff, SingleDeviceClassMatchesInitNodes) {
  const std::uint64_t seed = 7;
  SimulationConfig flag = FlagConfig(seed, sched::ReconfigMode::kPartial);
  SimulationConfig scn = ScenarioConfig(seed, sched::ReconfigMode::kPartial);
  ASSERT_EQ(scn.device_classes.size(), 1u);

  Simulator a(std::move(flag));
  Simulator b(std::move(scn));
  // Identical fleets produce identical runs; the report's node-visible
  // numbers (used nodes, reconfig counts) pin it.
  ExpectIdentical(b.Run(), a.Run());
}

// The scenario label/identity fields ride along without perturbing
// results: scrubbing them from the scenario config changes nothing else.
TEST(ScenarioDiff, IdentityFieldsDoNotAffectResults) {
  SimulationConfig scn = ScenarioConfig(11, sched::ReconfigMode::kPartial);
  EXPECT_FALSE(scn.scenario_hash.empty());
  SimulationConfig scrubbed = scn;
  scrubbed.scenario_name.clear();
  scrubbed.scenario_hash.clear();
  scrubbed.label.clear();
  Simulator a(std::move(scn));
  Simulator b(std::move(scrubbed));
  ExpectIdentical(a.Run(), b.Run());
}

}  // namespace
}  // namespace dreamsim::core
