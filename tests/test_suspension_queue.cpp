// Tests for the suspension queue (SusList).
#include "resource/suspension_queue.hpp"

#include <gtest/gtest.h>

namespace dreamsim::resource {
namespace {

TEST(SuspensionQueue, FifoOrder) {
  SuspensionQueue q;
  WorkloadMeter meter;
  ASSERT_TRUE(q.Add(TaskId{1}, meter));
  ASSERT_TRUE(q.Add(TaskId{2}, meter));
  ASSERT_TRUE(q.Add(TaskId{3}, meter));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.tasks().front(), TaskId{1});
  EXPECT_EQ(q.tasks().back(), TaskId{3});
}

TEST(SuspensionQueue, CapacityBound) {
  SuspensionQueue q(2);
  WorkloadMeter meter;
  EXPECT_TRUE(q.Add(TaskId{1}, meter));
  EXPECT_TRUE(q.Add(TaskId{2}, meter));
  EXPECT_FALSE(q.Add(TaskId{3}, meter));  // overflow
  EXPECT_EQ(q.size(), 2u);
}

TEST(SuspensionQueue, UnboundedByDefault) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.Add(TaskId{i}, meter));
  }
  EXPECT_EQ(q.size(), 1000u);
}

TEST(SuspensionQueue, PopFirstMatchingTakesOldest) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  (void)q.Add(TaskId{3}, meter);
  const auto popped = q.PopFirstMatching(
      [](TaskId id) { return id.value() >= 2; }, meter);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, TaskId{2});
  EXPECT_EQ(q.size(), 2u);
}

TEST(SuspensionQueue, PopFirstMatchingNoneMatches) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  const auto popped =
      q.PopFirstMatching([](TaskId) { return false; }, meter);
  EXPECT_FALSE(popped.has_value());
  EXPECT_EQ(q.size(), 1u);
}

TEST(SuspensionQueue, PopChargesScanSteps) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 10; ++i) (void)q.Add(TaskId{i}, meter);
  const Steps before = meter.housekeeping_steps_total();
  (void)q.PopFirstMatching([](TaskId id) { return id.value() == 6; }, meter);
  EXPECT_EQ(meter.housekeeping_steps_total() - before, 7u);
}

TEST(SuspensionQueue, ContainsScan) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{5}, meter);
  EXPECT_TRUE(q.Contains(TaskId{5}, meter));
  EXPECT_FALSE(q.Contains(TaskId{6}, meter));
}

TEST(SuspensionQueue, RemoveSpecificTask) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  EXPECT_TRUE(q.Remove(TaskId{1}, meter));
  EXPECT_FALSE(q.Remove(TaskId{1}, meter));
  EXPECT_EQ(q.tasks().front(), TaskId{2});
}

TEST(SuspensionQueue, RemoveAtIndex) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  (void)q.Add(TaskId{3}, meter);
  q.RemoveAt(1, meter);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.tasks()[0], TaskId{1});
  EXPECT_EQ(q.tasks()[1], TaskId{3});
}

TEST(SuspensionQueue, PreservesFifoAcrossMixedOps) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 6; ++i) (void)q.Add(TaskId{i}, meter);
  (void)q.Remove(TaskId{2}, meter);
  q.RemoveAt(0, meter);
  (void)q.Add(TaskId{9}, meter);
  std::vector<std::uint32_t> order;
  for (const TaskId id : q.tasks()) order.push_back(id.value());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 4, 5, 9}));
}

}  // namespace
}  // namespace dreamsim::resource
