// Tests for the suspension queue (SusList).
//
// The drain queries are exercised raw against expected positions here —
// the tests assert what the queries answer, not the modeled effort, which
// the simulator-level differential suites pin down.
// lint: allow-file(uncharged-index-query)
#include "resource/suspension_queue.hpp"

#include <gtest/gtest.h>

namespace dreamsim::resource {
namespace {

TEST(SuspensionQueue, FifoOrder) {
  SuspensionQueue q;
  WorkloadMeter meter;
  ASSERT_TRUE(q.Add(TaskId{1}, meter));
  ASSERT_TRUE(q.Add(TaskId{2}, meter));
  ASSERT_TRUE(q.Add(TaskId{3}, meter));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.tasks().front(), TaskId{1});
  EXPECT_EQ(q.tasks().back(), TaskId{3});
}

TEST(SuspensionQueue, CapacityBound) {
  SuspensionQueue q(2);
  WorkloadMeter meter;
  EXPECT_TRUE(q.Add(TaskId{1}, meter));
  EXPECT_TRUE(q.Add(TaskId{2}, meter));
  EXPECT_FALSE(q.Add(TaskId{3}, meter));  // overflow
  EXPECT_EQ(q.size(), 2u);
}

TEST(SuspensionQueue, UnboundedByDefault) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.Add(TaskId{i}, meter));
  }
  EXPECT_EQ(q.size(), 1000u);
}

TEST(SuspensionQueue, PopFirstMatchingTakesOldest) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  (void)q.Add(TaskId{3}, meter);
  const auto popped = q.PopFirstMatching(
      [](TaskId id) { return id.value() >= 2; }, meter);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, TaskId{2});
  EXPECT_EQ(q.size(), 2u);
}

TEST(SuspensionQueue, PopFirstMatchingNoneMatches) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  const auto popped =
      q.PopFirstMatching([](TaskId) { return false; }, meter);
  EXPECT_FALSE(popped.has_value());
  EXPECT_EQ(q.size(), 1u);
}

TEST(SuspensionQueue, PopChargesScanSteps) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 10; ++i) (void)q.Add(TaskId{i}, meter);
  const Steps before = meter.housekeeping_steps_total();
  (void)q.PopFirstMatching([](TaskId id) { return id.value() == 6; }, meter);
  EXPECT_EQ(meter.housekeeping_steps_total() - before, 7u);
}

TEST(SuspensionQueue, ContainsScan) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{5}, meter);
  EXPECT_TRUE(q.Contains(TaskId{5}, meter));
  EXPECT_FALSE(q.Contains(TaskId{6}, meter));
}

TEST(SuspensionQueue, RemoveSpecificTask) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  EXPECT_TRUE(q.Remove(TaskId{1}, meter));
  EXPECT_FALSE(q.Remove(TaskId{1}, meter));
  EXPECT_EQ(q.tasks().front(), TaskId{2});
}

TEST(SuspensionQueue, RemoveAtIndex) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{1}, meter);
  (void)q.Add(TaskId{2}, meter);
  (void)q.Add(TaskId{3}, meter);
  q.RemoveAt(1, meter);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.tasks()[0], TaskId{1});
  EXPECT_EQ(q.tasks()[1], TaskId{3});
}

TEST(SuspensionQueue, PreservesFifoAcrossMixedOps) {
  SuspensionQueue q;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 6; ++i) (void)q.Add(TaskId{i}, meter);
  (void)q.Remove(TaskId{2}, meter);
  q.RemoveAt(0, meter);
  (void)q.Add(TaskId{9}, meter);
  std::vector<std::uint32_t> order;
  for (const TaskId id : q.tasks()) order.push_back(id.value());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 4, 5, 9}));
}

SusEntryAttrs Attrs(std::uint32_t config, Area area, double priority,
                    std::uint32_t family = FamilyId::kInvalidValue) {
  SusEntryAttrs a;
  a.resolved_config = ConfigId{config};
  a.config_family = FamilyId{family};
  a.needed_area = area;
  a.priority = priority;
  return a;
}

TEST(SuspensionQueue, IndexedChargesMatchTheScanContract) {
  // Contains/Remove answered from the index still charge what the literal
  // FIFO scan would have: position + 1 on a hit, queue size on a miss.
  SuspensionQueue q;
  q.SetDrainIndexed(true);
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < 5; ++i) {
    (void)q.Add(TaskId{i}, Attrs(i, 100, 0.0), meter);
  }
  const Steps base = meter.housekeeping_steps_total();
  EXPECT_TRUE(q.Contains(TaskId{3}, meter));
  EXPECT_EQ(meter.housekeeping_steps_total(), base + 4);  // positions 0..3
  EXPECT_FALSE(q.Contains(TaskId{42}, meter));
  EXPECT_EQ(meter.housekeeping_steps_total(), base + 9);  // full miss scan
  EXPECT_TRUE(q.Remove(TaskId{1}, meter));
  EXPECT_EQ(meter.housekeeping_steps_total(), base + 11);  // positions 0..1
  EXPECT_FALSE(q.Remove(TaskId{42}, meter));
  EXPECT_EQ(meter.housekeeping_steps_total(), base + 15);  // 4 remaining
}

TEST(SuspensionQueue, IndexedDrainQueriesPickScanWinners) {
  SuspensionQueue q;
  q.SetDrainIndexed(true);
  WorkloadMeter meter;
  (void)q.Add(TaskId{0}, Attrs(7, 900, 1.0), meter);
  (void)q.Add(TaskId{1}, Attrs(5, 400, 3.0), meter);
  (void)q.Add(TaskId{2}, Attrs(7, 300, 9.0), meter);
  (void)q.Add(TaskId{3}, Attrs(5, 200, 3.0), meter);
  // Oldest vs best-priority exact matches for config 5.
  EXPECT_EQ(q.OldestExactMatch(ConfigId{5}), std::optional<std::size_t>{1});
  // Equal priorities: the FIFO-older entry wins.
  EXPECT_EQ(q.BestPriorityExactMatch(ConfigId{5}),
            std::optional<std::size_t>{1});
  // Area-bounded eligibility (family-less tasks match any family).
  EXPECT_EQ(q.OldestEligible(FamilyId::invalid(), 350, 0, ConfigId::invalid()),
            std::optional<std::size_t>{2});
  EXPECT_EQ(q.OldestEligible(FamilyId::invalid(), 350, 3, ConfigId::invalid()),
            std::optional<std::size_t>{3});
  // The exact-match rule admits config 7 regardless of its area.
  EXPECT_EQ(q.OldestEligible(FamilyId::invalid(), 100, 0, ConfigId{7}),
            std::optional<std::size_t>{0});
  EXPECT_EQ(q.BestPriorityEligible(FamilyId::invalid(), 500,
                                   ConfigId::invalid()),
            std::optional<std::size_t>{2});
  EXPECT_EQ(q.OldestEligible(FamilyId::invalid(), 100, 0, ConfigId::invalid()),
            std::nullopt);
}

TEST(SuspensionQueue, RequeueAfterKillChargesOneHousekeepingStep) {
  // Fault-injection recovery path: a queued task gets drained for
  // placement, its node fails mid-execution, and the kill re-queues it.
  // The re-queue is not a scheduling attempt — it must charge exactly the
  // one enqueue housekeeping step (no scheduling-search charge), in both
  // drain modes, so fault runs keep the paper's step accounting honest.
  for (const bool indexed : {false, true}) {
    SuspensionQueue q;
    q.SetDrainIndexed(indexed);
    WorkloadMeter meter;
    (void)q.Add(TaskId{1}, Attrs(2, 300, 0.0), meter);
    (void)q.Add(TaskId{2}, Attrs(3, 400, 0.0), meter);
    q.RemoveAt(0, meter);  // drained and placed on the doomed node
    const Steps sched_before = meter.scheduling_steps_total();
    const Steps house_before = meter.housekeeping_steps_total();
    ASSERT_TRUE(q.Add(TaskId{1}, Attrs(2, 300, 0.0), meter));
    EXPECT_EQ(meter.scheduling_steps_total(), sched_before) << indexed;
    EXPECT_EQ(meter.housekeeping_steps_total(), house_before + 1) << indexed;
    // The victim re-enters at the FIFO tail, behind tasks queued earlier.
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q.tasks().front(), TaskId{2});
    EXPECT_EQ(q.tasks().back(), TaskId{1});
    if (indexed) EXPECT_TRUE(q.ValidateIndex().empty());
  }
}

TEST(SuspensionQueue, IndexRebuildsAcrossToggle) {
  SuspensionQueue q;
  WorkloadMeter meter;
  (void)q.Add(TaskId{4}, Attrs(2, 700, 5.0), meter);
  (void)q.Add(TaskId{5}, Attrs(3, 600, 1.0), meter);
  q.SetDrainIndexed(true);  // rebuild from retained attributes
  EXPECT_TRUE(q.ValidateIndex().empty());
  EXPECT_EQ(q.OldestExactMatch(ConfigId{3}), std::optional<std::size_t>{1});
  q.RefreshAttrs(TaskId{5}, Attrs(2, 600, 1.0));
  EXPECT_EQ(q.OldestExactMatch(ConfigId{3}), std::nullopt);
  EXPECT_EQ(q.OldestExactMatch(ConfigId{2}), std::optional<std::size_t>{0});
  EXPECT_TRUE(q.ValidateIndex().empty());
}

}  // namespace
}  // namespace dreamsim::resource
