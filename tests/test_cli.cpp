// Tests for the command-line parser used by examples and benches.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dreamsim {
namespace {

bool ParseArgs(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.Parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParser, DefaultsApplyWithoutArgs) {
  CliParser cli("test");
  cli.AddInt("n", 7, "count");
  cli.AddString("name", "x", "label");
  cli.AddDouble("ratio", 0.5, "ratio");
  cli.AddBool("flag", false, "flag");
  ASSERT_TRUE(ParseArgs(cli, {}));
  EXPECT_EQ(cli.GetInt("n"), 7);
  EXPECT_EQ(cli.GetString("name"), "x");
  EXPECT_DOUBLE_EQ(cli.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(cli.GetBool("flag"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser cli("test");
  cli.AddInt("n", 0, "count");
  ASSERT_TRUE(ParseArgs(cli, {"--n=42"}));
  EXPECT_EQ(cli.GetInt("n"), 42);
}

TEST(CliParser, SpaceSyntax) {
  CliParser cli("test");
  cli.AddInt("n", 0, "count");
  ASSERT_TRUE(ParseArgs(cli, {"--n", "13"}));
  EXPECT_EQ(cli.GetInt("n"), 13);
}

TEST(CliParser, BareBooleanFlagMeansTrue) {
  CliParser cli("test");
  cli.AddBool("verbose", false, "talk");
  ASSERT_TRUE(ParseArgs(cli, {"--verbose"}));
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliParser, BooleanExplicitValues) {
  CliParser cli("test");
  cli.AddBool("a", false, "");
  cli.AddBool("b", true, "");
  ASSERT_TRUE(ParseArgs(cli, {"--a=yes", "--b=off"}));
  EXPECT_TRUE(cli.GetBool("a"));
  EXPECT_FALSE(cli.GetBool("b"));
}

TEST(CliParser, PerformanceTogglesMirrorTheTool) {
  // The dreamsim tool registers both index toggles default-on; either can
  // be disabled to fall back to the reference scans.
  CliParser cli("test");
  cli.AddBool("scheduler-index", true, "");
  cli.AddBool("drain-index", true, "");
  ASSERT_TRUE(ParseArgs(cli, {}));
  EXPECT_TRUE(cli.GetBool("scheduler-index"));
  EXPECT_TRUE(cli.GetBool("drain-index"));
  ASSERT_TRUE(ParseArgs(cli, {"--drain-index=false", "--scheduler-index=off"}));
  EXPECT_FALSE(cli.GetBool("scheduler-index"));
  EXPECT_FALSE(cli.GetBool("drain-index"));
}

TEST(CliParser, UnknownOptionFails) {
  CliParser cli("test");
  ASSERT_FALSE(ParseArgs(cli, {"--nope=1"}));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(CliParser, MalformedIntFails) {
  CliParser cli("test");
  cli.AddInt("n", 0, "");
  ASSERT_FALSE(ParseArgs(cli, {"--n=abc"}));
  EXPECT_NE(cli.error().find("integer"), std::string::npos);
}

TEST(CliParser, MalformedDoubleFails) {
  CliParser cli("test");
  cli.AddDouble("r", 0.0, "");
  ASSERT_FALSE(ParseArgs(cli, {"--r=1.2.3"}));
}

TEST(CliParser, MissingValueFails) {
  CliParser cli("test");
  cli.AddInt("n", 0, "");
  ASSERT_FALSE(ParseArgs(cli, {"--n"}));
  EXPECT_NE(cli.error().find("expects a value"), std::string::npos);
}

TEST(CliParser, NegativeNumbers) {
  CliParser cli("test");
  cli.AddInt("n", 0, "");
  cli.AddDouble("d", 0.0, "");
  ASSERT_TRUE(ParseArgs(cli, {"--n=-5", "--d=-1.5"}));
  EXPECT_EQ(cli.GetInt("n"), -5);
  EXPECT_DOUBLE_EQ(cli.GetDouble("d"), -1.5);
}

TEST(CliParser, PositionalArguments) {
  CliParser cli("test");
  cli.AddInt("n", 0, "");
  ASSERT_TRUE(ParseArgs(cli, {"file1", "--n=1", "file2"}));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(CliParser, HelpRequested) {
  CliParser cli("test tool");
  cli.AddInt("n", 3, "the count");
  ASSERT_TRUE(ParseArgs(cli, {"--help"}));
  EXPECT_TRUE(cli.help_requested());
  const std::string help = cli.HelpText();
  EXPECT_NE(help.find("test tool"), std::string::npos);
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("default: 3"), std::string::npos);
}

TEST(CliParser, TypeMismatchAccessThrows) {
  CliParser cli("test");
  cli.AddInt("n", 0, "");
  ASSERT_TRUE(ParseArgs(cli, {}));
  EXPECT_THROW((void)cli.GetString("n"), std::logic_error);
  EXPECT_THROW((void)cli.GetInt("missing"), std::logic_error);
}

TEST(CliParser, WasSetDistinguishesDefaultsFromExplicit) {
  // WasSet backs the --trace-out deprecation alias: the tool must tell an
  // explicitly passed option apart from one left at its default.
  CliParser cli("test");
  cli.AddInt("n", 7, "");
  cli.AddString("out", "", "");
  cli.AddBool("flag", false, "");
  ASSERT_TRUE(ParseArgs(cli, {"--n=7", "--flag"}));
  EXPECT_TRUE(cli.WasSet("n"));  // explicit, even though it equals the default
  EXPECT_TRUE(cli.WasSet("flag"));
  EXPECT_FALSE(cli.WasSet("out"));
  EXPECT_THROW((void)cli.WasSet("missing"), std::logic_error);
}

}  // namespace
}  // namespace dreamsim
