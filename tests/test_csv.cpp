// Tests for CSV writing/reading (trace and report formats depend on it).
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dreamsim {
namespace {

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscape, QuotesCellsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.BeginRow();
  w.Field(std::int64_t{1});
  w.Field("x,y");
  w.EndRow();
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, RejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(CsvWriter, RejectsWrongWidthRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.BeginRow();
  w.Field("1");
  EXPECT_THROW(w.EndRow(), std::logic_error);  // too narrow
  w.Field("2");
  EXPECT_THROW(w.Field("3"), std::logic_error);  // too wide
}

TEST(CsvWriter, RejectsFieldOutsideRow) {
  std::ostringstream out;
  CsvWriter w(out, {"a"});
  EXPECT_THROW(w.Field("x"), std::logic_error);
  EXPECT_THROW(w.EndRow(), std::logic_error);
}

TEST(CsvWriter, WriteRowConvenience) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.WriteRow({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, NumericFields) {
  std::ostringstream out;
  CsvWriter w(out, {"i", "u", "d"});
  w.BeginRow();
  w.Field(std::int64_t{-5});
  w.Field(std::uint64_t{7});
  w.Field(2.25);
  w.EndRow();
  EXPECT_EQ(out.str(), "i,u,d\n-5,7,2.25\n");
}

TEST(CsvParseLine, SimpleCells) {
  const auto cells = CsvParseLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvParseLine, QuotedCells) {
  const auto cells = CsvParseLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "plain");
}

TEST(CsvParseLine, EmptyCells) {
  const auto cells = CsvParseLine(",,");
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) EXPECT_TRUE(c.empty());
}

TEST(CsvParseLine, StripsCarriageReturn) {
  const auto cells = CsvParseLine("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(CsvRead, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out, {"x", "y"});
  w.WriteRow({"1", "hello, world"});
  w.WriteRow({"2", "quote\"d"});

  std::istringstream in(out.str());
  const CsvTable table = CsvRead(in);
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][1], "hello, world");
  EXPECT_EQ(table.rows[1][1], "quote\"d");
}

TEST(CsvRead, ColumnIndexLookup) {
  std::istringstream in("a,b,c\n1,2,3\n");
  const CsvTable table = CsvRead(in);
  EXPECT_EQ(table.ColumnIndex("b"), 1u);
  EXPECT_EQ(table.ColumnIndex("missing"), CsvTable::npos);
}

TEST(CsvRead, SkipsBlankLines) {
  std::istringstream in("a\n\n1\n\n2\n");
  const CsvTable table = CsvRead(in);
  EXPECT_EQ(table.rows.size(), 2u);
}

}  // namespace
}  // namespace dreamsim
