// Tests for task graphs (the implemented future-work extension).
#include "workload/task_graph.hpp"

#include <gtest/gtest.h>

#include "ptype/catalogue.hpp"

namespace dreamsim::workload {
namespace {

GeneratedTask Payload(Area area = 300, Tick required = 100) {
  GeneratedTask t;
  t.needed_area = area;
  t.required_time = required;
  return t;
}

TEST(TaskGraph, AddVertexAndEdges) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  g.AddEdge(a, b);
  EXPECT_EQ(g.size(), 2u);
  ASSERT_EQ(g.vertex(b).predecessors.size(), 1u);
  EXPECT_EQ(g.vertex(b).predecessors[0], a);
  ASSERT_EQ(g.vertex(a).successors.size(), 1u);
  EXPECT_EQ(g.vertex(a).successors[0], b);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  EXPECT_THROW(g.AddEdge(a, a), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(a, 99), std::out_of_range);
  EXPECT_THROW((void)g.vertex(99), std::out_of_range);
}

TEST(TaskGraph, RootsAreVerticesWithoutPredecessors) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  const VertexId c = g.AddVertex(Payload());
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  const auto roots = g.Roots();
  EXPECT_EQ(roots, (std::vector<VertexId>{a, b}));
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  const VertexId c = g.AddVertex(Payload());
  const VertexId d = g.AddVertex(Payload());
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  const auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[b]);
  EXPECT_LT(pos[a], pos[c]);
  EXPECT_LT(pos[b], pos[d]);
  EXPECT_LT(pos[c], pos[d]);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  const VertexId c = g.AddVertex(Payload());
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(c, a);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_THROW((void)g.TopologicalOrder(), std::runtime_error);
}

TEST(TaskGraph, CriticalPathLength) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  const VertexId c = g.AddVertex(Payload());
  const VertexId d = g.AddVertex(Payload());
  EXPECT_EQ(g.CriticalPathLength(), 1u);  // no edges: depth 1
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  EXPECT_EQ(g.CriticalPathLength(), 3u);
  g.AddEdge(a, d);
  EXPECT_EQ(g.CriticalPathLength(), 3u);  // parallel branch shorter
}

TEST(TaskGraph, ValidateFlagsBadPayloads) {
  TaskGraph g;
  (void)g.AddVertex(Payload(0, 100));   // bad area
  (void)g.AddVertex(Payload(100, 0));   // bad time
  const auto violations = g.Validate();
  EXPECT_EQ(violations.size(), 2u);
}

TEST(TaskGraph, ValidateCleanGraph) {
  TaskGraph g;
  const VertexId a = g.AddVertex(Payload());
  const VertexId b = g.AddVertex(Payload());
  g.AddEdge(a, b);
  EXPECT_TRUE(g.Validate().empty());
}

TEST(GenerateLayeredGraph, StructureAndAcyclicity) {
  Rng rng(21);
  resource::ConfigGenParams cfg_params;
  cfg_params.count = 20;
  const auto configs = resource::ConfigCatalogue::Generate(
      cfg_params, ptype::Catalogue::Default(), rng);

  GraphGenParams params;
  params.layers = 5;
  params.width = 6;
  params.edge_density = 0.4;
  const TaskGraph g = GenerateLayeredGraph(params, configs, rng);
  EXPECT_EQ(g.size(), 30u);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_TRUE(g.Validate().empty());
  // Every non-root vertex has at least one predecessor by construction.
  for (VertexId v = static_cast<VertexId>(params.width); v < g.size(); ++v) {
    EXPECT_FALSE(g.vertex(v).predecessors.empty()) << "vertex " << v;
  }
  // Critical path spans all layers.
  EXPECT_EQ(g.CriticalPathLength(), 5u);
  // Layer-0 vertices are exactly the roots.
  EXPECT_EQ(g.Roots().size(), 6u);
}

TEST(GenerateLayeredGraph, RejectsBadParams) {
  Rng rng(1);
  resource::ConfigCatalogue empty;
  GraphGenParams params;
  params.layers = 0;
  EXPECT_THROW((void)GenerateLayeredGraph(params, empty, rng),
               std::invalid_argument);
}

TEST(GenerateLayeredGraph, PayloadReleaseTimesZeroed) {
  Rng rng(22);
  resource::ConfigGenParams cfg_params;
  cfg_params.count = 5;
  const auto configs = resource::ConfigCatalogue::Generate(
      cfg_params, ptype::Catalogue::Default(), rng);
  GraphGenParams params;
  params.layers = 2;
  params.width = 3;
  const TaskGraph g = GenerateLayeredGraph(params, configs, rng);
  for (VertexId v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.vertex(v).task.create_time, 0);
  }
}

}  // namespace
}  // namespace dreamsim::workload
