// Property sweep over the whole simulator: for a grid of (seed, mode,
// policy, extensions) the end state must satisfy the global invariants —
// every task terminal, every structure consistent, every metric sane.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "util/fmt.hpp"

namespace dreamsim::core {
namespace {

/// Fault-injection scenario exercised by a grid point (DESIGN.md §10).
enum class FaultScenario : std::uint8_t {
  kNone,
  kMtbfMttr,          // random failures with repair
  kMtbfPermanent,     // random failures, nodes never come back
  kMassFailure,       // scripted: half the fleet dies at one tick
  kRepairAfterDrain,  // scripted repair far past the likely workload end
};

std::string_view ToString(FaultScenario scenario) {
  switch (scenario) {
    case FaultScenario::kNone: return "nofault";
    case FaultScenario::kMtbfMttr: return "mtbf";
    case FaultScenario::kMtbfPermanent: return "perm";
    case FaultScenario::kMassFailure: return "mass";
    case FaultScenario::kRepairAfterDrain: return "latefix";
  }
  return "?";
}

struct FuzzPoint {
  std::uint64_t seed;
  sched::ReconfigMode mode;
  PolicyChoice policy;
  bool contiguous;
  bool ship_bitstreams;
  int families;
  std::size_t queue_capacity;
  FaultScenario faults = FaultScenario::kNone;
};

std::string PrintPoint(const ::testing::TestParamInfo<FuzzPoint>& info) {
  const FuzzPoint& p = info.param;
  std::string name = Format("seed{}_{}_{}_{}{}f{}q{}_{}", p.seed,
                            sched::ToString(p.mode), ToString(p.policy),
                            p.contiguous ? "ctg_" : "",
                            p.ship_bitstreams ? "ship_" : "", p.families,
                            p.queue_capacity, ToString(p.faults));
  // gtest parameter names must be [A-Za-z0-9_].
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class SimulatorFuzz : public ::testing::TestWithParam<FuzzPoint> {};

TEST_P(SimulatorFuzz, GlobalInvariantsHold) {
  const FuzzPoint& p = GetParam();
  SimulationConfig config;
  config.nodes.count = 15;
  config.nodes.contiguous_placement = p.contiguous;
  config.nodes.family_count = p.families;
  config.configs.count = 8;
  config.configs.family_count = p.families;
  config.tasks.total_tasks = 400;
  config.seed = p.seed;
  config.mode = p.mode;
  config.policy = p.policy;
  config.ship_bitstreams = p.ship_bitstreams;
  config.bitstream_cache_capacity = p.ship_bitstreams ? 500'000 : 0;
  config.network.bytes_per_tick = p.ship_bitstreams ? 1000 : 0;
  config.suspension_capacity = p.queue_capacity;
  if (p.faults != FaultScenario::kNone) {
    // Bound execution times and retries so a kill-happy schedule cannot
    // statistically livelock (a task whose runtime rivals the MTBF could be
    // killed and re-queued near-forever under unbounded retries).
    config.tasks.max_required_time = 3000;
    config.max_suspension_retries = 10;
  }
  switch (p.faults) {
    case FaultScenario::kNone:
      break;
    case FaultScenario::kMtbfMttr:
      config.faults.mtbf = 20'000;
      config.faults.mttr = 4'000;
      break;
    case FaultScenario::kMtbfPermanent:
      config.faults.mtbf = 60'000;
      break;
    case FaultScenario::kMassFailure:
      // Half the fleet dies at once mid-run; three nodes come back later.
      for (std::uint32_t n = 0; n < 7; ++n) {
        config.faults.script.push_back(
            {3'000, NodeId{n}, FaultAction::kFail});
      }
      for (std::uint32_t n = 0; n < 3; ++n) {
        config.faults.script.push_back(
            {9'000, NodeId{n}, FaultAction::kRepair});
      }
      break;
    case FaultScenario::kRepairAfterDrain:
      // The repair is scheduled far past the likely workload end: it must
      // either drain the queue or be cancelled cleanly, never hang the run.
      config.faults.script.push_back({2'000, NodeId{2}, FaultAction::kFail});
      config.faults.script.push_back({5'000, NodeId{4}, FaultAction::kFail});
      config.faults.script.push_back(
          {5'000'000, NodeId{2}, FaultAction::kRepair});
      break;
  }

  // Structure audit across the whole grid: after every scheduler decision
  // in Debug, once at end of run in Release (step-mode reconstruction over
  // every decision would dominate optimized CI runs).
#ifndef NDEBUG
  config.audit = analysis::AuditMode::kStep;
#else
  config.audit = analysis::AuditMode::kEnd;
#endif

  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();

  // Explicit auditor hook on top of the config-driven audits: the end
  // state must reconstruct cleanly, and the report must render empty.
  const analysis::AuditReport audit = sim.AuditStructures();
  EXPECT_TRUE(audit.ok()) << audit.Render();

  // Conservation: every generated task reached a terminal state.
  EXPECT_EQ(report.total_tasks, 400u);
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 400u);
  std::size_t non_terminal = 0;
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state != resource::TaskState::kCompleted &&
        t.state != resource::TaskState::kDiscarded) {
      ++non_terminal;
    }
  }
  EXPECT_EQ(non_terminal, 0u);

  // Structures: Fig. 3 lists, Eq. 4 accounting, layouts.
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());

  // Nothing left running and no dangling events.
  for (const resource::Node& n : sim.store().nodes()) {
    EXPECT_FALSE(n.busy());
  }
  EXPECT_TRUE(sim.kernel().idle());

  // Metric sanity.
  EXPECT_GE(report.avg_waiting_time_per_task, 0.0);
  EXPECT_GE(report.avg_wasted_area_per_task, 0.0);
  EXPECT_EQ(report.total_scheduler_workload,
            report.scheduling_steps_total + report.housekeeping_steps_total);
  std::uint64_t placements = 0;
  for (const std::uint64_t count : report.placements_by_kind) {
    placements += count;
  }
  // Every placement either ran to completion or was destroyed by a node
  // failure (fault-free runs: placements == completions).
  EXPECT_EQ(placements, report.completed_tasks + report.tasks_killed);

  // Fault bookkeeping: kill victims are classified exhaustively, failed
  // nodes end blank, and fault-free runs report all-zero fault metrics.
  std::uint64_t killed_ever = 0;
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.kill_count > 0) ++killed_ever;
  }
  EXPECT_EQ(report.tasks_recovered + report.tasks_lost_to_failure,
            killed_ever);
  for (const resource::Node& n : sim.store().nodes()) {
    if (n.failed()) EXPECT_TRUE(n.blank());
  }
  EXPECT_EQ(sim.store().failed_node_count(),
            report.failures_injected - report.repairs_completed);
  if (p.faults == FaultScenario::kNone) {
    EXPECT_EQ(report.failures_injected, 0u);
    EXPECT_EQ(report.tasks_killed, 0u);
    EXPECT_EQ(report.total_downtime, 0);
  } else if (p.faults == FaultScenario::kMassFailure ||
             p.faults == FaultScenario::kRepairAfterDrain) {
    EXPECT_GT(report.failures_injected, 0u);
  }

  // Completed tasks carry coherent records.
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state != resource::TaskState::kCompleted) continue;
    EXPECT_GE(t.start_time, t.create_time);
    EXPECT_GE(t.completion_time, t.start_time + t.required_time);
    EXPECT_TRUE(t.assigned_config.valid());
  }
}

std::vector<FuzzPoint> MakeGrid() {
  std::vector<FuzzPoint> points;
  const PolicyChoice policies[] = {PolicyChoice::kDreamSim,
                                   PolicyChoice::kBestFit,
                                   PolicyChoice::kRoundRobin};
  std::uint64_t seed = 100;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    for (const PolicyChoice policy : policies) {
      // Heuristic policies always use partial semantics; skip redundant
      // full-mode variants for them.
      if (mode == sched::ReconfigMode::kFull &&
          policy != PolicyChoice::kDreamSim) {
        continue;
      }
      points.push_back(FuzzPoint{seed++, mode, policy, false, false, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, true, false, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, false, true, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, false, false, 3, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, true, true, 2, 64});
      // Fault-injection scenarios over the same structural invariants.
      for (const FaultScenario faults :
           {FaultScenario::kMtbfMttr, FaultScenario::kMtbfPermanent,
            FaultScenario::kMassFailure, FaultScenario::kRepairAfterDrain}) {
        points.push_back(
            FuzzPoint{seed++, mode, policy, false, false, 1, 0, faults});
      }
      points.push_back(FuzzPoint{seed++, mode, policy, true, false, 2, 48,
                                 FaultScenario::kMtbfMttr});
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Grid, SimulatorFuzz, ::testing::ValuesIn(MakeGrid()),
                         PrintPoint);

}  // namespace
}  // namespace dreamsim::core
