// Property sweep over the whole simulator: for a grid of (seed, mode,
// policy, extensions) the end state must satisfy the global invariants —
// every task terminal, every structure consistent, every metric sane.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "util/fmt.hpp"

namespace dreamsim::core {
namespace {

struct FuzzPoint {
  std::uint64_t seed;
  sched::ReconfigMode mode;
  PolicyChoice policy;
  bool contiguous;
  bool ship_bitstreams;
  int families;
  std::size_t queue_capacity;
};

std::string PrintPoint(const ::testing::TestParamInfo<FuzzPoint>& info) {
  const FuzzPoint& p = info.param;
  std::string name = Format("seed{}_{}_{}_{}{}f{}q{}", p.seed,
                            sched::ToString(p.mode), ToString(p.policy),
                            p.contiguous ? "ctg_" : "",
                            p.ship_bitstreams ? "ship_" : "", p.families,
                            p.queue_capacity);
  // gtest parameter names must be [A-Za-z0-9_].
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class SimulatorFuzz : public ::testing::TestWithParam<FuzzPoint> {};

TEST_P(SimulatorFuzz, GlobalInvariantsHold) {
  const FuzzPoint& p = GetParam();
  SimulationConfig config;
  config.nodes.count = 15;
  config.nodes.contiguous_placement = p.contiguous;
  config.nodes.family_count = p.families;
  config.configs.count = 8;
  config.configs.family_count = p.families;
  config.tasks.total_tasks = 400;
  config.seed = p.seed;
  config.mode = p.mode;
  config.policy = p.policy;
  config.ship_bitstreams = p.ship_bitstreams;
  config.bitstream_cache_capacity = p.ship_bitstreams ? 500'000 : 0;
  config.network.bytes_per_tick = p.ship_bitstreams ? 1000 : 0;
  config.suspension_capacity = p.queue_capacity;

  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();

  // Conservation: every generated task reached a terminal state.
  EXPECT_EQ(report.total_tasks, 400u);
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 400u);

  // Structures: Fig. 3 lists, Eq. 4 accounting, layouts.
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());

  // Nothing left running and no dangling events.
  for (const resource::Node& n : sim.store().nodes()) {
    EXPECT_FALSE(n.busy());
  }
  EXPECT_TRUE(sim.kernel().idle());

  // Metric sanity.
  EXPECT_GE(report.avg_waiting_time_per_task, 0.0);
  EXPECT_GE(report.avg_wasted_area_per_task, 0.0);
  EXPECT_EQ(report.total_scheduler_workload,
            report.scheduling_steps_total + report.housekeeping_steps_total);
  std::uint64_t placements = 0;
  for (const std::uint64_t count : report.placements_by_kind) {
    placements += count;
  }
  EXPECT_EQ(placements, report.completed_tasks);

  // Completed tasks carry coherent records.
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state != resource::TaskState::kCompleted) continue;
    EXPECT_GE(t.start_time, t.create_time);
    EXPECT_GE(t.completion_time, t.start_time + t.required_time);
    EXPECT_TRUE(t.assigned_config.valid());
  }
}

std::vector<FuzzPoint> MakeGrid() {
  std::vector<FuzzPoint> points;
  const PolicyChoice policies[] = {PolicyChoice::kDreamSim,
                                   PolicyChoice::kBestFit,
                                   PolicyChoice::kRoundRobin};
  std::uint64_t seed = 100;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    for (const PolicyChoice policy : policies) {
      // Heuristic policies always use partial semantics; skip redundant
      // full-mode variants for them.
      if (mode == sched::ReconfigMode::kFull &&
          policy != PolicyChoice::kDreamSim) {
        continue;
      }
      points.push_back(FuzzPoint{seed++, mode, policy, false, false, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, true, false, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, false, true, 1, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, false, false, 3, 0});
      points.push_back(FuzzPoint{seed++, mode, policy, true, true, 2, 64});
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Grid, SimulatorFuzz, ::testing::ValuesIn(MakeGrid()),
                         PrintPoint);

}  // namespace
}  // namespace dreamsim::core
