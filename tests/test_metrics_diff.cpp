// Differential proof of the metrics determinism contract (DESIGN.md §16):
// model-plane metric snapshots are a pure function of (seed, config). For
// the same seed, the rendered model-plane snapshot bytes must be identical
// across shard counts K in {1, 2, 4, 8} and across pool thread counts
// {1, 4} — per-shard cells merge in fixed index order, so no thread
// interleaving can leak into the bytes (this suite also runs under TSan in
// CI). Host-plane metrics (wall-clock, shard shape) are exactly the
// excluded set; the paper metrics must match as well.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "util/rng.hpp"

namespace dreamsim {
namespace {

using core::MetricsReport;
using core::SimulationConfig;
using core::Simulator;

struct MetricsDiffCase {
  bool indexed = true;
  bool faults = false;
};

void PrintTo(const MetricsDiffCase& c, std::ostream* os) {
  *os << (c.indexed ? "indexed" : "scan") << (c.faults ? " faults" : "");
}

std::vector<workload::GeneratedTask> MakeWorkload(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  std::vector<workload::GeneratedTask> tasks;
  Tick at = 0;
  for (int i = 0; i < 180; ++i) {
    workload::GeneratedTask t;
    at += rng.uniform_int(1, 5);
    t.create_time = at;
    if (rng.uniform_int(0, 9) < 8) {
      t.preferred_config =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 9))};
    }
    t.needed_area = rng.uniform_int(200, 2000);
    t.required_time = rng.uniform_int(80, 900);
    t.priority = static_cast<double>(rng.uniform_int(0, 9));
    tasks.push_back(t);
  }
  return tasks;
}

struct RunResult {
  /// Model-plane snapshot bytes (fixed tick/seq labels so only the metric
  /// values themselves can differ).
  std::string model_json;
  MetricsReport report;
};

RunResult RunOne(const MetricsDiffCase& c, std::uint64_t seed,
                 std::size_t shards, std::size_t threads) {
  SimulationConfig config;
  config.nodes.count = 30;
  config.configs.count = 10;
  config.scheduler_index = c.indexed;
  config.shards = shards;
  config.kernel_threads = threads;
  config.max_suspension_retries = 8;
  if (c.faults) {
    config.faults.mtbf = 4'000;
    config.faults.mttr = 800;
  }
  config.seed = seed;
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry::Instance().Reset();
  Simulator sim(std::move(config));
  RunResult result;
  result.report = sim.RunWithWorkload(MakeWorkload(seed));
  result.model_json = obs::RenderMetricsJson(
      obs::MetricsRegistry::Instance().TakeSnapshot(), Tick{0}, 0,
      /*final=*/true, /*include_host=*/false);
  obs::MetricsRegistry::SetEnabled(false);
  obs::MetricsRegistry::Instance().Reset();
  return result;
}

void ExpectIdentical(const RunResult& run, const RunResult& base,
                     const std::string& label) {
  EXPECT_EQ(run.model_json, base.model_json) << label;
  const MetricsReport& x = run.report;
  const MetricsReport& y = base.report;
  EXPECT_EQ(x.completed_tasks, y.completed_tasks) << label;
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks) << label;
  EXPECT_EQ(x.suspended_ever, y.suspended_ever) << label;
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload) << label;
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total) << label;
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time) << label;
  EXPECT_EQ(x.failures_injected, y.failures_injected) << label;
  EXPECT_EQ(x.tasks_killed, y.tasks_killed) << label;
}

class MetricsDiff : public ::testing::TestWithParam<MetricsDiffCase> {};

TEST_P(MetricsDiff, SnapshotBytesAreShardAndThreadInvariant) {
  const MetricsDiffCase c = GetParam();
  for (const std::uint64_t seed : {42ull, 9ull}) {
    const RunResult base = RunOne(c, seed, /*shards=*/1, /*threads=*/1);
    // The snapshot must have actually observed the run.
    ASSERT_GT(base.report.completed_tasks, 0u);
    EXPECT_EQ(base.model_json.find("\"dreamsim_tasks_completed_total\":0,"),
              std::string::npos);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const std::size_t threads : {1u, 4u}) {
        if (shards == 1 && threads == 1) continue;
        const std::string label = "seed=" + std::to_string(seed) +
                                  " K=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads);
        ExpectIdentical(RunOne(c, seed, shards, threads), base, label);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MetricsCombos, MetricsDiff,
                         ::testing::Values(MetricsDiffCase{true, false},
                                           MetricsDiffCase{false, false},
                                           MetricsDiffCase{true, true}));

}  // namespace
}  // namespace dreamsim
