// Parser fuzz: seeded deterministic mutations — byte flips, line shuffles,
// truncations, splices — over the shipped scenario corpus must never
// crash, leak (ASan/UBSan CI runs this binary), or mis-accept. "Mis-accept"
// means accepting text whose canonical form is not a parseable fixed point:
// whatever the parser lets through must round-trip cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace dreamsim::scenario {
namespace {

// A compact corpus covering every block kind and value shape. Mutating
// realistic text probes deeper parser states than random bytes would.
const std::string_view kCorpus[] = {
    R"(simulation: {
  name: fuzz-a
  seed: 1
  mode: partial
  policy: dreamsim
  ship bitstreams: on
  bitstream cache: 5000
}
configurations: {
  count: 20
  area: [300, 1500]
  config time: [10, 18]
}
device class: {
  name: edge
  count: 40
  area: [1000, 2000]
  config bandwidth: 150
  bitstream store: 900
  network delay: [1, 4]
  placement: best-fit
}
task class: {
  name: bursts
  count: 150
  arrivals: bursty
  burst size: [3, 9]
  burst gap: [200, 800]
  interval: [1, 5]
  required time: [100, 5000]
  priority: [0.25, 0.75]
  graph fraction: 0.2
  chain length: [2, 3]
  seed: 77
}
)",
    R"(# comment-heavy scenario
simulation: {
  name: fuzz-b  # trailing comment
  seed: 9
}
task class: {
  name: windowed
  arrivals: windowed
  start time: 100
  end time: 900
  interval: [2, 8]
}
)",
    "simulation: {\n}\n",
    "",
};

// Invariants every parse must uphold, accepted or not.
void CheckParseInvariants(const std::string& text) {
  auto result = ParseScenario(text);
  if (!result.has_value()) {
    ASSERT_FALSE(result.error().empty());
    const int line_count =
        1 + static_cast<int>(std::count(text.begin(), text.end(), '\n'));
    for (const ScenarioError& e : result.error()) {
      EXPECT_GE(e.line, 0);
      EXPECT_LE(e.line, line_count + 1);
      EXPECT_FALSE(e.message.empty());
    }
    // Diagnostics must render without throwing.
    (void)Render(result.error());
    return;
  }
  // Accepted: the canonical form must itself parse, to the same canonical
  // text and hash (no mis-accept into an unserializable state).
  const std::string canonical = CanonicalScenario(result.value());
  auto again = ParseScenario(canonical);
  ASSERT_TRUE(again.has_value())
      << "canonical form of accepted input failed to re-parse:\n"
      << canonical << "\ndiagnostics:\n"
      << Render(again.error());
  EXPECT_EQ(CanonicalScenario(again.value()), canonical);
  EXPECT_EQ(ScenarioHash(again.value()), ScenarioHash(result.value()));
}

std::string FlipBytes(std::string text, Rng& rng) {
  const int flips = rng.uniform_int(1, 8);
  for (int i = 0; i < flips && !text.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(text.size()) - 1));
    text[pos] = static_cast<char>(rng.uniform_int(1, 255));
  }
  return text;
}

std::string ShuffleLines(const std::string& text, Rng& rng) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t eol = text.find('\n', start);
    if (eol == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, eol - start));
    start = eol + 1;
  }
  // Fisher–Yates with the repo Rng (std::shuffle's draws are unspecified
  // across standard libraries; this keeps the fuzz corpus reproducible).
  for (std::size_t i = lines.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(lines[i - 1], lines[j]);
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Truncate(const std::string& text, Rng& rng) {
  if (text.empty()) return text;
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(text.size()) - 1));
  return text.substr(0, cut);
}

std::string Splice(const std::string& a, const std::string& b, Rng& rng) {
  if (a.empty() || b.empty()) return a + b;
  const auto cut_a = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(a.size()) - 1));
  const auto cut_b = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(b.size()) - 1));
  return a.substr(0, cut_a) + b.substr(cut_b);
}

TEST(ScenarioFuzz, ByteFlipsNeverCrashOrMisAccept) {
  Rng rng(0xF1u);
  for (int round = 0; round < 300; ++round) {
    const std::string base{kCorpus[round % std::size(kCorpus)]};
    CheckParseInvariants(FlipBytes(base, rng));
  }
}

TEST(ScenarioFuzz, LineShufflesNeverCrashOrMisAccept) {
  Rng rng(0xF2u);
  for (int round = 0; round < 200; ++round) {
    const std::string base{kCorpus[round % std::size(kCorpus)]};
    CheckParseInvariants(ShuffleLines(base, rng));
  }
}

TEST(ScenarioFuzz, TruncationsNeverCrashOrMisAccept) {
  Rng rng(0xF3u);
  for (int round = 0; round < 300; ++round) {
    const std::string base{kCorpus[round % std::size(kCorpus)]};
    CheckParseInvariants(Truncate(base, rng));
  }
}

TEST(ScenarioFuzz, SplicesNeverCrashOrMisAccept) {
  Rng rng(0xF4u);
  for (int round = 0; round < 200; ++round) {
    const std::string a{kCorpus[round % std::size(kCorpus)]};
    const std::string b{
        kCorpus[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(std::size(kCorpus)) - 1))]};
    CheckParseInvariants(Splice(a, b, rng));
  }
}

TEST(ScenarioFuzz, StackedMutationsNeverCrashOrMisAccept) {
  Rng rng(0xF5u);
  for (int round = 0; round < 200; ++round) {
    std::string text{kCorpus[round % std::size(kCorpus)]};
    const int passes = rng.uniform_int(1, 3);
    for (int p = 0; p < passes; ++p) {
      switch (rng.uniform_int(0, 3)) {
        case 0: text = FlipBytes(text, rng); break;
        case 1: text = ShuffleLines(text, rng); break;
        case 2: text = Truncate(text, rng); break;
        default: text = Splice(text, text, rng); break;
      }
    }
    CheckParseInvariants(text);
  }
}

TEST(ScenarioFuzz, PathologicalInputsAreRejectedGracefully) {
  CheckParseInvariants(std::string(10000, '{'));
  CheckParseInvariants(std::string(10000, '}'));
  CheckParseInvariants(std::string(10000, ':'));
  CheckParseInvariants(std::string(10000, '\n'));
  CheckParseInvariants("simulation: {\n  seed: " + std::string(5000, '9') +
                       "\n}\n");
  std::string nested;
  for (int i = 0; i < 500; ++i) nested += "simulation: {\n";
  CheckParseInvariants(nested);
}

}  // namespace
}  // namespace dreamsim::scenario
