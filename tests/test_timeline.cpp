// Tests for obs::TimeSeriesSampler: left-hold resampling semantics, grid
// anchoring, CSV shape, and convergence of recomputed averages to the
// MonitoringModule's UtilizationReport (ISSUE satellite d).
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "util/csv.hpp"

namespace dreamsim::obs {
namespace {

core::StateSample At(Tick tick, std::size_t busy) {
  core::StateSample sample;
  sample.tick = tick;
  sample.busy_nodes = busy;
  return sample;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> TickBusyPairs(
    const std::string& csv) {
  std::istringstream in(csv);
  const CsvTable table = CsvRead(in);
  const std::size_t tick_col = table.ColumnIndex("tick");
  const std::size_t busy_col = table.ColumnIndex("busy_nodes");
  EXPECT_NE(tick_col, CsvTable::npos);
  EXPECT_NE(busy_col, CsvTable::npos);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& row : table.rows) {
    out.emplace_back(std::stoull(row[tick_col]), std::stoull(row[busy_col]));
  }
  return out;
}

TEST(TimeSeriesSampler, LeftHoldResamplesOntoGrid) {
  std::ostringstream out;
  TimeSeriesSampler sampler(out, 10);
  sampler.Observe(At(10, 1));  // anchors the grid at tick 10
  sampler.Observe(At(25, 3));  // grid points 10, 20 now final (value 1)
  sampler.Finish(40);          // 30, 40 hold value 3
  const auto rows = TickBusyPairs(out.str());
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {10, 1}, {20, 1}, {30, 3}, {40, 3}};
  EXPECT_EQ(rows, expected);
  EXPECT_EQ(sampler.rows_written(), 4u);
  EXPECT_EQ(sampler.observations(), 2u);
}

TEST(TimeSeriesSampler, SameTickObservationLastWins) {
  std::ostringstream out;
  TimeSeriesSampler sampler(out, 10);
  sampler.Observe(At(10, 1));
  sampler.Observe(At(10, 5));  // same tick: supersedes, no row emitted yet
  sampler.Observe(At(15, 2));
  sampler.Finish(20);
  const auto rows = TickBusyPairs(out.str());
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {10, 5}, {20, 2}};
  EXPECT_EQ(rows, expected);
}

TEST(TimeSeriesSampler, IntervalZeroIsCoercedToOne) {
  std::ostringstream out;
  TimeSeriesSampler sampler(out, 0);
  sampler.Observe(At(0, 2));
  sampler.Observe(At(3, 4));
  sampler.Finish(3);
  const auto rows = TickBusyPairs(out.str());
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 2}, {1, 2}, {2, 2}, {3, 4}};
  EXPECT_EQ(rows, expected);
}

TEST(TimeSeriesSampler, FinishIsIdempotentAndDtorSafe) {
  std::ostringstream out;
  {
    TimeSeriesSampler sampler(out, 5);
    sampler.Observe(At(0, 1));
    sampler.Finish(10);
    const std::size_t rows = sampler.rows_written();
    sampler.Finish(50);  // no-op
    EXPECT_EQ(sampler.rows_written(), rows);
  }  // destructor must not double-finish
  EXPECT_EQ(TickBusyPairs(out.str()).size(), 3u);  // ticks 0, 5, 10
}

TEST(TimeSeriesSampler, ThrowsOnUnwritablePath) {
  EXPECT_THROW(TimeSeriesSampler("/nonexistent-dir/timeline.csv", 100),
               std::runtime_error);
}

// --- Against a real simulation ---

core::SimulationConfig SimConfig(std::uint64_t seed) {
  core::SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 6;
  config.tasks.total_tasks = 120;
  config.seed = seed;
  return config;
}

struct SampledRun {
  std::string csv;
  rms::UtilizationReport utilization;
  Tick end = 0;
};

SampledRun RunSampled(std::uint64_t seed, Tick interval) {
  SampledRun result;
  std::ostringstream out;
  core::Simulator sim(SimConfig(seed));
  TimeSeriesSampler sampler(out, interval);
  sim.SetStateObserver(
      [&sampler](const core::StateSample& s) { sampler.Observe(s); });
  (void)sim.Run();
  result.utilization = sim.utilization();
  result.end = result.utilization.observed_until;
  sampler.Finish(result.end);
  result.csv = out.str();
  return result;
}

TEST(TimeSeriesSampler, GridTicksAreEvenlySpaced) {
  const SampledRun run = RunSampled(9, 250);
  const auto rows = TickBusyPairs(run.csv);
  ASSERT_GT(rows.size(), 2u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first - rows[i - 1].first, 250u) << "row " << i;
  }
  EXPECT_LE(rows.back().first, static_cast<std::uint64_t>(run.end));
}

/// Time-weighted average of a column recomputed from the emitted grid rows:
/// each row's value holds for one interval; the last row (at the end tick)
/// has zero width.
double RecomputedAverage(const std::string& csv, std::string_view column) {
  std::istringstream in(csv);
  const CsvTable table = CsvRead(in);
  const std::size_t tick_col = table.ColumnIndex("tick");
  const std::size_t val_col = table.ColumnIndex(std::string(column));
  EXPECT_NE(val_col, CsvTable::npos);
  if (table.rows.size() < 2) return 0.0;
  const double t0 = std::stod(table.rows.front()[tick_col]);
  const double t1 = std::stod(table.rows.back()[tick_col]);
  double weighted = 0.0;
  for (std::size_t i = 0; i + 1 < table.rows.size(); ++i) {
    const double width = std::stod(table.rows[i + 1][tick_col]) -
                         std::stod(table.rows[i][tick_col]);
    weighted += std::stod(table.rows[i][val_col]) * width;
  }
  return weighted / (t1 - t0);
}

double RelErr(double got, double want) {
  const double scale = std::abs(want) > 1e-12 ? std::abs(want) : 1.0;
  return std::abs(got - want) / scale;
}

TEST(TimeSeriesSampler, RecomputedAveragesConvergeToUtilizationReport) {
  const SampledRun fine = RunSampled(42, 1);
  const SampledRun coarse = RunSampled(42, 1000);
  // Identical runs, different sampling grids.
  EXPECT_EQ(fine.utilization.avg_busy_nodes,
            coarse.utilization.avg_busy_nodes);

  const struct {
    const char* column;
    double want;
  } signals[] = {
      {"busy_nodes", fine.utilization.avg_busy_nodes},
      {"running_tasks", fine.utilization.avg_running_tasks},
      {"wasted_area", fine.utilization.avg_wasted_area},
  };
  for (const auto& signal : signals) {
    const double err_fine =
        RelErr(RecomputedAverage(fine.csv, signal.column), signal.want);
    const double err_coarse =
        RelErr(RecomputedAverage(coarse.csv, signal.column), signal.want);
    // Interval 1 reproduces the integral exactly (modulo double rounding);
    // a coarse grid may only do worse.
    EXPECT_LT(err_fine, 1e-9) << signal.column;
    EXPECT_LE(err_fine, err_coarse + 1e-9) << signal.column;
  }
}

}  // namespace
}  // namespace dreamsim::obs
