// Tests for the experiment sweep driver.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

namespace dreamsim::core {
namespace {

SweepParams SmallSweep() {
  SweepParams params;
  params.base.nodes.count = 8;
  params.base.configs.count = 6;
  params.base.seed = 5;
  params.task_counts = {50, 100};
  params.modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
  return params;
}

TEST(PaperTaskCounts, FullScale) {
  const auto counts = PaperTaskCounts();
  ASSERT_EQ(counts.size(), 11u);
  EXPECT_EQ(counts.front(), 1000);
  EXPECT_EQ(counts[1], 10000);
  EXPECT_EQ(counts.back(), 100000);
}

TEST(PaperTaskCounts, ScaledDown) {
  const auto counts = PaperTaskCounts(0.1);
  EXPECT_EQ(counts.front(), 1000);  // floor at 1000
  EXPECT_EQ(counts.back(), 10000);
  // Duplicates collapse after flooring.
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], counts[i - 1]);
  }
}

TEST(PaperTaskCounts, RejectsBadScale) {
  EXPECT_THROW((void)PaperTaskCounts(0.0), std::invalid_argument);
  EXPECT_THROW((void)PaperTaskCounts(1.5), std::invalid_argument);
}

TEST(RunSweep, ProducesModeMajorOrder) {
  const auto reports = RunSweep(SmallSweep());
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].mode_name, "full");
  EXPECT_EQ(reports[0].total_tasks, 50u);
  EXPECT_EQ(reports[1].total_tasks, 100u);
  EXPECT_EQ(reports[2].mode_name, "partial");
  EXPECT_EQ(reports[3].total_tasks, 100u);
}

TEST(RunSweep, LabelsEncodeThePoint) {
  const auto reports = RunSweep(SmallSweep());
  EXPECT_NE(reports[0].label.find("full"), std::string::npos);
  EXPECT_NE(reports[0].label.find("50"), std::string::npos);
}

TEST(RunSweep, ParallelMatchesSequential) {
  SweepParams params = SmallSweep();
  params.threads = 1;
  const auto sequential = RunSweep(params);
  params.threads = 4;
  const auto parallel = RunSweep(params);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].total_scheduler_workload,
              parallel[i].total_scheduler_workload);
    EXPECT_EQ(sequential[i].total_simulation_time,
              parallel[i].total_simulation_time);
    EXPECT_DOUBLE_EQ(sequential[i].avg_waiting_time_per_task,
                     parallel[i].avg_waiting_time_per_task);
  }
}

TEST(RunSweep, SharedSeedAcrossModes) {
  // The paper compares modes "for the same set of parameters in each
  // simulation run": both modes must see the same workload.
  const auto reports = RunSweep(SmallSweep());
  EXPECT_EQ(reports[0].seed, reports[2].seed);
  EXPECT_EQ(reports[0].total_tasks, reports[2].total_tasks);
}

TEST(RunSweep, EmptyGridYieldsNothing) {
  SweepParams params = SmallSweep();
  params.task_counts.clear();
  EXPECT_TRUE(RunSweep(params).empty());
}

}  // namespace
}  // namespace dreamsim::core
