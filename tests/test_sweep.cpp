// Tests for the experiment sweep driver.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

namespace dreamsim::core {
namespace {

SweepParams SmallSweep() {
  SweepParams params;
  params.base.nodes.count = 8;
  params.base.configs.count = 6;
  params.base.seed = 5;
  params.task_counts = {50, 100};
  params.modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
  return params;
}

TEST(PaperTaskCounts, FullScale) {
  const auto counts = PaperTaskCounts();
  ASSERT_EQ(counts.size(), 11u);
  EXPECT_EQ(counts.front(), 1000);
  EXPECT_EQ(counts[1], 10000);
  EXPECT_EQ(counts.back(), 100000);
}

TEST(PaperTaskCounts, ScaledDown) {
  const auto counts = PaperTaskCounts(0.1);
  EXPECT_EQ(counts.front(), 1000);  // floor at 1000
  EXPECT_EQ(counts.back(), 10000);
  // Duplicates collapse after flooring.
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], counts[i - 1]);
  }
}

TEST(PaperTaskCounts, RejectsBadScale) {
  EXPECT_THROW((void)PaperTaskCounts(0.0), std::invalid_argument);
  EXPECT_THROW((void)PaperTaskCounts(1.5), std::invalid_argument);
}

TEST(RunSweep, ProducesModeMajorOrder) {
  const auto reports = RunSweep(SmallSweep());
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].mode_name, "full");
  EXPECT_EQ(reports[0].total_tasks, 50u);
  EXPECT_EQ(reports[1].total_tasks, 100u);
  EXPECT_EQ(reports[2].mode_name, "partial");
  EXPECT_EQ(reports[3].total_tasks, 100u);
}

TEST(RunSweep, LabelsEncodeThePoint) {
  const auto reports = RunSweep(SmallSweep());
  EXPECT_NE(reports[0].label.find("full"), std::string::npos);
  EXPECT_NE(reports[0].label.find("50"), std::string::npos);
}

TEST(RunSweep, ParallelMatchesSequential) {
  SweepParams params = SmallSweep();
  params.threads = 1;
  const auto sequential = RunSweep(params);
  params.threads = 4;
  const auto parallel = RunSweep(params);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].total_scheduler_workload,
              parallel[i].total_scheduler_workload);
    EXPECT_EQ(sequential[i].total_simulation_time,
              parallel[i].total_simulation_time);
    EXPECT_DOUBLE_EQ(sequential[i].avg_waiting_time_per_task,
                     parallel[i].avg_waiting_time_per_task);
  }
}

TEST(RunSweep, SharedSeedAcrossModes) {
  // The paper compares modes "for the same set of parameters in each
  // simulation run": both modes must see the same workload.
  const auto reports = RunSweep(SmallSweep());
  EXPECT_EQ(reports[0].seed, reports[2].seed);
  EXPECT_EQ(reports[0].total_tasks, reports[2].total_tasks);
}

TEST(RunSweep, EmptyGridYieldsNothing) {
  SweepParams params = SmallSweep();
  params.task_counts.clear();
  EXPECT_TRUE(RunSweep(params).empty());
}

TEST(RunReplicatedSweep, PointOrderMatchesRunSweep) {
  SweepParams params = SmallSweep();
  params.replications = 3;
  const auto grid = RunReplicatedSweep(params);
  ASSERT_EQ(grid.size(), 4u);  // 2 modes x 2 task counts
  for (const auto& point : grid) {
    EXPECT_EQ(point.replications, 3u);
    ASSERT_EQ(point.runs.size(), 3u);
  }
  EXPECT_EQ(grid[0].runs[0].mode_name, "full");
  EXPECT_EQ(grid[0].runs[0].total_tasks, 50u);
  EXPECT_EQ(grid[1].runs[0].total_tasks, 100u);
  EXPECT_EQ(grid[2].runs[0].mode_name, "partial");
}

TEST(RunReplicatedSweep, Column0IsBitIdenticalToRunSweepAtDerivedSeed) {
  // The documented contract: replication r simulates DeriveSeed(base.seed,
  // r), so the r=0 column of the replicated grid IS the single-seed grid
  // run at DeriveSeed(base.seed, 0).
  SweepParams params = SmallSweep();
  params.replications = 2;
  const auto replicated = RunReplicatedSweep(params);

  SweepParams single = SmallSweep();
  single.base.seed = DeriveSeed(params.base.seed, 0);
  const auto grid = RunSweep(single);

  ASSERT_EQ(replicated.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const MetricsReport& a = replicated[i].runs[0];
    const MetricsReport& b = grid[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.completed_tasks, b.completed_tasks);
    EXPECT_EQ(a.total_scheduler_workload, b.total_scheduler_workload);
    EXPECT_EQ(a.total_simulation_time, b.total_simulation_time);
    EXPECT_DOUBLE_EQ(a.avg_waiting_time_per_task, b.avg_waiting_time_per_task);
  }
}

TEST(RunReplicatedSweep, ReplicationsUseIndependentSeeds) {
  SweepParams params = SmallSweep();
  params.replications = 3;
  const auto grid = RunReplicatedSweep(params);
  for (const auto& point : grid) {
    EXPECT_NE(point.runs[0].seed, point.runs[1].seed);
    EXPECT_NE(point.runs[1].seed, point.runs[2].seed);
  }
}

TEST(RunReplicatedSweep, SummaryReducesItsOwnRuns) {
  // Each point's summary must equal SummarizeReplications over its runs —
  // the sweep driver may not reduce across points or reorder replications.
  SweepParams params = SmallSweep();
  params.replications = 3;
  const auto grid = RunReplicatedSweep(params);
  for (const auto& point : grid) {
    const ReplicationReport direct = SummarizeReplications(point.runs);
    ASSERT_EQ(direct.metrics.size(), point.metrics.size());
    for (std::size_t m = 0; m < direct.metrics.size(); ++m) {
      EXPECT_EQ(point.metrics[m].name, direct.metrics[m].name);
      EXPECT_DOUBLE_EQ(point.metrics[m].mean(), direct.metrics[m].mean());
      EXPECT_DOUBLE_EQ(point.metrics[m].stddev(), direct.metrics[m].stddev());
    }
  }
}

TEST(RunReplicatedSweep, ParallelMatchesSequential) {
  SweepParams params = SmallSweep();
  params.replications = 2;
  params.threads = 1;
  const auto sequential = RunReplicatedSweep(params);
  params.threads = 4;
  const auto parallel = RunReplicatedSweep(params);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].runs.size(), parallel[i].runs.size());
    for (std::size_t r = 0; r < sequential[i].runs.size(); ++r) {
      EXPECT_EQ(sequential[i].runs[r].total_scheduler_workload,
                parallel[i].runs[r].total_scheduler_workload);
      EXPECT_EQ(sequential[i].runs[r].total_simulation_time,
                parallel[i].runs[r].total_simulation_time);
    }
  }
}

TEST(RunReplicatedSweep, LabelsEncodePointAndReplication) {
  SweepParams params = SmallSweep();
  params.replications = 2;
  const auto grid = RunReplicatedSweep(params);
  EXPECT_NE(grid[0].runs[0].label.find("#0"), std::string::npos);
  EXPECT_NE(grid[0].runs[1].label.find("#1"), std::string::npos);
  EXPECT_NE(grid[0].runs[0].label.find("full"), std::string::npos);
}

}  // namespace
}  // namespace dreamsim::core
