// Golden-metrics regression pin: the seed-42 Table II fault-free runs
// (default SimulationConfig, both reconfiguration modes) must reproduce
// these MetricsReport values exactly. Any intentional change to scheduling,
// metering, or metrics must update the constants here — silently shifted
// numbers are the bug this test exists to catch. The fault block must stay
// all-zero: fault injection is disabled by default and must not perturb
// fault-free runs.
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace dreamsim::core {
namespace {

struct Golden {
  const char* policy_name;
  const char* mode_name;
  std::uint64_t completed_tasks;
  std::uint64_t discarded_tasks;
  std::uint64_t suspended_ever;
  std::uint64_t closest_match_tasks;
  double avg_wasted_area_per_task;
  double avg_task_running_time;
  double avg_reconfig_count_per_node;
  double avg_config_time_per_task;
  double avg_waiting_time_per_task;
  double avg_scheduling_steps_per_task;
  Steps total_scheduler_workload;
  std::size_t total_used_nodes;
  Tick total_simulation_time;
  Steps scheduling_steps_total;
  Steps housekeeping_steps_total;
  std::uint64_t total_reconfigurations;
  Tick total_configuration_time;
  double avg_suspension_retries;
  std::uint64_t placements_by_kind[5];
};

void ExpectGolden(sched::ReconfigMode mode, const Golden& g) {
  SimulationConfig config;  // Table II defaults, seed 42, faults disabled
  config.mode = mode;
  Simulator sim(std::move(config));
  const MetricsReport r = sim.Run();

  EXPECT_EQ(r.policy_name, g.policy_name);
  EXPECT_EQ(r.mode_name, g.mode_name);
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.total_nodes, 200u);
  EXPECT_EQ(r.total_configs, 50u);
  EXPECT_EQ(r.total_tasks, 1000u);
  EXPECT_EQ(r.completed_tasks, g.completed_tasks);
  EXPECT_EQ(r.discarded_tasks, g.discarded_tasks);
  EXPECT_EQ(r.suspended_ever, g.suspended_ever);
  EXPECT_EQ(r.closest_match_tasks, g.closest_match_tasks);
  EXPECT_DOUBLE_EQ(r.avg_wasted_area_per_task, g.avg_wasted_area_per_task);
  EXPECT_DOUBLE_EQ(r.avg_task_running_time, g.avg_task_running_time);
  EXPECT_DOUBLE_EQ(r.avg_reconfig_count_per_node,
                   g.avg_reconfig_count_per_node);
  EXPECT_DOUBLE_EQ(r.avg_config_time_per_task, g.avg_config_time_per_task);
  EXPECT_DOUBLE_EQ(r.avg_waiting_time_per_task, g.avg_waiting_time_per_task);
  EXPECT_DOUBLE_EQ(r.avg_scheduling_steps_per_task,
                   g.avg_scheduling_steps_per_task);
  EXPECT_EQ(r.total_scheduler_workload, g.total_scheduler_workload);
  EXPECT_EQ(r.total_used_nodes, g.total_used_nodes);
  EXPECT_EQ(r.total_simulation_time, g.total_simulation_time);
  EXPECT_EQ(r.scheduling_steps_total, g.scheduling_steps_total);
  EXPECT_EQ(r.housekeeping_steps_total, g.housekeeping_steps_total);
  EXPECT_EQ(r.total_reconfigurations, g.total_reconfigurations);
  EXPECT_EQ(r.total_configuration_time, g.total_configuration_time);
  EXPECT_DOUBLE_EQ(r.avg_suspension_retries, g.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(r.placements_by_kind[k], g.placements_by_kind[k])
        << "kind " << k;
  }

  // Extension knobs are off by default: their metrics must be zero.
  EXPECT_EQ(r.bitstream_hits, 0u);
  EXPECT_EQ(r.bitstream_misses, 0u);
  EXPECT_EQ(r.bitstream_transfer_time, 0);
  EXPECT_EQ(r.failures_injected, 0u);
  EXPECT_EQ(r.repairs_completed, 0u);
  EXPECT_EQ(r.tasks_killed, 0u);
  EXPECT_EQ(r.tasks_recovered, 0u);
  EXPECT_EQ(r.tasks_lost_to_failure, 0u);
  EXPECT_EQ(r.lost_work_area_ticks, 0u);
  EXPECT_EQ(r.total_downtime, 0);
}

TEST(GoldenMetrics, Seed42FullMode) {
  ExpectGolden(sched::ReconfigMode::kFull,
               Golden{"dreamsim-full",
                      "full",
                      999,
                      1,
                      791,
                      157,
                      252044.84899999999,
                      132316.4974974975,
                      1.6399999999999999,
                      5.0519999999999996,
                      81847.36036036037,
                      566.94000000000005,
                      584999,
                      200,
                      305126,
                      566940,
                      18059,
                      328,
                      5052,
                      0.0,
                      {671, 200, 0, 0, 128}});
}

TEST(GoldenMetrics, Seed42PartialMode) {
  ExpectGolden(sched::ReconfigMode::kPartial,
               Golden{"dreamsim-partial",
                      "partial",
                      999,
                      1,
                      488,
                      157,
                      70573.197,
                      66251.045045045044,
                      4.415,
                      13.787000000000001,
                      15781.9079079079,
                      1158.2629999999999,
                      1178318,
                      200,
                      187696,
                      1158263,
                      20055,
                      883,
                      13787,
                      0.36536536536536535,
                      {116, 200, 291, 392, 0}});
}

}  // namespace
}  // namespace dreamsim::core
