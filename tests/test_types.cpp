// Tests for the strong identifier types.
#include "util/types.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace dreamsim {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongId, ConstructedIsValid) {
  NodeId id{5};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 5u);
}

TEST(StrongId, Comparisons) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
  EXPECT_LT(NodeId{3}, NodeId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ConfigId>);
  static_assert(!std::is_same_v<TaskId, PtypeId>);
  static_assert(!std::is_convertible_v<NodeId, ConfigId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId{1});
  set.insert(TaskId{2});
  set.insert(TaskId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(TaskId{2}));
}

TEST(StrongId, StreamOutput) {
  std::ostringstream out;
  out << NodeId{7} << " " << NodeId::invalid();
  EXPECT_EQ(out.str(), "7 <invalid>");
}

}  // namespace
}  // namespace dreamsim
