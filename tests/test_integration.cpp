// Integration tests: the paper's qualitative results (Sec. VI) as golden
// orderings, at reduced scale. These are the "does the reproduction
// reproduce" tests — every Fig. 6-10 claim is asserted.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "workload/trace.hpp"

#include <sstream>

namespace dreamsim::core {
namespace {

/// Reduced-scale Table II configuration (full Table II values except task
/// count, which tests scale down for speed).
SimulationConfig PaperConfig(int nodes, int tasks, std::uint64_t seed = 42) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.tasks.total_tasks = tasks;
  config.seed = seed;
  return config;
}

MetricsReport RunMode(sched::ReconfigMode mode, int nodes, int tasks,
                      std::uint64_t seed = 42) {
  SimulationConfig config = PaperConfig(nodes, tasks, seed);
  config.mode = mode;
  Simulator sim(std::move(config));
  return sim.Run();
}

class PaperOrderings : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    full_ = new MetricsReport(RunMode(sched::ReconfigMode::kFull, 200, 8000));
    partial_ =
        new MetricsReport(RunMode(sched::ReconfigMode::kPartial, 200, 8000));
  }
  static void TearDownTestSuite() {
    delete full_;
    delete partial_;
    full_ = nullptr;
    partial_ = nullptr;
  }
  static const MetricsReport* full_;
  static const MetricsReport* partial_;
};

const MetricsReport* PaperOrderings::full_ = nullptr;
const MetricsReport* PaperOrderings::partial_ = nullptr;

TEST_F(PaperOrderings, Fig6PartialWastesLessAreaPerTask) {
  EXPECT_LT(partial_->avg_wasted_area_per_task,
            full_->avg_wasted_area_per_task);
}

TEST_F(PaperOrderings, Fig7PartialReconfiguresMorePerNode) {
  EXPECT_GT(partial_->avg_reconfig_count_per_node,
            full_->avg_reconfig_count_per_node);
}

TEST_F(PaperOrderings, Fig8PartialWaitsLess) {
  EXPECT_LT(partial_->avg_waiting_time_per_task,
            full_->avg_waiting_time_per_task);
}

TEST_F(PaperOrderings, Fig9aPartialNeedsFewerSchedulingSteps) {
  EXPECT_LT(partial_->avg_scheduling_steps_per_task,
            full_->avg_scheduling_steps_per_task);
}

TEST_F(PaperOrderings, Fig9bFullHasHigherTotalWorkload) {
  EXPECT_GT(full_->total_scheduler_workload,
            partial_->total_scheduler_workload);
}

TEST_F(PaperOrderings, Fig10PartialHasHigherConfigTimePerTask) {
  EXPECT_GT(partial_->avg_config_time_per_task,
            full_->avg_config_time_per_task);
}

TEST_F(PaperOrderings, PartialFinishesTheWorkloadSooner) {
  // More tasks per node => higher throughput => shorter total simulation.
  EXPECT_LT(partial_->total_simulation_time, full_->total_simulation_time);
}

TEST_F(PaperOrderings, BothModesTerminateEveryTask) {
  EXPECT_EQ(full_->completed_tasks + full_->discarded_tasks, 8000u);
  EXPECT_EQ(partial_->completed_tasks + partial_->discarded_tasks, 8000u);
}

// Cross-node-count claims (Sec. VI-A text).
class NodeCountEffects : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    n100_ = new MetricsReport(
        RunMode(sched::ReconfigMode::kPartial, 100, 6000));
    n200_ = new MetricsReport(
        RunMode(sched::ReconfigMode::kPartial, 200, 6000));
  }
  static void TearDownTestSuite() {
    delete n100_;
    delete n200_;
    n100_ = nullptr;
    n200_ = nullptr;
  }
  static const MetricsReport* n100_;
  static const MetricsReport* n200_;
};

const MetricsReport* NodeCountEffects::n100_ = nullptr;
const MetricsReport* NodeCountEffects::n200_ = nullptr;

TEST_F(NodeCountEffects, FewerNodesWaitLonger) {
  // "In case of 100 nodes ... the average waiting time per task is very
  // high due to a fewer number of nodes."
  EXPECT_GT(n100_->avg_waiting_time_per_task,
            n200_->avg_waiting_time_per_task);
}

TEST_F(NodeCountEffects, FewerNodesReconfigureMore) {
  // "It is expected that fewer number of nodes (100 nodes) will be
  // reconfigured more."
  EXPECT_GT(n100_->avg_reconfig_count_per_node,
            n200_->avg_reconfig_count_per_node);
}

TEST_F(NodeCountEffects, MoreNodesAccumulateMoreWaste) {
  // "The scheduler has a choice of more number of nodes (200 nodes)...
  // as a result, the total accumulated wasted area is more."
  EXPECT_GT(n200_->avg_wasted_area_per_task,
            n100_->avg_wasted_area_per_task);
}

// End-to-end trace replay through the same scheduling path.
TEST(TraceReplayIntegration, TraceReproducesSyntheticRun) {
  SimulationConfig config = PaperConfig(20, 500, 9);

  // Run once synthetically and capture the workload by regenerating it
  // with the same derived seed the simulator uses.
  Simulator synthetic(config);
  const MetricsReport direct = synthetic.Run();

  // Rebuild the identical workload; write + read it as a trace; replay.
  Rng workload_rng(DeriveSeed(config.seed, 1));
  Rng catalogue_rng(DeriveSeed(config.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      config.configs, ptype::Catalogue::Default(), catalogue_rng);
  const workload::Workload wl =
      workload::GenerateWorkload(config.tasks, catalogue, workload_rng);

  std::stringstream buffer;
  workload::WriteTrace(buffer, wl);
  const workload::Workload replayed = workload::ReadTrace(buffer);

  Simulator replay(config);
  const MetricsReport via_trace = replay.RunWithWorkload(replayed);

  EXPECT_EQ(via_trace.completed_tasks, direct.completed_tasks);
  EXPECT_EQ(via_trace.discarded_tasks, direct.discarded_tasks);
  EXPECT_EQ(via_trace.total_simulation_time, direct.total_simulation_time);
  EXPECT_EQ(via_trace.total_scheduler_workload,
            direct.total_scheduler_workload);
}

TEST(SweepIntegration, WasteOrderingHoldsAcrossTaskSweep) {
  SweepParams params;
  params.base = PaperConfig(50, 0, 21);
  params.task_counts = {500, 1500, 3000};
  params.modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
  const auto reports = RunSweep(params);
  ASSERT_EQ(reports.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(reports[3 + i].avg_wasted_area_per_task,
              reports[i].avg_wasted_area_per_task)
        << "task count index " << i;
    EXPECT_LT(reports[3 + i].avg_waiting_time_per_task,
              reports[i].avg_waiting_time_per_task)
        << "task count index " << i;
  }
}

}  // namespace
}  // namespace dreamsim::core
