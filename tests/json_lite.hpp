// Test-only minimal JSON syntax checker (no external deps): validates that
// a string is one well-formed JSON value. Used to vet the observability
// layer's emitted documents without a third-party parser.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace dreamsim::testjson {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one JSON value (plus whitespace).
  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  [[nodiscard]] std::string Error() const {
    return "JSON syntax error near offset " + std::to_string(pos_) + ": '" +
           std::string(text_.substr(pos_, 24)) + "'";
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool IsValidJson(std::string_view text) {
  return Checker(text).Valid();
}

}  // namespace dreamsim::testjson
