// Tests for the process-global logger.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dreamsim {
namespace {

struct Captured {
  LogLevel level;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::SetSink([this](LogLevel level, std::string_view msg) {
      captured_.push_back({level, std::string(msg)});
    });
    Log::SetLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    Log::SetSink(nullptr);
    Log::SetLevel(LogLevel::kWarning);
  }
  std::vector<Captured> captured_;
};

TEST_F(LogTest, PassesMessagesAtOrAboveLevel) {
  Log::Message(LogLevel::kInfo, "info {}", 1);
  Log::Message(LogLevel::kError, "error");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "info 1");
  EXPECT_EQ(captured_[1].level, LogLevel::kError);
}

TEST_F(LogTest, FiltersBelowLevel) {
  Log::Message(LogLevel::kDebug, "hidden");
  Log::Message(LogLevel::kTrace, "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelChangeTakesEffect) {
  Log::SetLevel(LogLevel::kError);
  Log::Message(LogLevel::kWarning, "hidden");
  Log::SetLevel(LogLevel::kTrace);
  Log::Message(LogLevel::kTrace, "visible");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "visible");
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::SetLevel(LogLevel::kOff);
  Log::Message(LogLevel::kError, "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, MacroForwardsToSink) {
  DREAMSIM_LOG(LogLevel::kInfo, "x={} y={}", 1, 2);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "x=1 y=2");
}

TEST(LogLevelNames, ToStringCoversAll) {
  EXPECT_EQ(ToString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(ToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(ToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(ToString(LogLevel::kWarning), "WARN");
  EXPECT_EQ(ToString(LogLevel::kError), "ERROR");
  EXPECT_EQ(ToString(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dreamsim
