// Tests for the process-global logger, including the thread-safety
// regression for concurrent Write/SetSink (ISSUE satellite c).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace dreamsim {
namespace {

struct Captured {
  LogLevel level;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::SetSink([this](LogLevel level, std::string_view msg) {
      captured_.push_back({level, std::string(msg)});
    });
    Log::SetLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    Log::SetSink(nullptr);
    Log::SetLevel(LogLevel::kWarning);
  }
  std::vector<Captured> captured_;
};

TEST_F(LogTest, PassesMessagesAtOrAboveLevel) {
  Log::Message(LogLevel::kInfo, "info {}", 1);
  Log::Message(LogLevel::kError, "error");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "info 1");
  EXPECT_EQ(captured_[1].level, LogLevel::kError);
}

TEST_F(LogTest, FiltersBelowLevel) {
  Log::Message(LogLevel::kDebug, "hidden");
  Log::Message(LogLevel::kTrace, "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelChangeTakesEffect) {
  Log::SetLevel(LogLevel::kError);
  Log::Message(LogLevel::kWarning, "hidden");
  Log::SetLevel(LogLevel::kTrace);
  Log::Message(LogLevel::kTrace, "visible");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "visible");
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::SetLevel(LogLevel::kOff);
  Log::Message(LogLevel::kError, "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, MacroForwardsToSink) {
  DREAMSIM_LOG(LogLevel::kInfo, "x={} y={}", 1, 2);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "x=1 y=2");
}

TEST(LogConcurrency, ConcurrentWritesAndSinkSwapsAreSafe) {
  // Regression: Log::Message and Log::SetSink race from different threads
  // (parallel sweeps log while the driver re-installs sinks). The sink
  // mutex must serialize them — no torn sink calls, no lost messages while
  // a sink is installed. Run under TSan/ASan this is the actual check; the
  // count assertions below catch gross breakage everywhere else.
  std::atomic<std::uint64_t> delivered{0};
  Log::SetLevel(LogLevel::kInfo);
  Log::SetSink([&delivered](LogLevel, std::string_view msg) {
    // Touch the payload so a dangling message buffer would be caught.
    if (!msg.empty() && msg.front() == 'm') delivered.fetch_add(1);
  });

  constexpr int kWriters = 4;
  constexpr int kMessages = 2'000;
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    // Continuously re-install the same counting sink while writers log.
    while (!stop.load()) {
      Log::SetSink([&delivered](LogLevel, std::string_view msg) {
        if (!msg.empty() && msg.front() == 'm') delivered.fetch_add(1);
      });
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kMessages; ++i) {
        Log::Message(LogLevel::kInfo, "msg {} {}", t, i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  swapper.join();
  Log::SetSink(nullptr);
  Log::SetLevel(LogLevel::kWarning);
  // Every message was delivered to exactly one sink generation.
  EXPECT_EQ(delivered.load(),
            static_cast<std::uint64_t>(kWriters) * kMessages);
}

TEST(LogLevelNames, ToStringCoversAll) {
  EXPECT_EQ(ToString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(ToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(ToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(ToString(LogLevel::kWarning), "WARN");
  EXPECT_EQ(ToString(LogLevel::kError), "ERROR");
  EXPECT_EQ(ToString(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dreamsim
