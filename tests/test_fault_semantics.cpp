// Regression tests for the fault subsystem's arming/recovery semantics
// (DESIGN.md §10), pinning three behaviours around the submitted-vs-terminal
// liveness counter:
//   1. arming is idempotent: a graph session's pre-run root submissions plus
//      the run start must not stack two renewal chains per node;
//   2. scripted events survive a momentary drain (every completion of a
//      chain-shaped workload makes terminal == submitted for an instant) —
//      a reviving submission re-schedules the unfired remainder;
//   3. lost_work_area_ticks charges only destroyed *execution*, never the
//      comm/config setup window of a task killed before it started running.
#include <gtest/gtest.h>

#include <vector>

#include "core/graph_session.hpp"
#include "core/simulator.hpp"
#include "workload/task_graph.hpp"

namespace dreamsim {
namespace {

using core::FaultAction;
using core::GraphRunResult;
using core::MetricsReport;
using core::RunGraph;
using core::SimEvent;
using core::SimulationConfig;
using core::Simulator;

workload::GeneratedTask MakeTask(Tick create, Tick required,
                                 std::uint32_t preferred) {
  workload::GeneratedTask t;
  t.create_time = create;
  t.preferred_config = ConfigId{preferred};
  t.needed_area = 400;
  t.required_time = required;
  return t;
}

struct RunResult {
  std::vector<SimEvent> events;
  MetricsReport report;
};

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    ASSERT_EQ(a.events[i].tick, b.events[i].tick) << "event " << i;
    ASSERT_EQ(a.events[i].task, b.events[i].task) << "event " << i;
    ASSERT_EQ(a.events[i].node, b.events[i].node) << "event " << i;
    ASSERT_EQ(a.events[i].config, b.events[i].config) << "event " << i;
  }
  EXPECT_EQ(a.report.failures_injected, b.report.failures_injected);
  EXPECT_EQ(a.report.repairs_completed, b.report.repairs_completed);
  EXPECT_EQ(a.report.tasks_killed, b.report.tasks_killed);
  EXPECT_EQ(a.report.tasks_recovered, b.report.tasks_recovered);
  EXPECT_EQ(a.report.tasks_lost_to_failure, b.report.tasks_lost_to_failure);
  EXPECT_EQ(a.report.lost_work_area_ticks, b.report.lost_work_area_ticks);
  EXPECT_EQ(a.report.total_downtime, b.report.total_downtime);
  EXPECT_EQ(a.report.completed_tasks, b.report.completed_tasks);
  EXPECT_EQ(a.report.discarded_tasks, b.report.discarded_tasks);
  EXPECT_EQ(a.report.total_simulation_time, b.report.total_simulation_time);
}

SimulationConfig ProcessConfig() {
  SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 6;
  config.seed = 11;
  config.faults.mtbf = 1'500;
  config.faults.mttr = 300;
  return config;
}

// Pre-run SubmitTaskAt (how a graph session feeds its roots) and a plain
// workload run must arm one failure process per node, not two: the runs
// must be tick-for-tick identical, including Eq. 5's end time.
TEST(FaultSemantics, PreRunSubmissionsArmTheFailureProcessOnce) {
  std::vector<workload::GeneratedTask> tasks;
  for (int i = 0; i < 60; ++i) {
    tasks.push_back(MakeTask(/*create=*/i % 7, /*required=*/300 + 40 * (i % 5),
                             /*preferred=*/static_cast<std::uint32_t>(i % 6)));
  }

  RunResult via_submit;
  {
    Simulator sim(ProcessConfig());
    sim.SetEventLogger(
        [&](const SimEvent& e) { via_submit.events.push_back(e); });
    for (const workload::GeneratedTask& t : tasks) {
      (void)sim.SubmitTaskAt(t, t.create_time);
    }
    via_submit.report = sim.RunWithWorkload({});
  }

  RunResult via_workload;
  {
    Simulator sim(ProcessConfig());
    sim.SetEventLogger(
        [&](const SimEvent& e) { via_workload.events.push_back(e); });
    via_workload.report = sim.RunWithWorkload(tasks);
  }

  // Vacuous unless the process actually fired.
  ASSERT_GT(via_workload.report.failures_injected, 0u);
  ExpectSameRun(via_submit, via_workload);
}

// A chain-shaped workload drains the system at every completion
// (terminal == submitted holds for an instant before the hook submits the
// successor). Scripted events timed after the first completion must still
// fire once the revive happens.
TEST(FaultSemantics, ScriptedFaultsSurviveMomentaryDrain) {
  SimulationConfig config;
  config.nodes.count = 3;
  config.configs.count = 4;
  config.seed = 5;
  config.faults.script = {{40'000, NodeId{0}, FaultAction::kFail},
                          {40'000, NodeId{1}, FaultAction::kFail},
                          {40'000, NodeId{2}, FaultAction::kFail},
                          {45'000, NodeId{0}, FaultAction::kRepair},
                          {45'000, NodeId{1}, FaultAction::kRepair},
                          {45'000, NodeId{2}, FaultAction::kRepair}};
  Simulator sim(std::move(config));
  bool successor_submitted = false;
  sim.SetCompletionHook([&](TaskId, Tick now) {
    if (successor_submitted) return;
    successor_submitted = true;
    (void)sim.SubmitTaskAt(MakeTask(now, /*required=*/200'000, 1), now);
  });
  const MetricsReport r =
      sim.RunWithWorkload({MakeTask(0, /*required=*/10, 0)});

  ASSERT_TRUE(successor_submitted);
  // The mass failure at t=40k (long after the first task completed, while
  // the successor is running) and the repairs at t=45k both fired.
  EXPECT_EQ(r.failures_injected, 3u);
  EXPECT_EQ(r.repairs_completed, 3u);
  EXPECT_EQ(r.tasks_killed, 1u);
  // The killed successor was re-placed after repair and finished.
  EXPECT_EQ(r.tasks_recovered, 1u);
  EXPECT_EQ(r.completed_tasks, 2u);
}

// Same scenario through the public graph-session API: a two-vertex chain
// whose only fault events lie beyond the first vertex's completion.
TEST(FaultSemantics, GraphChainDeliversScriptedFaultsAfterFirstCompletion) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(MakeTask(0, /*required=*/10, 0));
  const auto b = g.AddVertex(MakeTask(0, /*required=*/200'000, 1));
  g.AddEdge(a, b);

  SimulationConfig config;
  config.nodes.count = 3;
  config.configs.count = 4;
  config.seed = 5;
  config.faults.script = {{40'000, NodeId{0}, FaultAction::kFail},
                          {40'000, NodeId{1}, FaultAction::kFail},
                          {40'000, NodeId{2}, FaultAction::kFail},
                          {45'000, NodeId{0}, FaultAction::kRepair},
                          {45'000, NodeId{1}, FaultAction::kRepair},
                          {45'000, NodeId{2}, FaultAction::kRepair}};

  const GraphRunResult result = RunGraph(config, g);
  EXPECT_EQ(result.metrics.failures_injected, 3u);
  EXPECT_EQ(result.metrics.tasks_killed, 1u);
  EXPECT_EQ(result.completed_vertices, 2u);
}

// A task killed at t=1 is still inside its comm/config window (every
// catalogue configuration takes >= 10 ticks to load onto a blank node):
// no execution was destroyed, so no lost work may be charged.
TEST(FaultSemantics, KillInsideSetupWindowChargesNoLostWork) {
  SimulationConfig config;
  config.nodes.count = 4;
  config.configs.count = 4;
  config.seed = 7;
  config.faults.script = {{1, NodeId{0}, FaultAction::kFail},
                          {1, NodeId{1}, FaultAction::kFail},
                          {1, NodeId{2}, FaultAction::kFail},
                          {1, NodeId{3}, FaultAction::kFail}};
  Simulator sim(std::move(config));
  const MetricsReport r =
      sim.RunWithWorkload({MakeTask(0, /*required=*/1'000, 0)});

  ASSERT_EQ(r.tasks_killed, 1u);  // placed at t=0, killed mid-setup at t=1
  EXPECT_EQ(r.lost_work_area_ticks, 0u);
}

// A task killed mid-execution charges area x executed ticks only: the
// charge must exclude the >= 10-tick configuration load (plus any comm
// time) that preceded execution.
TEST(FaultSemantics, KillDuringExecutionExcludesSetupTicks) {
  SimulationConfig config;
  config.nodes.count = 4;
  config.configs.count = 4;
  config.seed = 7;
  const Tick kill_at = 5'000;
  config.faults.script = {{kill_at, NodeId{0}, FaultAction::kFail},
                          {kill_at, NodeId{1}, FaultAction::kFail},
                          {kill_at, NodeId{2}, FaultAction::kFail},
                          {kill_at, NodeId{3}, FaultAction::kFail}};
  Simulator sim(std::move(config));
  Tick placed_at = 0;
  ConfigId placed_config;
  sim.SetEventLogger([&](const SimEvent& e) {
    if (e.kind == SimEvent::Kind::kPlaced) {
      placed_at = e.tick;
      placed_config = e.config;
    }
  });
  const MetricsReport r =
      sim.RunWithWorkload({MakeTask(0, /*required=*/100'000, 0)});

  ASSERT_EQ(r.tasks_killed, 1u);
  ASSERT_TRUE(placed_config.valid());
  const std::uint64_t area =
      sim.store().configs().Get(placed_config).required_area;
  EXPECT_GT(r.lost_work_area_ticks, 0u);
  // Strictly less than the naive placement-to-kill span: the setup window
  // (config load >= 10 ticks) must not be charged.
  EXPECT_LE(r.lost_work_area_ticks, area * (kill_at - placed_at - 10));
}

}  // namespace
}  // namespace dreamsim
