// Tests for obs::RunTracer: JSONL schema, Chrome trace-event document
// shape, span bookkeeping (tasks, configs, downtime), and observer purity.
#include "obs/run_tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "json_lite.hpp"

namespace dreamsim::obs {
namespace {

core::SimulationConfig SmallConfig(int tasks, int nodes,
                                   std::uint64_t seed = 11) {
  core::SimulationConfig config;
  config.nodes.count = nodes;
  config.configs.count = 6;
  config.tasks.total_tasks = tasks;
  config.seed = seed;
  return config;
}

/// Runs a small simulation with a tracer attached; returns the rendered
/// document and the final report.
std::string TraceRun(core::SimulationConfig config, TraceFormat format,
                     core::MetricsReport* report_out = nullptr,
                     std::size_t* events_out = nullptr) {
  std::ostringstream out;
  core::Simulator sim(std::move(config));
  RunTracer::RunInfo info;
  info.label = "test";
  info.mode = "partial";
  info.seed = 11;
  info.nodes = sim.store().node_count();
  RunTracer tracer(out, format, info);
  sim.SetEventLogger(
      [&tracer](const core::SimEvent& e) { tracer.OnEvent(e); });
  const core::MetricsReport report = sim.Run();
  tracer.Finish(sim.kernel().now());
  if (report_out) *report_out = report;
  if (events_out) *events_out = tracer.events_seen();
  return out.str();
}

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceFormatNames, RoundTrip) {
  EXPECT_EQ(ToString(TraceFormat::kJsonl), "jsonl");
  EXPECT_EQ(ToString(TraceFormat::kChrome), "chrome");
  EXPECT_EQ(ParseTraceFormat("jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(ParseTraceFormat("chrome"), TraceFormat::kChrome);
  EXPECT_FALSE(ParseTraceFormat("perfetto").has_value());
  EXPECT_FALSE(ParseTraceFormat("").has_value());
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(RunTracerJsonl, EveryLineIsValidJsonAndMetaComesFirst) {
  std::size_t events = 0;
  const std::string doc =
      TraceRun(SmallConfig(200, 8), TraceFormat::kJsonl, nullptr, &events);
  std::istringstream lines(doc);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(testjson::IsValidJson(line)) << "line " << count << ": "
                                             << line;
    if (count == 0) {
      EXPECT_NE(line.find("\"type\":\"meta\""), std::string::npos);
      EXPECT_NE(line.find("\"label\":\"test\""), std::string::npos);
      EXPECT_NE(line.find("\"nodes\":8"), std::string::npos);
    } else {
      // Event lines carry a tick and a kind (and no "type" key — only the
      // meta line has one).
      EXPECT_NE(line.find("{\"tick\":"), std::string::npos);
      EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
      EXPECT_EQ(line.find("\"type\":"), std::string::npos);
    }
    ++count;
  }
  EXPECT_EQ(count, events + 1);  // meta line + one line per event
  EXPECT_GT(events, 0u);
}

TEST(RunTracerJsonl, EventCountsMatchReport) {
  core::MetricsReport report;
  const std::string doc =
      TraceRun(SmallConfig(300, 8), TraceFormat::kJsonl, &report);
  EXPECT_EQ(CountOccurrences(doc, "\"kind\":\"arrival\""),
            report.total_tasks);
  EXPECT_EQ(CountOccurrences(doc, "\"kind\":\"completed\""),
            report.completed_tasks);
  EXPECT_EQ(CountOccurrences(doc, "\"kind\":\"placed\""),
            report.completed_tasks);
  // Placed events carry the placement phase and setup delays.
  EXPECT_EQ(CountOccurrences(doc, "\"placement\":\""),
            report.completed_tasks);
  EXPECT_EQ(CountOccurrences(doc, "\"config_wait\":"),
            report.completed_tasks);
}

TEST(RunTracerChrome, DocumentIsValidJsonWithExpectedTracks) {
  core::MetricsReport report;
  const std::string doc =
      TraceRun(SmallConfig(300, 8), TraceFormat::kChrome, &report);
  ASSERT_TRUE(testjson::IsValidJson(doc)) << testjson::Checker(doc).Error();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"scheduler\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"node 0\""), std::string::npos);
  // One execution span per completed task.
  EXPECT_EQ(CountOccurrences(doc, "\"cat\": \"task\""),
            report.completed_tasks);
  // Arrivals land as instant events on the scheduler track.
  EXPECT_EQ(CountOccurrences(doc, "\"ph\": \"i\"") > 0, true);
  EXPECT_EQ(CountOccurrences(doc, "arrival task "), report.total_tasks);
}

TEST(RunTracerChrome, FaultRunEmitsDowntimeAndKilledSpans) {
  core::SimulationConfig config = SmallConfig(300, 8, 5);
  config.faults.script = {{400, NodeId{1}, core::FaultAction::kFail},
                          {5000, NodeId{1}, core::FaultAction::kRepair}};
  config.max_suspension_retries = 8;
  core::MetricsReport report;
  std::ostringstream out;
  core::Simulator sim(std::move(config));
  RunTracer::RunInfo info;
  info.nodes = sim.store().node_count();
  RunTracer tracer(out, TraceFormat::kChrome, info);
  sim.SetEventLogger(
      [&tracer](const core::SimEvent& e) { tracer.OnEvent(e); });
  report = sim.Run();
  tracer.Finish(sim.kernel().now());
  const std::string doc = out.str();
  ASSERT_TRUE(testjson::IsValidJson(doc)) << testjson::Checker(doc).Error();
  ASSERT_GT(report.failures_injected, 0u);
  EXPECT_EQ(CountOccurrences(doc, "\"name\": \"DOWN\""),
            report.failures_injected);
  if (report.tasks_killed > 0) {
    EXPECT_EQ(CountOccurrences(doc, "\"cat\": \"task-killed\""),
              report.tasks_killed);
  }
}

TEST(RunTracerChrome, StillOpenSpansAreClosedAtFinish) {
  // Feed a placement without a completion; Finish must clip the span.
  std::ostringstream out;
  RunTracer::RunInfo info;
  info.nodes = 2;
  RunTracer tracer(out, TraceFormat::kChrome, info);
  core::SimEvent placed{core::SimEvent::Kind::kPlaced, 10, TaskId{0},
                        NodeId{1}, ConfigId{3}};
  placed.placement = sched::PlacementKind::kConfiguration;
  placed.comm_time = 2;
  placed.config_wait = 5;
  tracer.OnEvent(placed);
  core::SimEvent failed{core::SimEvent::Kind::kNodeFailed, 20,
                        TaskId::invalid(), NodeId{0}, ConfigId::invalid()};
  tracer.OnEvent(failed);
  tracer.Finish(100);
  const std::string doc = out.str();
  ASSERT_TRUE(testjson::IsValidJson(doc)) << testjson::Checker(doc).Error();
  EXPECT_EQ(CountOccurrences(doc, "\"cat\": \"task\""), 1u);
  EXPECT_EQ(CountOccurrences(doc, "\"cat\": \"setup\""), 1u);
  EXPECT_EQ(CountOccurrences(doc, "\"cat\": \"config\""), 1u);
  EXPECT_EQ(CountOccurrences(doc, "\"name\": \"DOWN\""), 1u);
  EXPECT_TRUE(tracer.finished());
}

TEST(RunTracerChrome, FinishIsIdempotent) {
  std::ostringstream out;
  RunTracer::RunInfo info;
  info.nodes = 1;
  RunTracer tracer(out, TraceFormat::kChrome, info);
  tracer.Finish(50);
  const std::string once = out.str();
  tracer.Finish(80);
  EXPECT_EQ(out.str(), once);
  ASSERT_TRUE(testjson::IsValidJson(once));
}

TEST(RunTracer, FileConstructorThrowsOnUnwritablePath) {
  EXPECT_THROW(RunTracer("/nonexistent-dir/trace.json", TraceFormat::kJsonl,
                         RunTracer::RunInfo{}),
               std::runtime_error);
}

TEST(RunTracer, PureObserverKeepsMetricsIdentical) {
  core::MetricsReport traced;
  (void)TraceRun(SmallConfig(250, 8, 17), TraceFormat::kChrome, &traced);
  core::Simulator plain(SmallConfig(250, 8, 17));
  const core::MetricsReport baseline = plain.Run();
  EXPECT_EQ(traced.total_scheduler_workload,
            baseline.total_scheduler_workload);
  EXPECT_EQ(traced.total_simulation_time, baseline.total_simulation_time);
  EXPECT_EQ(traced.avg_waiting_time_per_task,
            baseline.avg_waiting_time_per_task);
}

}  // namespace
}  // namespace dreamsim::obs
