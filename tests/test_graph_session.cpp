// Tests for the task-graph scheduling session (future-work extension).
#include "core/graph_session.hpp"

#include <gtest/gtest.h>

#include "ptype/catalogue.hpp"

namespace dreamsim::core {
namespace {

SimulationConfig GraphConfig(int nodes = 10, std::uint64_t seed = 3) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.configs.count = 6;
  config.seed = seed;
  return config;
}

workload::GeneratedTask Payload(std::uint32_t preferred, Tick required) {
  workload::GeneratedTask t;
  t.preferred_config = ConfigId{preferred};
  t.needed_area = 500;  // generous; the generated catalogue varies
  t.required_time = required;
  return t;
}

TEST(GraphSession, LinearChainRunsSequentially) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(0, 100));
  const auto b = g.AddVertex(Payload(1, 100));
  const auto c = g.AddVertex(Payload(2, 100));
  g.AddEdge(a, b);
  g.AddEdge(b, c);

  const GraphRunResult result = RunGraph(GraphConfig(), g);
  EXPECT_EQ(result.completed_vertices, 3u);
  EXPECT_EQ(result.discarded_vertices, 0u);
  // Three dependent 100-tick tasks cannot finish faster than 300 ticks.
  EXPECT_GE(result.makespan, 300);
}

TEST(GraphSession, ParallelFanOutOverlaps) {
  // One root releasing W independent children: with enough nodes the
  // children overlap, so makespan ~ root + child, not root + W * child.
  workload::TaskGraph g;
  const auto root = g.AddVertex(Payload(0, 100));
  for (int i = 0; i < 6; ++i) {
    const auto child = g.AddVertex(Payload(1, 100));
    g.AddEdge(root, child);
  }
  const GraphRunResult result = RunGraph(GraphConfig(30), g);
  EXPECT_EQ(result.completed_vertices, 7u);
  EXPECT_LT(result.makespan, 100 + 6 * 100);
}

TEST(GraphSession, CyclicGraphThrows) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(0, 100));
  const auto b = g.AddVertex(Payload(1, 100));
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  EXPECT_THROW((void)RunGraph(GraphConfig(), g), std::runtime_error);
}

TEST(GraphSession, EmptyGraph) {
  const workload::TaskGraph g;
  const GraphRunResult result = RunGraph(GraphConfig(), g);
  EXPECT_EQ(result.completed_vertices, 0u);
  EXPECT_EQ(result.makespan, 0);
}

TEST(GraphSession, DiscardedVertexStrandsSuccessors) {
  // The middle vertex needs more area than any node or configuration can
  // provide: it is discarded, and its successor never becomes runnable.
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(0, 50));
  workload::GeneratedTask impossible;
  impossible.preferred_config = ConfigId::invalid();
  impossible.needed_area = 1000000;
  impossible.required_time = 50;
  const auto b = g.AddVertex(impossible);
  const auto c = g.AddVertex(Payload(1, 50));
  g.AddEdge(a, b);
  g.AddEdge(b, c);

  const GraphRunResult result = RunGraph(GraphConfig(), g);
  EXPECT_EQ(result.completed_vertices, 1u);
  EXPECT_EQ(result.discarded_vertices, 2u);  // b discarded + c stranded
}

TEST(GraphSession, LayeredGraphCompletes) {
  Rng rng(9);
  SimulationConfig config = GraphConfig(20, 9);
  // Build the catalogue exactly like the simulator will (same sub-seed),
  // so vertex payloads reference valid configurations.
  workload::GraphGenParams params;
  params.layers = 4;
  params.width = 5;
  params.task_params.min_required_time = 50;
  params.task_params.max_required_time = 200;
  params.task_params.closest_match_fraction = 0.0;
  resource::ConfigGenParams cfg_params = config.configs;
  Rng cfg_rng(DeriveSeed(config.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      cfg_params, ptype::Catalogue::Default(), cfg_rng);
  const workload::TaskGraph g =
      workload::GenerateLayeredGraph(params, catalogue, rng);

  const GraphRunResult result = RunGraph(config, g);
  EXPECT_EQ(result.completed_vertices + result.discarded_vertices, 20u);
  EXPECT_GT(result.completed_vertices, 15u);  // most should complete
  EXPECT_GT(result.makespan, 0);
}

TEST(GraphSession, MetricsCoverGraphTasks) {
  workload::TaskGraph g;
  const auto a = g.AddVertex(Payload(0, 100));
  const auto b = g.AddVertex(Payload(1, 100));
  g.AddEdge(a, b);
  const GraphRunResult result = RunGraph(GraphConfig(), g);
  EXPECT_EQ(result.metrics.total_tasks, 2u);
  EXPECT_EQ(result.metrics.completed_tasks, 2u);
}

}  // namespace
}  // namespace dreamsim::core
