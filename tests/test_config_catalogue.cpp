// Tests for the configuration catalogue (Eq. 2) and its counted searches.
#include "resource/config.hpp"

#include <gtest/gtest.h>

#include "ptype/catalogue.hpp"

namespace dreamsim::resource {
namespace {

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10;
    c.Add(cfg);
  }
  return c;
}

TEST(ConfigCatalogue, AddAssignsIdsAndTracksMax) {
  ConfigCatalogue c = MakeCatalogue({500, 1200, 300});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Get(ConfigId{1}).required_area, 1200);
  EXPECT_EQ(c.max_required_area(), 1200);
}

TEST(ConfigCatalogue, AddRejectsNonPositiveArea) {
  ConfigCatalogue c;
  Configuration cfg;
  cfg.required_area = 0;
  EXPECT_THROW((void)c.Add(cfg), std::invalid_argument);
}

TEST(ConfigCatalogue, ContainsAndGet) {
  ConfigCatalogue c = MakeCatalogue({100});
  EXPECT_TRUE(c.Contains(ConfigId{0}));
  EXPECT_FALSE(c.Contains(ConfigId{1}));
  EXPECT_FALSE(c.Contains(ConfigId::invalid()));
  EXPECT_THROW((void)c.Get(ConfigId{5}), std::out_of_range);
}

TEST(ConfigCatalogue, FindPreferredCountsSteps) {
  ConfigCatalogue c = MakeCatalogue({100, 200, 300, 400});
  Steps steps = 0;
  const auto found = c.FindPreferred(ConfigId{2}, steps);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, ConfigId{2});
  EXPECT_EQ(steps, 3u);  // linear scan visits entries 0, 1, 2
}

TEST(ConfigCatalogue, FindPreferredMissCostsFullScan) {
  ConfigCatalogue c = MakeCatalogue({100, 200});
  Steps steps = 0;
  EXPECT_FALSE(c.FindPreferred(ConfigId{9}, steps).has_value());
  EXPECT_EQ(steps, 2u);
}

TEST(ConfigCatalogue, FindClosestMatchPicksMinimalSufficient) {
  ConfigCatalogue c = MakeCatalogue({100, 900, 500, 700});
  Steps steps = 0;
  const auto match = c.FindClosestMatch(450, steps);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(c.Get(*match).required_area, 500);
  EXPECT_EQ(steps, 4u);  // full scan (needs the global minimum)
}

TEST(ConfigCatalogue, FindClosestMatchExactBoundary) {
  ConfigCatalogue c = MakeCatalogue({100, 500});
  Steps steps = 0;
  const auto match = c.FindClosestMatch(500, steps);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(c.Get(*match).required_area, 500);
}

TEST(ConfigCatalogue, FindClosestMatchNoneLargeEnough) {
  ConfigCatalogue c = MakeCatalogue({100, 200});
  Steps steps = 0;
  EXPECT_FALSE(c.FindClosestMatch(5000, steps).has_value());
}

TEST(ConfigCatalogue, GenerateHonoursRanges) {
  ConfigGenParams params;
  params.count = 200;
  params.min_area = 200;
  params.max_area = 2000;
  params.min_config_time = 10;
  params.max_config_time = 20;
  Rng rng(3);
  const auto ptypes = ptype::Catalogue::Default();
  const ConfigCatalogue c = ConfigCatalogue::Generate(params, ptypes, rng);
  ASSERT_EQ(c.size(), 200u);
  for (const Configuration& cfg : c.all()) {
    EXPECT_GE(cfg.required_area, 200);
    EXPECT_LE(cfg.required_area, 2000);
    EXPECT_GE(cfg.config_time, 10);
    EXPECT_LE(cfg.config_time, 20);
    EXPECT_GT(cfg.bitstream_size, 0);
    EXPECT_TRUE(cfg.ptype.valid());
  }
}

TEST(ConfigCatalogue, GenerateBitstreamScalesWithArea) {
  ConfigGenParams params;
  params.count = 50;
  Rng rng(7);
  const auto ptypes = ptype::Catalogue::Default();
  const ConfigCatalogue c = ConfigCatalogue::Generate(params, ptypes, rng);
  for (const Configuration& cfg : c.all()) {
    EXPECT_EQ(cfg.bitstream_size, ptype::BitstreamSize(cfg.required_area));
  }
}

TEST(ConfigCatalogue, GenerateRejectsBadRanges) {
  Rng rng(1);
  const auto ptypes = ptype::Catalogue::Default();
  ConfigGenParams bad;
  bad.min_area = 0;
  EXPECT_THROW((void)ConfigCatalogue::Generate(bad, ptypes, rng),
               std::invalid_argument);
  bad = ConfigGenParams{};
  bad.min_area = 3000;
  bad.max_area = 2000;
  EXPECT_THROW((void)ConfigCatalogue::Generate(bad, ptypes, rng),
               std::invalid_argument);
  bad = ConfigGenParams{};
  bad.min_config_time = 0;
  EXPECT_THROW((void)ConfigCatalogue::Generate(bad, ptypes, rng),
               std::invalid_argument);
}

TEST(ConfigCatalogue, GenerateIsDeterministicPerSeed) {
  ConfigGenParams params;
  params.count = 30;
  const auto ptypes = ptype::Catalogue::Default();
  Rng rng_a(11);
  Rng rng_b(11);
  const auto a = ConfigCatalogue::Generate(params, ptypes, rng_a);
  const auto b = ConfigCatalogue::Generate(params, ptypes, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.all()[i].required_area, b.all()[i].required_area);
    EXPECT_EQ(a.all()[i].config_time, b.all()[i].config_time);
    EXPECT_EQ(a.all()[i].ptype, b.all()[i].ptype);
  }
}

}  // namespace
}  // namespace dreamsim::resource
