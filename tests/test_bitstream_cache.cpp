// Tests for the per-node LRU bitstream cache and its simulator integration.
#include "net/bitstream_cache.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace dreamsim::net {
namespace {

TEST(BitstreamCache, DisabledCacheAlwaysMisses) {
  BitstreamCache cache(0);
  cache.Insert(ConfigId{1}, 100);
  EXPECT_FALSE(cache.Lookup(ConfigId{1}));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BitstreamCache, HitAfterInsert) {
  BitstreamCache cache(1000);
  EXPECT_FALSE(cache.Lookup(ConfigId{1}));
  cache.Insert(ConfigId{1}, 100);
  EXPECT_TRUE(cache.Lookup(ConfigId{1}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  EXPECT_EQ(cache.used(), 100);
}

TEST(BitstreamCache, LruEviction) {
  BitstreamCache cache(300);
  cache.Insert(ConfigId{1}, 100);
  cache.Insert(ConfigId{2}, 100);
  cache.Insert(ConfigId{3}, 100);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(ConfigId{1}));
  cache.Insert(ConfigId{4}, 100);
  EXPECT_TRUE(cache.Lookup(ConfigId{1}));
  EXPECT_FALSE(cache.Lookup(ConfigId{2}));  // evicted
  EXPECT_TRUE(cache.Lookup(ConfigId{3}));
  EXPECT_TRUE(cache.Lookup(ConfigId{4}));
  EXPECT_EQ(cache.used(), 300);
}

TEST(BitstreamCache, OversizedBitstreamBypasses) {
  BitstreamCache cache(100);
  cache.Insert(ConfigId{1}, 500);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup(ConfigId{1}));
}

TEST(BitstreamCache, ReinsertRefreshesSizeAndRecency) {
  BitstreamCache cache(300);
  cache.Insert(ConfigId{1}, 100);
  cache.Insert(ConfigId{2}, 100);
  cache.Insert(ConfigId{1}, 200);  // grow in place
  EXPECT_EQ(cache.used(), 300);
  cache.Insert(ConfigId{3}, 100);  // evicts 2 (LRU), not the refreshed 1
  EXPECT_TRUE(cache.Lookup(ConfigId{1}));
  EXPECT_FALSE(cache.Lookup(ConfigId{2}));
}

TEST(BitstreamCache, EvictsMultipleForLargeInsert) {
  BitstreamCache cache(300);
  cache.Insert(ConfigId{1}, 100);
  cache.Insert(ConfigId{2}, 100);
  cache.Insert(ConfigId{3}, 100);
  cache.Insert(ConfigId{4}, 250);  // must evict 1 and 2 and 3
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.Lookup(ConfigId{4}));
  EXPECT_EQ(cache.used(), 250);
}

TEST(BitstreamCache, ClearResetsContentsKeepsStats) {
  BitstreamCache cache(300);
  cache.Insert(ConfigId{1}, 100);
  (void)cache.Lookup(ConfigId{1});
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used(), 0);
  EXPECT_EQ(cache.hits(), 1u);  // counters are cumulative diagnostics
}

// ---- Simulator integration ----

TEST(BitstreamShipping, AddsTransferDelayAndCachesCutIt) {
  using namespace dreamsim::core;

  const auto run = [](Bytes cache_capacity) {
    SimulationConfig config;
    config.nodes.count = 20;
    config.configs.count = 6;
    config.tasks.total_tasks = 800;
    config.seed = 7;
    config.ship_bitstreams = true;
    config.bitstream_cache_capacity = cache_capacity;
    config.network.bytes_per_tick = 1000;
    Simulator sim(std::move(config));
    return sim.Run();
  };

  const MetricsReport uncached = run(0);
  const MetricsReport cached = run(10'000'000);  // effectively infinite

  // Without a cache every configuration ships its bitstream.
  EXPECT_EQ(uncached.bitstream_hits, 0u);
  EXPECT_GT(uncached.bitstream_misses, 0u);
  EXPECT_GT(uncached.bitstream_transfer_time, 0);

  // With an unbounded cache, repeat configurations hit.
  EXPECT_GT(cached.bitstream_hits, 0u);
  EXPECT_LT(cached.bitstream_transfer_time,
            uncached.bitstream_transfer_time);
}

TEST(BitstreamShipping, DisabledByDefault) {
  using namespace dreamsim::core;
  SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 5;
  config.tasks.total_tasks = 200;
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.bitstream_hits + report.bitstream_misses, 0u);
  EXPECT_EQ(report.bitstream_transfer_time, 0);
}

}  // namespace
}  // namespace dreamsim::net
