#include "obs/report_writer.hpp"

void ReportWriter::Write() {
  // Positive: hash order leaks straight into the report bytes.
  for (const auto& [key, value] : totals_) {  // expect: unordered-writer-iteration
    Emit(key, value);
  }
  // Negative: collect-and-sort makes the iteration order deterministic.
  std::vector<int> keys;
  for (int key : keys) {
    Emit(key, 0);
  }
}
