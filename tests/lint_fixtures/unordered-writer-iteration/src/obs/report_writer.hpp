// Header declaring the unordered member the writer .cpp iterates.
#include <unordered_map>

class ReportWriter {
 public:
  void Write();

 private:
  std::unordered_map<int, long> totals_;
};
