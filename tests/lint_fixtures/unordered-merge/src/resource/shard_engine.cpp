// A sharded-kernel source seeding a reduction from an unordered member.
#include <unordered_map>

struct ShardEngine {
  std::unordered_map<int, int> pending_;
};

long Merge(ShardEngine& engine) {
  long total = 0;
  // Positive: cross-shard reduction in hash order.
  for (const auto& [key, value] : engine.pending_) {  // expect: unordered-merge
    total += value;
  }
  // Negative: an ordered container is fine.
  std::vector<int> ordered;
  for (int value : ordered) {
    total += value;
  }
  return total;
}
