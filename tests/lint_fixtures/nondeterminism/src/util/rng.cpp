// Negative: util/rng owns entropy and may wrap the raw sources.
unsigned Draw() { return rand(); }
