// Entropy and wall-clock sources outside util/rng.
struct Timer;

long Bad() { return rand(); }        // expect: nondeterminism
void Seed(unsigned s) { srand(s); }  // expect: nondeterminism
long Wall() { return time(nullptr); }  // expect: nondeterminism
long Entropy() {
  std::random_device rd;  // expect: nondeterminism
  return 1;
}
long Tick() {
  return std::chrono::system_clock::now()  // expect: nondeterminism
      .time_since_epoch()
      .count();
}

// Negatives: member calls named time() are not libc time(), and longer
// identifiers containing the banned words are not matches.
long FineMember(const Timer& t) { return t.time(); }
long FineArrow(Timer* t) { return t->time(); }
long FineWord() { return timestamp(); }
