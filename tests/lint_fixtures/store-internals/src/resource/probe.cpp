// Positive: a non-owner reaches into ResourceStore's intrusive mirrors.
struct ResourceStore;

void Probe(ResourceStore& store) {
  store.idle_lists_.clear();  // expect: store-internals
  store.busy_area_ = 0;       // expect: store-internals
}
