// Negative: store.cpp is the owner of the mirror state.
void Rebuild() {
  int idle_lists_ = 0;
  int busy_area_ = 0;
  (void)idle_lists_;
  (void)busy_area_;
}
