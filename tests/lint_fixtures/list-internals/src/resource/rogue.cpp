// Positive: a non-owner pokes EntryList's intrusive members directly.
struct EntryList;

void Poke(EntryList& list) {
  list.cells_[0].next = 0;  // expect: list-internals
  list.table_used_ -= 1;    // expect: list-internals
}
