// Negative: a suppression on the line above silences the finding (and is
// therefore used, so no stale-suppression either).
struct EntryList;

void Patch(EntryList& list) {
  // lint: allow(list-internals)
  list.cells_.clear();
}
