// Negative: entry_list.cpp is the owner and touches its state freely.
void Reset() {
  int cells_ = 0;
  int table_used_ = 0;
  (void)cells_;
  (void)table_used_;
}
