// Negative: the catalogue is the one place exposition names are spelled.
inline const char* kName = "dreamsim_tasks_completed_total";
