// Registry hooks must name literal catalogue tokens, and product code
// never spells a prefixed exposition name by hand.
enum class MetricId;

void Record(MetricId id) {
  MetricInc(id, 1);  // expect: metric-catalogue
  MetricInc(MetricId::kTasksCompleted, 1);
  MetricGaugeSet(MetricId::kBusyNodes, 7);
}

const char* kAdHoc = "dreamsim_rogue_total";  // expect: metric-catalogue

// Negative: the hook's own definition declares a MetricId parameter.
void MetricInc(MetricId id, long delta);
