// Positive: the breach is transitive — the util header drags the
// host-plane timeline writer into a model-plane TU.
#include "util/bridge.hpp"  // expect: plane-discipline

void Decide() {}
