// Not itself model-plane, so no finding here — but model-plane TUs that
// include this header inherit its obs reach.
#include "obs/timeline.hpp"
