// Negative: the sanctioned metric hooks may cross the plane boundary,
// and the closure walk does not descend into them (obs/metrics.hpp here
// includes an unsanctioned header; that is obs-internal wiring).
#include "obs/metrics.hpp"

void Touch() {}
