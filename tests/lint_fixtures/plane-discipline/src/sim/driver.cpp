// Positive: a model-plane TU includes a host-plane obs header directly.
#include "obs/run_tracer.hpp"  // expect: plane-discipline

void Drive() {}
