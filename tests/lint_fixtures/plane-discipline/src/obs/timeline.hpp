struct TimeSeriesSampler {};
