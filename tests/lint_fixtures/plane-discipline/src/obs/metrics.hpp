// Sanctioned hook; its own include of another obs header stays behind
// the sealed boundary.
#include "obs/run_tracer.hpp"
