struct RunTracer {};
