// Modeled-effort contract: every function body that calls an indexed
// query must also charge the WorkloadMeter.
struct Store;
struct Meter {
  void Add(long steps);
};

// Positive: a query with no visible charge in the enclosing function.
long Bad(Store& store) {
  return store.OldestExactMatch(3);  // expect: uncharged-index-query
}

// Negative: the charge sits beside the call.
long Good(Store& store, Meter& meter) {
  meter.Add(12);
  return store.BestPriorityEligible(3);
}

// Negative: a qualified name is the query's definition, not a call site.
long Store::OldestExactMatch(long key) { return key; }
