// Suppressions with nothing left to suppress are themselves findings.
/* expect: stale-suppression */ // lint: allow(nondeterminism)
long Quiet() { return 7; }
/* expect: stale-suppression */ // lint: allow-file(entry-cells-iteration)
