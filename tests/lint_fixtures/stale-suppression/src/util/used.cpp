// Negative: both placements of a live suppression — the line above the
// finding and the finding's own line — fire and are therefore not stale.
// lint: allow(nondeterminism)
long Seeded() { return rand(); }
long Rolled() { return rand(); }  // lint: allow(nondeterminism)
