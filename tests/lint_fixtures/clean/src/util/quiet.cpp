// Negative-only fixture: nothing here trips any rule, so the whole tree
// must lint clean (exit code 0).
long Tidy() { return 42; }
