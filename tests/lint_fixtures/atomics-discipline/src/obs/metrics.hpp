// The registry's cell bank is relaxed-only.
#include <atomic>

struct Cell {
  std::atomic<long> value{0};
  void Bump() { value.fetch_add(1, std::memory_order_relaxed); }
  long Read() const {
    return value.load(std::memory_order_acquire);  // expect: atomics-discipline
  }
};
