// Negative: the shard pool is the sanctioned concurrency primitive.
#include <atomic>

std::atomic<unsigned> next_{0};
