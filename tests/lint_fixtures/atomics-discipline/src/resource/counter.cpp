// Positive: model-plane code growing atomics of its own.
#include <atomic>  // expect: atomics-discipline

std::atomic<long> g_hits{0};  // expect: atomics-discipline

void Touch() { g_hits.fetch_add(1); }
