// Negative: the metrics registry IS a merge owner — its snapshot reduces
// the cell bank in fixed shard order.
struct ShardCell;

struct Registry {
  long Merge() const {
    long total = 0;
    for (const ShardCell& cell : cell_bank_) {
      total += cell.value;
    }
    return total;
  }
};
