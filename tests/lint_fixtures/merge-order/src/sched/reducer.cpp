// Loops over shard-indexed state outside the merge owners.
struct ShardAnswer;
struct Rows;

long Sum(const Rows& rows, const Rows& engine) {
  long total = 0;
  // Positive: a shard-typed element loop in a non-owner.
  for (const ShardAnswer& a : rows) {  // expect: merge-order
    total += a.value;
  }
  // Positive: a classic for bounded by the shard count.
  for (unsigned k = 0; k < engine.shard_count(); ++k) {  // expect: merge-order
    total += static_cast<long>(k);
  }
  // Negative: an ordinary loop over ordinary state.
  for (const auto& row : rows.items()) {
    total += row.value;
  }
  return total;
}
