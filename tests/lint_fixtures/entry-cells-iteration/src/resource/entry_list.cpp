// Negative: the owner reads its own cell storage.
long Total() { return Walk(cells()); }
