// Negative: the auditor reconstructs ground truth from the raw cells.
struct EntryList;

long Audit(const EntryList& list) { return Walk(list.cells()); }
