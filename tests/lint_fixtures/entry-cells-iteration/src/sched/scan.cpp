// Direct raw-cell access outside the owner and the audit tooling.
struct EntryList;
struct Cell;

long Scan(const EntryList& list) {
  long count = 0;
  for (const Cell& cell : list.cells()) {  // expect: entry-cells-iteration
    count += cell.value;
  }
  // Negative: `cells` not followed by `(` is some other member, and a
  // free function named cells() is not a member call.
  long cells = count;
  return cells + Walk(cells_table());
}
