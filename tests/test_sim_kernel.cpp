// Tests for the discrete-event kernel, event queue, and clock.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dreamsim::sim {
namespace {

TEST(Clock, StartsAtZeroAndTicks) {
  Clock c;
  EXPECT_EQ(c.now(), 0);
  c.IncreaseTimeTick();
  c.IncreaseTimeTick();
  EXPECT_EQ(c.now(), 2);
  c.DecreaseTimeTick();
  EXPECT_EQ(c.now(), 1);
  c.AdvanceTo(100);
  EXPECT_EQ(c.now(), 100);
  c.Reset();
  EXPECT_EQ(c.now(), 0);
}

TEST(EventQueue, OrdersByTick) {
  EventQueue q;
  std::vector<int> order;
  (void)q.Push(30, EventPriority::kArrival, [&] { order.push_back(3); });
  (void)q.Push(10, EventPriority::kArrival, [&] { order.push_back(1); });
  (void)q.Push(20, EventPriority::kArrival, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTickTies) {
  EventQueue q;
  std::vector<int> order;
  (void)q.Push(5, EventPriority::kArrival, [&] { order.push_back(2); });
  (void)q.Push(5, EventPriority::kCompletion, [&] { order.push_back(1); });
  (void)q.Push(5, EventPriority::kHousekeeping, [&] { order.push_back(3); });
  while (!q.empty()) q.Pop().action();
  // Completions run before arrivals before housekeeping within a tick.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SequenceBreaksRemainingTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    (void)q.Push(1, EventPriority::kArrival, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  const EventHandle h =
      q.Push(1, EventPriority::kArrival, [&] { order.push_back(1); });
  (void)q.Push(2, EventPriority::kArrival, [&] { order.push_back(2); });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));  // second cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextTickSkipsCancelled) {
  EventQueue q;
  const EventHandle h = q.Push(1, EventPriority::kArrival, [] {});
  (void)q.Push(9, EventPriority::kArrival, [] {});
  (void)q.Cancel(h);
  EXPECT_EQ(q.next_tick(), 9);
}

TEST(Kernel, RunsEventsInOrderAndAdvancesClock) {
  Kernel k;
  std::vector<Tick> seen;
  (void)k.ScheduleAt(10, EventPriority::kArrival, [&] { seen.push_back(k.now()); });
  (void)k.ScheduleAt(5, EventPriority::kArrival, [&] { seen.push_back(k.now()); });
  const auto executed = k.Run();
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(seen, (std::vector<Tick>{5, 10}));
  EXPECT_EQ(k.now(), 10);
}

TEST(Kernel, ScheduleAfterIsRelative) {
  Kernel k;
  Tick observed = -1;
  (void)k.ScheduleAt(7, EventPriority::kArrival, [&] {
    (void)k.ScheduleAfter(3, EventPriority::kArrival,
                          [&] { observed = k.now(); });
  });
  (void)k.Run();
  EXPECT_EQ(observed, 10);
}

TEST(Kernel, RejectsPastAndNegative) {
  Kernel k;
  (void)k.ScheduleAt(5, EventPriority::kArrival, [] {});
  (void)k.Run();
  EXPECT_THROW((void)k.ScheduleAt(4, EventPriority::kArrival, [] {}),
               std::invalid_argument);
  EXPECT_THROW((void)k.ScheduleAfter(-1, EventPriority::kArrival, [] {}),
               std::invalid_argument);
}

TEST(Kernel, HorizonStopsExecution) {
  Kernel k;
  int ran = 0;
  (void)k.ScheduleAt(5, EventPriority::kArrival, [&] { ++ran; });
  (void)k.ScheduleAt(50, EventPriority::kArrival, [&] { ++ran; });
  (void)k.Run(/*horizon=*/10);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(k.pending_events(), 1u);
  (void)k.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Kernel, EventsCanScheduleEvents) {
  Kernel k;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      (void)k.ScheduleAfter(1, EventPriority::kArrival, step);
    }
  };
  (void)k.ScheduleAt(0, EventPriority::kArrival, step);
  (void)k.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(k.now(), 4);
}

TEST(Kernel, RequestStopHaltsLoop) {
  Kernel k;
  int ran = 0;
  (void)k.ScheduleAt(1, EventPriority::kArrival, [&] {
    ++ran;
    k.RequestStop();
  });
  (void)k.ScheduleAt(2, EventPriority::kArrival, [&] { ++ran; });
  (void)k.Run();
  EXPECT_EQ(ran, 1);
  (void)k.Run();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel k;
  int ran = 0;
  const EventHandle h =
      k.ScheduleAt(5, EventPriority::kArrival, [&] { ++ran; });
  EXPECT_TRUE(k.Cancel(h));
  (void)k.Run();
  EXPECT_EQ(ran, 0);
}

TEST(Kernel, ResetClearsState) {
  Kernel k;
  (void)k.ScheduleAt(5, EventPriority::kArrival, [] {});
  k.Reset();
  EXPECT_TRUE(k.idle());
  EXPECT_EQ(k.now(), 0);
  EXPECT_EQ(k.executed_events(), 0u);
}

TEST(Kernel, StepExecutesSingleEvent) {
  Kernel k;
  int ran = 0;
  (void)k.ScheduleAt(1, EventPriority::kArrival, [&] { ++ran; });
  (void)k.ScheduleAt(2, EventPriority::kArrival, [&] { ++ran; });
  EXPECT_TRUE(k.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(k.Step());
  EXPECT_FALSE(k.Step());
  EXPECT_EQ(ran, 2);
}

}  // namespace
}  // namespace dreamsim::sim
