// Tests for the replication runner and its summaries.
#include "core/replication.hpp"

#include <gtest/gtest.h>

namespace dreamsim::core {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.nodes.count = 10;
  config.configs.count = 6;
  config.tasks.total_tasks = 200;
  config.seed = 42;
  config.label = "rep-test";
  config.enable_monitoring = false;
  return config;
}

TEST(Replication, RunsRequestedCount) {
  const ReplicationReport report = RunReplications(SmallConfig(), 5);
  EXPECT_EQ(report.replications, 5u);
  EXPECT_EQ(report.runs.size(), 5u);
  for (const MetricsReport& run : report.runs) {
    EXPECT_EQ(run.total_tasks, 200u);
  }
}

TEST(Replication, SeedsAreIndependent) {
  const ReplicationReport report = RunReplications(SmallConfig(), 4);
  // Different derived seeds must produce different outcomes.
  bool any_difference = false;
  for (std::size_t i = 1; i < report.runs.size(); ++i) {
    if (report.runs[i].total_simulation_time !=
        report.runs[0].total_simulation_time) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Replication, DeterministicAcrossInvocations) {
  const ReplicationReport a = RunReplications(SmallConfig(), 3, 1);
  const ReplicationReport b = RunReplications(SmallConfig(), 3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.runs[i].total_simulation_time,
              b.runs[i].total_simulation_time);
    EXPECT_EQ(a.runs[i].total_scheduler_workload,
              b.runs[i].total_scheduler_workload);
  }
}

TEST(Replication, SummariesAggregateEveryRun) {
  const ReplicationReport report = RunReplications(SmallConfig(), 6);
  const MetricSummary& waiting = report.Metric("avg_waiting_time_per_task");
  EXPECT_EQ(waiting.stats.count(), 6u);
  EXPECT_GE(waiting.stats.max(), waiting.stats.min());
  EXPECT_GE(waiting.mean(), waiting.stats.min());
  EXPECT_LE(waiting.mean(), waiting.stats.max());
  EXPECT_GT(waiting.ci95_half_width(), 0.0);
}

TEST(Replication, SingleRunHasZeroCi) {
  const ReplicationReport report = RunReplications(SmallConfig(), 1);
  EXPECT_DOUBLE_EQ(
      report.Metric("avg_waiting_time_per_task").ci95_half_width(), 0.0);
}

TEST(Replication, UnknownMetricThrows) {
  const ReplicationReport report = RunReplications(SmallConfig(), 1);
  EXPECT_THROW((void)report.Metric("nope"), std::out_of_range);
}

TEST(Replication, ZeroReplicationsThrows) {
  EXPECT_THROW((void)RunReplications(SmallConfig(), 0),
               std::invalid_argument);
}

TEST(Replication, TableRendersEveryMetric) {
  const ReplicationReport report = RunReplications(SmallConfig(), 2);
  const std::string table = RenderReplicationTable(report);
  EXPECT_NE(table.find("avg_wasted_area_per_task"), std::string::npos);
  EXPECT_NE(table.find("total_scheduler_workload"), std::string::npos);
  EXPECT_NE(table.find("2 replications"), std::string::npos);
}

TEST(Replication, OrderingHoldsWithConfidence) {
  // The paper's headline claim, now with replications: partial waits less
  // than full with non-overlapping 95% intervals.
  SimulationConfig full_config = SmallConfig();
  full_config.mode = sched::ReconfigMode::kFull;
  SimulationConfig partial_config = SmallConfig();
  partial_config.mode = sched::ReconfigMode::kPartial;

  const ReplicationReport full = RunReplications(full_config, 8);
  const ReplicationReport partial = RunReplications(partial_config, 8);
  const MetricSummary& fw = full.Metric("avg_waiting_time_per_task");
  const MetricSummary& pw = partial.Metric("avg_waiting_time_per_task");
  EXPECT_GT(fw.mean() - fw.ci95_half_width(),
            pw.mean() + pw.ci95_half_width());
}

}  // namespace
}  // namespace dreamsim::core
