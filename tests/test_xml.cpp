// Tests for the XML report writer.
#include "util/xml.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dreamsim {
namespace {

TEST(XmlEscape, EscapesSpecials) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(XmlWriter, Declaration) {
  std::ostringstream out;
  {
    XmlWriter xml(out);
    xml.Open("r");
  }
  EXPECT_NE(out.str().find("<?xml version=\"1.0\""), std::string::npos);
}

TEST(XmlWriter, NoDeclarationWhenDisabled) {
  std::ostringstream out;
  {
    XmlWriter xml(out, /*emit_declaration=*/false);
    xml.Open("r");
  }
  EXPECT_EQ(out.str().find("<?xml"), std::string::npos);
}

TEST(XmlWriter, SelfClosingEmptyElement) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Open("empty").Close();
  }
  EXPECT_EQ(out.str(), "<empty/>\n");
}

TEST(XmlWriter, NestedElements) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Open("a");
    xml.Open("b");
    xml.Element("c", "text");
    xml.Close();
    xml.Close();
  }
  EXPECT_EQ(out.str(), "<a>\n  <b>\n    <c>text</c>\n  </b>\n</a>\n");
}

TEST(XmlWriter, Attributes) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Open("r");
    xml.Attribute("name", "x<y");
    xml.Attribute("count", std::int64_t{42});
    xml.Close();
  }
  EXPECT_EQ(out.str(), "<r name=\"x&lt;y\" count=\"42\"/>\n");
}

TEST(XmlWriter, AttributeAfterContentThrows) {
  std::ostringstream out;
  XmlWriter xml(out, false);
  xml.Open("r");
  xml.Element("child", "1");
  EXPECT_THROW(xml.Attribute("late", "x"), std::logic_error);
  xml.Finish();
}

TEST(XmlWriter, EscapedTextContent) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Element("v", "a&b");
  }
  EXPECT_EQ(out.str(), "<v>a&amp;b</v>\n");
}

TEST(XmlWriter, CloseWithoutOpenThrows) {
  std::ostringstream out;
  XmlWriter xml(out, false);
  EXPECT_THROW(xml.Close(), std::logic_error);
}

TEST(XmlWriter, TextOutsideElementThrows) {
  std::ostringstream out;
  XmlWriter xml(out, false);
  EXPECT_THROW(xml.Text("orphan"), std::logic_error);
}

TEST(XmlWriter, DestructorClosesOpenElements) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Open("a");
    xml.Open("b");
    xml.Element("leaf", std::int64_t{1});
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("</b>"), std::string::npos);
  EXPECT_NE(doc.find("</a>"), std::string::npos);
}

TEST(XmlWriter, NumericElementOverloads) {
  std::ostringstream out;
  {
    XmlWriter xml(out, false);
    xml.Open("m");
    xml.Element("i", std::int64_t{-3});
    xml.Element("u", std::uint64_t{9});
    xml.Element("d", 1.25);
    xml.Close();
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("<i>-3</i>"), std::string::npos);
  EXPECT_NE(doc.find("<u>9</u>"), std::string::npos);
  EXPECT_NE(doc.find("<d>1.25</d>"), std::string::npos);
}

TEST(XmlWriter, DepthTracking) {
  std::ostringstream out;
  XmlWriter xml(out, false);
  EXPECT_EQ(xml.depth(), 0u);
  xml.Open("a");
  xml.Open("b");
  EXPECT_EQ(xml.depth(), 2u);
  xml.Close();
  EXPECT_EQ(xml.depth(), 1u);
  xml.Finish();
  EXPECT_EQ(xml.depth(), 0u);
}

}  // namespace
}  // namespace dreamsim
