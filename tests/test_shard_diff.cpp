// Differential proof of the sharded parallel kernel's determinism contract
// (DESIGN.md §13): for every shard count K in {1, 2, 4, 8}, in both the
// scan and indexed flavours, with and without faults, sharded runs produce
// event streams and MetricsReport fields — WorkloadMeter step charges
// included — bit-identical to the sequential kernel. 13 seeds x 4 shard
// counts = 52 seeded differential run pairs per combo.
#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hpp"
#include "util/rng.hpp"

namespace dreamsim {
namespace {

using core::MetricsReport;
using core::PolicyChoice;
using core::SimEvent;
using core::SimulationConfig;
using core::Simulator;

struct ShardCase {
  sched::ReconfigMode mode = sched::ReconfigMode::kPartial;
  PolicyChoice policy = PolicyChoice::kDreamSim;
  bool indexed = true;          // scheduler_index of BOTH runs in the pair
  resource::ShardBy by = resource::ShardBy::kRoundRobin;
  int families = 1;
  bool contiguous = false;
  double mtbf = 0.0;            // 0 = fault-free
  double mttr = 0.0;
};

void PrintTo(const ShardCase& c, std::ostream* os) {
  *os << (c.mode == sched::ReconfigMode::kPartial ? "partial" : "full")
      << " policy=" << core::ToString(c.policy)
      << (c.indexed ? " indexed" : " scan")
      << (c.by == resource::ShardBy::kFamily ? " by-family" : " round-robin")
      << " families=" << c.families << (c.contiguous ? " contiguous" : "")
      << " mtbf=" << c.mtbf << " mttr=" << c.mttr;
}

/// A saturating workload that exercises every scheduler phase: short
/// execution times relative to the MTBF so fault cases never livelock.
std::vector<workload::GeneratedTask> MakeWorkload(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  std::vector<workload::GeneratedTask> tasks;
  Tick at = 0;
  for (int i = 0; i < 220; ++i) {
    workload::GeneratedTask t;
    at += rng.uniform_int(1, 5);
    t.create_time = at;
    if (rng.uniform_int(0, 9) < 8) {
      t.preferred_config =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 9))};
    }
    t.needed_area = rng.uniform_int(200, 2000);
    t.required_time = rng.uniform_int(80, 900);
    t.priority = static_cast<double>(rng.uniform_int(0, 9));
    tasks.push_back(t);
  }
  return tasks;
}

struct RunResult {
  std::vector<SimEvent> events;
  MetricsReport report;
};

RunResult RunOne(const ShardCase& c, std::uint64_t seed, std::size_t shards) {
  SimulationConfig config;
  config.nodes.count = 30;
  config.configs.count = 10;
  config.nodes.family_count = c.families;
  config.configs.family_count = c.families;
  config.nodes.contiguous_placement = c.contiguous;
  config.mode = c.mode;
  config.policy = c.policy;
  config.max_suspension_retries = 8;
  config.scheduler_index = c.indexed;
  config.shards = shards;
  // Two pool threads even on a single-core host: with one thread the store
  // answers scan queries from its own sequential scans (the serial
  // fallback), and this suite must exercise the real sharded broadcast.
  config.kernel_threads = 2;
  config.shard_by = c.by;
  config.faults.mtbf = c.mtbf;
  config.faults.mttr = c.mttr;
  config.seed = seed;
  // Structure audit rides along: every decision in Debug (including the
  // shard partition + per-shard index passes), end-of-run in Release.
#ifndef NDEBUG
  config.audit = analysis::AuditMode::kStep;
#else
  config.audit = analysis::AuditMode::kEnd;
#endif
  Simulator sim(std::move(config));
  RunResult result;
  sim.SetEventLogger([&](const SimEvent& e) { result.events.push_back(e); });
  EXPECT_EQ(sim.store().sharded(), shards > 1);
  result.report = sim.RunWithWorkload(MakeWorkload(seed));
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  return result;
}

void ExpectIdentical(const RunResult& sharded, const RunResult& seq) {
  ASSERT_EQ(sharded.events.size(), seq.events.size());
  for (std::size_t i = 0; i < sharded.events.size(); ++i) {
    const SimEvent& a = sharded.events[i];
    const SimEvent& b = seq.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.tick, b.tick) << "event " << i;
    ASSERT_EQ(a.task, b.task) << "event " << i;
    ASSERT_EQ(a.node, b.node) << "event " << i;
    ASSERT_EQ(a.config, b.config) << "event " << i;
  }
  const MetricsReport& x = sharded.report;
  const MetricsReport& y = seq.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  // The modeled-effort contract: the sharded kernel must charge exactly
  // the step counts the sequential reference scans would have.
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
  EXPECT_EQ(x.failures_injected, y.failures_injected);
  EXPECT_EQ(x.repairs_completed, y.repairs_completed);
  EXPECT_EQ(x.tasks_killed, y.tasks_killed);
  EXPECT_EQ(x.tasks_recovered, y.tasks_recovered);
  EXPECT_EQ(x.tasks_lost_to_failure, y.tasks_lost_to_failure);
  EXPECT_EQ(x.lost_work_area_ticks, y.lost_work_area_ticks);
  EXPECT_EQ(x.total_downtime, y.total_downtime);
}

class ShardDiff : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardDiff, ShardedRunsAreBitIdenticalToSequentialAcrossSeeds) {
  const ShardCase c = GetParam();
  // 13 seeds x K in {1, 2, 4, 8} = 52 differential pairs per combo.
  for (std::uint64_t seed = 1; seed <= 13; ++seed) {
    const RunResult seq = RunOne(c, seed * 6007, 1);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const RunResult sharded = RunOne(c, seed * 6007, shards);
      ExpectIdentical(sharded, seq);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_P(ShardDiff, FaultCasesActuallyFail) {
  const ShardCase c = GetParam();
  if (c.mtbf <= 0.0) GTEST_SKIP() << "fault-free combo";
  std::uint64_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 13; ++seed) {
    failures += RunOne(c, seed * 6007, 4).report.failures_injected;
  }
  // The fault comparisons are vacuous unless failures actually fired.
  EXPECT_GT(failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShardCombos, ShardDiff,
    ::testing::Values(
        // The paper's scheduler, both flavours of both modes.
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  true, resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  false, resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        ShardCase{sched::ReconfigMode::kFull, PolicyChoice::kDreamSim, true,
                  resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        ShardCase{sched::ReconfigMode::kFull, PolicyChoice::kDreamSim, false,
                  resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        // Family partition with heterogeneous device families.
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  true, resource::ShardBy::kFamily, 3, false, 0, 0},
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  false, resource::ShardBy::kFamily, 3, false, 0, 0},
        // Contiguous placement exercises the reclaim-replay path.
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  true, resource::ShardBy::kRoundRobin, 1, true, 0, 0},
        // Heuristic policies cover the ranked-host merge.
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kBestFit,
                  true, resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kWorstFit,
                  false, resource::ShardBy::kRoundRobin, 1, false, 0, 0},
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kFirstFit,
                  true, resource::ShardBy::kRoundRobin, 2, false, 0, 0},
        // Faults: killed tasks, repairs, and recovery retries under shards.
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  true, resource::ShardBy::kRoundRobin, 1, false, 3000, 600},
        ShardCase{sched::ReconfigMode::kFull, PolicyChoice::kDreamSim, false,
                  resource::ShardBy::kRoundRobin, 1, false, 3000, 600},
        // Family partition + partial mode + faults in scan flavour: the
        // partitioned EntryLists see family-skewed buckets while failures
        // churn them (and the step audit checks fig3.partition each time).
        ShardCase{sched::ReconfigMode::kPartial, PolicyChoice::kDreamSim,
                  false, resource::ShardBy::kFamily, 3, false, 3000, 600}));

}  // namespace
}  // namespace dreamsim
