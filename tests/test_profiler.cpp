// Tests for obs::PhaseProfiler and ScopedPhaseTimer: histogram binning,
// accumulation, the enabled-flag gate, report rendering, and concurrent
// recording (the profiler must stay sane under parallel sweeps).
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "json_lite.hpp"

namespace dreamsim::obs {
namespace {

/// Restores the global profiler to a clean, disabled state around each test
/// (the profiler is a process-global singleton).
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PhaseProfiler::SetEnabled(false);
    PhaseProfiler::Instance().Reset();
  }
  void TearDown() override {
    PhaseProfiler::SetEnabled(false);
    PhaseProfiler::Instance().Reset();
  }
};

TEST_F(ProfilerTest, BinOfEdges) {
  // Bin 0 holds only 0 ns; bin i (i >= 1) holds [2^(i-1), 2^i) ns.
  EXPECT_EQ(PhaseProfiler::BinOf(0), 0u);
  EXPECT_EQ(PhaseProfiler::BinOf(1), 1u);
  EXPECT_EQ(PhaseProfiler::BinOf(2), 2u);
  EXPECT_EQ(PhaseProfiler::BinOf(3), 2u);
  EXPECT_EQ(PhaseProfiler::BinOf(4), 3u);
  EXPECT_EQ(PhaseProfiler::BinOf(1023), 10u);
  EXPECT_EQ(PhaseProfiler::BinOf(1024), 11u);
  // The last bin saturates.
  EXPECT_EQ(PhaseProfiler::BinOf(~std::uint64_t{0}), PhaseProfiler::kBins - 1);
  EXPECT_EQ(PhaseProfiler::BinOf(std::uint64_t{1} << 40),
            PhaseProfiler::kBins - 1);
}

TEST_F(ProfilerTest, RecordAccumulatesAndResetClears) {
  PhaseProfiler& prof = PhaseProfiler::Instance();
  prof.Record(ProfPhase::kAllocation, 10);
  prof.Record(ProfPhase::kAllocation, 30);
  prof.Record(ProfPhase::kStoreQuery, 5);

  const auto alloc = prof.stats(ProfPhase::kAllocation);
  EXPECT_EQ(alloc.calls, 2u);
  EXPECT_EQ(alloc.total_ns, 40u);
  EXPECT_EQ(alloc.max_ns, 30u);
  EXPECT_DOUBLE_EQ(alloc.mean_ns(), 20.0);
  EXPECT_EQ(alloc.bins[PhaseProfiler::BinOf(10)], 1u);
  EXPECT_EQ(alloc.bins[PhaseProfiler::BinOf(30)], 1u);

  const auto query = prof.stats(ProfPhase::kStoreQuery);
  EXPECT_EQ(query.calls, 1u);
  EXPECT_EQ(query.max_ns, 5u);
  // Untouched phase stays zero.
  EXPECT_EQ(prof.stats(ProfPhase::kSuspensionDrain).calls, 0u);
  EXPECT_DOUBLE_EQ(prof.stats(ProfPhase::kSuspensionDrain).mean_ns(), 0.0);

  prof.Reset();
  EXPECT_EQ(prof.stats(ProfPhase::kAllocation).calls, 0u);
  EXPECT_EQ(prof.stats(ProfPhase::kAllocation).total_ns, 0u);
  EXPECT_EQ(prof.stats(ProfPhase::kAllocation).max_ns, 0u);
}

TEST_F(ProfilerTest, ScopedTimerIsInertWhileDisabled) {
  ASSERT_FALSE(PhaseProfiler::enabled());
  { const ScopedPhaseTimer timer(ProfPhase::kConfiguration); }
  EXPECT_EQ(PhaseProfiler::Instance().stats(ProfPhase::kConfiguration).calls,
            0u);

  PhaseProfiler::SetEnabled(true);
  { const ScopedPhaseTimer timer(ProfPhase::kConfiguration); }
  { const ScopedPhaseTimer timer(ProfPhase::kConfiguration); }
  EXPECT_EQ(PhaseProfiler::Instance().stats(ProfPhase::kConfiguration).calls,
            2u);
}

TEST_F(ProfilerTest, PhaseNamesAreUniqueAndKnown) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const std::string_view name = ToString(static_cast<ProfPhase>(i));
    EXPECT_NE(name, "?") << "phase " << i;
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kProfPhaseCount);
  EXPECT_EQ(ToString(ProfPhase::kPartialReconfiguration),
            "partial-reconfiguration");
  EXPECT_EQ(ToString(ProfPhase::kSusQueueQuery), "sus-queue-query");
}

TEST_F(ProfilerTest, ReportListsActivePhases) {
  PhaseProfiler& prof = PhaseProfiler::Instance();
  prof.Record(ProfPhase::kAllocation, 100);
  prof.Record(ProfPhase::kSuspensionDrain, 2000);
  const std::string report = prof.Report();
  EXPECT_NE(report.find("allocation"), std::string::npos);
  EXPECT_NE(report.find("suspension-drain"), std::string::npos);
}

TEST_F(ProfilerTest, WriteJsonProducesValidJson) {
  PhaseProfiler& prof = PhaseProfiler::Instance();
  prof.Record(ProfPhase::kStoreQuery, 7);
  prof.Record(ProfPhase::kFullReconfiguration, 4096);
  std::ostringstream out;
  prof.WriteJson(out);
  const std::string doc = out.str();
  ASSERT_TRUE(testjson::IsValidJson(doc)) << testjson::Checker(doc).Error();
  EXPECT_NE(doc.find("\"store-query\""), std::string::npos);
  EXPECT_NE(doc.find("\"full-reconfiguration\""), std::string::npos);
}

TEST_F(ProfilerTest, ConcurrentRecordingLosesNothing) {
  PhaseProfiler& prof = PhaseProfiler::Instance();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prof] {
      for (int i = 0; i < kPerThread; ++i) {
        prof.Record(ProfPhase::kSusQueueQuery, 3);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto stats = prof.stats(ProfPhase::kSusQueueQuery);
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.total_ns,
            static_cast<std::uint64_t>(kThreads) * kPerThread * 3);
  EXPECT_EQ(stats.max_ns, 3u);
  EXPECT_EQ(stats.bins[PhaseProfiler::BinOf(3)], stats.calls);
}

}  // namespace
}  // namespace dreamsim::obs
