// Tests for Standard Workload Format parsing and the SWF -> DReAMSim
// mapping.
#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"

namespace dreamsim::workload {
namespace {

constexpr const char* kSampleSwf =
    "; Version: 2.2\n"
    "; Computer: Example Cluster\n"
    ";\n"
    "1 0 5 100 4 -1 2048 4 120 -1 1 3 1 1 1 1 -1 -1\n"
    "2 30 0 600 8 -1 4096 8 900 -1 1 3 1 1 1 1 -1 -1\n"
    "3 60 2 -1 -1 -1 -1 16 300 -1 5 4 1 2 1 1 -1 -1\n"   // cancelled: req only
    "4 90 0 0 2 -1 1024 2 0 -1 0 4 1 2 1 1 -1 -1\n";      // zero runtime: skip

TEST(SwfParser, ParsesDataLinesAndSkipsComments) {
  std::istringstream in(kSampleSwf);
  const auto jobs = ParseSwf(in);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].job_id, 1);
  EXPECT_EQ(jobs[0].submit_time, 0);
  EXPECT_EQ(jobs[0].run_time, 100);
  EXPECT_EQ(jobs[0].requested_procs, 4);
  EXPECT_EQ(jobs[0].used_memory_kb, 2048);
  EXPECT_EQ(jobs[1].submit_time, 30);
  EXPECT_EQ(jobs[2].run_time, -1);
  EXPECT_EQ(jobs[2].requested_time, 300);
}

TEST(SwfParser, RejectsShortLines) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW((void)ParseSwf(in), std::runtime_error);
}

TEST(SwfParser, EmptyAndCommentOnlyInput) {
  std::istringstream in("; just a header\n\n   \n");
  EXPECT_TRUE(ParseSwf(in).empty());
}

TEST(SwfConvert, MapsFieldsPerTheDocumentedRules) {
  std::istringstream in(kSampleSwf);
  const auto jobs = ParseSwf(in);
  SwfMapping mapping;
  mapping.ticks_per_second = 2.0;
  mapping.area_per_processor = 50;
  mapping.min_area = 100;
  mapping.max_area = 2000;
  const SwfConversion converted = ConvertSwf(jobs, mapping);

  EXPECT_EQ(converted.jobs_parsed, 4u);
  EXPECT_EQ(converted.jobs_skipped, 1u);  // job 4 (zero runtime)
  ASSERT_EQ(converted.workload.size(), 3u);

  const GeneratedTask& first = converted.workload[0];
  EXPECT_EQ(first.create_time, 0);
  EXPECT_EQ(first.required_time, 200);    // 100 s * 2 ticks/s
  EXPECT_EQ(first.needed_area, 200);      // 4 procs * 50
  EXPECT_EQ(first.data_size, 2048 * 1024);
  EXPECT_FALSE(first.preferred_config.valid());

  // Job 3 falls back to requested_time (runtime missing).
  const GeneratedTask& third = converted.workload[2];
  EXPECT_EQ(third.create_time, 120);
  EXPECT_EQ(third.required_time, 600);    // 300 s * 2
  EXPECT_EQ(third.needed_area, 800);      // 16 * 50
}

TEST(SwfConvert, ClampsAreaToConfigurableRange) {
  SwfJob big;
  big.submit_time = 0;
  big.run_time = 10;
  big.requested_procs = 1000;
  SwfJob tiny = big;
  tiny.requested_procs = 1;
  SwfMapping mapping;
  mapping.area_per_processor = 100;
  mapping.min_area = 200;
  mapping.max_area = 2000;
  const auto converted = ConvertSwf({big, tiny}, mapping);
  ASSERT_EQ(converted.workload.size(), 2u);
  EXPECT_EQ(converted.workload[0].needed_area, 2000);
  EXPECT_EQ(converted.workload[1].needed_area, 200);
}

TEST(SwfConvert, SortsByArrivalTime) {
  SwfJob late;
  late.submit_time = 100;
  late.run_time = 10;
  late.requested_procs = 1;
  SwfJob early = late;
  early.submit_time = 5;
  const auto converted = ConvertSwf({late, early}, SwfMapping{});
  ASSERT_EQ(converted.workload.size(), 2u);
  EXPECT_LE(converted.workload[0].create_time,
            converted.workload[1].create_time);
}

TEST(SwfConvert, RejectsBadMapping) {
  SwfMapping bad;
  bad.ticks_per_second = 0.0;
  EXPECT_THROW((void)ConvertSwf({}, bad), std::invalid_argument);
  bad = SwfMapping{};
  bad.min_area = 5000;
  bad.max_area = 2000;
  EXPECT_THROW((void)ConvertSwf({}, bad), std::invalid_argument);
}

TEST(SwfRoundTrip, WriteParseConvert) {
  std::vector<SwfJob> jobs;
  for (int i = 0; i < 20; ++i) {
    SwfJob job;
    job.job_id = i + 1;
    job.submit_time = i * 25;
    job.run_time = 100 + i * 10;
    job.allocated_procs = 1 + i % 8;
    job.requested_procs = 1 + i % 8;
    job.used_memory_kb = 1024;
    jobs.push_back(job);
  }
  std::stringstream buffer;
  WriteSwf(buffer, jobs, "round-trip test");
  const auto parsed = ParseSwf(buffer);
  ASSERT_EQ(parsed.size(), jobs.size());
  EXPECT_EQ(parsed[7].submit_time, jobs[7].submit_time);
  EXPECT_EQ(parsed[7].requested_procs, jobs[7].requested_procs);

  const auto converted = ConvertSwf(parsed, SwfMapping{});
  EXPECT_EQ(converted.workload.size(), jobs.size());
  EXPECT_TRUE(ValidateWorkload(converted.workload).empty());
}

TEST(SwfRoundTrip, ReplaysThroughTheSimulator) {
  // A fabricated SWF trace drives a complete simulation end to end.
  std::vector<SwfJob> jobs;
  for (int i = 0; i < 300; ++i) {
    SwfJob job;
    job.job_id = i + 1;
    job.submit_time = i * 8;
    job.run_time = 200 + (i * 37) % 2000;
    job.requested_procs = 2 + i % 12;
    jobs.push_back(job);
  }
  SwfMapping mapping;
  mapping.area_per_processor = 150;
  const auto converted = ConvertSwf(jobs, mapping);

  core::SimulationConfig config;
  config.nodes.count = 30;
  config.configs.count = 10;
  config.seed = 3;
  core::Simulator sim(std::move(config));
  const core::MetricsReport report = sim.RunWithWorkload(converted.workload);
  EXPECT_EQ(report.total_tasks, 300u);
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 300u);
  EXPECT_GT(report.completed_tasks, 250u);  // most SWF jobs should run
}

TEST(SwfFile, MissingFileThrows) {
  EXPECT_THROW((void)ReadSwfFile("/nonexistent/trace.swf", SwfMapping{}),
               std::runtime_error);
}

}  // namespace
}  // namespace dreamsim::workload
