// Differential proof of the scheduler-index contract (DESIGN.md "Scheduler
// index"): with the O(log N) index on or off, every scheduler query returns
// the same decision and charges the WorkloadMeter the same step counts.
//
// Two layers:
//   1. Store-level twin fuzz: one random operation/query stream applied to
//      an indexed and a scan store in lockstep; results, meters, and
//      invariants must agree after every step.
//   2. Simulator-level: full runs across both reconfiguration modes,
//      priority scheduling on/off, contiguous placement on/off, multiple
//      families, and the heuristic baselines — identical event sequences
//      and bit-identical MetricsReport fields across > 100 randomized
//      seeds.
#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hpp"
#include "resource/store.hpp"
#include "util/rng.hpp"

namespace dreamsim {
namespace {

using core::SimEvent;
using core::SimulationConfig;
using core::Simulator;
using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::HostRank;
using resource::ResourceStore;

// --- Layer 1: store-level twin fuzz ---------------------------------------

struct TwinCase {
  std::uint64_t seed = 0;
  bool contiguous = false;
  int families = 1;
};

void PrintTo(const TwinCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << (c.contiguous ? " contiguous" : " scalar")
      << " families=" << c.families;
}

class TwinStores {
 public:
  TwinStores(Rng& rng, bool contiguous, int families)
      : indexed_(MakeCatalogue(rng, families)),
        scan_(indexed_.configs()) {
    scan_.SetIndexed(false);
    EXPECT_TRUE(indexed_.indexed());
    EXPECT_FALSE(scan_.indexed());
    for (int i = 0; i < 40; ++i) {
      const Area area = rng.uniform_int(1000, 4000);
      const auto family =
          FamilyId{static_cast<std::uint32_t>(i % std::max(1, families))};
      (void)indexed_.AddNode(area, family, {}, 0, contiguous);
      (void)scan_.AddNode(area, family, {}, 0, contiguous);
    }
  }

  ResourceStore& indexed() { return indexed_; }
  ResourceStore& scan() { return scan_; }

  /// Meters must agree exactly after every operation.
  void ExpectMetersEqual() {
    ASSERT_EQ(indexed_.meter().scheduling_steps_total(),
              scan_.meter().scheduling_steps_total());
    ASSERT_EQ(indexed_.meter().housekeeping_steps_total(),
              scan_.meter().housekeeping_steps_total());
  }

  void ExpectConsistent() {
    const auto iv = indexed_.ValidateConsistency();
    EXPECT_TRUE(iv.empty()) << "indexed: " << (iv.empty() ? "" : iv[0]);
    const auto sv = scan_.ValidateConsistency();
    EXPECT_TRUE(sv.empty()) << "scan: " << (sv.empty() ? "" : sv[0]);
  }

 private:
  static ConfigCatalogue MakeCatalogue(Rng& rng, int families) {
    ConfigCatalogue catalogue;
    for (int i = 0; i < 12; ++i) {
      Configuration cfg;
      cfg.required_area = rng.uniform_int(200, 2000);
      cfg.config_time = rng.uniform_int(10, 20);
      if (families > 1) {
        cfg.family = FamilyId{static_cast<std::uint32_t>(i % families)};
      }
      catalogue.Add(cfg);
    }
    return catalogue;
  }

  ResourceStore indexed_;
  ResourceStore scan_;
};

class StoreIndexTwinFuzz : public ::testing::TestWithParam<TwinCase> {};

TEST_P(StoreIndexTwinFuzz, QueriesAndMetersAgreeUnderRandomOperations) {
  const TwinCase param = GetParam();
  Rng rng(param.seed);
  TwinStores twins(rng, param.contiguous, param.families);
  ResourceStore& a = twins.indexed();
  ResourceStore& b = twins.scan();

  std::vector<EntryRef> idle_entries;
  std::vector<EntryRef> busy_entries;
  std::uint32_t next_task = 0;

  const auto random_family = [&] {
    // Mix unconstrained queries with per-family ones (including a family
    // no node belongs to).
    const std::int64_t pick = rng.uniform_int(0, param.families + 1);
    if (pick == 0) return FamilyId::invalid();
    return FamilyId{static_cast<std::uint32_t>(pick - 1)};
  };
  const auto random_area = [&] { return rng.uniform_int(100, 4200); };

  for (int op = 0; op < 1200; ++op) {
    switch (rng.uniform_int(0, 11)) {
      case 0: {  // configure a random config onto a random hosting node
        const auto cfg_id = ConfigId{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(a.configs().size()) - 1))};
        const Configuration& cfg = a.configs().Get(cfg_id);
        const auto node_id = NodeId{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(a.node_count()) - 1))};
        if (!cfg.CompatibleWith(a.node(node_id).family())) break;
        if (!a.node(node_id).CanHost(cfg.required_area)) break;
        const EntryRef ea = a.Configure(node_id, cfg_id);
        const EntryRef eb = b.Configure(node_id, cfg_id);
        ASSERT_EQ(ea, eb);
        idle_entries.push_back(ea);
        break;
      }
      case 1: {  // assign a task to a random idle entry
        if (idle_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(idle_entries.size()) - 1));
        const EntryRef e = idle_entries[pick];
        idle_entries[pick] = idle_entries.back();
        idle_entries.pop_back();
        a.AssignTask(e, TaskId{next_task});
        b.AssignTask(e, TaskId{next_task});
        ++next_task;
        busy_entries.push_back(e);
        break;
      }
      case 2: {  // release a random busy entry
        if (busy_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(busy_entries.size()) - 1));
        const EntryRef e = busy_entries[pick];
        busy_entries[pick] = busy_entries.back();
        busy_entries.pop_back();
        ASSERT_EQ(a.ReleaseTask(e), b.ReleaseTask(e));
        idle_entries.push_back(e);
        break;
      }
      case 3: {  // reclaim a random idle entry
        if (idle_entries.empty()) break;
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(idle_entries.size()) - 1));
        const EntryRef e = idle_entries[pick];
        idle_entries[pick] = idle_entries.back();
        idle_entries.pop_back();
        a.ReclaimSlot(e);
        b.ReclaimSlot(e);
        break;
      }
      case 4: {  // blank a random idle node
        const auto node_id = NodeId{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(a.node_count()) - 1))};
        if (a.node(node_id).busy() || a.node(node_id).blank()) break;
        a.BlankNode(node_id);
        b.BlankNode(node_id);
        std::erase_if(idle_entries,
                      [&](EntryRef e) { return e.node == node_id; });
        break;
      }
      case 5: {
        const Area area = random_area();
        const FamilyId family = random_family();
        ASSERT_EQ(a.FindBestBlankNode(area, family),
                  b.FindBestBlankNode(area, family));
        break;
      }
      case 6: {
        const Area area = random_area();
        const FamilyId family = random_family();
        ASSERT_EQ(a.FindBestPartiallyBlankNode(area, family),
                  b.FindBestPartiallyBlankNode(area, family));
        break;
      }
      case 7: {
        const Area area = random_area();
        const FamilyId family = random_family();
        const auto pa = a.FindAnyIdleNode(area, family);
        const auto pb = b.FindAnyIdleNode(area, family);
        ASSERT_EQ(pa.has_value(), pb.has_value());
        if (pa) {
          ASSERT_EQ(pa->node, pb->node);
          ASSERT_EQ(pa->removable_entries, pb->removable_entries);
        }
        break;
      }
      case 8: {
        const Area area = random_area();
        const FamilyId family = random_family();
        ASSERT_EQ(a.AnyBusyNodeCouldFit(area, family),
                  b.AnyBusyNodeCouldFit(area, family));
        break;
      }
      case 9: {
        const Area area = random_area();
        const FamilyId family = random_family();
        ASSERT_EQ(a.FindBestIdleConfiguredNode(area, family),
                  b.FindBestIdleConfiguredNode(area, family));
        break;
      }
      case 10: {
        const Area area = random_area();
        const FamilyId family = random_family();
        for (const HostRank rank : {HostRank::kFirstFit, HostRank::kBestFit,
                                    HostRank::kWorstFit}) {
          ASSERT_EQ(a.FindRankedHostNode(area, rank, family),
                    b.FindRankedHostNode(area, rank, family));
        }
        break;
      }
      case 11: {
        const Area area = random_area();
        for (std::uint32_t id = 0; id < a.node_count(); ++id) {
          ASSERT_EQ(a.CouldEventuallyHost(NodeId{id}, area),
                    b.CouldEventuallyHost(NodeId{id}, area));
          ASSERT_EQ(a.ReclaimablePotential(NodeId{id}),
                    b.ReclaimablePotential(NodeId{id}));
        }
        break;
      }
    }
    twins.ExpectMetersEqual();
    if (HasFatalFailure()) return;
    if (op % 200 == 0) twins.ExpectConsistent();
  }
  twins.ExpectConsistent();

  // Queries on equal-but-differently-reached stores still agree after the
  // index is rebuilt from scratch (SetIndexed toggling mid-run).
  a.SetIndexed(false);
  a.SetIndexed(true);
  ASSERT_EQ(a.FindBestBlankNode(500), b.FindBestBlankNode(500));
  twins.ExpectConsistent();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StoreIndexTwinFuzz,
    ::testing::Values(TwinCase{101, false, 1}, TwinCase{102, false, 3},
                      TwinCase{103, true, 1}, TwinCase{104, true, 3},
                      TwinCase{105, false, 2}, TwinCase{106, true, 2}));

// --- Layer 2: full-simulation differential runs ---------------------------

struct SimCase {
  sched::ReconfigMode mode = sched::ReconfigMode::kPartial;
  bool priority = false;
  bool contiguous = false;
  int families = 1;
  core::PolicyChoice policy = core::PolicyChoice::kDreamSim;
};

void PrintTo(const SimCase& c, std::ostream* os) {
  *os << (c.mode == sched::ReconfigMode::kPartial ? "partial" : "full")
      << (c.priority ? " priority" : " fifo")
      << (c.contiguous ? " contiguous" : " scalar") << " families="
      << c.families;
}

struct RunResult {
  std::vector<SimEvent> events;
  core::MetricsReport report;
};

RunResult RunOne(const SimCase& c, std::uint64_t seed, bool indexed) {
  SimulationConfig config;
  config.nodes.count = 24;
  config.nodes.family_count = c.families;
  config.nodes.contiguous_placement = c.contiguous;
  config.configs.count = 10;
  config.configs.family_count = c.families;
  config.tasks.total_tasks = 150;
  config.mode = c.mode;
  config.policy = c.policy;
  config.priority_scheduling = c.priority;
  config.scheduler_index = indexed;
  config.seed = seed;
  // Step-mode structure audit rides along in Debug (end-of-run in Release):
  // the indexed and scan twins must both reconstruct cleanly at every
  // decision, not just return identical answers.
#ifndef NDEBUG
  config.audit = analysis::AuditMode::kStep;
#else
  config.audit = analysis::AuditMode::kEnd;
#endif
  Simulator sim(std::move(config));
  RunResult result;
  sim.SetEventLogger(
      [&](const SimEvent& e) { result.events.push_back(e); });
  result.report = sim.Run();
  EXPECT_EQ(sim.store().indexed(), indexed);
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  return result;
}

void ExpectIdentical(const RunResult& idx, const RunResult& ref) {
  ASSERT_EQ(idx.events.size(), ref.events.size());
  for (std::size_t i = 0; i < idx.events.size(); ++i) {
    const SimEvent& a = idx.events[i];
    const SimEvent& b = ref.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.tick, b.tick) << "event " << i;
    ASSERT_EQ(a.task, b.task) << "event " << i;
    ASSERT_EQ(a.node, b.node) << "event " << i;
    ASSERT_EQ(a.config, b.config) << "event " << i;
  }
  const core::MetricsReport& x = idx.report;
  const core::MetricsReport& y = ref.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
}

class StoreIndexSimDiff : public ::testing::TestWithParam<SimCase> {};

TEST_P(StoreIndexSimDiff, IndexedRunsAreBitIdenticalAcrossSeeds) {
  const SimCase c = GetParam();
  // 8 DreamSim combos x 13 seeds + 3 heuristic combos = 110 seeded
  // differential runs overall.
  for (std::uint64_t seed = 1; seed <= 13; ++seed) {
    const RunResult idx = RunOne(c, seed * 7919, true);
    const RunResult ref = RunOne(c, seed * 7919, false);
    ExpectIdentical(idx, ref);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DreamSimCombos, StoreIndexSimDiff,
    ::testing::Values(
        SimCase{sched::ReconfigMode::kPartial, false, false, 1},
        SimCase{sched::ReconfigMode::kPartial, false, true, 2},
        SimCase{sched::ReconfigMode::kPartial, true, false, 3},
        SimCase{sched::ReconfigMode::kPartial, true, true, 1},
        SimCase{sched::ReconfigMode::kFull, false, false, 2},
        SimCase{sched::ReconfigMode::kFull, false, true, 1},
        SimCase{sched::ReconfigMode::kFull, true, false, 1},
        SimCase{sched::ReconfigMode::kFull, true, true, 3}));

class StoreIndexHeuristicDiff
    : public ::testing::TestWithParam<core::PolicyChoice> {};

TEST_P(StoreIndexHeuristicDiff, HeuristicBaselinesMatchScans) {
  SimCase c;
  c.policy = GetParam();
  c.families = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RunResult idx = RunOne(c, seed * 104729, true);
    const RunResult ref = RunOne(c, seed * 104729, false);
    ExpectIdentical(idx, ref);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Heuristics, StoreIndexHeuristicDiff,
                         ::testing::Values(core::PolicyChoice::kFirstFit,
                                           core::PolicyChoice::kBestFit,
                                           core::PolicyChoice::kWorstFit));

}  // namespace
}  // namespace dreamsim
