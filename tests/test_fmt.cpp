// Tests for the minimal formatter used across the library.
#include "util/fmt.hpp"

#include <gtest/gtest.h>

namespace dreamsim {
namespace {

TEST(Format, NoPlaceholders) {
  EXPECT_EQ(Format("hello"), "hello");
  EXPECT_EQ(Format(""), "");
}

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(Format("x={}", 42), "x=42");
  EXPECT_EQ(Format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, StringsAndViews) {
  EXPECT_EQ(Format("{}!", std::string("hi")), "hi!");
  EXPECT_EQ(Format("{}!", std::string_view("hi")), "hi!");
  EXPECT_EQ(Format("{}!", "hi"), "hi!");
}

TEST(Format, Booleans) {
  EXPECT_EQ(Format("{} {}", true, false), "true false");
}

TEST(Format, Doubles) {
  EXPECT_EQ(Format("{}", 1.5), "1.5");
}

TEST(Format, NegativeAndUnsigned) {
  EXPECT_EQ(Format("{} {}", -7, 7u), "-7 7");
  EXPECT_EQ(Format("{}", std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(Format("{{}}"), "{}");
  EXPECT_EQ(Format("{{{}}}", 5), "{5}");
}

TEST(Format, LeftAlignment) {
  EXPECT_EQ(Format("[{:<6}]", "ab"), "[ab    ]");
  EXPECT_EQ(Format("[{:<2}]", "abcd"), "[abcd]");
}

TEST(Format, RightAlignment) {
  EXPECT_EQ(Format("[{:>6}]", "ab"), "[    ab]");
  EXPECT_EQ(Format("[{:>6}]", 42), "[    42]");
}

TEST(Format, SurplusPlaceholdersRenderLiterally) {
  EXPECT_EQ(Format("{} {}", 1), "1 {}");
}

TEST(Format, SurplusArgumentsIgnored) {
  EXPECT_EQ(Format("{}", 1, 2, 3), "1");
}

TEST(Format, MalformedOpenBrace) {
  EXPECT_EQ(Format("{unclosed", 1), "{unclosed");
}

}  // namespace
}  // namespace dreamsim
