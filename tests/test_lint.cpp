// Lint-engine suite (DESIGN.md §17): tokenizer unit tests, suppression
// semantics, exit-code contract, and the fixture trees.
//
// Fixture protocol: every directory under tests/lint_fixtures/ is an
// independent mini-repo (its own src/ layout). A fixture file marks each
// line where a finding is expected with a comment containing
// `expect: <rule-id>`; the suite runs the full engine over the fixture
// root and requires the reported finding set to equal the marker set
// exactly — extra findings and missing findings both fail. A fixture with
// no markers is a pure negative and must lint clean.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint/engine.hpp"
#include "lint/source.hpp"

namespace {

namespace fs = std::filesystem;
using dreamsim::lint::Finding;
using dreamsim::lint::MakeSource;
using dreamsim::lint::RunLint;
using dreamsim::lint::RunLintCli;
using dreamsim::lint::RunLintOnTree;
using dreamsim::lint::RunResult;
using dreamsim::lint::Source;
using dreamsim::lint::TokKind;
using dreamsim::lint::Tokenize;
using dreamsim::lint::Tree;

const fs::path kFixtureDir = DREAMSIM_LINT_FIXTURE_DIR;

using Expected = std::tuple<std::string, std::size_t, std::string>;

/// Scans a fixture file for `expect: <rule-id>` markers.
std::vector<Expected> MarkersIn(const fs::path& abs, const std::string& rel) {
  std::vector<Expected> expected;
  std::ifstream in(abs);
  std::string line;
  std::size_t lineno = 0;
  const std::string tag = "expect: ";
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t pos = 0;
    while ((pos = line.find(tag, pos)) != std::string::npos) {
      std::size_t begin = pos + tag.size();
      std::size_t end = begin;
      while (end < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[end])) != 0 ||
              line[end] == '-')) {
        ++end;
      }
      expected.emplace_back(rel, lineno, line.substr(begin, end - begin));
      pos = end;
    }
  }
  return expected;
}

std::vector<Expected> Reported(const RunResult& result) {
  std::vector<Expected> actual;
  for (const Finding& f : result.findings) {
    actual.emplace_back(f.file, f.line, f.rule);
  }
  return actual;
}

std::string Render(const std::vector<Expected>& findings) {
  std::ostringstream os;
  for (const auto& [file, line, rule] : findings) {
    os << "  " << file << ":" << line << " [" << rule << "]\n";
  }
  return os.str();
}

/// Runs the CLI entry point with owned argv storage.
int Cli(std::vector<std::string> args) {
  args.insert(args.begin(), "dreamsim_lint");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return RunLintCli(static_cast<int>(argv.size()), argv.data());
}

// --- Fixture trees ---------------------------------------------------------

TEST(LintFixtures, EveryFixtureMatchesItsMarkersExactly) {
  ASSERT_TRUE(fs::exists(kFixtureDir)) << kFixtureDir;
  std::size_t fixtures = 0;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    if (!entry.is_directory()) continue;
    ++fixtures;
    const fs::path root = entry.path();
    std::vector<Expected> expected;
    for (const auto& file : fs::recursive_directory_iterator(root)) {
      if (!file.is_regular_file()) continue;
      const std::string rel =
          fs::relative(file.path(), root).generic_string();
      const std::vector<Expected> markers = MarkersIn(file.path(), rel);
      expected.insert(expected.end(), markers.begin(), markers.end());
    }
    const RunResult result = RunLint(root, {"src", "tools"});
    std::vector<Expected> actual = Reported(result);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(expected, actual)
        << "fixture " << root.filename().string() << "\nexpected:\n"
        << Render(expected) << "actual:\n"
        << Render(actual);
  }
  EXPECT_GE(fixtures, 12u) << "fixture trees went missing";
}

// --- Tokenizer -------------------------------------------------------------

TEST(LintTokenizer, RawStringsAreBlankedFromTheCleanView) {
  const Source src = MakeSource(
      "src/core/x.cpp",
      "const char* k = R\"sql(select rand() from t)sql\";\nint live = 1;\n");
  EXPECT_EQ(src.clean.find("rand"), std::string::npos);
  EXPECT_NE(src.clean.find("live"), std::string::npos);
  EXPECT_EQ(src.clean.size(), src.raw.size());
}

TEST(LintTokenizer, DigitSeparatorsAreNotCharLiterals) {
  const Source src =
      MakeSource("src/core/x.cpp", "long n = 1'000'000; long m = rand();\n");
  // A naive char-literal scan would swallow `000` and the code after it.
  EXPECT_NE(src.clean.find("rand"), std::string::npos);
  EXPECT_NE(src.clean.find("1'000'000"), std::string::npos);
}

TEST(LintTokenizer, CommentMarkersInsideStringsStayStrings) {
  const std::vector<dreamsim::lint::Token> tokens =
      Tokenize("const char* u = \"http://x\"; int y = 2;");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokKind::kString);
}

TEST(LintTokenizer, BlockCommentsSpanLinesAndKeepLineNumbers) {
  const Source src = MakeSource("src/core/x.cpp",
                                "/* rand()\n   rand() */\nint z = rand();\n");
  const std::size_t hit = src.clean.find("rand");
  ASSERT_NE(hit, std::string::npos);
  EXPECT_EQ(src.LineOf(hit), 3u);
}

// --- Suppression semantics -------------------------------------------------

TEST(LintSuppressions, OnlyCommentsStartingWithTheTagRegister) {
  const Source annotated =
      MakeSource("src/core/x.cpp", "// lint: allow(nondeterminism)\n");
  ASSERT_EQ(annotated.suppressions.size(), 1u);
  EXPECT_EQ(annotated.suppressions[0].rule, "nondeterminism");
  EXPECT_FALSE(annotated.suppressions[0].file_wide);

  // Prose that merely mentions the tag mid-sentence is not an annotation
  // (and so can never be reported stale).
  const Source prose = MakeSource(
      "src/core/x.cpp", "// see the lint: allow(nondeterminism) syntax\n");
  EXPECT_TRUE(prose.suppressions.empty());
}

TEST(LintSuppressions, AllowFileSuppressesAnywhereInTheFile) {
  Tree tree;
  tree.sources.push_back(MakeSource(
      "src/core/x.cpp",
      "// lint: allow-file(nondeterminism)\nlong A() { return rand(); }\n"
      "long Pad() { return 0; }\nlong B() { return rand(); }\n"));
  const RunResult result = RunLintOnTree(tree);
  EXPECT_TRUE(result.findings.empty()) << Render(Reported(result));
}

TEST(LintSuppressions, UnusedAllowIsReportedStale) {
  Tree tree;
  tree.sources.push_back(MakeSource(
      "src/core/x.cpp",
      "// lint: allow(nondeterminism)\nlong A() { return 1; }\n"));
  const RunResult result = RunLintOnTree(tree);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "stale-suppression");
  EXPECT_EQ(result.findings[0].line, 1u);
  EXPECT_EQ(result.errors, 1u);
}

TEST(LintSuppressions, WrongRuleIdDoesNotSuppress) {
  Tree tree;
  tree.sources.push_back(MakeSource(
      "src/core/x.cpp",
      "// lint: allow(list-internals)\nlong A() { return rand(); }\n"));
  const RunResult result = RunLintOnTree(tree);
  // The real finding survives AND the mismatched allow is stale. Findings
  // sort by (file, line, rule): the allow sits on line 1, the call on 2.
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].rule, "stale-suppression");
  EXPECT_EQ(result.findings[1].rule, "nondeterminism");
}

// --- Exit-code contract ----------------------------------------------------

TEST(LintCli, CleanTreeExitsZero) {
  testing::internal::CaptureStdout();
  const int code =
      Cli({"--root", (kFixtureDir / "clean").string(), "src"});
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;
}

TEST(LintCli, FindingsExitOne) {
  testing::internal::CaptureStdout();
  const int code =
      Cli({"--root", (kFixtureDir / "nondeterminism").string(), "src"});
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(code, 1) << out;
  // Machine-readable format: file:line: [rule-id] message.
  EXPECT_NE(out.find("src/core/clock.cpp:4: [nondeterminism]"),
            std::string::npos)
      << out;
}

TEST(LintCli, InternalErrorsExitTwo) {
  // A root with no sources is a linter failure, not a clean tree.
  EXPECT_EQ(Cli({"--root", "/nonexistent/dreamsim"}), 2);
  // Unknown options are refused the same way.
  EXPECT_EQ(Cli({"--frobnicate"}), 2);
}

TEST(LintCli, FixHintsModePrintsHints) {
  testing::internal::CaptureStdout();
  const int code = Cli({"--root", (kFixtureDir / "nondeterminism").string(),
                        "--fix-hints", "src"});
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("hint: "), std::string::npos) << out;
}

TEST(LintCli, ListRulesNamesEveryRule) {
  testing::internal::CaptureStdout();
  const int code = Cli({"--list-rules"});
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(code, 0);
  for (const char* id :
       {"list-internals", "store-internals", "uncharged-index-query",
        "nondeterminism", "unordered-writer-iteration", "unordered-merge",
        "entry-cells-iteration", "metric-catalogue", "plane-discipline",
        "atomics-discipline", "merge-order", "stale-suppression"}) {
    EXPECT_NE(out.find(id), std::string::npos) << id;
  }
}

}  // namespace
