// Differential proof that fault injection preserves the indexed fast-path
// contracts (DESIGN.md "Scheduler index", §10): with `scheduler_index` and
// `drain_index` on or off, runs with node failures and repairs produce
// identical event streams (including kKilled/kNodeFailed/kNodeRepaired) and
// bit-identical MetricsReport fields — fault block included — across > 50
// seeded differential run pairs.
#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hpp"
#include "util/rng.hpp"

namespace dreamsim {
namespace {

using core::FaultAction;
using core::MetricsReport;
using core::SimEvent;
using core::SimulationConfig;
using core::Simulator;

struct FaultCase {
  sched::ReconfigMode mode = sched::ReconfigMode::kPartial;
  double mtbf = 0.0;
  double mttr = 0.0;
  bool scripted = false;
  std::uint32_t retries = 8;   // max_suspension_retries
  std::size_t capacity = 0;    // suspension_capacity (0 = unbounded)
  bool priority = false;
};

void PrintTo(const FaultCase& c, std::ostream* os) {
  *os << (c.mode == sched::ReconfigMode::kPartial ? "partial" : "full")
      << " mtbf=" << c.mtbf << " mttr=" << c.mttr
      << (c.scripted ? " scripted" : "") << " retries=" << c.retries
      << " capacity=" << c.capacity << (c.priority ? " priority" : "");
}

/// A saturating workload whose execution times are short relative to the
/// MTBF, so failures interrupt running tasks without statistically
/// livelocking the retry loop.
std::vector<workload::GeneratedTask> MakeWorkload(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<workload::GeneratedTask> tasks;
  Tick at = 0;
  for (int i = 0; i < 160; ++i) {
    workload::GeneratedTask t;
    at += rng.uniform_int(1, 5);
    t.create_time = at;
    if (rng.uniform_int(0, 9) < 8) {
      t.preferred_config =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 7))};
    }
    t.needed_area = rng.uniform_int(200, 2000);
    t.required_time = rng.uniform_int(80, 900);
    t.priority = static_cast<double>(rng.uniform_int(0, 9));
    tasks.push_back(t);
  }
  return tasks;
}

struct RunResult {
  std::vector<SimEvent> events;
  MetricsReport report;
};

RunResult RunOne(const FaultCase& c, std::uint64_t seed, bool indexed) {
  SimulationConfig config;
  config.nodes.count = 14;
  config.configs.count = 8;
  config.mode = c.mode;
  config.priority_scheduling = c.priority;
  config.max_suspension_retries = c.retries;
  config.suspension_capacity = c.capacity;
  config.scheduler_index = indexed;
  config.drain_index = indexed;
  config.faults.mtbf = c.mtbf;
  config.faults.mttr = c.mttr;
  if (c.scripted) {
    config.faults.script = {{200, NodeId{0}, FaultAction::kFail},
                            {200, NodeId{1}, FaultAction::kFail},
                            {205, NodeId{2}, FaultAction::kFail},
                            {900, NodeId{0}, FaultAction::kRepair},
                            {1400, NodeId{1}, FaultAction::kRepair},
                            {2500, NodeId{5}, FaultAction::kFail}};
  }
  config.seed = seed;
  // Structure audit rides along: every decision in Debug, end-of-run in
  // Release (see test_simulator_fuzz.cpp).
#ifndef NDEBUG
  config.audit = analysis::AuditMode::kStep;
#else
  config.audit = analysis::AuditMode::kEnd;
#endif
  Simulator sim(std::move(config));
  RunResult result;
  sim.SetEventLogger([&](const SimEvent& e) { result.events.push_back(e); });
  EXPECT_EQ(sim.store().indexed(), indexed);
  EXPECT_EQ(sim.suspension().drain_indexed(), indexed);
  result.report = sim.RunWithWorkload(MakeWorkload(seed));
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  return result;
}

void ExpectIdentical(const RunResult& idx, const RunResult& ref) {
  ASSERT_EQ(idx.events.size(), ref.events.size());
  for (std::size_t i = 0; i < idx.events.size(); ++i) {
    const SimEvent& a = idx.events[i];
    const SimEvent& b = ref.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.tick, b.tick) << "event " << i;
    ASSERT_EQ(a.task, b.task) << "event " << i;
    ASSERT_EQ(a.node, b.node) << "event " << i;
    ASSERT_EQ(a.config, b.config) << "event " << i;
  }
  const MetricsReport& x = idx.report;
  const MetricsReport& y = ref.report;
  EXPECT_EQ(x.total_tasks, y.total_tasks);
  EXPECT_EQ(x.completed_tasks, y.completed_tasks);
  EXPECT_EQ(x.discarded_tasks, y.discarded_tasks);
  EXPECT_EQ(x.suspended_ever, y.suspended_ever);
  EXPECT_EQ(x.closest_match_tasks, y.closest_match_tasks);
  EXPECT_EQ(x.avg_wasted_area_per_task, y.avg_wasted_area_per_task);
  EXPECT_EQ(x.avg_task_running_time, y.avg_task_running_time);
  EXPECT_EQ(x.avg_reconfig_count_per_node, y.avg_reconfig_count_per_node);
  EXPECT_EQ(x.avg_config_time_per_task, y.avg_config_time_per_task);
  EXPECT_EQ(x.avg_waiting_time_per_task, y.avg_waiting_time_per_task);
  EXPECT_EQ(x.avg_scheduling_steps_per_task, y.avg_scheduling_steps_per_task);
  EXPECT_EQ(x.total_scheduler_workload, y.total_scheduler_workload);
  EXPECT_EQ(x.total_used_nodes, y.total_used_nodes);
  EXPECT_EQ(x.total_simulation_time, y.total_simulation_time);
  EXPECT_EQ(x.scheduling_steps_total, y.scheduling_steps_total);
  EXPECT_EQ(x.housekeeping_steps_total, y.housekeeping_steps_total);
  EXPECT_EQ(x.total_reconfigurations, y.total_reconfigurations);
  EXPECT_EQ(x.total_configuration_time, y.total_configuration_time);
  EXPECT_EQ(x.avg_suspension_retries, y.avg_suspension_retries);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(x.placements_by_kind[k], y.placements_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(x.placements_per_config, y.placements_per_config);
  // The fault block itself must match bit for bit.
  EXPECT_EQ(x.failures_injected, y.failures_injected);
  EXPECT_EQ(x.repairs_completed, y.repairs_completed);
  EXPECT_EQ(x.tasks_killed, y.tasks_killed);
  EXPECT_EQ(x.tasks_recovered, y.tasks_recovered);
  EXPECT_EQ(x.tasks_lost_to_failure, y.tasks_lost_to_failure);
  EXPECT_EQ(x.lost_work_area_ticks, y.lost_work_area_ticks);
  EXPECT_EQ(x.total_downtime, y.total_downtime);
}

class FaultSimDiff : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultSimDiff, IndexedFaultRunsAreBitIdenticalAcrossSeeds) {
  const FaultCase c = GetParam();
  // 6 combos x 9 seeds = 54 seeded differential run pairs overall.
  std::uint64_t failures_total = 0;
  std::uint64_t killed_total = 0;
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    const RunResult idx = RunOne(c, seed * 7919, true);
    const RunResult ref = RunOne(c, seed * 7919, false);
    ExpectIdentical(idx, ref);
    failures_total += idx.report.failures_injected;
    killed_total += idx.report.tasks_killed;
    if (HasFatalFailure()) return;
  }
  // The comparison is vacuous unless faults actually fired and killed work.
  EXPECT_GT(failures_total, 0u);
  EXPECT_GT(killed_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultCombos, FaultSimDiff,
    ::testing::Values(
        FaultCase{sched::ReconfigMode::kPartial, 3000, 600, false, 8, 0,
                  false},
        FaultCase{sched::ReconfigMode::kPartial, 2000, 0, false, 6, 0, false},
        FaultCase{sched::ReconfigMode::kPartial, 4000, 800, false, 8, 20,
                  true},
        FaultCase{sched::ReconfigMode::kPartial, 0, 0, true, 8, 0, false},
        FaultCase{sched::ReconfigMode::kFull, 3000, 600, false, 8, 0, false},
        FaultCase{sched::ReconfigMode::kFull, 0, 0, true, 6, 16, false}));

}  // namespace
}  // namespace dreamsim
