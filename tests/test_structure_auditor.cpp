// StructureAuditor tests: the auditor must be green on healthy structures
// and, for every seeded-corruption class the StructureCorruptor can
// inject, report exactly the matching violation slug(s) — proving the
// audit is neither vacuous nor trigger-happy (DESIGN.md §12).
#include "analysis/structure_auditor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "analysis/corruptor.hpp"
#include "obs/metrics.hpp"
#include "resource/store.hpp"
#include "resource/suspension_queue.hpp"
#include "resource/task.hpp"
#include "sim/event_queue.hpp"

namespace dreamsim::analysis {
namespace {

using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::ResourceStore;
using resource::SusEntryAttrs;
using resource::SuspensionQueue;
using resource::WorkloadMeter;

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  std::uint32_t i = 0;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10 + static_cast<Tick>(i++);
    c.Add(cfg);
  }
  return c;
}

/// Distinct invariant slugs present in the report, in sorted order — the
/// corruption tests assert this equals exactly the expected slug set.
std::set<std::string> Slugs(const AuditReport& report) {
  std::set<std::string> slugs;
  for (const Violation& v : report.violations) slugs.insert(v.invariant);
  return slugs;
}

/// A store with a little of everything: blank, idle, and busy nodes.
ResourceStore MakePopulatedStore(bool indexed) {
  ResourceStore store(MakeCatalogue({300, 500, 800}));
  store.SetIndexed(indexed);
  const NodeId a = store.AddNode(1000);
  const NodeId b = store.AddNode(2000);
  (void)store.AddNode(4000);  // stays blank
  const EntryRef idle_a = store.Configure(a, ConfigId{0});
  (void)idle_a;
  const EntryRef busy_b = store.Configure(b, ConfigId{1});
  store.AssignTask(busy_b, TaskId{7});
  (void)store.Configure(b, ConfigId{0});  // second idle entry for config 0
  return store;
}

// --- Clean structures audit clean -------------------------------------------

TEST(StructureAuditorClean, FreshStore) {
  ResourceStore store(MakeCatalogue({300, 500}));
  const AuditReport report = StructureAuditor::AuditStore(store);
  EXPECT_TRUE(report.ok()) << report.Render();
  EXPECT_EQ(report.Render(), "structure audit: clean");
}

TEST(StructureAuditorClean, PopulatedStoreIndexedAndNot) {
  for (const bool indexed : {false, true}) {
    const ResourceStore store = MakePopulatedStore(indexed);
    const AuditReport report = StructureAuditor::AuditStore(store);
    EXPECT_TRUE(report.ok()) << "indexed=" << indexed << "\n"
                             << report.Render();
  }
}

TEST(StructureAuditorClean, PopulatedSuspensionQueue) {
  for (const bool indexed : {false, true}) {
    SuspensionQueue queue(/*capacity=*/8);
    queue.SetDrainIndexed(indexed);
    WorkloadMeter meter;
    for (std::uint32_t t = 0; t < 5; ++t) {
      SusEntryAttrs attrs;
      attrs.resolved_config = ConfigId{t % 2};
      attrs.needed_area = 100 + t;
      attrs.priority = static_cast<double>(t);
      ASSERT_TRUE(queue.Add(TaskId{t}, attrs, meter));
    }
    ASSERT_TRUE(queue.Remove(TaskId{2}, meter));
    const AuditReport report = StructureAuditor::AuditSuspensionQueue(queue);
    EXPECT_TRUE(report.ok()) << "indexed=" << indexed << "\n"
                             << report.Render();
  }
}

TEST(StructureAuditorClean, EventQueueWithCancellations) {
  sim::EventQueue queue;
  (void)queue.Push(10, sim::EventPriority::kArrival, [] {});
  const sim::EventHandle h =
      queue.Push(20, sim::EventPriority::kCompletion, [] {});
  (void)queue.Push(20, sim::EventPriority::kControl, [] {});
  ASSERT_TRUE(queue.Cancel(h));
  const AuditReport report = StructureAuditor::AuditEventQueue(queue, 5);
  EXPECT_TRUE(report.ok()) << report.Render();
}

// --- Each corruption class reports exactly its slug(s) ----------------------

TEST(StructureAuditorCorruption, OrphanIdleEntryIsFig3IdleList) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  // An entry whose slot does not exist on the (live, non-failed) node: the
  // idle list claims a pair the node's slots cannot justify.
  StructureCorruptor::InjectOrphanIdleEntry(store, ConfigId{0},
                                            EntryRef{NodeId{2}, 9});
  const AuditReport report = StructureAuditor::AuditStore(store);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"fig3.idle-list"})
      << report.Render();
}

TEST(StructureAuditorCorruption, SwappedPositionsAreFig3Positions) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  // Config 0 has two idle entries (nodes a and b); swap their position-map
  // slots. Membership is intact, so only the inverse-map check can see it.
  StructureCorruptor::CorruptPositionMap(store, ConfigId{0});
  const AuditReport report = StructureAuditor::AuditStore(store);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"fig3.positions"})
      << report.Render();
  // Both displaced cells are reported.
  EXPECT_EQ(report.violations.size(), 2u) << report.Render();
}

TEST(StructureAuditorClean, PopulatedShardedStoreWithPartitionedLists) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  store.SetShards(2, /*threads=*/1);
  const AuditReport report = StructureAuditor::AuditStore(store);
  EXPECT_TRUE(report.ok()) << report.Render();
}

TEST(StructureAuditorCorruption, SkewedShardBucketIsFig3Partition) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  store.SetShards(2, /*threads=*/1);
  // Bump one bucket cell's global-position mirror: the global cells are
  // intact, so only the partition audit can see the stale tie-break key.
  StructureCorruptor::SkewShardBucket(store, ConfigId{0});
  const AuditReport report = StructureAuditor::AuditStore(store);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"fig3.partition"})
      << report.Render();
}

TEST(StructureAuditorCorruption, SkewedFenwickLeafIsIdxCount) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/true);
  StructureCorruptor::SkewIndexConfigCount(store, NodeId{0});
  const AuditReport report = StructureAuditor::AuditStore(store);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"idx.count"})
      << report.Render();
}

TEST(StructureAuditorCorruption, ExposedFailedNodeIsFaultVisibility) {
  ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  // Node 2 is blank; raising its failed flag behind the store's back leaves
  // it both in the blank list (visible to the scheduler) and outside the
  // failed-node counter.
  StructureCorruptor::ExposeFailedNode(store, NodeId{2});
  const AuditReport report = StructureAuditor::AuditStore(store);
  ASSERT_FALSE(report.ok());
  const std::set<std::string> expected{"fault.visibility", "fault.count"};
  EXPECT_EQ(Slugs(report), expected) << report.Render();
}

TEST(StructureAuditorCorruption, MisplacedBucketSeqIsSusidxBucket) {
  SuspensionQueue queue(/*capacity=*/0);
  queue.SetDrainIndexed(true);
  WorkloadMeter meter;
  for (std::uint32_t t = 0; t < 4; ++t) {
    SusEntryAttrs attrs;
    attrs.resolved_config = ConfigId{t % 2};
    attrs.needed_area = 100;
    ASSERT_TRUE(queue.Add(TaskId{t}, attrs, meter));
  }
  // Task 1 resolved to config 1; move its seq into config 5's bucket.
  StructureCorruptor::MisplaceSusBucketEntry(queue, TaskId{1}, ConfigId{5});
  const AuditReport report = StructureAuditor::AuditSuspensionQueue(queue);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"susidx.bucket"})
      << report.Render();
}

TEST(StructureAuditorCorruption, OrphanActionIsEvqOrphanAction) {
  sim::EventQueue queue;
  (void)queue.Push(10, sim::EventPriority::kArrival, [] {});
  StructureCorruptor::OrphanEventAction(queue);
  const AuditReport report = StructureAuditor::AuditEventQueue(queue, 0);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"evq.orphan-action"})
      << report.Render();
}

// --- Metrics conservation (DESIGN.md §16) -----------------------------------

/// Enables + resets the live registry for one test, restoring the disabled
/// default on exit so the global singleton never leaks state across tests.
struct ScopedMetricsRegistry {
  ScopedMetricsRegistry() {
    obs::MetricsRegistry::SetEnabled(true);
    obs::MetricsRegistry::Instance().Reset();
  }
  ~ScopedMetricsRegistry() {
    obs::MetricsRegistry::SetEnabled(false);
    obs::MetricsRegistry::Instance().Reset();
  }
};

TEST(StructureAuditorMetrics, DisabledRegistryAuditsEmpty) {
  const ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  const SuspensionQueue queue;
  const sim::EventQueue events;
  const resource::TaskStore tasks;
  ASSERT_FALSE(obs::MetricsRegistry::enabled());
  EXPECT_TRUE(
      StructureAuditor::AuditMetrics(store, queue, events, tasks).ok());
}

TEST(StructureAuditorMetrics, ConservationHoldsOnInstrumentedOps) {
  const ScopedMetricsRegistry scoped;
  const ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  SuspensionQueue queue;
  WorkloadMeter meter;
  sim::EventQueue events;
  const resource::TaskStore tasks;
  // Drive only instrumented paths: counters and structures move together.
  (void)events.Push(10, sim::EventPriority::kArrival, [] {});
  const sim::EventHandle h =
      events.Push(20, sim::EventPriority::kCompletion, [] {});
  ASSERT_TRUE(events.Cancel(h));
  SusEntryAttrs attrs;
  attrs.resolved_config = ConfigId{0};
  attrs.needed_area = 100;
  ASSERT_TRUE(queue.Add(TaskId{0}, attrs, meter));
  ASSERT_TRUE(queue.Add(TaskId{1}, attrs, meter));
  ASSERT_TRUE(queue.Remove(TaskId{0}, meter));
  const AuditReport report =
      StructureAuditor::AuditMetrics(store, queue, events, tasks);
  EXPECT_TRUE(report.ok()) << report.Render();
}

TEST(StructureAuditorMetrics, SkewedCounterIsMetricsConservation) {
  const ScopedMetricsRegistry scoped;
  const ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  SuspensionQueue queue;
  WorkloadMeter meter;
  const sim::EventQueue events;
  const resource::TaskStore tasks;
  SusEntryAttrs attrs;
  attrs.resolved_config = ConfigId{0};
  attrs.needed_area = 100;
  ASSERT_TRUE(queue.Add(TaskId{0}, attrs, meter));
  ASSERT_TRUE(
      StructureAuditor::AuditMetrics(store, queue, events, tasks).ok());
  // Seeded corruption: the counter claims one enqueue the FIFO never saw.
  obs::MetricsRegistry::Instance().Add(obs::MetricId::kSusEnqueued);
  const AuditReport report =
      StructureAuditor::AuditMetrics(store, queue, events, tasks);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"metrics.conservation"})
      << report.Render();
}

TEST(StructureAuditorMetrics, SkewedGaugeIsMetricsConservation) {
  const ScopedMetricsRegistry scoped;
  const ResourceStore store = MakePopulatedStore(/*indexed=*/false);
  const SuspensionQueue queue;
  sim::EventQueue events;
  const resource::TaskStore tasks;
  (void)events.Push(10, sim::EventPriority::kArrival, [] {});
  ASSERT_TRUE(
      StructureAuditor::AuditMetrics(store, queue, events, tasks).ok());
  // Seeded corruption: stale depth gauge (a missed update on some path).
  obs::MetricsRegistry::Instance().GaugeSet(obs::MetricId::kEvqDepth, 7);
  const AuditReport report =
      StructureAuditor::AuditMetrics(store, queue, events, tasks);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(Slugs(report), std::set<std::string>{"metrics.conservation"})
      << report.Render();
}

// --- Report rendering (docs/formats.md "Auditor violation report") ----------

TEST(StructureAuditorReport, RenderCapsLongReports) {
  AuditReport report;
  for (int i = 0; i < 12; ++i) {
    report.violations.push_back(
        {"fig3.idle-list", "config 0 idle pos 0", "detail"});
  }
  const std::string rendered = report.Render(/*max_lines=*/8);
  EXPECT_NE(rendered.find("structure audit: 12 violation(s)"),
            std::string::npos);
  EXPECT_NE(rendered.find("... 4 more"), std::string::npos);
  // Exactly 8 violation lines plus the header and the cap line.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 9);
}

}  // namespace
}  // namespace dreamsim::analysis
