// Tests for the Expected<T, E> error-handling vocabulary type.
#include "util/expected.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dreamsim {
namespace {

enum class Error { kNotFound, kBusy };

TEST(Expected, HoldsValue) {
  Expected<int, Error> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
}

TEST(Expected, HoldsError) {
  Expected<int, Error> e = Err(Error::kBusy);
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), Error::kBusy);
}

TEST(Expected, ValueOrFallback) {
  Expected<int, Error> ok(7);
  Expected<int, Error> bad = Err(Error::kNotFound);
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string, Error> e(std::string("hello"));
  EXPECT_EQ(e->size(), 5u);
}

TEST(Expected, MutationThroughReference) {
  Expected<std::string, Error> e(std::string("a"));
  e.value() += "b";
  EXPECT_EQ(*e, "ab");
}

TEST(Expected, MoveOutValue) {
  Expected<std::string, Error> e(std::string("payload"));
  const std::string moved = std::move(e).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Expected, SameTypeForValueAndError) {
  // Unexpected disambiguates when T == E.
  Expected<int, int> ok(1);
  Expected<int, int> bad = Err(2);
  EXPECT_TRUE(ok.has_value());
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), 2);
}

}  // namespace
}  // namespace dreamsim
