// Tests for the Simulator facade: lifecycle correctness, accounting,
// determinism, suspension handling, and failure injection.
#include "core/simulator.hpp"

#include <gtest/gtest.h>

namespace dreamsim::core {
namespace {

SimulationConfig SmallConfig(int tasks = 200, int nodes = 10,
                             std::uint64_t seed = 42) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.configs.count = 8;
  config.tasks.total_tasks = tasks;
  config.seed = seed;
  return config;
}

TEST(Simulator, AllTasksReachTerminalState) {
  Simulator sim(SmallConfig());
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.total_tasks, 200u);
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 200u);
  for (const resource::Task& t : sim.tasks().all()) {
    EXPECT_TRUE(t.state == resource::TaskState::kCompleted ||
                t.state == resource::TaskState::kDiscarded)
        << "task " << t.id.value() << " ended as " << ToString(t.state);
  }
}

TEST(Simulator, StoreConsistentAfterRun) {
  Simulator sim(SmallConfig(500, 20));
  (void)sim.Run();
  const auto violations = sim.store().ValidateConsistency();
  EXPECT_TRUE(violations.empty()) << violations.front();
  // No tasks left running anywhere.
  for (const resource::Node& n : sim.store().nodes()) {
    EXPECT_FALSE(n.busy());
  }
}

TEST(Simulator, CompletedTaskTimestampsAreCoherent) {
  Simulator sim(SmallConfig());
  (void)sim.Run();
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state != resource::TaskState::kCompleted) continue;
    EXPECT_GE(t.start_time, t.create_time);
    EXPECT_EQ(t.completion_time,
              t.start_time + t.comm_time + t.config_wait + t.required_time);
    EXPECT_GE(t.WaitingTime(), 0);
    EXPECT_TRUE(t.assigned_config.valid());
    EXPECT_TRUE(t.assigned_node.valid());
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  Simulator a(SmallConfig(300, 15, 7));
  Simulator b(SmallConfig(300, 15, 7));
  const MetricsReport ra = a.Run();
  const MetricsReport rb = b.Run();
  EXPECT_EQ(ra.completed_tasks, rb.completed_tasks);
  EXPECT_EQ(ra.discarded_tasks, rb.discarded_tasks);
  EXPECT_EQ(ra.total_scheduler_workload, rb.total_scheduler_workload);
  EXPECT_EQ(ra.total_simulation_time, rb.total_simulation_time);
  EXPECT_DOUBLE_EQ(ra.avg_waiting_time_per_task, rb.avg_waiting_time_per_task);
  EXPECT_DOUBLE_EQ(ra.avg_wasted_area_per_task, rb.avg_wasted_area_per_task);
}

TEST(Simulator, DifferentSeedsDiffer) {
  Simulator a(SmallConfig(300, 15, 1));
  Simulator b(SmallConfig(300, 15, 2));
  const MetricsReport ra = a.Run();
  const MetricsReport rb = b.Run();
  EXPECT_NE(ra.total_simulation_time, rb.total_simulation_time);
}

TEST(Simulator, SingleUseEnforced) {
  Simulator sim(SmallConfig(10));
  (void)sim.Run();
  EXPECT_THROW((void)sim.Run(), std::logic_error);
}

TEST(Simulator, ImpossibleTasksAreDiscardedNotLost) {
  // Node fabric smaller than every configuration: nothing can ever run.
  SimulationConfig config = SmallConfig(50, 5);
  config.nodes.min_area = 100;
  config.nodes.max_area = 150;
  config.configs.min_area = 200;
  config.configs.max_area = 400;
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.discarded_tasks, 50u);
  EXPECT_EQ(report.completed_tasks, 0u);
}

TEST(Simulator, ZeroTasksRunsClean) {
  Simulator sim(SmallConfig(0));
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.total_tasks, 0u);
  EXPECT_EQ(report.total_simulation_time, 0);
}

TEST(Simulator, SuspensionQueueOverflowDiscards) {
  SimulationConfig config = SmallConfig(400, 2);
  config.suspension_capacity = 3;  // tiny queue under heavy saturation
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  EXPECT_GT(report.discarded_tasks, 0u);
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 400u);
}

TEST(Simulator, MaxSuspensionRetriesDiscards) {
  SimulationConfig config = SmallConfig(400, 2);
  config.max_suspension_retries = 1;
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 400u);
}

TEST(Simulator, ArrivalBurstHandled) {
  SimulationConfig config = SmallConfig(500, 5);
  config.tasks.min_interval = 0;  // bursts: many tasks in the same tick
  config.tasks.max_interval = 1;
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 500u);
}

TEST(Simulator, NetworkDelayEntersWaitingTime) {
  SimulationConfig with_net = SmallConfig(100, 50);
  with_net.tasks.min_data_size = 1000;
  with_net.tasks.max_data_size = 2000;
  with_net.network.bytes_per_tick = 10;
  with_net.network.base_latency = 5;
  Simulator sim(std::move(with_net));
  (void)sim.Run();
  bool saw_comm = false;
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state == resource::TaskState::kCompleted && t.comm_time > 0) {
      saw_comm = true;
      EXPECT_GE(t.comm_time, 5);
    }
  }
  EXPECT_TRUE(saw_comm);
}

TEST(Simulator, ConfigTimeZeroOnAllocationReuse) {
  // Plenty of nodes and few configs: after warmup, reuse dominates and
  // some tasks must start with zero configuration wait.
  SimulationConfig config = SmallConfig(300, 60);
  config.configs.count = 3;
  Simulator sim(std::move(config));
  (void)sim.Run();
  bool saw_reuse = false;
  for (const resource::Task& t : sim.tasks().all()) {
    if (t.state == resource::TaskState::kCompleted && t.config_wait == 0) {
      saw_reuse = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reuse);
}

TEST(Simulator, CompletionHookFires) {
  Simulator sim(SmallConfig(50, 20));
  std::size_t completions = 0;
  Tick last = -1;
  sim.SetCompletionHook([&](TaskId, Tick now) {
    ++completions;
    EXPECT_GE(now, last);
    last = now;
  });
  const MetricsReport report = sim.Run();
  EXPECT_EQ(completions, report.completed_tasks);
}

TEST(Simulator, SubmitTaskAtFromHook) {
  Simulator sim(SmallConfig(5, 20));
  bool injected = false;
  sim.SetCompletionHook([&](TaskId, Tick now) {
    if (!injected) {
      injected = true;
      workload::GeneratedTask extra;
      extra.needed_area = 300;
      extra.required_time = 10;
      extra.preferred_config = ConfigId{0};
      (void)sim.SubmitTaskAt(extra, now + 1);
    }
  });
  const MetricsReport report = sim.Run();
  EXPECT_EQ(report.total_tasks, 6u);  // 5 generated + 1 injected
}

TEST(Simulator, HeuristicPoliciesRunCleanly) {
  for (const PolicyChoice choice :
       {PolicyChoice::kFirstFit, PolicyChoice::kBestFit,
        PolicyChoice::kWorstFit, PolicyChoice::kRandomFit,
        PolicyChoice::kRoundRobin, PolicyChoice::kLeastLoaded}) {
    SimulationConfig config = SmallConfig(200, 10);
    config.policy = choice;
    Simulator sim(std::move(config));
    const MetricsReport report = sim.Run();
    EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 200u)
        << "policy " << ToString(choice);
    EXPECT_TRUE(sim.store().ValidateConsistency().empty())
        << "policy " << ToString(choice);
  }
}

TEST(Simulator, MonitoringCanBeDisabled) {
  SimulationConfig config = SmallConfig(100, 10);
  config.enable_monitoring = false;
  Simulator sim(std::move(config));
  (void)sim.Run();
  EXPECT_EQ(sim.utilization().observed_until, sim.kernel().now());
  EXPECT_DOUBLE_EQ(sim.utilization().avg_running_tasks, 0.0);
}

TEST(Simulator, MonitoringProducesUtilization) {
  SimulationConfig config = SmallConfig(300, 10);
  Simulator sim(std::move(config));
  (void)sim.Run();
  const rms::UtilizationReport& u = sim.utilization();
  EXPECT_GT(u.avg_running_tasks, 0.0);
  EXPECT_GT(u.peak_running_tasks, 0u);
}

class WasteAccountingTest
    : public ::testing::TestWithParam<WasteAccounting> {};

TEST_P(WasteAccountingTest, PartialWastesLessThanFull) {
  double waste[2];
  int i = 0;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    SimulationConfig config = SmallConfig(800, 20, 11);
    config.mode = mode;
    config.waste_accounting = GetParam();
    Simulator sim(std::move(config));
    waste[i++] = sim.Run().avg_wasted_area_per_task;
  }
  // The paper's headline claim (Fig. 6) must hold under every Eq. 6
  // *sampling* policy. kIdleConfigured can degenerate to 0 == 0 under
  // deep saturation (no configured node is ever idle), hence <=.
  EXPECT_LE(waste[1], waste[0]);
  if (GetParam() == WasteAccounting::kOnSchedule ||
      GetParam() == WasteAccounting::kTimeWeighted) {
    EXPECT_LT(waste[1], waste[0]);
  }
}

// kOnConfigure is intentionally absent: it charges waste per configuration
// event, and under the paper-faithful drain the full scenario configures
// rarely (Fig. 7), which inverts the comparison. DESIGN.md §4 discusses it.
INSTANTIATE_TEST_SUITE_P(SamplingPolicies, WasteAccountingTest,
                         ::testing::Values(WasteAccounting::kOnSchedule,
                                           WasteAccounting::kTimeWeighted,
                                           WasteAccounting::kIdleConfigured));

TEST(Simulator, ContiguousPlacementRunsConsistently) {
  // The fabric-placement extension: simulations complete and stores stay
  // consistent (including the layout/scalar-accounting agreement that
  // ValidateConsistency checks per node).
  for (const bool contiguous : {false, true}) {
    SimulationConfig config = SmallConfig(600, 15, 13);
    config.nodes.contiguous_placement = contiguous;
    Simulator sim(std::move(config));
    const MetricsReport report = sim.Run();
    EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 600u);
    const auto violations = sim.store().ValidateConsistency();
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(Simulator, ContiguousPlacementHeuristicsAllRun) {
  for (const auto placement :
       {resource::Placement::kFirstFit, resource::Placement::kBestFit,
        resource::Placement::kWorstFit}) {
    SimulationConfig config = SmallConfig(300, 10, 5);
    config.nodes.contiguous_placement = true;
    config.nodes.placement = placement;
    Simulator sim(std::move(config));
    const MetricsReport report = sim.Run();
    EXPECT_EQ(report.completed_tasks + report.discarded_tasks, 300u)
        << resource::ToString(placement);
    EXPECT_TRUE(sim.store().ValidateConsistency().empty());
  }
}

TEST(WasteAccountingOnConfigure, AccumulatesPerConfigurationEvent) {
  SimulationConfig config = SmallConfig(400, 20, 11);
  config.waste_accounting = WasteAccounting::kOnConfigure;
  Simulator sim(std::move(config));
  const MetricsReport report = sim.Run();
  // Sanity: some configurations happened and produced samples.
  EXPECT_GT(report.total_reconfigurations, 0u);
  EXPECT_GT(report.wasted_area_samples.count(), 0u);
  EXPECT_GE(report.avg_wasted_area_per_task, 0.0);
}

}  // namespace
}  // namespace dreamsim::core
