// Tests for the paper's case-study algorithm (Fig. 5 + Algorithm 1): each
// phase is exercised by constructing the exact store state that should
// trigger it.
#include "sched/dreamsim_policy.hpp"

#include <gtest/gtest.h>

namespace dreamsim::sched {
namespace {

using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::ResourceStore;
using resource::Task;

ConfigCatalogue MakeCatalogue(std::initializer_list<Area> areas) {
  ConfigCatalogue c;
  for (const Area a : areas) {
    Configuration cfg;
    cfg.required_area = a;
    cfg.config_time = 10;
    c.Add(cfg);
  }
  return c;
}

Task MakeTask(std::uint32_t preferred, Area area, TaskId id = TaskId{0}) {
  Task t;
  t.id = id;
  t.preferred_config = ConfigId{preferred};
  t.needed_area = area;
  t.required_time = 100;
  return t;
}

Task MakeUnknownPrefTask(Area area, TaskId id = TaskId{0}) {
  Task t;
  t.id = id;
  t.preferred_config = ConfigId::invalid();
  t.needed_area = area;
  t.required_time = 100;
  return t;
}

TEST(ResolveConfig, ExactMatchWins) {
  ResourceStore store(MakeCatalogue({300, 500}));
  const auto resolved = ResolveConfig(MakeTask(1, 500), store);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->config, ConfigId{1});
  EXPECT_FALSE(resolved->used_closest_match);
}

TEST(ResolveConfig, UnknownPrefFallsBackToClosestMatch) {
  ResourceStore store(MakeCatalogue({300, 500, 800}));
  const auto resolved = ResolveConfig(MakeUnknownPrefTask(400), store);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->config, ConfigId{1});  // 500 is minimal >= 400
  EXPECT_TRUE(resolved->used_closest_match);
}

TEST(ResolveConfig, NoMatchAnywhere) {
  ResourceStore store(MakeCatalogue({300}));
  const auto resolved = ResolveConfig(MakeUnknownPrefTask(5000), store);
  EXPECT_FALSE(resolved.has_value());
}

TEST(ResolveConfig, ChargesSearchSteps) {
  ResourceStore store(MakeCatalogue({300, 500, 800}));
  const Steps before = store.meter().scheduling_steps_total();
  (void)ResolveConfig(MakeTask(2, 800), store);
  EXPECT_GT(store.meter().scheduling_steps_total(), before);
}

// ---- Partial mode (Fig. 5 with partial reconfigurability) ----

class PartialPolicyTest : public ::testing::Test {
 protected:
  PartialPolicyTest()
      : store_(MakeCatalogue({300, 500, 800})),
        policy_(ReconfigMode::kPartial) {}
  ResourceStore store_;
  DreamSimPolicy policy_;
};

TEST_F(PartialPolicyTest, Phase1AllocationPrefersMinAvailableArea) {
  const NodeId small = store_.AddNode(1000);
  const NodeId large = store_.AddNode(4000);
  (void)store_.Configure(small, ConfigId{0});  // avail 700
  (void)store_.Configure(large, ConfigId{0});  // avail 3700

  const Decision d = policy_.Schedule(MakeTask(0, 300), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kAllocation);
  EXPECT_EQ(d.entry.node, small);
  EXPECT_EQ(d.config_time, 0);  // reuse: no configuration delay
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(PartialPolicyTest, Phase2ConfigurationUsesTightestBlankNode) {
  (void)store_.AddNode(4000);
  const NodeId tight = store_.AddNode(1000);

  const Decision d = policy_.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kConfiguration);
  EXPECT_EQ(d.entry.node, tight);
  EXPECT_EQ(d.config_time, 10);
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(PartialPolicyTest, Phase3PartialConfigurationOnOperativeNode) {
  const NodeId node = store_.AddNode(2000);
  const EntryRef busy = store_.Configure(node, ConfigId{1});  // 500
  store_.AssignTask(busy, TaskId{99});
  // No blank nodes left, no idle entry with config 0; node has 1500 spare.
  const Decision d = policy_.Schedule(MakeTask(0, 300, TaskId{1}), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kPartialConfiguration);
  EXPECT_EQ(d.entry.node, node);
  EXPECT_EQ(store_.node(node).config_count(), 2u);
  EXPECT_EQ(store_.node(node).running_tasks(), 2u);
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(PartialPolicyTest, Phase4PartialReconfigurationReclaimsIdleEntries) {
  const NodeId node = store_.AddNode(1000);
  const EntryRef busy = store_.Configure(node, ConfigId{0});  // 300, busy
  store_.AssignTask(busy, TaskId{99});
  (void)store_.Configure(node, ConfigId{1});  // 500, idle; avail now 200

  // Config 2 needs 800: no idle entry, no blank node, spare area only 200,
  // but reclaiming the idle 500-entry yields 700... still short. Give the
  // task config 1's area? Use a task needing config 1 -> 500 <= 200+500.
  const Decision d = policy_.Schedule(MakeTask(2, 800, TaskId{1}), store_);
  // 200 + 500 = 700 < 800: impossible now, but the busy node's TotalArea
  // (1000) could fit 800 later -> suspension.
  EXPECT_EQ(d.outcome, Outcome::kSuspend);

  // A 500-area task CAN be served by reclaiming: spare 200 + idle 500.
  const Decision d2 = policy_.Schedule(MakeTask(1, 500, TaskId{2}), store_);
  // Direct allocation wins here (the idle entry has config 1 already).
  EXPECT_EQ(d2.outcome, Outcome::kPlaced);
  EXPECT_EQ(d2.kind, PlacementKind::kAllocation);
}

TEST_F(PartialPolicyTest, Phase4ReconfiguresWhenNoDirectOption) {
  const NodeId node = store_.AddNode(1000);
  const EntryRef busy = store_.Configure(node, ConfigId{0});  // 300 busy
  store_.AssignTask(busy, TaskId{99});
  (void)store_.Configure(node, ConfigId{0});  // 300 idle; avail 400

  // Task wants config 1 (500): no idle entry with config 1, no blank, spare
  // 400 < 500, but reclaiming the idle 300-entry gives 700 >= 500.
  const Decision d = policy_.Schedule(MakeTask(1, 500, TaskId{1}), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kPartialReconfiguration);
  EXPECT_EQ(d.entry.node, node);
  // The idle config-0 entry was reclaimed; node now has busy 0 + idle... 1.
  EXPECT_EQ(store_.node(node).config_count(), 2u);
  EXPECT_EQ(store_.idle_list(ConfigId{0}).size(), 0u);
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(PartialPolicyTest, SuspendsWhenBusyNodeCouldFitLater) {
  const NodeId node = store_.AddNode(1000);
  const EntryRef busy = store_.Configure(node, ConfigId{2});  // 800 busy
  store_.AssignTask(busy, TaskId{99});
  const Decision d = policy_.Schedule(MakeTask(2, 800, TaskId{1}), store_);
  EXPECT_EQ(d.outcome, Outcome::kSuspend);
  EXPECT_EQ(d.config, ConfigId{2});  // resolution is reported on suspend
}

TEST_F(PartialPolicyTest, DiscardsWhenNothingCouldEverFit) {
  (void)store_.AddNode(1000);  // idle and blank, but too small for nothing...
  // All catalogue configs fit 1000, so use an unknown-pref task needing
  // more area than the largest config: resolution itself fails.
  const Decision d = policy_.Schedule(MakeUnknownPrefTask(900), store_);
  // Closest match = config 2 (800)? 800 < 900 -> no config >= 900 exists.
  EXPECT_EQ(d.outcome, Outcome::kDiscard);
}

TEST_F(PartialPolicyTest, DiscardsWhenNoBusyCandidateExists) {
  // One small node, already configured+busy with a small config, cannot
  // ever fit an 800 config (total 500 < 800) -> discard, not suspend.
  const NodeId node = store_.AddNode(500);
  const EntryRef busy = store_.Configure(node, ConfigId{0});
  store_.AssignTask(busy, TaskId{99});
  const Decision d = policy_.Schedule(MakeTask(2, 800, TaskId{1}), store_);
  EXPECT_EQ(d.outcome, Outcome::kDiscard);
}

// ---- Full mode (one node - one task) ----

class FullPolicyTest : public ::testing::Test {
 protected:
  FullPolicyTest()
      : store_(MakeCatalogue({300, 500, 800})),
        policy_(ReconfigMode::kFull) {}
  ResourceStore store_;
  DreamSimPolicy policy_;
};

TEST_F(FullPolicyTest, AllocationReusesIdleConfiguredNode) {
  const NodeId node = store_.AddNode(1000);
  (void)store_.Configure(node, ConfigId{0});
  const Decision d = policy_.Schedule(MakeTask(0, 300), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kAllocation);
  EXPECT_EQ(d.config_time, 0);
}

TEST_F(FullPolicyTest, ConfigurationOnBlankNode) {
  (void)store_.AddNode(1000);
  const Decision d = policy_.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kConfiguration);
  EXPECT_EQ(d.config_time, 10);
}

TEST_F(FullPolicyTest, FullReconfigurationWipesIdleNode) {
  const NodeId node = store_.AddNode(1000);
  (void)store_.Configure(node, ConfigId{0});  // idle with config 0
  // Task wants config 1; no idle entry for it, no blank nodes.
  const Decision d = policy_.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.outcome, Outcome::kPlaced);
  EXPECT_EQ(d.kind, PlacementKind::kFullReconfiguration);
  EXPECT_EQ(d.entry.node, node);
  // The node was wiped first: exactly one configuration remains.
  EXPECT_EQ(store_.node(node).config_count(), 1u);
  EXPECT_EQ(store_.node(node).Slot(d.entry.slot).config, ConfigId{1});
  EXPECT_TRUE(store_.ValidateConsistency().empty());
}

TEST_F(FullPolicyTest, FullReconfigurationPrefersTightestNode) {
  const NodeId big = store_.AddNode(4000);
  const NodeId small = store_.AddNode(1000);
  (void)store_.Configure(big, ConfigId{0});
  (void)store_.Configure(small, ConfigId{0});
  const Decision d = policy_.Schedule(MakeTask(1, 500), store_);
  EXPECT_EQ(d.kind, PlacementKind::kFullReconfiguration);
  EXPECT_EQ(d.entry.node, small);
}

TEST_F(FullPolicyTest, BusyNodesSuspendElseDiscard) {
  const NodeId node = store_.AddNode(1000);
  const EntryRef e = store_.Configure(node, ConfigId{0});
  store_.AssignTask(e, TaskId{99});
  const Decision suspend = policy_.Schedule(MakeTask(1, 500, TaskId{1}),
                                            store_);
  EXPECT_EQ(suspend.outcome, Outcome::kSuspend);

  // Nothing in the system can ever fit config 2 (800)? The busy node's
  // total (1000) can - still suspend. Use an 800 config with all nodes
  // smaller: rebuild scenario in a fresh store.
  ResourceStore tiny(MakeCatalogue({300, 500, 800}));
  const NodeId t = tiny.AddNode(600);
  const EntryRef te = tiny.Configure(t, ConfigId{0});
  tiny.AssignTask(te, TaskId{99});
  DreamSimPolicy policy(ReconfigMode::kFull);
  const Decision discard = policy.Schedule(MakeTask(2, 800, TaskId{1}), tiny);
  EXPECT_EQ(discard.outcome, Outcome::kDiscard);
}

TEST_F(FullPolicyTest, NamesReflectMode) {
  EXPECT_EQ(policy_.name(), "dreamsim-full");
  EXPECT_EQ(DreamSimPolicy(ReconfigMode::kPartial).name(), "dreamsim-partial");
}

TEST(PolicyEnums, ToStringCoverage) {
  EXPECT_EQ(ToString(ReconfigMode::kFull), "full");
  EXPECT_EQ(ToString(ReconfigMode::kPartial), "partial");
  EXPECT_EQ(ToString(PlacementKind::kAllocation), "allocation");
  EXPECT_EQ(ToString(PlacementKind::kConfiguration), "configuration");
  EXPECT_EQ(ToString(PlacementKind::kPartialConfiguration),
            "partial-configuration");
  EXPECT_EQ(ToString(PlacementKind::kPartialReconfiguration),
            "partial-reconfiguration");
  EXPECT_EQ(ToString(PlacementKind::kFullReconfiguration),
            "full-reconfiguration");
}

}  // namespace
}  // namespace dreamsim::sched
