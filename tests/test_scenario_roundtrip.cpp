// Canonical-form and hash-stability tests: parse → CanonicalScenario →
// re-parse is a fixed point, and ScenarioHash is invariant under comments,
// incidental whitespace, and key order — the properties that make the hash
// a usable scenario identity across formatting churn.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>

namespace dreamsim::scenario {
namespace {

ScenarioSpec MustParse(std::string_view text) {
  auto result = ParseScenario(text);
  EXPECT_TRUE(result.has_value()) << Render(result.error());
  return result.has_value() ? std::move(result.value()) : ScenarioSpec{};
}

// A scenario exercising every block type and most keys.
constexpr std::string_view kRich = R"(simulation: {
  name: rich
  seed: 123
  mode: partial
  ship bitstreams: on
  bitstream cache: 5000
}
configurations: {
  count: 20
  area: [300, 1500]
  config time: [10, 18]
  ptypes: mult32 systolic8x8
}
device class: {
  name: edge
  count: 40
  area: [1000, 2000]
  config bandwidth: 150
  bitstream store: 900
  network delay: [1, 4]
}
device class: {
  name: hub
  count: 10
  area: [2500, 4000]
  placement: best-fit
}
task class: {
  name: steady
  count: 200
  interval: [1, 30]
  required time: [100, 9000]
}
task class: {
  name: bursts
  count: 150
  arrivals: bursty
  burst size: [3, 9]
  burst gap: [200, 800]
  interval: [1, 5]
  required time: [100, 5000]
  priority: [0.25, 0.75]
  graph fraction: 0.2
  chain length: [2, 3]
  seed: 77
}
)";

TEST(ScenarioRoundtrip, CanonicalFormIsAFixedPoint) {
  const ScenarioSpec spec = MustParse(kRich);
  const std::string canonical = CanonicalScenario(spec);
  const ScenarioSpec reparsed = MustParse(canonical);
  EXPECT_EQ(CanonicalScenario(reparsed), canonical);
  EXPECT_EQ(ScenarioHash(reparsed), ScenarioHash(spec));
}

TEST(ScenarioRoundtrip, EveryShippedScenarioKeyRoundTrips) {
  // The reparsed config must equal the original field-for-field; the
  // canonical fixed point above implies it, but spot-check the knobs that
  // have defaults-vs-explicit subtleties.
  const ScenarioSpec spec = MustParse(kRich);
  const ScenarioSpec again = MustParse(CanonicalScenario(spec));
  ASSERT_EQ(again.config.device_classes.size(), 2u);
  EXPECT_EQ(again.config.device_classes[0].bitstream_store, 900);
  EXPECT_LT(again.config.device_classes[1].bitstream_store, 0);  // inherit
  ASSERT_EQ(again.config.configs.ptypes.size(), 2u);
  EXPECT_EQ(again.config.configs.ptypes[0], "mult32");
  ASSERT_EQ(again.config.task_classes.size(), 2u);
  EXPECT_EQ(again.config.task_classes[0].seed, 0u);  // derived stream
  EXPECT_EQ(again.config.task_classes[1].seed, 77u);
  EXPECT_EQ(again.config.task_classes[1].min_burst, 3);
  EXPECT_EQ(again.config.task_classes[1].max_burst, 9);
  EXPECT_TRUE(again.config.ship_bitstreams);
}

TEST(ScenarioRoundtrip, HashIgnoresComments) {
  const std::string hash = ScenarioHash(MustParse(kRich));
  std::string commented = "# a leading comment\n";
  commented += kRich;
  commented += "\n# trailing commentary\n";
  EXPECT_EQ(ScenarioHash(MustParse(commented)), hash);
}

TEST(ScenarioRoundtrip, HashIgnoresWhitespace) {
  const std::string hash = ScenarioHash(MustParse(kRich));
  // Re-indent every line with tabs and pad around colons' values.
  std::string mangled;
  for (std::size_t i = 0; i < kRich.size(); ++i) {
    mangled += kRich[i];
    if (kRich[i] == '\n') mangled += "\t  \t";
  }
  EXPECT_EQ(ScenarioHash(MustParse(mangled)), hash);
}

TEST(ScenarioRoundtrip, HashIgnoresKeyOrder) {
  const std::string a =
      "simulation: {\n"
      "  name: ordered\n"
      "  seed: 9\n"
      "  mode: full\n"
      "}\n";
  const std::string b =
      "simulation: {\n"
      "  mode: full\n"
      "  seed: 9\n"
      "  name: ordered\n"
      "}\n";
  EXPECT_EQ(ScenarioHash(MustParse(a)), ScenarioHash(MustParse(b)));
}

TEST(ScenarioRoundtrip, HashIgnoresBlockOrderAcrossKinds) {
  // Canonical order is fixed (simulation, configurations, devices, tasks),
  // so swapping unrelated block kinds in the source cannot change identity.
  const std::string a =
      "simulation: {\n  seed: 4\n}\n"
      "device class: {\n  name: f\n  count: 5\n}\n";
  const std::string b =
      "device class: {\n  name: f\n  count: 5\n}\n"
      "simulation: {\n  seed: 4\n}\n";
  EXPECT_EQ(ScenarioHash(MustParse(a)), ScenarioHash(MustParse(b)));
}

TEST(ScenarioRoundtrip, HashSeesSemanticChanges) {
  const std::string base =
      "simulation: {\n  seed: 4\n}\n";
  const std::string changed =
      "simulation: {\n  seed: 5\n}\n";
  EXPECT_NE(ScenarioHash(MustParse(base)), ScenarioHash(MustParse(changed)));
}

TEST(ScenarioRoundtrip, HashDistinguishesDeviceClassOrder) {
  // Same-kind block order is semantic: it defines family ids and the node
  // id layout, so swapping two device classes is a different scenario.
  const std::string ab =
      "device class: {\n  name: a\n  count: 5\n}\n"
      "device class: {\n  name: b\n  count: 7\n}\n";
  const std::string ba =
      "device class: {\n  name: b\n  count: 7\n}\n"
      "device class: {\n  name: a\n  count: 5\n}\n";
  EXPECT_NE(ScenarioHash(MustParse(ab)), ScenarioHash(MustParse(ba)));
}

TEST(ScenarioRoundtrip, HashIs16LowercaseHexDigits) {
  const std::string hash = ScenarioHash(MustParse(kRich));
  ASSERT_EQ(hash.size(), 16u);
  for (char c : hash) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
    EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
  }
}

TEST(ScenarioRoundtrip, SpecCarriesTheHashIntoTheConfig) {
  const ScenarioSpec spec = MustParse(kRich);
  EXPECT_EQ(spec.config.scenario_hash, ScenarioHash(spec));
  EXPECT_EQ(spec.config.scenario_name, "rich");
}

TEST(ScenarioRoundtrip, DefaultScenarioHashesLikeItsCanonicalForm) {
  // Empty input = all defaults; its canonical form spells them out, and
  // re-parsing that must neither gain nor lose anything.
  const ScenarioSpec spec = MustParse("");
  const std::string canonical = CanonicalScenario(spec);
  EXPECT_EQ(CanonicalScenario(MustParse(canonical)), canonical);
}

}  // namespace
}  // namespace dreamsim::scenario
