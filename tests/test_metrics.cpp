// MetricsRegistry unit tests (DESIGN.md §16): catalogue well-formedness,
// the log2 binning, per-cell merge rules (sum / max / bin-wise sum) in
// fixed shard order, the enabled gate on the hot-path hooks, and the three
// expositions (JSONL snapshot object, Prometheus text 0.0.4, report block).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "obs/metrics_export.hpp"

namespace dreamsim::obs {
namespace {

/// Every test owns the global registry for its duration and hands it back
/// disabled and zeroed (the process-wide default).
struct ScopedRegistry {
  ScopedRegistry() {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Instance().Reset();
  }
  ~ScopedRegistry() {
    MetricsRegistry::SetEnabled(false);
    MetricsRegistry::Instance().Reset();
  }
};

std::size_t Index(MetricId id) { return static_cast<std::size_t>(id); }

// --- Catalogue --------------------------------------------------------------

TEST(MetricCatalogue, NamesAreUniqueAndDocumented) {
  std::set<std::string_view> names;
  for (const MetricInfo& info : kMetricInfo) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.help.empty()) << info.name;
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate exposition name: " << info.name;
  }
  EXPECT_EQ(names.size(), kMetricCount);
}

TEST(MetricCatalogue, CountersFollowPromNamingConvention) {
  for (const MetricInfo& info : kMetricInfo) {
    if (info.kind != MetricKind::kCounter) continue;
    EXPECT_TRUE(info.name.ends_with("_total"))
        << "counter missing _total suffix: " << info.name;
  }
}

TEST(MetricCatalogue, HistSlotsAreDenseAndExclusive) {
  std::set<std::size_t> slots;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    if (kMetricInfo[m].kind == MetricKind::kHistogram) {
      EXPECT_LT(kHistSlotOf[m], kHistMetricCount);
      EXPECT_TRUE(slots.insert(kHistSlotOf[m]).second);
    } else {
      EXPECT_EQ(kHistSlotOf[m], kHistMetricCount);
    }
  }
  EXPECT_EQ(slots.size(), kHistMetricCount);
}

// --- Binning ----------------------------------------------------------------

TEST(MetricsRegistryTest, BinOfMatchesLog2Spacing) {
  EXPECT_EQ(MetricsRegistry::BinOf(0), 0u);
  EXPECT_EQ(MetricsRegistry::BinOf(1), 1u);
  EXPECT_EQ(MetricsRegistry::BinOf(2), 2u);
  EXPECT_EQ(MetricsRegistry::BinOf(3), 2u);
  EXPECT_EQ(MetricsRegistry::BinOf(4), 3u);
  EXPECT_EQ(MetricsRegistry::BinOf(1023), 10u);
  EXPECT_EQ(MetricsRegistry::BinOf(1024), 11u);
  // The last bin saturates.
  EXPECT_EQ(MetricsRegistry::BinOf(~std::uint64_t{0}),
            MetricsRegistry::kBins - 1);
}

// --- Merge rules ------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGaugesSumAcrossCellsInUse) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kPoolJobsExecuted, 3, /*cell=*/1);
  reg.Add(MetricId::kPoolJobsExecuted, 5, /*cell=*/2);
  reg.Add(MetricId::kPoolJobsExecuted, 7, /*cell=*/4);  // beyond cells_used
  reg.NoteShardCells(2);
  const MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.cells_used, 3u);
  // Only cells [0, cells_used) merge; cell 4 recorded but is not in use.
  EXPECT_EQ(snap.value[Index(MetricId::kPoolJobsExecuted)], 8u);
  EXPECT_EQ(snap.cell[Index(MetricId::kPoolJobsExecuted)][1], 3u);
  EXPECT_EQ(snap.cell[Index(MetricId::kPoolJobsExecuted)][2], 5u);
}

TEST(MetricsRegistryTest, GaugeMaxMergesByMax) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.GaugeMax(MetricId::kEvqDepthPeak, 10);
  reg.GaugeMax(MetricId::kEvqDepthPeak, 4);  // lower write must not win
  const MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.value[Index(MetricId::kEvqDepthPeak)], 10u);
}

TEST(MetricsRegistryTest, HistogramMergesBinWise) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Observe(MetricId::kEventGapTicks, 0);
  reg.Observe(MetricId::kEventGapTicks, 3);
  reg.Observe(MetricId::kEventGapTicks, 3);
  reg.Observe(MetricId::kEventGapTicks, 100);
  const MetricsSnapshot snap = reg.TakeSnapshot();
  const MetricsSnapshot::Hist& h =
      snap.hist[kHistSlotOf[Index(MetricId::kEventGapTicks)]];
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 106u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.bins[MetricsRegistry::BinOf(0)], 1u);
  EXPECT_EQ(h.bins[MetricsRegistry::BinOf(3)], 2u);
  EXPECT_EQ(h.bins[MetricsRegistry::BinOf(100)], 1u);
  // Histograms surface their sample count as the scalar value.
  EXPECT_EQ(snap.value[Index(MetricId::kEventGapTicks)], 4u);
}

TEST(MetricsRegistryTest, ResetZeroesEverySlot) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kEvqPushed, 9);
  reg.Observe(MetricId::kEventGapTicks, 42);
  reg.NoteShardCells(4);
  reg.Reset();
  const MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.cells_used, 1u);
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    EXPECT_EQ(snap.value[m], 0u) << kMetricInfo[m].name;
  }
}

TEST(MetricsRegistryTest, ShardImbalanceDerivesFromBusyNs) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kPoolShardBusyNs, 100, /*cell=*/1);
  reg.Add(MetricId::kPoolShardBusyNs, 300, /*cell=*/2);
  reg.NoteShardCells(2);
  // mean = 200, max = 300 -> 100 * (300 - 200) / 200 = 50%.
  EXPECT_EQ(reg.TakeSnapshot().value[Index(MetricId::kShardImbalancePct)],
            50u);
}

// --- Hook gate --------------------------------------------------------------

TEST(MetricsRegistryTest, DisabledHooksAreInert) {
  MetricsRegistry::SetEnabled(false);
  MetricsRegistry::Instance().Reset();
  MetricInc(MetricId::kEvqPushed);
  MetricGaugeSet(MetricId::kEvqDepth, 5);
  MetricGaugeMax(MetricId::kEvqDepthPeak, 5);
  MetricObserve(MetricId::kEventGapTicks, 5);
  const MetricsSnapshot snap = MetricsRegistry::Instance().TakeSnapshot();
  EXPECT_EQ(snap.value[Index(MetricId::kEvqPushed)], 0u);
  EXPECT_EQ(snap.value[Index(MetricId::kEvqDepth)], 0u);
  EXPECT_EQ(snap.value[Index(MetricId::kEvqDepthPeak)], 0u);
  EXPECT_EQ(snap.value[Index(MetricId::kEventGapTicks)], 0u);
}

TEST(MetricsRegistryTest, EnabledHooksRecord) {
  const ScopedRegistry scoped;
  MetricInc(MetricId::kEvqPushed, 2);
  MetricGaugeSet(MetricId::kEvqDepth, 5);
  MetricGaugeMax(MetricId::kEvqDepthPeak, 6);
  MetricObserve(MetricId::kEventGapTicks, 7);
  const MetricsSnapshot snap = MetricsRegistry::Instance().TakeSnapshot();
  EXPECT_EQ(snap.value[Index(MetricId::kEvqPushed)], 2u);
  EXPECT_EQ(snap.value[Index(MetricId::kEvqDepth)], 5u);
  EXPECT_EQ(snap.value[Index(MetricId::kEvqDepthPeak)], 6u);
  EXPECT_EQ(snap.value[Index(MetricId::kEventGapTicks)], 1u);
}

// --- Exposition -------------------------------------------------------------

TEST(MetricsExport, FormatNamesRoundTrip) {
  EXPECT_EQ(ParseMetricsFormat("json"), MetricsFormat::kJson);
  EXPECT_EQ(ParseMetricsFormat("prom"), MetricsFormat::kProm);
  EXPECT_EQ(ParseMetricsFormat("xml"), std::nullopt);
  EXPECT_EQ(ToString(MetricsFormat::kJson), "json");
  EXPECT_EQ(ToString(MetricsFormat::kProm), "prom");
}

TEST(MetricsExport, JsonSnapshotCarriesLabelsAndValues) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kEvqPushed, 11);
  reg.Observe(MetricId::kEventGapTicks, 3);
  const std::string json =
      RenderMetricsJson(reg.TakeSnapshot(), Tick{120}, 7, /*final=*/true);
  EXPECT_NE(json.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\":120"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"final\":true"), std::string::npos);
  EXPECT_NE(json.find("\"dreamsim_evq_pushed_total\":11"), std::string::npos);
  EXPECT_NE(json.find("\"dreamsim_event_gap_ticks\":{\"count\":1,\"sum\":3"),
            std::string::npos);
}

TEST(MetricsExport, JsonModelPlaneExcludesHostMetrics) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kPoolBroadcasts, 5);
  const std::string json = RenderMetricsJson(
      reg.TakeSnapshot(), Tick{0}, 0, /*final=*/false, /*include_host=*/false);
  EXPECT_EQ(json.find("pool_broadcasts_total"), std::string::npos);
  EXPECT_EQ(json.find("shard_imbalance_pct"), std::string::npos);
  EXPECT_NE(json.find("dreamsim_evq_pushed_total"), std::string::npos);
}

TEST(MetricsExport, PromExpositionIsWellFormed) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kEvqPushed, 11);
  reg.Observe(MetricId::kEventGapTicks, 3);
  reg.Observe(MetricId::kEventGapTicks, 3);
  reg.Add(MetricId::kPoolJobsExecuted, 4, /*cell=*/1);
  reg.NoteShardCells(1);
  const std::string prom = RenderMetricsProm(reg.TakeSnapshot());
  EXPECT_NE(prom.find("# HELP dreamsim_evq_pushed_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE dreamsim_evq_pushed_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dreamsim_evq_pushed_total 11\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE dreamsim_event_gap_ticks histogram\n"),
            std::string::npos);
  // v=3 lands in the le="3" bucket ([2, 4)); buckets are cumulative.
  EXPECT_NE(prom.find("dreamsim_event_gap_ticks_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dreamsim_event_gap_ticks_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dreamsim_event_gap_ticks_sum 6\n"), std::string::npos);
  EXPECT_NE(prom.find("dreamsim_event_gap_ticks_count 2\n"),
            std::string::npos);
  // Per-shard metrics expose one labelled series per shard cell in use.
  EXPECT_NE(prom.find("dreamsim_pool_jobs_executed_total{shard=\"0\"} 4\n"),
            std::string::npos);
}

TEST(MetricsExport, ReportBlockListsOnlyNonZeroMetrics) {
  const ScopedRegistry scoped;
  auto& reg = MetricsRegistry::Instance();
  reg.Add(MetricId::kTasksCompleted, 42);
  const std::string block = RenderMetricsBlock(reg.TakeSnapshot());
  EXPECT_NE(block.find("-- live metrics (final snapshot, non-zero) --"),
            std::string::npos);
  EXPECT_NE(block.find("tasks_completed_total"), std::string::npos);
  EXPECT_EQ(block.find("tasks_discarded_total"), std::string::npos);
}

}  // namespace
}  // namespace dreamsim::obs
