// Tests for the network model (t_comm of Eq. 8, bitstream distribution).
#include "net/network.hpp"

#include <gtest/gtest.h>

namespace dreamsim::net {
namespace {

resource::Node MakeNode(Tick delay, Bytes config_bw = 400) {
  resource::Node n(NodeId{0}, 1000, FamilyId{0},
                   resource::Caps{0, 0, config_bw});
  n.set_network_delay(delay);
  return n;
}

TEST(NetworkModel, DisabledBandwidthMeansLatencyOnly) {
  NetworkModel net(NetworkParams{});
  const auto node = MakeNode(0);
  EXPECT_EQ(net.TransferTime(node, 100000), 0);
}

TEST(NetworkModel, NodeDelayAdds) {
  NetworkModel net(NetworkParams{});
  const auto node = MakeNode(7);
  EXPECT_EQ(net.TransferTime(node, 0), 7);
}

TEST(NetworkModel, SerializationCeilingDivision) {
  NetworkParams params;
  params.bytes_per_tick = 100;
  NetworkModel net(params);
  const auto node = MakeNode(0);
  EXPECT_EQ(net.TransferTime(node, 100), 1);
  EXPECT_EQ(net.TransferTime(node, 101), 2);
  EXPECT_EQ(net.TransferTime(node, 0), 0);
}

TEST(NetworkModel, BaseLatencyAdds) {
  NetworkParams params;
  params.bytes_per_tick = 100;
  params.base_latency = 5;
  NetworkModel net(params);
  const auto node = MakeNode(3);
  EXPECT_EQ(net.TransferTime(node, 200), 5 + 3 + 2);
}

TEST(NetworkModel, BitstreamUsesNodeConfigPortWhenPayloadBandwidthOff) {
  NetworkModel net(NetworkParams{});
  const auto node = MakeNode(0, /*config_bw=*/500);
  EXPECT_EQ(net.BitstreamTime(node, 1000), 2);
}

TEST(NetworkModel, BitstreamPrefersPayloadBandwidthWhenSet) {
  NetworkParams params;
  params.bytes_per_tick = 100;
  NetworkModel net(params);
  const auto node = MakeNode(0, /*config_bw=*/10000);
  EXPECT_EQ(net.BitstreamTime(node, 1000), 10);
}

TEST(NetworkModel, JitterBoundedAndDeterministic) {
  NetworkParams params;
  params.max_jitter = 5;
  NetworkModel a(params, /*jitter_seed=*/9);
  NetworkModel b(params, /*jitter_seed=*/9);
  const auto node = MakeNode(0);
  for (int i = 0; i < 100; ++i) {
    const Tick ta = a.TransferTime(node, 0);
    const Tick tb = b.TransferTime(node, 0);
    EXPECT_EQ(ta, tb);
    EXPECT_GE(ta, 0);
    EXPECT_LE(ta, 5);
  }
}

TEST(NetworkModel, AccountsBytesTransferred) {
  NetworkModel net(NetworkParams{});
  const auto node = MakeNode(0);
  (void)net.TransferTime(node, 100);
  (void)net.BitstreamTime(node, 50);
  EXPECT_EQ(net.bytes_transferred(), 150);
}

}  // namespace
}  // namespace dreamsim::net
