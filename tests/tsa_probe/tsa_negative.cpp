// Negative thread-safety probe (cmake/ThreadSafety.cmake).
//
// Reads ShardPool's guarded job queue without holding the mutex. Under
// Clang with -Werror=thread-safety this translation unit MUST fail to
// compile; if it ever builds, the annotations have gone vacuous (e.g. the
// shim expanded to nothing under a compiler that was supposed to enforce
// them) and the configure step aborts. The probe reaches the private
// members through the ShardPoolTsaProbe friend seam, so the failure it
// provokes can only come from the thread-safety analysis — never from
// access control.
//
// This file is compiled by try_compile only; it is not part of any
// product or test target.
#include <cstddef>

#include "sim/shard_pool.hpp"

namespace dreamsim::sim {

class ShardPoolTsaProbe {
 public:
  static std::size_t UnguardedJobCount(ShardPool& pool) {
    return pool.jobs_;  // guarded by pool.mut_, read without it: must fail
  }
};

}  // namespace dreamsim::sim

std::size_t ProbeEntry(dreamsim::sim::ShardPool& pool) {
  return dreamsim::sim::ShardPoolTsaProbe::UnguardedJobCount(pool);
}
