// Positive thread-safety probe (cmake/ThreadSafety.cmake).
//
// The well-locked twin of tsa_negative.cpp: reads the same guarded member
// through the same friend seam, but under the mutex. This translation unit
// MUST compile cleanly with -Werror=thread-safety. Together the pair
// proves the negative probe's failure is specific to the missing lock —
// not a broken include path, a C++ standard mismatch, or any other
// incidental build error that would make the negative check pass
// vacuously.
//
// This file is compiled by try_compile only; it is not part of any
// product or test target.
#include <cstddef>

#include "sim/shard_pool.hpp"
#include "util/sync.hpp"

namespace dreamsim::sim {

class ShardPoolTsaProbe {
 public:
  static std::size_t GuardedJobCount(ShardPool& pool) {
    const util::MutexLock lock(pool.mut_);
    return pool.jobs_;
  }
};

}  // namespace dreamsim::sim

std::size_t ProbeEntry(dreamsim::sim::ShardPool& pool) {
  return dreamsim::sim::ShardPoolTsaProbe::GuardedJobCount(pool);
}
