// Tests for the per-node / per-configuration detail reports.
#include "rms/detail_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace dreamsim::rms {
namespace {

TEST(DetailReport, NodeCsvHasOneRowPerNode) {
  core::SimulationConfig config;
  config.nodes.count = 12;
  config.configs.count = 5;
  config.tasks.total_tasks = 150;
  config.seed = 5;
  core::Simulator sim(std::move(config));
  (void)sim.Run();

  std::stringstream buffer;
  WriteNodeCsv(buffer, sim.store());
  const CsvTable table = CsvRead(buffer);
  ASSERT_EQ(table.rows.size(), 12u);
  const std::size_t id_col = table.ColumnIndex("node");
  const std::size_t reconf_col = table.ColumnIndex("reconfig_count");
  ASSERT_NE(id_col, CsvTable::npos);
  ASSERT_NE(reconf_col, CsvTable::npos);
  std::uint64_t total_reconfigs = 0;
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    EXPECT_EQ(table.rows[i][id_col], Format("{}", i));
    total_reconfigs += std::stoull(table.rows[i][reconf_col]);
  }
  EXPECT_EQ(total_reconfigs, sim.store().TotalReconfigurations());
}

TEST(DetailReport, ConfigCsvAccountsEveryPlacement) {
  core::SimulationConfig config;
  config.nodes.count = 12;
  config.configs.count = 5;
  config.tasks.total_tasks = 150;
  config.seed = 5;
  core::Simulator sim(std::move(config));
  const core::MetricsReport report = sim.Run();

  std::stringstream buffer;
  WriteConfigCsv(buffer, sim.store(), report.placements_per_config);
  const CsvTable table = CsvRead(buffer);
  ASSERT_EQ(table.rows.size(), 5u);
  const std::size_t placements_col = table.ColumnIndex("placements");
  ASSERT_NE(placements_col, CsvTable::npos);
  std::uint64_t total_placements = 0;
  for (const auto& row : table.rows) {
    total_placements += std::stoull(row[placements_col]);
  }
  // Every completed task was placed exactly once on some configuration.
  EXPECT_EQ(total_placements, report.completed_tasks);
}

TEST(DetailReport, UniversalFamilyRendered) {
  core::SimulationConfig config;
  config.nodes.count = 4;
  config.configs.count = 3;
  config.tasks.total_tasks = 20;
  core::Simulator sim(std::move(config));
  const core::MetricsReport report = sim.Run();
  std::stringstream buffer;
  WriteConfigCsv(buffer, sim.store(), report.placements_per_config);
  EXPECT_NE(buffer.str().find("universal"), std::string::npos);
}

TEST(DetailReport, ShortPlacementSpanReadsAsZero) {
  core::SimulationConfig config;
  config.nodes.count = 4;
  config.configs.count = 3;
  config.tasks.total_tasks = 10;
  core::Simulator sim(std::move(config));
  (void)sim.Run();
  std::stringstream buffer;
  WriteConfigCsv(buffer, sim.store(), {});  // empty span
  const CsvTable table = CsvRead(buffer);
  const std::size_t placements_col = table.ColumnIndex("placements");
  for (const auto& row : table.rows) {
    EXPECT_EQ(row[placements_col], "0");
  }
}

}  // namespace
}  // namespace dreamsim::rms
