#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dreamsim::lint {
namespace {

[[nodiscard]] bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// True when the '"' at `quote` opens a raw string literal; sets `*start`
/// to the offset of the R (or its encoding prefix) so the caller can knock
/// the prefix out of the code view too if it wants to.
[[nodiscard]] bool IsRawStringQuote(const std::string& in, std::size_t quote,
                                    std::size_t* start) {
  if (quote == 0 || in[quote - 1] != 'R') return false;
  std::size_t begin = quote - 1;
  // Optional encoding prefix before the R: u8, u, U, L.
  if (begin >= 2 && in[begin - 2] == 'u' && in[begin - 1] == '8') {
    begin -= 2;
  } else if (begin >= 1 &&
             (in[begin - 1] == 'u' || in[begin - 1] == 'U' ||
              in[begin - 1] == 'L')) {
    begin -= 1;
  }
  // The prefix must not be the tail of a longer identifier (FooR"...").
  if (begin > 0 && IsWordChar(in[begin - 1])) return false;
  *start = begin;
  return true;
}

}  // namespace

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> Tokenize(const std::string& in) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = in.size();
  while (i < n) {
    const char c = in[i];
    const char next = i + 1 < n ? in[i + 1] : '\0';
    if (c == '/' && next == '/') {
      std::size_t end = i;
      while (end < n && in[end] != '\n') ++end;
      tokens.push_back({TokKind::kLineComment, i, end});
      i = end;
      continue;
    }
    if (c == '/' && next == '*') {
      std::size_t end = in.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      tokens.push_back({TokKind::kBlockComment, i, end});
      i = end;
      continue;
    }
    if (c == '"') {
      std::size_t raw_start = 0;
      if (IsRawStringQuote(in, i, &raw_start)) {
        // R"delim( ... )delim"
        std::size_t p = i + 1;
        std::string delim;
        while (p < n && in[p] != '(') delim.push_back(in[p++]);
        const std::string closer = ")" + delim + "\"";
        std::size_t end = in.find(closer, p);
        end = end == std::string::npos ? n : end + closer.size();
        tokens.push_back({TokKind::kRawString, i, end});
        i = end;
        continue;
      }
      std::size_t p = i + 1;
      while (p < n && in[p] != '"') {
        if (in[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      tokens.push_back({TokKind::kString, i, p < n ? p + 1 : n});
      i = p < n ? p + 1 : n;
      continue;
    }
    if (c == '\'' && i > 0 && !IsWordChar(in[i - 1])) {
      // Digit separators (1'000) fail the predecessor test and stay code.
      std::size_t p = i + 1;
      while (p < n && in[p] != '\'') {
        if (in[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      tokens.push_back({TokKind::kChar, i, p < n ? p + 1 : n});
      i = p < n ? p + 1 : n;
      continue;
    }
    ++i;
  }
  return tokens;
}

std::size_t Source::LineOf(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::string_view Source::RawLine(std::size_t line) const {
  const std::size_t begin = line_starts[line - 1];
  const std::size_t end =
      line < line_starts.size() ? line_starts[line] - 1 : raw.size();
  return std::string_view(raw).substr(begin, end - begin);
}

namespace {

/// Blanks `[begin, end)` of `out` with spaces, preserving newlines so line
/// numbers agree across views.
void BlankSpan(std::string& out, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < out.size(); ++i) {
    if (out[i] != '\n') out[i] = ' ';
  }
}

void ParseIncludes(Source& src) {
  // Scan the comment-free view line by line: `#include "target"`.
  for (std::size_t line = 1; line <= src.line_starts.size(); ++line) {
    std::size_t i = src.line_starts[line - 1];
    const std::size_t end =
        line < src.line_starts.size() ? src.line_starts[line] : src.code.size();
    while (i < end && IsSpace(src.code[i])) ++i;
    if (i >= end || src.code[i] != '#') continue;
    ++i;
    while (i < end && IsSpace(src.code[i])) ++i;
    if (src.code.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < end && IsSpace(src.code[i])) ++i;
    if (i >= end || src.code[i] != '"') continue;
    const std::size_t begin = i + 1;
    const std::size_t close = src.code.find('"', begin);
    if (close == std::string::npos || close >= end) continue;
    src.includes.push_back({src.code.substr(begin, close - begin), line});
  }
}

void ParseSuppressions(Source& src, const std::vector<Token>& tokens) {
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kLineComment && tok.kind != TokKind::kBlockComment) {
      continue;
    }
    const std::size_t body_begin = tok.begin + 2;
    const std::size_t body_end =
        tok.kind == TokKind::kBlockComment && tok.end >= tok.begin + 4
            ? tok.end - 2
            : tok.end;
    if (body_begin >= body_end) continue;
    // Only a comment whose text STARTS with `lint:` is an annotation;
    // prose that mentions the tag mid-sentence stays prose.
    std::size_t t = body_begin;
    while (t < body_end && IsSpace(src.raw[t])) ++t;
    if (src.raw.compare(t, 5, "lint:") != 0) continue;
    std::size_t pos = t + 5;
    while (pos < body_end) {
      const std::size_t hit = src.raw.find("allow", pos);
      if (hit == std::string::npos || hit >= body_end) break;
      std::size_t p = hit + 5;
      bool file_wide = false;
      if (src.raw.compare(p, 6, "-file(") == 0) {
        file_wide = true;
        p += 6;
      } else if (p < body_end && src.raw[p] == '(') {
        p += 1;
      } else {
        pos = hit + 5;
        continue;
      }
      const std::size_t close = src.raw.find(')', p);
      if (close == std::string::npos || close >= body_end) break;
      src.suppressions.push_back(
          {src.raw.substr(p, close - p), src.LineOf(hit), file_wide, false});
      pos = close + 1;
    }
  }
}

[[nodiscard]] Source BuildSource(std::string rel, std::string text) {
  Source src;
  src.path = std::move(rel);
  src.raw = std::move(text);
  src.line_starts.push_back(0);
  for (std::size_t i = 0; i < src.raw.size(); ++i) {
    if (src.raw[i] == '\n') src.line_starts.push_back(i + 1);
  }
  const std::vector<Token> tokens = Tokenize(src.raw);
  src.clean = src.raw;
  src.code = src.raw;
  for (const Token& tok : tokens) {
    BlankSpan(src.clean, tok.begin, tok.end);
    const bool comment = tok.kind == TokKind::kLineComment ||
                         tok.kind == TokKind::kBlockComment;
    if (comment) BlankSpan(src.code, tok.begin, tok.end);
  }
  ParseIncludes(src);
  ParseSuppressions(src, tokens);
  return src;
}

}  // namespace

Source LoadSource(const std::filesystem::path& abs, std::string rel) {
  std::ifstream in(abs, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return BuildSource(std::move(rel), buffer.str());
}

Source MakeSource(std::string rel, std::string text) {
  return BuildSource(std::move(rel), std::move(text));
}

std::vector<std::size_t> FindWord(const std::string& text,
                                  std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsWordChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

std::string Basename(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Stem(const std::string& path) {
  std::string base = Basename(path);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

std::vector<Body> FunctionBodies(const std::string& clean) {
  std::vector<Body> bodies;
  std::vector<std::pair<std::size_t, bool>> stack;  // (open offset, is_fn)
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const char c = clean[i];
    if (c == '{') {
      // Look back over whitespace and trailing function-signature words.
      std::size_t j = i;
      bool is_fn = false;
      for (int words = 0; words < 3; ++words) {
        while (j > 0 && IsSpace(clean[j - 1])) --j;
        if (j == 0) break;
        if (clean[j - 1] == ')') {
          is_fn = true;
          break;
        }
        const std::size_t word_end = j;
        while (j > 0 && IsWordChar(clean[j - 1])) --j;
        const std::string_view word(clean.data() + j, word_end - j);
        if (word != "const" && word != "noexcept" && word != "override" &&
            word != "mutable") {
          break;
        }
      }
      stack.push_back({i, is_fn});
    } else if (c == '}' && !stack.empty()) {
      const auto [open, is_fn] = stack.back();
      stack.pop_back();
      if (is_fn) bodies.push_back({open, i});
    }
  }
  return bodies;
}

std::set<std::string> UnorderedMembers(const std::string& clean) {
  std::set<std::string> members;
  for (const std::string_view intro : {std::string_view("unordered_map<"),
                                       std::string_view("unordered_set<")}) {
    std::size_t pos = 0;
    while ((pos = clean.find(intro, pos)) != std::string::npos) {
      // Skip the template argument list (angle brackets nest).
      std::size_t i = pos + intro.size();
      int depth = 1;
      while (i < clean.size() && depth > 0) {
        if (clean[i] == '<') ++depth;
        if (clean[i] == '>') --depth;
        ++i;
      }
      pos = i;
      // The declared name follows: [&*]* identifier [;={(].
      while (i < clean.size() &&
             (IsSpace(clean[i]) || clean[i] == '&' || clean[i] == '*')) {
        ++i;
      }
      const std::size_t name_begin = i;
      while (i < clean.size() && IsWordChar(clean[i])) ++i;
      if (i > name_begin) {
        members.insert(clean.substr(name_begin, i - name_begin));
      }
    }
  }
  return members;
}

}  // namespace dreamsim::lint
