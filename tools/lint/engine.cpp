#include "lint/engine.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>

namespace dreamsim::lint {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool WantedFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// The engine's own sources and the rule fixtures are not part of the
/// product tree scan: the engine spells every banned token by necessity,
/// and fixtures are linted by test_lint with their own roots.
[[nodiscard]] bool IsEngineOwnFile(const std::string& rel) {
  return rel == "tools/dreamsim_lint.cpp" ||
         rel.rfind("tools/lint/", 0) == 0 ||
         rel.find("lint_fixtures/") != std::string::npos;
}

const RuleInfo kStaleSuppression{
    "stale-suppression", Severity::kError,
    "every `lint: allow` annotation must still suppress something"};

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

std::string_view ToString(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

void Reporter::Report(Source& src, std::size_t offset, const RuleInfo& rule,
                      std::string message, std::string fix_hint) {
  ReportAtLine(src, src.LineOf(offset), rule, std::move(message),
               std::move(fix_hint));
}

void Reporter::ReportAtLine(Source& src, std::size_t line,
                            const RuleInfo& rule, std::string message,
                            std::string fix_hint) {
  bool suppressed = false;
  for (Suppression& sup : src.suppressions) {
    if (sup.rule != rule.id) continue;
    const bool matches =
        sup.file_wide || sup.line == line || sup.line + 1 == line;
    if (matches) {
      sup.used = true;  // every matching allow counts as fired
      suppressed = true;
    }
  }
  if (suppressed) return;
  findings_.push_back({src.path, line, rule.id, rule.severity,
                       std::move(message), std::move(fix_hint)});
}

RunResult RunLintOnTree(Tree& tree) {
  Reporter reporter;
  const std::vector<std::unique_ptr<Rule>> rules = BuiltinRules();
  for (Source& src : tree.sources) {
    for (const std::unique_ptr<Rule>& rule : rules) {
      rule->Check(src, tree, reporter);
    }
  }
  // Stale-suppression pass: runs after every rule so `used` is final.
  for (Source& src : tree.sources) {
    for (const Suppression& sup : src.suppressions) {
      if (sup.used) continue;
      const std::string kind = sup.file_wide ? "allow-file" : "allow";
      reporter.findings().push_back(
          {src.path, sup.line, kStaleSuppression.id,
           kStaleSuppression.severity,
           "`lint: " + kind + "(" + sup.rule +
               ")` suppresses nothing — the finding it silenced is gone "
               "(or the rule id is misspelled)",
           "delete the stale suppression comment"});
    }
  }
  RunResult result;
  result.findings = std::move(reporter.findings());
  SortFindings(result.findings);
  result.files = tree.sources.size();
  for (const Finding& f : result.findings) {
    (f.severity == Severity::kError ? result.errors : result.warnings) += 1;
  }
  return result;
}

RunResult RunLint(const fs::path& root,
                  const std::vector<std::string>& subdirs) {
  Tree tree;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !WantedFile(entry.path())) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (IsEngineOwnFile(rel)) continue;
      tree.sources.push_back(LoadSource(entry.path(), std::move(rel)));
    }
  }
  if (tree.sources.empty()) {
    throw std::runtime_error("no sources found under " +
                             root.generic_string());
  }
  std::sort(tree.sources.begin(), tree.sources.end(),
            [](const Source& a, const Source& b) { return a.path < b.path; });
  for (std::size_t i = 0; i < tree.sources.size(); ++i) {
    const Source& src = tree.sources[i];
    tree.by_path[src.path] = i;
    const auto slash = src.path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : src.path.substr(0, slash);
    const std::set<std::string> members = UnorderedMembers(src.clean);
    tree.unordered_by_dir[dir].insert(members.begin(), members.end());
  }
  RunResult result = RunLintOnTree(tree);
  return result;
}

int RunLintCli(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> subdirs;
  bool fix_hints = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--list-rules") {
      for (const std::unique_ptr<Rule>& rule : BuiltinRules()) {
        const RuleInfo& info = rule->info();
        std::cout << info.id << " (" << ToString(info.severity) << "): "
                  << info.summary << "\n";
      }
      std::cout << kStaleSuppression.id << " ("
                << ToString(kStaleSuppression.severity)
                << "): " << kStaleSuppression.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dreamsim_lint [--root <repo-root>] [--fix-hints] "
                   "[--list-rules] [subdir...]\n"
                   "exit codes: 0 clean, 1 findings, 2 internal error\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dreamsim_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      subdirs.emplace_back(arg);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "tools", "tests", "bench"};

  RunResult result;
  try {
    result = RunLint(root, subdirs);
  } catch (const std::exception& e) {
    std::cerr << "dreamsim_lint: internal error: " << e.what() << "\n";
    return 2;
  }
  for (const Finding& f : result.findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    if (fix_hints && !f.fix_hint.empty()) {
      std::cout << "    hint: " << f.fix_hint << "\n";
    }
  }
  std::cout << "dreamsim_lint: " << result.files << " files, "
            << result.errors << " finding(s), " << result.warnings
            << " warning(s)\n";
  return result.errors > 0 ? 1 : 0;
}

}  // namespace dreamsim::lint
