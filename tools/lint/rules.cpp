// Built-in rule set for the dreamsim lint engine (DESIGN.md §17).
//
// Migrated structural rules (the original dreamsim_lint pass):
//   list-internals, store-internals, uncharged-index-query,
//   nondeterminism, unordered-writer-iteration, unordered-merge,
//   entry-cells-iteration, metric-catalogue
// New plane/concurrency rules:
//   plane-discipline     model-plane TUs (src/resource, src/sched,
//                        src/sim) must not reach host-plane obs headers —
//                        directly or through their include closure —
//                        except the sanctioned hooks obs/metrics.hpp,
//                        obs/metric_catalogue.hpp, obs/profiler.hpp.
//   atomics-discipline   the MetricsRegistry cell bank is relaxed-only,
//                        and model-plane code grows no atomics of its own
//                        (src/sim/shard_pool is the one sanctioned
//                        concurrency primitive).
//   merge-order          loops over shard-indexed state (ShardAnswer /
//                        ShardCell elements, shard_cells()/cell_bank_
//                        ranges, shard_count()/cells_used bounds) live
//                        only in the fixed-shard-order merge owners.
#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/engine.hpp"

namespace dreamsim::lint {
namespace {

[[nodiscard]] bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

[[nodiscard]] bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// --- list-internals / store-internals --------------------------------------

class OwnedTokensRule : public Rule {
 public:
  OwnedTokensRule(RuleInfo info, std::string owner_stem,
                  std::vector<std::string_view> tokens, std::string what,
                  std::string hint)
      : info_(std::move(info)),
        owner_stem_(std::move(owner_stem)),
        tokens_(std::move(tokens)),
        what_(std::move(what)),
        hint_(std::move(hint)) {}

  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void Check(Source& src, const Tree&, Reporter& out) override {
    if (Stem(src.path) == owner_stem_) return;
    for (const std::string_view token : tokens_) {
      for (const std::size_t hit : FindWord(src.clean, token)) {
        out.Report(src, hit, info_,
                   std::string(token) + " is " + what_ +
                       "; mutate it through " + owner_stem_ + "'s interface",
                   hint_);
      }
    }
  }

 private:
  RuleInfo info_;
  std::string owner_stem_;
  std::vector<std::string_view> tokens_;
  std::string what_;
  std::string hint_;
};

// --- uncharged-index-query --------------------------------------------------

class UnchargedIndexQueryRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "uncharged-index-query", Severity::kError,
        "indexed scheduler/drain queries must charge the WorkloadMeter "
        "(the modeled-effort contract)"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    // Call-site spellings of the modeled-effort query paths. Qualified
    // names (Foo::OldestExactMatch) are definitions, not calls: skipped.
    static const std::vector<std::string_view> kQueries = {
        "OldestExactMatch", "BestPriorityExactMatch", "OldestEligible",
        "BestPriorityEligible", "index_->BestBlank",
        "index_->BestPartiallyBlank", "index_->FindAnyIdle",
        "index_->AnyBusyFit", "index_->BestIdleConfigured",
        "index_->RankedHost"};
    const std::vector<Body> bodies = FunctionBodies(src.clean);
    for (const std::string_view token : kQueries) {
      std::size_t pos = 0;
      while ((pos = src.clean.find(token, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += token.size();
        // Whole token: not part of a longer identifier, followed by '('.
        if (start > 0 && (IsWordChar(src.clean[start - 1]) ||
                          src.clean[start - 1] == ':')) {
          continue;
        }
        std::size_t after = start + token.size();
        while (after < src.clean.size() && IsSpace(src.clean[after])) ++after;
        if (after >= src.clean.size() || src.clean[after] != '(') continue;
        // A query is fine if ANY enclosing function body carries a charge
        // (charges may sit beside the call or around an inner lambda).
        bool enclosed = false;
        bool charged = false;
        for (const Body& body : bodies) {
          if (body.open < start && start < body.close) {
            enclosed = true;
            if (BodyHasCharge(src.clean, body)) {
              charged = true;
              break;
            }
          }
        }
        if (!enclosed || charged) continue;
        out.Report(src, start, info(),
                   std::string(token) +
                       " is a modeled-effort query path, but no "
                       "WorkloadMeter .Add( charge is visible in the "
                       "enclosing function",
                   "charge the reference scan's analytic step count "
                   "(meter_.Add(...)) beside the call");
      }
    }
  }

 private:
  [[nodiscard]] static bool BodyHasCharge(const std::string& clean,
                                          const Body& body) {
    const std::string_view text(clean.data() + body.open,
                                body.close - body.open);
    for (const std::string_view charge :
         {"meter_.Add(", "meter.Add(", "meter().Add("}) {
      if (text.find(charge) != std::string_view::npos) return true;
    }
    return false;
  }
};

// --- nondeterminism ---------------------------------------------------------

class NondeterminismRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "nondeterminism", Severity::kError,
        "no entropy or wall-clock sources outside util/rng — runs are a "
        "pure function of (seed, config)"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    if (Stem(src.path) == "rng") return;  // util/rng owns entropy
    struct Banned {
      std::string_view token;
      bool call_only;  // must be followed by '(' (rand/srand/time)
    };
    static const std::vector<Banned> kBanned = {
        {"rand", true},          {"srand", true},
        {"time", true},          {"random_device", false},
        {"system_clock", false},
    };
    for (const Banned& banned : kBanned) {
      for (const std::size_t hit : FindWord(src.clean, banned.token)) {
        if (banned.call_only) {
          std::size_t after = hit + banned.token.size();
          while (after < src.clean.size() && IsSpace(src.clean[after])) {
            ++after;
          }
          if (after >= src.clean.size() || src.clean[after] != '(') continue;
          // Member calls (obj.time(), ptr->time()) are not libc time().
          if (hit > 0 && (src.clean[hit - 1] == '.' ||
                          (hit > 1 && src.clean[hit - 2] == '-' &&
                           src.clean[hit - 1] == '>'))) {
            continue;
          }
        }
        out.Report(src, hit, info(),
                   std::string(banned.token) +
                       " is a nondeterminism source; runs must be a pure "
                       "function of (seed, config) — use util/rng streams",
                   "draw from the run's seeded util/rng stream instead");
      }
    }
  }
};

// --- unordered-writer-iteration / unordered-merge ---------------------------

/// Range-for loops whose range expression names an unordered member.
void CheckUnorderedRangeFor(Source& src,
                            const std::set<std::string>& unordered_names,
                            const RuleInfo& info, std::string_view why,
                            std::string hint, Reporter& out) {
  for (const std::size_t hit : FindWord(src.clean, "for")) {
    std::size_t i = hit + 3;
    while (i < src.clean.size() && IsSpace(src.clean[i])) ++i;
    if (i >= src.clean.size() || src.clean[i] != '(') continue;
    const std::size_t header_begin = i + 1;
    int depth = 1;
    std::size_t j = header_begin;
    std::size_t range_colon = std::string::npos;
    while (j < src.clean.size() && depth > 0) {
      const char c = src.clean[j];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ';') break;  // classic for loop, not range-for
      if (c == ':' && depth == 1 && range_colon == std::string::npos) {
        const bool scope =
            (j + 1 < src.clean.size() && src.clean[j + 1] == ':') ||
            (j > 0 && src.clean[j - 1] == ':');
        if (!scope) range_colon = j;
      }
      ++j;
    }
    if (range_colon == std::string::npos || depth != 0) continue;
    const std::string range_expr =
        src.clean.substr(range_colon + 1, j - 1 - (range_colon + 1));
    for (const std::string& name : unordered_names) {
      if (!FindWord(range_expr, name).empty()) {
        out.Report(src, hit, info,
                   "range-for over unordered container '" + name + "' " +
                       std::string(why),
                   std::move(hint));
        break;
      }
    }
  }
}

[[nodiscard]] std::string DirOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

class UnorderedWriterIterationRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "unordered-writer-iteration", Severity::kError,
        "report/trace writers never range-for over unordered members "
        "(hash order would leak into output bytes)"};
    return kInfo;
  }

  void Check(Source& src, const Tree& tree, Reporter& out) override {
    const bool writer = src.path.find("src/obs/") != std::string::npos ||
                        Stem(src.path).find("report") != std::string::npos;
    if (!writer) return;
    const auto it = tree.unordered_by_dir.find(DirOf(src.path));
    if (it == tree.unordered_by_dir.end()) return;
    CheckUnorderedRangeFor(
        src, it->second, info(),
        "in a report/trace writer leaks hash order into output; collect "
        "keys and sort first",
        "collect the keys into a vector, std::sort, then iterate", out);
  }
};

class UnorderedMergeRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "unordered-merge", Severity::kError,
        "sharded-kernel sources never range-for over unordered members "
        "(a hash-order reduction breaks the deterministic merge)"};
    return kInfo;
  }

  void Check(Source& src, const Tree& tree, Reporter& out) override {
    // The partitioned EntryList carries shard-local merge state too: its
    // bucket maintenance lives under the same fixed-shard-order contract.
    const std::string stem = Stem(src.path);
    const bool shard_file = stem.find("shard") != std::string::npos ||
                            stem.find("entry_list") != std::string::npos ||
                            stem.find("entrylist") != std::string::npos;
    if (!shard_file) return;
    const auto it = tree.unordered_by_dir.find(DirOf(src.path));
    if (it == tree.unordered_by_dir.end()) return;
    CheckUnorderedRangeFor(
        src, it->second, info(),
        "in the sharded kernel seeds a cross-shard reduction with hash "
        "order; merge in fixed shard order over ordered state",
        "merge in fixed shard order 0..K-1 over ordered state", out);
  }
};

// --- entry-cells-iteration --------------------------------------------------

class EntryCellsIterationRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "entry-cells-iteration", Severity::kError,
        "EntryList's raw cell storage is read only by entry_list itself "
        "and the audit tooling"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    const std::string stem = Stem(src.path);
    if (stem == "entry_list" || stem == "structure_auditor" ||
        stem == "corruptor") {
      return;
    }
    for (const std::size_t hit : FindWord(src.clean, "cells")) {
      // Member call only: `.cells(` / `->cells(`.
      const bool member =
          (hit >= 1 && src.clean[hit - 1] == '.') ||
          (hit >= 2 && src.clean[hit - 2] == '-' && src.clean[hit - 1] == '>');
      if (!member) continue;
      std::size_t after = hit + 5;
      while (after < src.clean.size() && IsSpace(src.clean[after])) ++after;
      if (after >= src.clean.size() || src.clean[after] != '(') continue;
      out.Report(src, hit, info(),
                 "direct EntryList cells() access outside entry_list/auditor "
                 "bypasses the counted queries and the shard-bucket API; use "
                 "FindFirst/FindMin/shard_cells instead",
                 "use the counted queries (FindFirst/FindMin) or the "
                 "shard-bucket API (shard_cells)");
    }
  }
};

// --- metric-catalogue -------------------------------------------------------

class MetricCatalogueRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "metric-catalogue", Severity::kError,
        "metric hooks name literal MetricId::k tokens; exposition names "
        "come from obs/metric_catalogue.hpp only"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    // A registry hook call must pass a literal catalogue token as its id —
    // a computed id (cast, variable) dodges the single-source-of-names
    // rule.
    static const std::vector<std::string_view> kHooks = {
        "MetricInc", "MetricGaugeSet", "MetricGaugeMax", "MetricObserve"};
    for (const std::string_view hook : kHooks) {
      for (const std::size_t hit : FindWord(src.clean, hook)) {
        std::size_t i = hit + hook.size();
        while (i < src.clean.size() && IsSpace(src.clean[i])) ++i;
        if (i >= src.clean.size() || src.clean[i] != '(') continue;
        // The hook definitions themselves declare `MetricId id` params.
        std::size_t before = hit;
        while (before > 0 && IsSpace(src.clean[before - 1])) --before;
        std::size_t word_begin = before;
        while (word_begin > 0 && IsWordChar(src.clean[word_begin - 1])) {
          --word_begin;
        }
        if (std::string_view(src.clean.data() + word_begin,
                             before - word_begin) == "void") {
          continue;
        }
        // First argument: everything up to the first top-level ',' / ')'.
        std::size_t j = i + 1;
        int depth = 1;
        const std::size_t arg_begin = j;
        while (j < src.clean.size() && depth > 0) {
          const char c = src.clean[j];
          if (c == '(' || c == '<') ++depth;
          if (c == ')' || c == '>') --depth;
          if (c == ',' && depth == 1) break;
          ++j;
        }
        const std::string_view arg(src.clean.data() + arg_begin,
                                   j - arg_begin);
        if (arg.find("MetricId::k") != std::string_view::npos) continue;
        out.Report(src, hit, info(),
                   std::string(hook) +
                       " must name a literal MetricId::k... token from "
                       "obs/metric_catalogue.hpp (no computed ids)",
                   "declare the metric in obs/metric_catalogue.hpp and pass "
                   "its MetricId::k token");
      }
    }
    // Product code never spells a prefixed exposition name by hand: names
    // are derived from the catalogue (tests may assert rendered names).
    const bool product =
        StartsWith(src.path, "src/") || StartsWith(src.path, "tools/");
    if (!product || Stem(src.path) == "metric_catalogue") return;
    std::size_t pos = 0;
    while ((pos = src.code.find("\"dreamsim_", pos)) != std::string::npos) {
      out.Report(src, pos, info(),
                 "ad-hoc \"dreamsim_...\" metric name; exposition names come "
                 "from obs/metric_catalogue.hpp",
                 "derive the name from the catalogue entry instead of "
                 "spelling it");
      pos += 10;
    }
  }
};

// --- plane-discipline -------------------------------------------------------

/// The sanctioned obs hooks a model-plane TU may include: the lock-free
/// metric hooks, the catalogue they name, and the phase profiler. They are
/// the sealed boundary — the closure walk does not descend into them.
[[nodiscard]] bool IsSanctionedObsHeader(const std::string& target) {
  return target == "obs/metrics.hpp" || target == "obs/metric_catalogue.hpp" ||
         target == "obs/profiler.hpp";
}

[[nodiscard]] bool IsObsHeader(const std::string& target) {
  return StartsWith(target, "obs/");
}

[[nodiscard]] bool IsModelPlane(const std::string& path) {
  return StartsWith(path, "src/resource/") || StartsWith(path, "src/sched/") ||
         StartsWith(path, "src/sim/");
}

class PlaneDisciplineRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "plane-discipline", Severity::kError,
        "model-plane TUs (src/resource, src/sched, src/sim) reach "
        "host-plane obs headers only through the sanctioned hooks"};
    return kInfo;
  }

  void Check(Source& src, const Tree& tree, Reporter& out) override {
    if (!IsModelPlane(src.path)) return;
    for (const Source::Include& inc : src.includes) {
      std::vector<std::string> chain;
      if (FindsUnsanctionedObs(inc.target, tree, chain)) {
        std::string via;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
          via += "\"" + chain[i] + "\" -> ";
        }
        out.ReportAtLine(
            src, inc.line, info(),
            "model-plane TU reaches host-plane header \"" + chain.back() +
                "\" (" + via + "\"" + chain.back() +
                "\"); only the sanctioned obs hooks (obs/metrics.hpp, "
                "obs/metric_catalogue.hpp, obs/profiler.hpp) may cross the "
                "plane boundary",
            "route observation through the sanctioned hooks, or move the "
            "host-plane logic into src/obs behind one");
      }
    }
  }

 private:
  /// DFS over the include graph from `target`; fills `chain` with the path
  /// (target .. offending obs header) when an unsanctioned obs header is
  /// reachable. Sanctioned hooks are not descended into.
  bool FindsUnsanctionedObs(const std::string& target, const Tree& tree,
                            std::vector<std::string>& chain) {
    // Include cycles terminate: a target already on the path is clean here.
    if (std::find(chain.begin(), chain.end(), target) != chain.end()) {
      return false;
    }
    if (IsObsHeader(target)) {
      if (IsSanctionedObsHeader(target)) return false;
      chain.push_back(target);
      return true;
    }
    const auto cached = clean_.find(target);
    if (cached != clean_.end()) return false;
    chain.push_back(target);
    // Includes resolve against -Isrc, so "x/y.hpp" is src/x/y.hpp; files
    // outside the tree (system headers, gtest) are opaque and clean.
    if (const Source* hdr = tree.Find("src/" + target)) {
      for (const Source::Include& inc : hdr->includes) {
        if (FindsUnsanctionedObs(inc.target, tree, chain)) return true;
      }
    }
    chain.pop_back();
    clean_.insert(target);
    return false;
  }

  std::set<std::string> clean_;  // closure-verified-clean include targets
};

// --- atomics-discipline -----------------------------------------------------

class AtomicsDisciplineRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "atomics-discipline", Severity::kError,
        "MetricsRegistry cells are memory_order_relaxed only, and "
        "model-plane code grows no atomics of its own"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    // Half 1: the registry's cell bank never escalates its ordering — the
    // snapshot path is quiescent by contract, so any acquire/release (or
    // seq_cst) there is either dead weight on the hot path or a hidden
    // synchronization dependency.
    if (src.path == "src/obs/metrics.hpp") {
      std::size_t pos = 0;
      while ((pos = src.clean.find("memory_order_", pos)) !=
             std::string::npos) {
        std::size_t end = pos + 13;
        while (end < src.clean.size() && IsWordChar(src.clean[end])) ++end;
        const std::string_view order(src.clean.data() + pos, end - pos);
        if (order != "memory_order_relaxed") {
          out.Report(src, pos, info(),
                     std::string(order) +
                         " in the metrics registry: the cell bank is "
                         "relaxed-only (readers are quiescent by contract)",
                     "use memory_order_relaxed; if you need ordering, the "
                     "design is wrong — snapshot at a tick boundary");
        }
        pos = end;
      }
    }
    // Half 2: model-plane code stays free of hand-rolled atomics. The
    // shard pool is the sanctioned concurrency primitive; everything else
    // in the model plane is single-threaded by contract (jobs write only
    // their own slots, merges happen on the calling thread).
    if (!IsModelPlane(src.path)) return;
    if (Stem(src.path) == "shard_pool") return;  // sanctioned primitive
    std::size_t pos = 0;
    while ((pos = src.clean.find("atomic", pos)) != std::string::npos) {
      const bool word_start = pos == 0 || !IsWordChar(src.clean[pos - 1]);
      if (!word_start) {
        pos += 6;
        continue;
      }
      out.Report(src, pos, info(),
                 "atomic in model-plane code: the model plane is "
                 "single-threaded by contract (shard jobs write only their "
                 "own slots); new cross-thread state belongs in the shard "
                 "pool or an obs cell",
                 "move shared counters into obs/metrics.hpp cells, or hand "
                 "the coordination to sim/shard_pool");
      pos += 6;
    }
  }
};

// --- merge-order ------------------------------------------------------------

/// Files allowed to loop over shard-indexed state: the merge helpers that
/// reduce in fixed shard order, plus the audit tooling that diffs them.
[[nodiscard]] bool IsMergeOwner(const std::string& path) {
  return StartsWith(path, "src/resource/shard_engine") ||
         StartsWith(path, "src/resource/entry_list") ||
         StartsWith(path, "src/sim/shard_pool") ||
         StartsWith(path, "src/obs/metrics") ||
         StartsWith(path, "src/analysis/");
}

class MergeOrderRule : public Rule {
 public:
  [[nodiscard]] const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "merge-order", Severity::kError,
        "loops over shard-indexed containers live only inside the "
        "fixed-shard-order merge owners"};
    return kInfo;
  }

  void Check(Source& src, const Tree&, Reporter& out) override {
    // Tests and benches exercise internals on purpose; product code only.
    const bool product =
        StartsWith(src.path, "src/") || StartsWith(src.path, "tools/");
    if (!product || IsMergeOwner(src.path)) return;
    for (const std::size_t hit : FindWord(src.clean, "for")) {
      std::size_t i = hit + 3;
      while (i < src.clean.size() && IsSpace(src.clean[i])) ++i;
      if (i >= src.clean.size() || src.clean[i] != '(') continue;
      const std::size_t header_begin = i + 1;
      int depth = 1;
      std::size_t j = header_begin;
      std::size_t range_colon = std::string::npos;
      std::size_t first_semi = std::string::npos;
      std::size_t second_semi = std::string::npos;
      while (j < src.clean.size() && depth > 0) {
        const char c = src.clean[j];
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ';' && depth == 1) {
          if (first_semi == std::string::npos) {
            first_semi = j;
          } else if (second_semi == std::string::npos) {
            second_semi = j;
          }
        }
        if (c == ':' && depth == 1 && range_colon == std::string::npos &&
            first_semi == std::string::npos) {
          const bool scope =
              (j + 1 < src.clean.size() && src.clean[j + 1] == ':') ||
              (j > 0 && src.clean[j - 1] == ':');
          if (!scope) range_colon = j;
        }
        ++j;
      }
      if (depth != 0) continue;
      const std::size_t header_end = j - 1;
      bool shard_loop = false;
      std::string what;
      if (range_colon != std::string::npos &&
          first_semi == std::string::npos) {
        // Range-for: shard-typed element or shard-indexed range.
        const std::string decl = src.clean.substr(
            header_begin, range_colon - header_begin);
        const std::string range = src.clean.substr(
            range_colon + 1, header_end - (range_colon + 1));
        for (const std::string_view t : {std::string_view("ShardAnswer"),
                                         std::string_view("ShardCell")}) {
          if (!FindWord(decl, t).empty()) {
            shard_loop = true;
            what = "element type " + std::string(t);
          }
        }
        for (const std::string_view t :
             {std::string_view("shard_cells"), std::string_view("cell_bank_"),
              std::string_view("answers")}) {
          if (!FindWord(range, t).empty()) {
            shard_loop = true;
            what = "range '" + std::string(t) + "'";
          }
        }
      } else if (first_semi != std::string::npos) {
        // Classic for: shard-count bound in the condition.
        const std::size_t cond_end =
            second_semi != std::string::npos ? second_semi : header_end;
        const std::string cond =
            src.clean.substr(first_semi + 1, cond_end - (first_semi + 1));
        for (const std::string_view t : {std::string_view("shard_count"),
                                         std::string_view("cells_used")}) {
          if (!FindWord(cond, t).empty()) {
            shard_loop = true;
            what = "bound '" + std::string(t) + "'";
          }
        }
      }
      if (!shard_loop) continue;
      out.Report(src, hit, info(),
                 "loop over shard-indexed state (" + what +
                     ") outside the fixed-shard-order merge owners; a "
                     "reduction here can drift from the deterministic "
                     "merge contract",
                 "do the reduction inside the owning merge helper "
                 "(shard_engine / entry_list / metrics), in fixed shard "
                 "order 0..K-1");
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> BuiltinRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  // buckets_ (also SusQueueIndex's) and shard_of_ (also ShardEngine's)
  // would false-positive as whole-word tokens; the cells()-access rule
  // covers the partition mirror's read surface instead.
  rules.push_back(std::make_unique<OwnedTokensRule>(
      RuleInfo{"list-internals", Severity::kError,
               "EntryList's cells_/table_/table_used_ are touched only by "
               "entry_list.{hpp,cpp}"},
      "entry_list",
      std::vector<std::string_view>{"cells_", "table_", "table_used_"},
      "EntryList's intrusive state",
      "route the access through EntryList's public interface"));
  rules.push_back(std::make_unique<OwnedTokensRule>(
      RuleInfo{"store-internals", Severity::kError,
               "ResourceStore's intrusive mirrors are touched only by "
               "store.{hpp,cpp}"},
      "store",
      std::vector<std::string_view>{"idle_lists_", "busy_lists_",
                                    "blank_pos_", "busy_area_",
                                    "failed_count_", "idle_list_mut",
                                    "busy_list_mut"},
      "ResourceStore's private mirror state",
      "go through ResourceStore's public queries and mutators"));
  rules.push_back(std::make_unique<UnchargedIndexQueryRule>());
  rules.push_back(std::make_unique<NondeterminismRule>());
  rules.push_back(std::make_unique<UnorderedWriterIterationRule>());
  rules.push_back(std::make_unique<UnorderedMergeRule>());
  rules.push_back(std::make_unique<EntryCellsIterationRule>());
  rules.push_back(std::make_unique<MetricCatalogueRule>());
  rules.push_back(std::make_unique<PlaneDisciplineRule>());
  rules.push_back(std::make_unique<AtomicsDisciplineRule>());
  rules.push_back(std::make_unique<MergeOrderRule>());
  return rules;
}

}  // namespace dreamsim::lint
