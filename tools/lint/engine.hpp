// Rule registry + driver for the dreamsim lint engine (DESIGN.md §17).
//
// A Rule checks one repo contract over one Source at a time, with the
// whole Tree available for cross-file passes (the plane-discipline include
// graph, per-directory unordered-member resolution). Findings go through
// the Reporter, which applies suppressions (`// lint: allow(<rule>)` on
// the finding's line or the line above, `// lint: allow-file(<rule>)`
// anywhere in the file) and tracks which suppression actually fired — an
// allow that suppresses nothing is itself reported as `stale-suppression`,
// so dead annotations cannot accumulate.
//
// Exit-code contract (the CLI): 0 = clean tree, 1 = findings (including
// stale suppressions), 2 = the linter itself failed (no sources, bad
// root). CI fails the build on 1, but reports 2 as a tooling breakage, not
// a code finding.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source.hpp"

namespace dreamsim::lint {

enum class Severity { kError, kWarning };

[[nodiscard]] std::string_view ToString(Severity severity);

struct RuleInfo {
  std::string id;       // stable kebab-case rule id ("uncharged-index-query")
  Severity severity = Severity::kError;
  std::string summary;  // one line, shown by --list-rules
};

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
  std::string fix_hint;  // shown by --fix-hints; may be empty
};

/// Every loaded source plus the cross-file context rules share.
struct Tree {
  std::vector<Source> sources;
  std::map<std::string, std::size_t> by_path;  // path -> index in sources
  /// Unordered-container member names per directory: a writer .cpp
  /// iterates members declared in its own header (or a sibling's).
  std::map<std::string, std::set<std::string>> unordered_by_dir;

  [[nodiscard]] const Source* Find(const std::string& path) const {
    const auto it = by_path.find(path);
    return it == by_path.end() ? nullptr : &sources[it->second];
  }
};

/// Collects findings; the suppression check mutates the source's
/// Suppression::used flags so the engine can report stale allows after
/// every rule has run.
class Reporter {
 public:
  void Report(Source& src, std::size_t offset, const RuleInfo& rule,
              std::string message, std::string fix_hint = "");
  /// Reports at an explicit line (for findings without a clean offset).
  void ReportAtLine(Source& src, std::size_t line, const RuleInfo& rule,
                    std::string message, std::string fix_hint = "");

  [[nodiscard]] std::vector<Finding>& findings() { return findings_; }

 private:
  std::vector<Finding> findings_;
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual const RuleInfo& info() const = 0;
  /// Checks one source. `src` is mutable only for suppression tracking.
  virtual void Check(Source& src, const Tree& tree, Reporter& out) = 0;
};

/// The built-in rule set, freshly constructed (rules may cache per-tree
/// state, so a set is used for exactly one Run).
[[nodiscard]] std::vector<std::unique_ptr<Rule>> BuiltinRules();

struct RunResult {
  std::vector<Finding> findings;  // sorted (file, line, rule); suppressions
                                  // applied; stale allows appended as
                                  // `stale-suppression` findings
  std::size_t files = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

/// Loads `subdirs` under `root` and runs every builtin rule.
/// Throws std::runtime_error when the tree itself cannot be linted (no
/// sources found) — the CLI maps that to exit code 2.
[[nodiscard]] RunResult RunLint(const std::filesystem::path& root,
                                const std::vector<std::string>& subdirs);
/// Runs the builtin rules over an already-built tree (fixture tests).
[[nodiscard]] RunResult RunLintOnTree(Tree& tree);

/// Full CLI: parsing, output, exit code (the dreamsim_lint main).
[[nodiscard]] int RunLintCli(int argc, char** argv);

}  // namespace dreamsim::lint
