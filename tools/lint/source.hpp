// Source model for the dreamsim lint engine (DESIGN.md §17).
//
// A Source is one file in three aligned views plus the structure the rules
// share: `raw` is the file verbatim; `clean` blanks comments and every
// string/char literal (including raw strings) to spaces so token scans see
// code only; `code` blanks comments but keeps literals, for rules that
// inspect string contents (metric exposition names). All three views have
// identical length and line structure, so one offset addresses all of
// them.
//
// The views are derived from a single C++ tokenizer pass (Tokenize) that
// understands //-comments, /*...*/ blocks, "..." and '...' literals with
// escapes, digit separators (1'000 is not a char literal), and raw string
// literals R"delim(...)delim" with optional encoding prefixes — the case
// plain-text blanking gets wrong.
//
// Loading also extracts the inputs the engine needs once per file: quoted
// #include targets (for the plane-discipline include graph) and
// `// lint: allow(...)` / `// lint: allow-file(...)` suppressions. A
// suppression is only recognized when the comment's text *starts with*
// `lint:` — prose that merely mentions the tag does not register (and so
// can never be reported stale).
#pragma once

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim::lint {

// --- Tokenizer ------------------------------------------------------------

enum class TokKind {
  kLineComment,  // // ... (terminating newline excluded)
  kBlockComment, // /* ... */
  kString,       // "..." including quotes
  kChar,         // '...' including quotes
  kRawString,    // R"delim(...)delim" including quotes (prefix excluded)
};

/// One non-code span of the file; code is everything between tokens.
struct Token {
  TokKind kind;
  std::size_t begin = 0;  // offset of the first char (slash or quote)
  std::size_t end = 0;    // offset one past the last char
};

/// Single-pass scan of `text` into its non-code spans.
[[nodiscard]] std::vector<Token> Tokenize(const std::string& text);

// --- Source ---------------------------------------------------------------

/// One `lint: allow(...)` / `lint: allow-file(...)` annotation.
struct Suppression {
  std::string rule;
  std::size_t line = 0;   // line the tag itself sits on
  bool file_wide = false; // allow-file
  bool used = false;      // set when it suppresses at least one finding
};

struct Source {
  std::string path;   // repo-relative, '/' separators
  std::string raw;
  std::string clean;  // comments + string/char literals -> spaces
  std::string code;   // comments -> spaces, literals kept
  std::vector<std::size_t> line_starts;  // offset of each line's first char

  struct Include {
    std::string target;  // the quoted path, verbatim
    std::size_t line = 0;
  };
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;

  [[nodiscard]] std::size_t LineOf(std::size_t offset) const;
  [[nodiscard]] std::string_view RawLine(std::size_t line) const;
};

/// Reads `abs` and derives every view; `rel` becomes Source::path.
[[nodiscard]] Source LoadSource(const std::filesystem::path& abs,
                                std::string rel);
/// Builds a Source from an in-memory buffer (unit tests).
[[nodiscard]] Source MakeSource(std::string rel, std::string text);

// --- Shared scan helpers ---------------------------------------------------

[[nodiscard]] bool IsWordChar(char c);
/// Whole-word occurrences of `token` in `text`.
[[nodiscard]] std::vector<std::size_t> FindWord(const std::string& text,
                                                std::string_view token);
[[nodiscard]] std::string Basename(const std::string& path);
[[nodiscard]] std::string Stem(const std::string& path);

/// Brace-matched regions of `clean` whose opening brace follows `)` (or a
/// trailing `const`/`noexcept`/`override`/`mutable` after one) — function
/// and lambda bodies, as opposed to class/namespace/initializer braces.
struct Body {
  std::size_t open = 0;
  std::size_t close = 0;  // offset of the matching '}'
};
[[nodiscard]] std::vector<Body> FunctionBodies(const std::string& clean);

/// Member names declared as unordered containers in `clean`.
[[nodiscard]] std::set<std::string> UnorderedMembers(const std::string& clean);

}  // namespace dreamsim::lint
