// dreamsim — command-line front end for the DReAMSim simulator.
//
// Single runs, full-vs-partial comparisons, and task-count sweeps from one
// binary, with every Table II parameter exposed as a flag and reports in
// console/CSV/XML form. Examples:
//
//   dreamsim                                  # one Table II run, console report
//   dreamsim --mode=full --tasks=20000        # one full-reconfiguration run
//   dreamsim --compare --xml=report           # both modes + XML reports
//   dreamsim --sweep --scale=0.2 --csv=out.csv
//   dreamsim --trace-in=workload.csv          # replay an external trace
//   dreamsim --policy=best-fit --contiguous   # baseline policy, fabric model
#include <fstream>
#include <iostream>
#include <optional>

#include "core/replication.hpp"
#include "core/report.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "scenario/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "obs/profiler.hpp"
#include "obs/run_tracer.hpp"
#include "obs/timeline.hpp"
#include "rms/detail_report.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dreamsim;

std::optional<core::PolicyChoice> ParsePolicy(const std::string& name) {
  for (const auto choice :
       {core::PolicyChoice::kDreamSim, core::PolicyChoice::kFirstFit,
        core::PolicyChoice::kBestFit, core::PolicyChoice::kWorstFit,
        core::PolicyChoice::kRandomFit, core::PolicyChoice::kRoundRobin,
        core::PolicyChoice::kLeastLoaded}) {
    if (name == core::ToString(choice)) return choice;
  }
  return std::nullopt;
}

std::optional<core::WasteAccounting> ParseAccounting(const std::string& name) {
  for (const auto accounting :
       {core::WasteAccounting::kOnSchedule, core::WasteAccounting::kOnConfigure,
        core::WasteAccounting::kTimeWeighted,
        core::WasteAccounting::kIdleConfigured}) {
    if (name == core::ToString(accounting)) return accounting;
  }
  return std::nullopt;
}

void RegisterFlags(CliParser& cli) {
  // Resources (Table II).
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("node-min-area", 1000, "node TotalArea lower bound");
  cli.AddInt("node-max-area", 4000, "node TotalArea upper bound");
  cli.AddInt("configs", 50, "number of processor configurations");
  cli.AddInt("config-min-area", 200, "configuration ReqArea lower bound");
  cli.AddInt("config-max-area", 2000, "configuration ReqArea upper bound");
  cli.AddInt("config-time-min", 10, "t_config lower bound (ticks)");
  cli.AddInt("config-time-max", 20, "t_config upper bound (ticks)");
  // Workload (Table II).
  cli.AddInt("tasks", 10000, "number of generated tasks");
  cli.AddInt("interval-min", 1, "min inter-arrival gap (ticks)");
  cli.AddInt("interval-max", 50, "max inter-arrival gap (ticks)");
  cli.AddInt("time-min", 100, "min t_required (ticks)");
  cli.AddInt("time-max", 100000, "max t_required (ticks)");
  cli.AddDouble("closest-match", 0.15,
                "fraction of tasks whose C_pref is not in the catalogue");
  cli.AddDouble("closest-match-slowdown", 1.0,
                "execution-time multiplier on closest-match configurations");
  cli.AddInt("families", 1,
             "device families (bitstream compatibility; 1 = universal)");
  cli.AddString("arrivals", "uniform", "arrival process: uniform|poisson|constant");
  // Scheduling.
  cli.AddString("mode", "partial", "reconfiguration mode: partial|full");
  cli.AddString("policy", "dreamsim",
                "dreamsim|first-fit|best-fit|worst-fit|random-fit|"
                "round-robin|least-loaded");
  cli.AddInt("suspension-batch", 8, "policy re-runs per completion (0=all)");
  cli.AddInt("max-retries", 0, "suspension retries before discard (0=inf)");
  cli.AddInt("queue-capacity", 0, "suspension queue bound (0=unbounded)");
  // Extensions.
  cli.AddBool("contiguous", false, "contiguous-placement fabric model");
  cli.AddString("placement", "first-fit",
                "hole heuristic under --contiguous: first-fit|best-fit|worst-fit");
  // Network.
  cli.AddInt("net-bandwidth", 0, "payload bytes per tick (0 = no comm delay)");
  cli.AddInt("net-latency", 0, "base link latency (ticks)");
  cli.AddInt("net-jitter", 0, "max uniform jitter (ticks)");
  // Fault injection (disabled by default; paper figures are fault-free).
  cli.AddDouble("fault-mtbf", 0.0,
                "mean ticks between node failures (0 = no random failures)");
  cli.AddDouble("fault-mttr", 0.0,
                "mean ticks to repair a failed node (0 = failures are "
                "permanent)");
  cli.AddString("fault-script", "",
                "scripted fault events 'tick:node:fail|repair', "
                "comma-separated");
  // Metrics / output.
  cli.AddString("waste-accounting", "on-schedule",
                "on-schedule|on-configure|time-weighted|idle-configured");
  cli.AddBool("monitoring", true, "event-driven utilization monitoring");
  // Performance.
  cli.AddBool("scheduler-index", true,
              "O(log N) indexed scheduler queries (identical decisions and "
              "metrics; off = literal counted scans)");
  cli.AddBool("drain-index", true,
              "O(log Q) indexed suspension-queue drain (identical decisions "
              "and metrics; off = literal counted scans)");
  cli.AddInt("shards", 1,
             "sharded parallel kernel: partition the nodes into K shards "
             "answering queries in parallel with a deterministic merge "
             "(identical decisions and metrics; <=1 = sequential)");
  cli.AddInt("kernel-threads", 0,
             "threads for the sharded kernel (0 = one per shard, capped at "
             "hardware; never affects results)");
  cli.AddString("shard-by", "round-robin",
                "node-to-shard assignment: round-robin|family");
  // Correctness tooling (DESIGN.md §12).
  cli.AddString("audit", "off",
                "structure-invariant audit: off|end (once at end of run)|"
                "step (after every scheduler decision; slow)");
  cli.AddString("csv", "", "write run/sweep rows to this CSV file");
  cli.AddString("xml", "", "write XML report(s) with this path prefix");
  cli.AddString("node-csv", "", "write the per-node detail report here");
  cli.AddString("config-csv", "",
                "write the per-configuration detail report here");
  cli.AddInt("replications", 1,
             "run N independent replications and report mean/ci95");
  cli.AddString("trace-in", "", "replay this workload trace instead of generating");
  cli.AddString("workload-trace-out", "",
                "save the generated workload as a replayable trace");
  cli.AddString("trace-out", "",
                "(deprecated) alias for --workload-trace-out");
  // Observability (DESIGN.md §11; all off by default, pure observers).
  cli.AddString("run-trace", "",
                "write a per-event run trace to this path (see --trace-format)");
  cli.AddString("trace-format", "jsonl",
                "run-trace format: jsonl|chrome (chrome://tracing JSON)");
  cli.AddString("timeline-out", "",
                "write an interval-sampled system-state time series (CSV)");
  cli.AddInt("sample-interval", 100, "timeline sampling interval (ticks)");
  cli.AddString("metrics-out", "",
                "write live metrics-registry snapshots to this path (see "
                "--metrics-format)");
  cli.AddString("metrics-format", "json",
                "metrics output format: json (tick-interval JSONL snapshots)"
                "|prom (final Prometheus text exposition)");
  cli.AddInt("metrics-interval", 10000,
             "ticks between JSONL metric snapshots (json format only)");
  cli.AddString("explain", "",
                "comma-separated TaskIds whose scheduling decisions are "
                "recorded as explain records in the jsonl --run-trace "
                "('all' = every task)");
  cli.AddBool("profile", false,
              "profile scheduler phases (host wall time; report on stdout)");
  // Scenario files (docs/formats.md).
  cli.AddString("scenario", "",
                "drive the run from this scenario file (device/task class "
                "blocks); structural flags then conflict, runtime knobs "
                "still apply");
  cli.AddBool("scenario-print", false,
              "print the canonical form and stable hash of --scenario, "
              "then exit");
  // Modes of operation.
  cli.AddBool("compare", false, "run both reconfiguration modes side by side");
  cli.AddBool("sweep", false, "task-count sweep (Fig. 6-10 style)");
  cli.AddDouble("scale", 0.1, "sweep task-axis scale (1.0 = 1000..100000)");
  cli.AddInt("threads", 0, "sweep worker threads (0 = hardware)");
  // Misc.
  cli.AddInt("seed", 42, "random seed");
  cli.AddBool("verbose", false, "log scheduling decisions (very chatty)");
}

/// Runtime knobs shared by the flag and scenario paths: none of these are
/// scenario identity (they never change which file describes which
/// experiment), so they always come from flags.
void ApplyRuntimeKnobs(const CliParser& cli, core::SimulationConfig& config) {
  config.suspension_batch =
      static_cast<std::size_t>(cli.GetInt("suspension-batch"));
  config.max_suspension_retries =
      static_cast<std::uint32_t>(cli.GetInt("max-retries"));
  config.suspension_capacity =
      static_cast<std::size_t>(cli.GetInt("queue-capacity"));
  config.network.bytes_per_tick = cli.GetInt("net-bandwidth");
  config.network.base_latency = cli.GetInt("net-latency");
  config.network.max_jitter = cli.GetInt("net-jitter");
  config.faults.mtbf = cli.GetDouble("fault-mtbf");
  config.faults.mttr = cli.GetDouble("fault-mttr");
  config.faults.script = core::ParseFaultScript(cli.GetString("fault-script"));
  config.enable_monitoring = cli.GetBool("monitoring");
  config.scheduler_index = cli.GetBool("scheduler-index");
  config.drain_index = cli.GetBool("drain-index");
  config.shards = static_cast<std::size_t>(cli.GetInt("shards"));
  config.kernel_threads =
      static_cast<std::size_t>(cli.GetInt("kernel-threads"));
  const std::string shard_by = cli.GetString("shard-by");
  if (shard_by == "family") {
    config.shard_by = resource::ShardBy::kFamily;
  } else if (shard_by != "round-robin") {
    throw std::invalid_argument(
        Format("unknown shard-by rule '{}' (want round-robin|family)",
               shard_by));
  }
  const auto audit = analysis::ParseAuditMode(cli.GetString("audit"));
  if (!audit) {
    throw std::invalid_argument(Format("unknown audit mode '{}' (want off|end|step)",
                                       cli.GetString("audit")));
  }
  config.audit = *audit;
  const auto accounting = ParseAccounting(cli.GetString("waste-accounting"));
  if (!accounting) {
    throw std::invalid_argument(Format("unknown waste accounting '{}'",
                                       cli.GetString("waste-accounting")));
  }
  config.waste_accounting = *accounting;
}

/// Flags whose meaning a scenario file owns; setting both is ambiguous and
/// rejected (the scenario hash must identify the experiment).
constexpr const char* kScenarioOwnedFlags[] = {
    "nodes",          "node-min-area",  "node-max-area",
    "configs",        "config-min-area", "config-max-area",
    "config-time-min", "config-time-max", "tasks",
    "interval-min",   "interval-max",   "time-min",
    "time-max",       "closest-match",  "closest-match-slowdown",
    "families",       "arrivals",       "contiguous",
    "placement",
};

core::SimulationConfig BuildScenarioConfig(const CliParser& cli) {
  const std::string path = cli.GetString("scenario");
  auto parsed = scenario::ParseScenarioFile(path);
  if (!parsed) {
    throw std::invalid_argument(Format("scenario '{}' is invalid:\n{}", path,
                                       scenario::Render(parsed.error())));
  }
  for (const char* flag : kScenarioOwnedFlags) {
    if (cli.WasSet(flag)) {
      throw std::invalid_argument(Format(
          "--{} conflicts with --scenario; set it in the scenario file",
          flag));
    }
  }
  core::SimulationConfig config = std::move(parsed->config);
  // Reproducibility and mode/policy may be varied per invocation without
  // editing the file: explicit flags override the scenario's declaration.
  if (cli.WasSet("seed")) {
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  }
  if (cli.WasSet("mode")) {
    const std::string mode = cli.GetString("mode");
    if (mode == "full") {
      config.mode = sched::ReconfigMode::kFull;
    } else if (mode == "partial") {
      config.mode = sched::ReconfigMode::kPartial;
    } else {
      throw std::invalid_argument(Format("unknown mode '{}'", mode));
    }
  }
  if (cli.WasSet("policy")) {
    const auto policy = ParsePolicy(cli.GetString("policy"));
    if (!policy) {
      throw std::invalid_argument(
          Format("unknown policy '{}'", cli.GetString("policy")));
    }
    config.policy = *policy;
  }
  ApplyRuntimeKnobs(cli, config);
  return config;
}

core::SimulationConfig BuildConfig(const CliParser& cli) {
  if (!cli.GetString("scenario").empty()) return BuildScenarioConfig(cli);
  core::SimulationConfig config;
  config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
  config.nodes.min_area = cli.GetInt("node-min-area");
  config.nodes.max_area = cli.GetInt("node-max-area");
  config.nodes.contiguous_placement = cli.GetBool("contiguous");
  config.configs.count = static_cast<int>(cli.GetInt("configs"));
  config.configs.min_area = cli.GetInt("config-min-area");
  config.configs.max_area = cli.GetInt("config-max-area");
  config.configs.min_config_time = cli.GetInt("config-time-min");
  config.configs.max_config_time = cli.GetInt("config-time-max");
  config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
  config.tasks.min_interval = cli.GetInt("interval-min");
  config.tasks.max_interval = cli.GetInt("interval-max");
  config.tasks.min_required_time = cli.GetInt("time-min");
  config.tasks.max_required_time = cli.GetInt("time-max");
  config.tasks.closest_match_fraction = cli.GetDouble("closest-match");
  config.tasks.unknown_min_area = config.configs.min_area;
  config.tasks.unknown_max_area = config.configs.max_area;
  config.closest_match_slowdown = cli.GetDouble("closest-match-slowdown");
  config.nodes.family_count = static_cast<int>(cli.GetInt("families"));
  config.configs.family_count = static_cast<int>(cli.GetInt("families"));
  ApplyRuntimeKnobs(cli, config);
  config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  const std::string arrivals = cli.GetString("arrivals");
  if (arrivals == "poisson") {
    config.tasks.arrivals = workload::ArrivalProcess::kPoisson;
  } else if (arrivals == "constant") {
    config.tasks.arrivals = workload::ArrivalProcess::kConstant;
  } else if (arrivals != "uniform") {
    throw std::invalid_argument(Format("unknown arrival process '{}'", arrivals));
  }

  const std::string mode = cli.GetString("mode");
  if (mode == "full") {
    config.mode = sched::ReconfigMode::kFull;
  } else if (mode != "partial") {
    throw std::invalid_argument(Format("unknown mode '{}'", mode));
  }

  const auto policy = ParsePolicy(cli.GetString("policy"));
  if (!policy) {
    throw std::invalid_argument(
        Format("unknown policy '{}'", cli.GetString("policy")));
  }
  config.policy = *policy;

  const std::string placement = cli.GetString("placement");
  if (placement == "best-fit") {
    config.nodes.placement = resource::Placement::kBestFit;
  } else if (placement == "worst-fit") {
    config.nodes.placement = resource::Placement::kWorstFit;
  } else if (placement != "first-fit") {
    throw std::invalid_argument(Format("unknown placement '{}'", placement));
  }
  return config;
}

/// Resolves the workload-trace output path, honouring the deprecated
/// --trace-out spelling (with a warning).
std::string WorkloadTraceOut(const CliParser& cli) {
  std::string path = cli.GetString("workload-trace-out");
  if (path.empty() && cli.WasSet("trace-out")) {
    path = cli.GetString("trace-out");
    std::cerr << "warning: --trace-out is deprecated; use "
                 "--workload-trace-out\n";
  }
  return path;
}

/// Under --compare each mode writes its own file: "runs.json" becomes
/// "runs-full.json" / "runs-partial.json". Single runs keep the path as-is.
std::string PerModePath(const std::string& path, std::string_view mode,
                        bool multiple_modes) {
  if (!multiple_modes) return path;
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return Format("{}-{}", path, mode);
  }
  return Format("{}-{}{}", path.substr(0, dot), mode, path.substr(dot));
}

obs::TraceFormat RequireTraceFormat(const CliParser& cli) {
  const std::string name = cli.GetString("trace-format");
  const auto format = obs::ParseTraceFormat(name);
  if (!format) {
    throw std::invalid_argument(
        Format("unknown trace format '{}' (want jsonl|chrome)", name));
  }
  return *format;
}

obs::MetricsFormat RequireMetricsFormat(const CliParser& cli) {
  const std::string name = cli.GetString("metrics-format");
  const auto format = obs::ParseMetricsFormat(name);
  if (!format) {
    throw std::invalid_argument(
        Format("unknown metrics format '{}' (want json|prom)", name));
  }
  return *format;
}

/// Parses --explain: "all" (empty filter = every task) or a comma-separated
/// TaskId list.
std::vector<TaskId> ParseExplainTasks(const std::string& spec) {
  std::vector<TaskId> tasks;
  if (spec == "all") return tasks;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    if (token.empty()) {
      throw std::invalid_argument(
          "--explain wants 'all' or comma-separated task ids");
    }
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != token.size() || value > 0xfffffffful) {
      throw std::invalid_argument(
          Format("--explain: '{}' is not a task id", token));
    }
    tasks.push_back(TaskId{static_cast<std::uint32_t>(value)});
    start = end + 1;
  }
  return tasks;
}

void MaybeWriteXml(const CliParser& cli, const core::MetricsReport& report) {
  const std::string prefix = cli.GetString("xml");
  if (prefix.empty()) return;
  const std::string path = Format("{}-{}.xml", prefix, report.mode_name);
  std::ofstream out(path);
  core::WriteXmlReport(out, report);
  std::cout << "wrote " << path << "\n";
}

int RunSingleOrCompare(const CliParser& cli) {
  std::vector<sched::ReconfigMode> modes;
  if (cli.GetBool("compare")) {
    modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
  } else {
    modes = {BuildConfig(cli).mode};
  }

  // Optional trace replay: one workload shared by all runs.
  std::optional<workload::Workload> trace;
  const std::string trace_in = cli.GetString("trace-in");
  if (!trace_in.empty()) {
    trace = workload::ReadTraceFile(trace_in);
    std::cout << "replaying " << trace->size() << " tasks from " << trace_in
              << "\n";
  }

  const std::string trace_out = WorkloadTraceOut(cli);
  const std::string run_trace = cli.GetString("run-trace");
  const std::string timeline_out = cli.GetString("timeline-out");
  const obs::TraceFormat trace_format = RequireTraceFormat(cli);
  const bool profile = cli.GetBool("profile");
  if (profile) obs::PhaseProfiler::SetEnabled(true);
  const std::string metrics_out = cli.GetString("metrics-out");
  const obs::MetricsFormat metrics_format = RequireMetricsFormat(cli);
  const auto metrics_interval = static_cast<Tick>(cli.GetInt("metrics-interval"));
  const bool explain = cli.WasSet("explain");
  if (explain &&
      (run_trace.empty() || trace_format != obs::TraceFormat::kJsonl)) {
    throw std::invalid_argument(
        "--explain records ride the run trace: add --run-trace=FILE with "
        "--trace-format=jsonl");
  }
  const std::vector<TaskId> explain_tasks =
      explain ? ParseExplainTasks(cli.GetString("explain"))
              : std::vector<TaskId>{};
  // The registry is process-global: enable once, reset per run so each
  // report/snapshot covers exactly one run.
  const bool metrics_enabled = !metrics_out.empty() || explain;
  if (metrics_enabled) obs::MetricsRegistry::SetEnabled(true);

  std::vector<core::MetricsReport> reports;
  for (const auto mode : modes) {
    core::SimulationConfig config = BuildConfig(cli);
    config.mode = mode;
    config.label = config.scenario_name.empty()
                       ? std::string(sched::ToString(mode))
                       : Format("{}-{}", config.scenario_name,
                                sched::ToString(mode));

    if (!trace && !trace_out.empty() && !config.task_classes.empty()) {
      std::cerr << "warning: --workload-trace-out is ignored for "
                   "multi-class scenarios\n";
    } else if (!trace && !trace_out.empty()) {
      // Generate once, save, then replay the saved workload so the file is
      // exactly what the simulation consumed.
      Rng workload_rng(DeriveSeed(config.seed, 1));
      Rng catalogue_rng(DeriveSeed(config.seed, 2));
      const auto catalogue = resource::ConfigCatalogue::Generate(
          config.configs, ptype::Catalogue::Default(), catalogue_rng);
      trace = workload::GenerateWorkload(config.tasks, catalogue,
                                         workload_rng);
      workload::WriteTraceFile(trace_out, *trace);
      std::cout << "wrote " << trace_out << "\n";
    }

    const std::string mode_name(sched::ToString(mode));
    core::Simulator simulator(std::move(config));

    // Observability taps (pure observers; paper metrics are unaffected).
    std::unique_ptr<obs::RunTracer> tracer;
    if (!run_trace.empty()) {
      const std::string path =
          PerModePath(run_trace, mode_name, modes.size() > 1);
      obs::RunTracer::RunInfo info;
      info.label = simulator.config().label;
      info.mode = mode_name;
      info.seed = simulator.config().seed;
      info.nodes = simulator.store().node_count();
      tracer = std::make_unique<obs::RunTracer>(path, trace_format,
                                                std::move(info));
      std::cout << "tracing run to " << path << " ("
                << obs::ToString(trace_format) << ")\n";
    }
    std::unique_ptr<obs::MetricsSnapshotWriter> metrics_writer;
    if (!metrics_out.empty()) {
      const std::string path =
          PerModePath(metrics_out, mode_name, modes.size() > 1);
      metrics_writer = std::make_unique<obs::MetricsSnapshotWriter>(
          path, metrics_format, metrics_interval);
      std::cout << "metrics to " << path << " ("
                << obs::ToString(metrics_format) << ")\n";
    }
    if (tracer || metrics_writer) {
      simulator.SetEventLogger(
          [&tracer, &metrics_writer](const core::SimEvent& event) {
            if (tracer) tracer->OnEvent(event);
            if (metrics_writer) metrics_writer->OnEvent(event);
          });
    }
    if (explain) {
      // RequireTraceFormat/--explain validation above guarantees a jsonl
      // tracer exists here.
      simulator.SetExplainObserver(
          [&tracer](const core::ExplainRecord& record) {
            tracer->OnExplain(record);
          },
          explain_tasks);
    }
    std::unique_ptr<obs::TimeSeriesSampler> sampler;
    if (!timeline_out.empty()) {
      const std::string path =
          PerModePath(timeline_out, mode_name, modes.size() > 1);
      sampler = std::make_unique<obs::TimeSeriesSampler>(
          path, static_cast<Tick>(cli.GetInt("sample-interval")));
      simulator.SetStateObserver(
          [&sampler](const core::StateSample& sample) {
            sampler->Observe(sample);
          });
      std::cout << "sampling timeline to " << path << "\n";
    }
    if (profile) obs::PhaseProfiler::Instance().Reset();
    if (metrics_enabled) obs::MetricsRegistry::Instance().Reset();

    reports.push_back(trace ? simulator.RunWithWorkload(*trace)
                            : simulator.Run());
    const Tick end = simulator.kernel().now();
    if (metrics_enabled) {
      reports.back().metrics_block = obs::RenderMetricsBlock(
          obs::MetricsRegistry::Instance().TakeSnapshot());
    }
    if (tracer) tracer->Finish(end);
    if (metrics_writer) metrics_writer->Finish(end);
    if (sampler) sampler->Finish(end);
    if (profile) {
      std::cout << "\n[" << mode_name << "] "
                << obs::PhaseProfiler::Instance().Report();
    }
    MaybeWriteXml(cli, reports.back());

    const std::string node_csv = cli.GetString("node-csv");
    if (!node_csv.empty()) {
      std::ofstream out(Format("{}", node_csv));
      rms::WriteNodeCsv(out, simulator.store());
      std::cout << "wrote " << node_csv << "\n";
    }
    const std::string config_csv = cli.GetString("config-csv");
    if (!config_csv.empty()) {
      std::ofstream out(config_csv);
      rms::WriteConfigCsv(out, simulator.store(),
                          reports.back().placements_per_config);
      std::cout << "wrote " << config_csv << "\n";
    }
  }

  if (reports.size() == 1) {
    std::cout << core::RenderReportTable(reports.front());
  } else {
    std::cout << core::RenderComparisonTable(reports);
  }

  const std::string csv_path = cli.GetString("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    core::WriteCsvReports(out, reports);
    std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}

/// Per-run traces/timelines only exist for single and --compare runs;
/// sweeps and replications run many simulators in parallel.
void WarnUnsupportedObs(const CliParser& cli, std::string_view where) {
  for (const std::string_view flag :
       {"run-trace", "timeline-out", "metrics-out", "explain"}) {
    if (!cli.GetString(flag).empty()) {
      std::cerr << "warning: --" << flag << " is ignored under --" << where
                << "\n";
    }
  }
}

int RunSweepMode(const CliParser& cli) {
  WarnUnsupportedObs(cli, "sweep");
  const bool profile = cli.GetBool("profile");
  if (profile) {
    // The profiler's counters are atomic, so parallel sweep workers can
    // share it; the report then aggregates the whole sweep.
    obs::PhaseProfiler::SetEnabled(true);
    obs::PhaseProfiler::Instance().Reset();
  }

  core::SweepParams params;
  params.base = BuildConfig(cli);
  params.base.enable_monitoring = false;
  params.task_counts = core::PaperTaskCounts(cli.GetDouble("scale"));
  params.modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
  params.threads = static_cast<unsigned>(cli.GetInt("threads"));
  params.replications = static_cast<std::size_t>(cli.GetInt("replications"));

  if (params.replications > 1) {
    // Replicated grid: each point summarized over independent seeds.
    const auto points = core::RunReplicatedSweep(params);
    if (profile) {
      std::cout << "\n[sweep] " << obs::PhaseProfiler::Instance().Report();
    }
    std::vector<core::MetricsReport> all_runs;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto mode = params.modes[i / params.task_counts.size()];
      const int tasks = params.task_counts[i % params.task_counts.size()];
      std::cout << Format("\n[{} tasks={}]\n", sched::ToString(mode), tasks)
                << core::RenderReplicationTable(points[i]);
      all_runs.insert(all_runs.end(), points[i].runs.begin(),
                      points[i].runs.end());
    }
    const std::string csv_path = cli.GetString("csv");
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      core::WriteCsvReports(out, all_runs);
      std::cout << "wrote " << csv_path << "\n";
    }
    return 0;
  }

  const auto reports = core::RunSweep(params);
  if (profile) {
    std::cout << "\n[sweep] " << obs::PhaseProfiler::Instance().Report();
  }
  std::cout << core::RenderComparisonTable(reports);

  const std::string csv_path = cli.GetString("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    core::WriteCsvReports(out, reports);
    std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "dreamsim — task scheduling simulator for partially reconfigurable "
      "processing elements (IPDPSW 2012 reproduction).");
  RegisterFlags(cli);
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  if (cli.GetBool("verbose")) Log::SetLevel(LogLevel::kDebug);

  try {
    if (cli.GetBool("scenario-print")) {
      const std::string path = cli.GetString("scenario");
      if (path.empty()) {
        throw std::invalid_argument("--scenario-print needs --scenario FILE");
      }
      const auto parsed = scenario::ParseScenarioFile(path);
      if (!parsed) {
        std::cerr << Format("scenario '{}' is invalid:\n{}", path,
                            scenario::Render(parsed.error()));
        return 1;
      }
      // The hash comment keeps the output parseable as a scenario itself.
      std::cout << Format("# scenario hash: {}\n",
                          scenario::ScenarioHash(*parsed))
                << scenario::CanonicalScenario(*parsed);
      return 0;
    }
    if (cli.GetBool("sweep")) return RunSweepMode(cli);  // owns --replications
    if (cli.GetInt("replications") > 1) {
      WarnUnsupportedObs(cli, "replications");
      const auto replications =
          static_cast<std::size_t>(cli.GetInt("replications"));
      const core::ReplicationReport report = core::RunReplications(
          BuildConfig(cli), replications,
          static_cast<unsigned>(cli.GetInt("threads")));
      std::cout << core::RenderReplicationTable(report);
      return 0;
    }
    return RunSingleOrCompare(cli);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
