// dreamsim_lint — structural lint over the dreamsim tree.
//
// The engine lives in tools/lint/ (source model + tokenizer in
// source.{hpp,cpp}, rule registry + driver in engine.{hpp,cpp}, the
// built-in rules in rules.cpp). This TU is just the entry point.
//
//   dreamsim_lint [--root <repo-root>] [--fix-hints] [--list-rules]
//                 [subdir...]
//
// Exit codes: 0 = clean, 1 = findings, 2 = internal error.
#include "lint/engine.hpp"

int main(int argc, char** argv) {
  return dreamsim::lint::RunLintCli(argc, argv);
}
