// dreamsim_lint — repo-specific structural lint for the DReAMSim tree.
//
// Plain-text C++ source analysis (no libclang): comments and string
// literals are blanked, brace structure is recovered by matching, and the
// repo rules are enforced on what remains:
//
//   list-internals             EntryList's cells_/table_/table_used_ are
//                              touched only by entry_list.{hpp,cpp}.
//                              (buckets_/shard_of_ collide with other
//                              structures' member names and are covered by
//                              entry-cells-iteration instead.)
//   store-internals            ResourceStore's intrusive mirrors
//                              (idle_lists_, busy_lists_, blank_pos_,
//                              busy_area_, ...) are touched only by
//                              store.{hpp,cpp}.
//   uncharged-index-query      every function body that calls an indexed
//                              scheduler/drain query also charges the
//                              WorkloadMeter (the modeled-effort contract:
//                              O(log) answers must pay the scan's steps).
//   nondeterminism             no rand()/srand()/time()/random_device/
//                              system_clock outside util/rng — runs are a
//                              pure function of (seed, config).
//   unordered-writer-iteration report/trace writers never range-for over
//                              unordered members (hash order would leak
//                              into output bytes; collect + sort instead).
//   unordered-merge            sharded-kernel sources (shard_engine and
//                              the partitioned entry_list alike) never
//                              range-for over unordered members (a
//                              cross-shard reduction seeded by hash order
//                              would break the deterministic-merge
//                              contract; reduce in fixed shard order over
//                              ordered state).
//   entry-cells-iteration      EntryList's raw cell storage (.cells()) is
//                              read only by entry_list itself and the
//                              structure auditor/corruptor — every other
//                              consumer goes through the counted queries
//                              or the shard-bucket API, so scans cannot
//                              dodge the modeled-effort charges or the
//                              merge-order contract.
//   metric-catalogue           every MetricInc/MetricGaugeSet/MetricGaugeMax/
//                              MetricObserve call names a literal
//                              MetricId::k... token from
//                              obs/metric_catalogue.hpp, and no product file
//                              outside the catalogue spells a "dreamsim_..."
//                              exposition name as a string literal — ad-hoc
//                              metric names would bypass the catalogue's
//                              stable-name + merge-rule declaration.
//
// Suppressions: `// lint: allow(<rule>)` on the finding's line or the line
// above; `// lint: allow-file(<rule>)` anywhere in the file. Exit status 1
// when findings remain, 0 on a clean tree.
//
// Usage: dreamsim_lint [--root <repo-root>] [subdir...]
//        (default subdirs: src tools tests bench)
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// One source file, raw and with comments/strings blanked (same length, so
/// offsets and line numbers agree between the two views).
struct Source {
  std::string path;      // repo-relative, '/' separators
  std::string raw;
  std::string clean;     // comments + string/char literals -> spaces
  std::vector<std::size_t> line_starts;  // offset of each line's first char

  [[nodiscard]] std::size_t LineOf(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
  [[nodiscard]] std::string_view RawLine(std::size_t line) const {
    const std::size_t begin = line_starts[line - 1];
    const std::size_t end = line < line_starts.size()
                                ? line_starts[line] - 1
                                : raw.size();
    return std::string_view(raw).substr(begin, end - begin);
  }
};

/// Blanks //-comments, /*...*/ comments, "..." and '...' literals with
/// spaces (newlines preserved). Digit separators (1'000) are not treated
/// as char literals.
std::string BlankCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && i > 0 &&
                   !(std::isalnum(static_cast<unsigned char>(in[i - 1])) ||
                     in[i - 1] == '_')) {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

Source LoadSource(const fs::path& abs, std::string rel) {
  std::ifstream in(abs, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Source src;
  src.path = std::move(rel);
  src.raw = buffer.str();
  src.clean = BlankCommentsAndStrings(src.raw);
  src.line_starts.push_back(0);
  for (std::size_t i = 0; i < src.raw.size(); ++i) {
    if (src.raw[i] == '\n') src.line_starts.push_back(i + 1);
  }
  return src;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Finds whole-word occurrences of `token` in `text`.
std::vector<std::size_t> FindWord(const std::string& text,
                                  std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsWordChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True when the finding at `line` is suppressed by an allow annotation.
bool Suppressed(const Source& src, std::size_t line, std::string_view rule) {
  const std::string file_tag = "lint: allow-file(" + std::string(rule) + ")";
  if (src.raw.find(file_tag) != std::string::npos) return true;
  const std::string tag = "lint: allow(" + std::string(rule) + ")";
  for (const std::size_t l : {line, line > 1 ? line - 1 : line}) {
    if (src.RawLine(l).find(tag) != std::string_view::npos) return true;
  }
  return false;
}

void Report(std::vector<Finding>& findings, const Source& src,
            std::size_t offset, std::string rule, std::string message) {
  const std::size_t line = src.LineOf(offset);
  if (Suppressed(src, line, rule)) return;
  findings.push_back({src.path, line, std::move(rule), std::move(message)});
}

std::string Basename(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Stem(const std::string& path) {
  std::string base = Basename(path);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// --- Rule 1 + 2: private-structure ownership ------------------------------

void CheckOwnedTokens(const Source& src, std::vector<Finding>& findings,
                      std::string_view rule, std::string_view owner_stem,
                      const std::vector<std::string_view>& tokens,
                      std::string_view what) {
  if (Stem(src.path) == owner_stem) return;
  for (const std::string_view token : tokens) {
    for (const std::size_t hit : FindWord(src.clean, token)) {
      Report(findings, src, hit, std::string(rule),
             std::string(token) + " is " + std::string(what) +
                 "; mutate it through " + std::string(owner_stem) +
                 "'s interface");
    }
  }
}

// --- Rule 3: uncharged index queries --------------------------------------

/// Brace-matched regions of `clean` whose opening brace follows `)` (or a
/// trailing `const`/`noexcept`/`override` after one) — i.e. function and
/// lambda bodies, as opposed to class/namespace/initializer braces.
struct Body {
  std::size_t open = 0;
  std::size_t close = 0;  // offset of the matching '}'
};

std::vector<Body> FunctionBodies(const std::string& clean) {
  std::vector<Body> bodies;
  std::vector<std::pair<std::size_t, bool>> stack;  // (open offset, is_fn)
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const char c = clean[i];
    if (c == '{') {
      // Look back over whitespace and trailing function-signature words.
      std::size_t j = i;
      bool is_fn = false;
      for (int words = 0; words < 3; ++words) {
        while (j > 0 &&
               std::isspace(static_cast<unsigned char>(clean[j - 1]))) {
          --j;
        }
        if (j == 0) break;
        if (clean[j - 1] == ')') {
          is_fn = true;
          break;
        }
        std::size_t word_end = j;
        while (j > 0 && IsWordChar(clean[j - 1])) --j;
        const std::string_view word(clean.data() + j, word_end - j);
        if (word != "const" && word != "noexcept" && word != "override" &&
            word != "mutable") {
          break;
        }
      }
      stack.push_back({i, is_fn});
    } else if (c == '}' && !stack.empty()) {
      const auto [open, is_fn] = stack.back();
      stack.pop_back();
      if (is_fn) bodies.push_back({open, i});
    }
  }
  return bodies;
}

bool BodyHasMeterCharge(const std::string& clean, const Body& body) {
  const std::string_view text(clean.data() + body.open,
                              body.close - body.open);
  for (const std::string_view charge :
       {"meter_.Add(", "meter.Add(", "meter().Add("}) {
    if (text.find(charge) != std::string_view::npos) return true;
  }
  return false;
}

void CheckUnchargedQueries(const Source& src,
                           std::vector<Finding>& findings) {
  // Call-site spellings of the modeled-effort query paths. Qualified names
  // (Foo::OldestExactMatch) are definitions, not calls, and are skipped.
  static const std::vector<std::string_view> kQueries = {
      "OldestExactMatch", "BestPriorityExactMatch", "OldestEligible",
      "BestPriorityEligible", "index_->BestBlank",
      "index_->BestPartiallyBlank", "index_->FindAnyIdle",
      "index_->AnyBusyFit", "index_->BestIdleConfigured",
      "index_->RankedHost"};
  const std::vector<Body> bodies = FunctionBodies(src.clean);
  for (const std::string_view token : kQueries) {
    std::size_t pos = 0;
    while ((pos = src.clean.find(token, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += token.size();
      // Whole token: not part of a longer identifier, and followed by '('.
      if (start > 0 &&
          (IsWordChar(src.clean[start - 1]) || src.clean[start - 1] == ':')) {
        continue;
      }
      std::size_t after = start + token.size();
      while (after < src.clean.size() &&
             std::isspace(static_cast<unsigned char>(src.clean[after]))) {
        ++after;
      }
      if (after >= src.clean.size() || src.clean[after] != '(') continue;
      // A query is fine if ANY enclosing function body carries a charge
      // (charges may sit beside the call or around an inner lambda).
      bool enclosed = false;
      bool charged = false;
      for (const Body& body : bodies) {
        if (body.open < start && start < body.close) {
          enclosed = true;
          if (BodyHasMeterCharge(src.clean, body)) {
            charged = true;
            break;
          }
        }
      }
      if (!enclosed || charged) continue;
      Report(findings, src, start, "uncharged-index-query",
             std::string(token) +
                 " is a modeled-effort query path, but no WorkloadMeter "
                 ".Add( charge is visible in the enclosing function");
    }
  }
}

// --- Rule 4: nondeterminism sources ---------------------------------------

void CheckNondeterminism(const Source& src, std::vector<Finding>& findings) {
  if (Stem(src.path) == "rng") return;  // util/rng owns entropy
  struct Banned {
    std::string_view token;
    bool call_only;  // must be followed by '(' (rand/srand/time)
  };
  static const std::vector<Banned> kBanned = {
      {"rand", true},          {"srand", true},
      {"time", true},          {"random_device", false},
      {"system_clock", false},
  };
  for (const Banned& banned : kBanned) {
    for (const std::size_t hit : FindWord(src.clean, banned.token)) {
      if (banned.call_only) {
        std::size_t after = hit + banned.token.size();
        while (after < src.clean.size() &&
               std::isspace(static_cast<unsigned char>(src.clean[after]))) {
          ++after;
        }
        if (after >= src.clean.size() || src.clean[after] != '(') continue;
        // Member calls (obj.time(), ptr->time()) are not libc time().
        if (hit > 0 && (src.clean[hit - 1] == '.' ||
                        (hit > 1 && src.clean[hit - 2] == '-' &&
                         src.clean[hit - 1] == '>'))) {
          continue;
        }
      }
      Report(findings, src, hit, "nondeterminism",
             std::string(banned.token) +
                 " is a nondeterminism source; runs must be a pure function "
                 "of (seed, config) — use util/rng streams");
    }
  }
}

// --- Rule 5: hash-order iteration in writers ------------------------------

bool IsWriterFile(const std::string& path) {
  if (path.find("src/obs/") != std::string::npos) return true;
  const std::string stem = Stem(path);
  return stem.find("report") != std::string::npos;
}

// --- Rule 6: hash-order reductions in the sharded kernel --------------------

bool IsShardFile(const std::string& path) {
  // The partitioned EntryList carries shard-local merge state too: its
  // bucket maintenance and any merge helpers live under the same
  // fixed-shard-order contract as shard_engine.
  const std::string stem = Stem(path);
  return stem.find("shard") != std::string::npos ||
         stem.find("entry_list") != std::string::npos ||
         stem.find("entrylist") != std::string::npos;
}

// --- Rule 7: raw EntryList cell iteration ---------------------------------

/// Stems allowed to read EntryList::cells() directly: the list itself and
/// the audit tooling that diffs it against ground truth.
bool MayTouchEntryCells(const std::string& path) {
  const std::string stem = Stem(path);
  return stem == "entry_list" || stem == "structure_auditor" ||
         stem == "corruptor";
}

void CheckEntryCellsIteration(const Source& src,
                              std::vector<Finding>& findings) {
  if (MayTouchEntryCells(src.path)) return;
  for (const std::size_t hit : FindWord(src.clean, "cells")) {
    // Member call only: `.cells(` / `->cells(`.
    const bool member =
        (hit >= 1 && src.clean[hit - 1] == '.') ||
        (hit >= 2 && src.clean[hit - 2] == '-' && src.clean[hit - 1] == '>');
    if (!member) continue;
    std::size_t after = hit + 5;
    while (after < src.clean.size() &&
           std::isspace(static_cast<unsigned char>(src.clean[after]))) {
      ++after;
    }
    if (after >= src.clean.size() || src.clean[after] != '(') continue;
    Report(findings, src, hit, "entry-cells-iteration",
           "direct EntryList cells() access outside entry_list/auditor "
           "bypasses the counted queries and the shard-bucket API; use "
           "FindFirst/FindMin/shard_cells instead");
  }
}

// --- Rule 8: metric-catalogue ---------------------------------------------

/// Blanks comments only, keeping string literals (so catalogue-name string
/// scans do not trip on names mentioned in prose).
std::string BlankComments(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && i > 0 &&
                   !(std::isalnum(static_cast<unsigned char>(in[i - 1])) ||
                     in[i - 1] == '_')) {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == (state == State::kString ? '"' : '\'')) {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

void CheckMetricCatalogue(const Source& src, std::vector<Finding>& findings) {
  const std::string stem = Stem(src.path);
  // A registry hook call must pass a literal catalogue token as its id —
  // a computed id (cast, variable) dodges the single-source-of-names rule.
  static const std::vector<std::string_view> kHooks = {
      "MetricInc", "MetricGaugeSet", "MetricGaugeMax", "MetricObserve"};
  for (const std::string_view hook : kHooks) {
    for (const std::size_t hit : FindWord(src.clean, hook)) {
      std::size_t i = hit + hook.size();
      while (i < src.clean.size() &&
             std::isspace(static_cast<unsigned char>(src.clean[i]))) {
        ++i;
      }
      if (i >= src.clean.size() || src.clean[i] != '(') continue;
      // The hook definitions themselves declare `MetricId id` parameters.
      std::size_t before = hit;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(src.clean[before - 1]))) {
        --before;
      }
      std::size_t word_begin = before;
      while (word_begin > 0 && IsWordChar(src.clean[word_begin - 1])) {
        --word_begin;
      }
      if (std::string_view(src.clean.data() + word_begin,
                           before - word_begin) == "void") {
        continue;
      }
      // First argument: everything up to the first top-level ',' or ')'.
      std::size_t j = i + 1;
      int depth = 1;
      const std::size_t arg_begin = j;
      while (j < src.clean.size() && depth > 0) {
        const char c = src.clean[j];
        if (c == '(' || c == '<') ++depth;
        if (c == ')' || c == '>') --depth;
        if (c == ',' && depth == 1) break;
        ++j;
      }
      const std::string_view arg(src.clean.data() + arg_begin, j - arg_begin);
      if (arg.find("MetricId::k") != std::string_view::npos) continue;
      Report(findings, src, hit, "metric-catalogue",
             std::string(hook) +
                 " must name a literal MetricId::k... token from "
                 "obs/metric_catalogue.hpp (no computed ids)");
    }
  }
  // Product code never spells a prefixed exposition name by hand: names
  // are derived from the catalogue (tests may assert rendered names).
  const bool product = src.path.rfind("src/", 0) == 0 ||
                       src.path.rfind("tools/", 0) == 0;
  if (!product || stem == "metric_catalogue") return;
  const std::string code = BlankComments(src.raw);
  std::size_t pos = 0;
  while ((pos = code.find("\"dreamsim_", pos)) != std::string::npos) {
    Report(findings, src, pos, "metric-catalogue",
           "ad-hoc \"dreamsim_...\" metric name; exposition names come from "
           "obs/metric_catalogue.hpp");
    pos += 10;
  }
}

/// Member names declared as unordered containers in `clean`.
std::set<std::string> UnorderedMembers(const std::string& clean) {
  std::set<std::string> members;
  for (const std::string_view intro :
       {std::string_view("unordered_map<"), std::string_view("unordered_set<")}) {
    std::size_t pos = 0;
    while ((pos = clean.find(intro, pos)) != std::string::npos) {
      // Skip the template argument list (angle brackets nest).
      std::size_t i = pos + intro.size();
      int depth = 1;
      while (i < clean.size() && depth > 0) {
        if (clean[i] == '<') ++depth;
        if (clean[i] == '>') --depth;
        ++i;
      }
      pos = i;
      // The declared name follows: [&*]* identifier [;={(].
      while (i < clean.size() &&
             (std::isspace(static_cast<unsigned char>(clean[i])) ||
              clean[i] == '&' || clean[i] == '*')) {
        ++i;
      }
      const std::size_t name_begin = i;
      while (i < clean.size() && IsWordChar(clean[i])) ++i;
      if (i > name_begin) {
        members.insert(clean.substr(name_begin, i - name_begin));
      }
    }
  }
  return members;
}

void CheckUnorderedRangeFor(const Source& src,
                            const std::set<std::string>& unordered_names,
                            std::string_view rule, std::string_view why,
                            std::vector<Finding>& findings) {
  for (const std::size_t hit : FindWord(src.clean, "for")) {
    std::size_t i = hit + 3;
    while (i < src.clean.size() &&
           std::isspace(static_cast<unsigned char>(src.clean[i]))) {
      ++i;
    }
    if (i >= src.clean.size() || src.clean[i] != '(') continue;
    // Capture the parenthesized header.
    const std::size_t header_begin = i + 1;
    int depth = 1;
    std::size_t j = header_begin;
    std::size_t range_colon = std::string::npos;
    while (j < src.clean.size() && depth > 0) {
      const char c = src.clean[j];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ';') break;  // classic for loop, not range-for
      if (c == ':' && depth == 1 && range_colon == std::string::npos) {
        const bool scope = (j + 1 < src.clean.size() &&
                            src.clean[j + 1] == ':') ||
                           (j > 0 && src.clean[j - 1] == ':');
        if (!scope) range_colon = j;
      }
      ++j;
    }
    if (range_colon == std::string::npos || depth != 0) continue;
    const std::string range_expr =
        src.clean.substr(range_colon + 1, j - 1 - (range_colon + 1));
    for (const std::string& name : unordered_names) {
      if (!FindWord(range_expr, name).empty()) {
        Report(findings, src, hit, std::string(rule),
               "range-for over unordered container '" + name + "' " +
                   std::string(why));
        break;
      }
    }
  }
}

// --- Driver ---------------------------------------------------------------

bool WantedFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dreamsim_lint [--root <repo-root>] [subdir...]\n";
      return 0;
    } else {
      subdirs.emplace_back(arg);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "tools", "tests", "bench"};

  std::vector<Source> sources;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !WantedFile(entry.path())) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      sources.push_back(LoadSource(entry.path(), std::move(rel)));
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const Source& a, const Source& b) { return a.path < b.path; });
  if (sources.empty()) {
    std::cerr << "dreamsim_lint: no sources found under " << root << "\n";
    return 2;
  }

  // The lint's own implementation spells every banned token; it vouches
  // for itself the same way any other file would.
  // buckets_ (also SusQueueIndex's) and shard_of_ (also ShardEngine's)
  // would false-positive as whole-word tokens; the cells()-access rule
  // covers the partition mirror's read surface instead.
  static const std::vector<std::string_view> kListInternals = {
      "cells_", "table_", "table_used_"};
  static const std::vector<std::string_view> kStoreInternals = {
      "idle_lists_",  "busy_lists_",  "blank_pos_",   "busy_area_",
      "failed_count_", "idle_list_mut", "busy_list_mut"};

  // Rule 5 resolves member names per directory: a writer .cpp iterates
  // members declared in its own header (or a sibling's).
  std::map<std::string, std::set<std::string>> unordered_by_dir;
  for (const Source& src : sources) {
    const auto slash = src.path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : src.path.substr(0, slash);
    const std::set<std::string> members = UnorderedMembers(src.clean);
    unordered_by_dir[dir].insert(members.begin(), members.end());
  }

  std::vector<Finding> findings;
  for (const Source& src : sources) {
    if (Stem(src.path) == "dreamsim_lint") continue;
    CheckOwnedTokens(src, findings, "list-internals", "entry_list",
                     kListInternals, "EntryList's intrusive state");
    CheckOwnedTokens(src, findings, "store-internals", "store",
                     kStoreInternals, "ResourceStore's private mirror state");
    CheckUnchargedQueries(src, findings);
    CheckNondeterminism(src, findings);
    CheckEntryCellsIteration(src, findings);
    CheckMetricCatalogue(src, findings);
    const auto slash = src.path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : src.path.substr(0, slash);
    if (IsWriterFile(src.path)) {
      CheckUnorderedRangeFor(src, unordered_by_dir[dir],
                             "unordered-writer-iteration",
                             "in a report/trace writer leaks hash order into "
                             "output; collect keys and sort first",
                             findings);
    }
    if (IsShardFile(src.path)) {
      CheckUnorderedRangeFor(src, unordered_by_dir[dir], "unordered-merge",
                             "in the sharded kernel seeds a cross-shard "
                             "reduction with hash order; merge in fixed "
                             "shard order over ordered state",
                             findings);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "dreamsim_lint: " << sources.size() << " files, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
