# Clang thread-safety enforcement (DESIGN.md §17).
#
# Under Clang this module
#   1. adds -Wthread-safety -Werror=thread-safety to the shared warning
#      interface, so every annotated structure in the tree is checked at
#      compile time, and
#   2. proves the annotations are load-bearing with a try_compile pair:
#      a negative probe that reads ShardPool's guarded job queue without
#      the mutex (must FAIL to build) and a positive twin that takes the
#      lock first (must build). If the negative probe compiles, the
#      analysis is not actually running — the configure step aborts rather
#      than let CI report a vacuously green thread-safety job.
#
# Under GCC (which has no thread-safety analysis) the annotation macros
# expand to nothing and this module is a silent no-op; the CI
# clang-thread-safety job is where enforcement actually happens.
#
# Gate: -DDREAMSIM_THREAD_SAFETY=ON (default ON; only acts under Clang).

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS "dreamsim: thread-safety analysis skipped (needs Clang, "
                 "have ${CMAKE_CXX_COMPILER_ID})")
  return()
endif()

target_compile_options(dreamsim_warnings INTERFACE
  -Wthread-safety
  -Werror=thread-safety
)
message(STATUS "dreamsim: -Werror=thread-safety enabled")

# --- Non-vacuity probes ----------------------------------------------------
# STATIC_LIBRARY keeps try_compile from linking (the probes reference
# ShardPool code that lives in the product library).
set(CMAKE_TRY_COMPILE_TARGET_TYPE STATIC_LIBRARY)

set(_dreamsim_tsa_flags
  "-DCMAKE_CXX_STANDARD=${CMAKE_CXX_STANDARD}"
  "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
  "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
  "-DCOMPILE_DEFINITIONS=-Wthread-safety -Werror=thread-safety"
)

try_compile(DREAMSIM_TSA_POSITIVE_BUILDS
  ${CMAKE_BINARY_DIR}/tsa_probe_positive
  ${CMAKE_CURRENT_SOURCE_DIR}/tests/tsa_probe/tsa_positive.cpp
  CMAKE_FLAGS ${_dreamsim_tsa_flags}
  OUTPUT_VARIABLE _dreamsim_tsa_positive_log
)
if(NOT DREAMSIM_TSA_POSITIVE_BUILDS)
  message(FATAL_ERROR
    "dreamsim: the positive thread-safety probe failed to compile, so the "
    "negative probe below would fail for the wrong reason. Build log:\n"
    "${_dreamsim_tsa_positive_log}")
endif()

try_compile(DREAMSIM_TSA_NEGATIVE_BUILDS
  ${CMAKE_BINARY_DIR}/tsa_probe_negative
  ${CMAKE_CURRENT_SOURCE_DIR}/tests/tsa_probe/tsa_negative.cpp
  CMAKE_FLAGS ${_dreamsim_tsa_flags}
  OUTPUT_VARIABLE _dreamsim_tsa_negative_log
)
if(DREAMSIM_TSA_NEGATIVE_BUILDS)
  message(FATAL_ERROR
    "dreamsim: the negative thread-safety probe COMPILED — an unguarded "
    "read of ShardPool's job queue passed -Werror=thread-safety, so the "
    "annotations are vacuous (shim expanding to nothing, or the analysis "
    "not running). Refusing to configure a green-but-unchecked build.")
endif()
message(STATUS
  "dreamsim: thread-safety probes ok (mis-locked access rejected, "
  "well-locked twin accepted)")

unset(CMAKE_TRY_COMPILE_TARGET_TYPE)
