#include "workload/trace.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace dreamsim::workload {
namespace {

constexpr const char* kColumns[] = {"create_time", "preferred_config",
                                    "needed_area", "required_time",
                                    "data_size"};

std::int64_t ParseField(const std::string& cell, std::size_t line,
                        const char* column) {
  std::int64_t value = 0;
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw std::runtime_error(Format(
        "trace line {}: column '{}' is not an integer: '{}'", line, column,
        cell));
  }
  return value;
}

}  // namespace

void WriteTrace(std::ostream& out, const Workload& workload) {
  CsvWriter csv(out, {kColumns[0], kColumns[1], kColumns[2], kColumns[3],
                      kColumns[4]});
  for (const GeneratedTask& t : workload) {
    csv.BeginRow();
    csv.Field(static_cast<std::int64_t>(t.create_time));
    csv.Field(t.preferred_config.valid()
                  ? static_cast<std::int64_t>(t.preferred_config.value())
                  : std::int64_t{-1});
    csv.Field(static_cast<std::int64_t>(t.needed_area));
    csv.Field(static_cast<std::int64_t>(t.required_time));
    csv.Field(static_cast<std::int64_t>(t.data_size));
    csv.EndRow();
  }
}

Workload ReadTrace(std::istream& in) {
  const CsvTable table = CsvRead(in);
  for (const char* column : kColumns) {
    if (table.ColumnIndex(column) == CsvTable::npos) {
      throw std::runtime_error(
          Format("trace header missing column '{}'", column));
    }
  }
  const std::size_t c_create = table.ColumnIndex(kColumns[0]);
  const std::size_t c_pref = table.ColumnIndex(kColumns[1]);
  const std::size_t c_area = table.ColumnIndex(kColumns[2]);
  const std::size_t c_time = table.ColumnIndex(kColumns[3]);
  const std::size_t c_data = table.ColumnIndex(kColumns[4]);

  Workload workload;
  workload.reserve(table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    const std::size_t line = i + 2;  // header is line 1
    if (row.size() != table.header.size()) {
      throw std::runtime_error(
          Format("trace line {}: expected {} cells, got {}", line,
                 table.header.size(), row.size()));
    }
    GeneratedTask t;
    t.create_time = ParseField(row[c_create], line, kColumns[0]);
    const std::int64_t pref = ParseField(row[c_pref], line, kColumns[1]);
    if (pref >= 0) {
      t.preferred_config = ConfigId{static_cast<std::uint32_t>(pref)};
    }
    t.needed_area = ParseField(row[c_area], line, kColumns[2]);
    t.required_time = ParseField(row[c_time], line, kColumns[3]);
    t.data_size = ParseField(row[c_data], line, kColumns[4]);
    workload.push_back(t);
  }
  const auto violations = ValidateWorkload(workload);
  if (!violations.empty()) {
    throw std::runtime_error(Format("invalid trace: {}", violations.front()));
  }
  return workload;
}

void WriteTraceFile(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error(Format("cannot open '{}' for write", path));
  WriteTrace(out, workload);
}

Workload ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(Format("cannot open '{}' for read", path));
  return ReadTrace(in);
}

}  // namespace dreamsim::workload
