#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::workload {

Tick DrawArrivalGap(const TaskGenParams& p, Rng& rng) {
  switch (p.arrivals) {
    case ArrivalProcess::kUniform:
      return rng.uniform_int(p.min_interval, p.max_interval);
    case ArrivalProcess::kPoisson: {
      const double mean =
          0.5 * static_cast<double>(p.min_interval + p.max_interval);
      const double gap = rng.exponential(1.0 / std::max(1.0, mean));
      return std::max<Tick>(1, static_cast<Tick>(std::llround(gap)));
    }
    case ArrivalProcess::kConstant:
      return p.max_interval;
  }
  return 1;
}

Workload GenerateWorkload(const TaskGenParams& params,
                          const resource::ConfigCatalogue& configs, Rng& rng) {
  if (params.total_tasks < 0) {
    throw std::invalid_argument("total_tasks must be non-negative");
  }
  if (params.min_interval < 0 || params.min_interval > params.max_interval) {
    throw std::invalid_argument("invalid arrival interval range");
  }
  if (params.min_required_time <= 0 ||
      params.min_required_time > params.max_required_time) {
    throw std::invalid_argument("invalid required-time range");
  }
  if (params.closest_match_fraction < 0.0 ||
      params.closest_match_fraction > 1.0) {
    throw std::invalid_argument("closest_match_fraction must be in [0,1]");
  }
  if (configs.empty() && params.closest_match_fraction < 1.0) {
    throw std::invalid_argument(
        "known-C_pref tasks require a non-empty configuration catalogue");
  }

  Workload workload;
  workload.reserve(static_cast<std::size_t>(params.total_tasks));
  Tick now = 0;
  for (int i = 0; i < params.total_tasks; ++i) {
    now += DrawArrivalGap(params, rng);
    GeneratedTask t;
    t.create_time = now;
    t.required_time =
        rng.uniform_int(params.min_required_time, params.max_required_time);
    if (params.max_data_size > 0) {
      t.data_size = rng.uniform_int(params.min_data_size, params.max_data_size);
    }
    const bool unknown_pref =
        rng.uniform() < params.closest_match_fraction;
    if (unknown_pref) {
      t.preferred_config = ConfigId::invalid();
      t.needed_area =
          rng.uniform_int(params.unknown_min_area, params.unknown_max_area);
    } else {
      const auto index = static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(configs.size()) - 1));
      const resource::Configuration& c = configs.Get(ConfigId{index});
      t.preferred_config = c.id;
      t.needed_area = c.required_area;
    }
    workload.push_back(t);
  }
  return workload;
}

std::vector<std::string> ValidateWorkload(const Workload& workload) {
  std::vector<std::string> violations;
  Tick last = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const GeneratedTask& t = workload[i];
    if (t.create_time < last) {
      violations.push_back(
          Format("task {}: create_time decreases ({} < {})", i,
                 t.create_time, last));
    }
    last = t.create_time;
    if (t.required_time <= 0) {
      violations.push_back(Format("task {}: non-positive required_time", i));
    }
    if (t.needed_area <= 0) {
      violations.push_back(Format("task {}: non-positive needed_area", i));
    }
    if (t.data_size < 0) {
      violations.push_back(Format("task {}: negative data_size", i));
    }
  }
  return violations;
}

}  // namespace dreamsim::workload
