// Workload traces ("real workloads" input path, Sec. III / future work).
//
// The paper's evaluation uses only synthetic tasks but the input subsystem
// "can also support real workloads". This module defines a plain CSV trace
// format so externally recorded workloads replay through exactly the same
// scheduling path as synthetic ones:
//
//   create_time,preferred_config,needed_area,required_time,data_size
//
// `preferred_config` of -1 encodes the unknown-C_pref case.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/generator.hpp"

namespace dreamsim::workload {

/// Writes a workload as a trace document.
void WriteTrace(std::ostream& out, const Workload& workload);

/// Parses a trace document. Throws std::runtime_error with a line-numbered
/// message on malformed input; validates ordering and ranges like
/// ValidateWorkload().
[[nodiscard]] Workload ReadTrace(std::istream& in);

/// Convenience file-path wrappers.
void WriteTraceFile(const std::string& path, const Workload& workload);
[[nodiscard]] Workload ReadTraceFile(const std::string& path);

}  // namespace dreamsim::workload
