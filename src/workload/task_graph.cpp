#include "workload/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::workload {

VertexId TaskGraph::AddVertex(GeneratedTask task) {
  const auto id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(GraphVertex{std::move(task), {}, {}});
  return id;
}

void TaskGraph::AddEdge(VertexId from, VertexId to) {
  if (from >= vertices_.size() || to >= vertices_.size()) {
    throw std::out_of_range("TaskGraph::AddEdge: vertex out of range");
  }
  if (from == to) {
    throw std::invalid_argument("TaskGraph::AddEdge: self edge");
  }
  vertices_[from].successors.push_back(to);
  vertices_[to].predecessors.push_back(from);
}

const GraphVertex& TaskGraph::vertex(VertexId v) const {
  if (v >= vertices_.size()) throw std::out_of_range("unknown vertex");
  return vertices_[v];
}

std::vector<VertexId> TaskGraph::Roots() const {
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].predecessors.empty()) roots.push_back(v);
  }
  return roots;
}

std::vector<VertexId> TaskGraph::TopologicalOrder() const {
  std::vector<std::size_t> in_degree(vertices_.size());
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    in_degree[v] = vertices_[v].predecessors.size();
  }
  std::deque<VertexId> ready;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(vertices_.size());
  while (!ready.empty()) {
    const VertexId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const VertexId s : vertices_[v].successors) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != vertices_.size()) {
    throw std::runtime_error("TaskGraph contains a cycle");
  }
  return order;
}

bool TaskGraph::IsAcyclic() const {
  try {
    (void)TopologicalOrder();
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

std::size_t TaskGraph::CriticalPathLength() const {
  const auto order = TopologicalOrder();
  std::vector<std::size_t> depth(vertices_.size(), 1);
  std::size_t longest = vertices_.empty() ? 0 : 1;
  for (const VertexId v : order) {
    for (const VertexId s : vertices_[v].successors) {
      depth[s] = std::max(depth[s], depth[v] + 1);
      longest = std::max(longest, depth[s]);
    }
  }
  return longest;
}

std::vector<std::string> TaskGraph::Validate() const {
  std::vector<std::string> violations;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const GraphVertex& gv = vertices_[v];
    if (gv.task.required_time <= 0) {
      violations.push_back(Format("vertex {}: non-positive required_time", v));
    }
    if (gv.task.needed_area <= 0) {
      violations.push_back(Format("vertex {}: non-positive needed_area", v));
    }
    for (const VertexId p : gv.predecessors) {
      const auto& succ = vertices_[p].successors;
      if (std::find(succ.begin(), succ.end(), v) == succ.end()) {
        violations.push_back(
            Format("vertex {}: predecessor {} lacks back edge", v, p));
      }
    }
  }
  if (!IsAcyclic()) violations.emplace_back("graph has a cycle");
  return violations;
}

std::vector<double> UpwardRanks(const TaskGraph& graph) {
  const auto order = graph.TopologicalOrder();  // throws on cycles
  std::vector<double> ranks(graph.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    double best_successor = 0.0;
    for (const VertexId s : graph.vertex(v).successors) {
      best_successor = std::max(best_successor, ranks[s]);
    }
    ranks[v] =
        static_cast<double>(graph.vertex(v).task.required_time) +
        best_successor;
  }
  return ranks;
}

TaskGraph GenerateLayeredGraph(const GraphGenParams& params,
                               const resource::ConfigCatalogue& configs,
                               Rng& rng) {
  if (params.layers <= 0 || params.width <= 0) {
    throw std::invalid_argument("graph layers and width must be positive");
  }
  // Draw payloads with the synthetic generator, then arrange them in layers.
  TaskGenParams task_params = params.task_params;
  task_params.total_tasks = params.layers * params.width;
  const Workload payloads = GenerateWorkload(task_params, configs, rng);

  TaskGraph graph;
  for (const GeneratedTask& t : payloads) {
    GeneratedTask copy = t;
    copy.create_time = 0;  // release is precedence-driven
    (void)graph.AddVertex(copy);
  }
  const auto vertex_at = [&](int layer, int slot) {
    return static_cast<VertexId>(layer * params.width + slot);
  };
  for (int layer = 1; layer < params.layers; ++layer) {
    for (int slot = 0; slot < params.width; ++slot) {
      const VertexId v = vertex_at(layer, slot);
      bool has_pred = false;
      for (int prev = 0; prev < params.width; ++prev) {
        if (rng.uniform() < params.edge_density) {
          graph.AddEdge(vertex_at(layer - 1, prev), v);
          has_pred = true;
        }
      }
      if (!has_pred) {
        // Guarantee the layering: attach to a random vertex one layer up.
        const auto prev = static_cast<int>(
            rng.uniform_int(0, params.width - 1));
        graph.AddEdge(vertex_at(layer - 1, prev), v);
      }
    }
  }
  return graph;
}

}  // namespace dreamsim::workload
