#include "workload/task_classes.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::workload {
namespace {

// Per-class generation result before the merge (head indices are local).
struct ClassStream {
  Workload arrivals;
  std::vector<TaskChain> chains;
};

std::uint64_t ClassSeed(std::uint64_t base_seed, std::size_t index,
                        const TaskClassParams& p) {
  if (p.seed != 0) {
    return DeriveSeed(DeriveSeed(base_seed, 0x7C1A55E5u), p.seed);
  }
  // Class 0 consumes the run's workload stream itself so a lone plain class
  // reproduces the single-stream generator bit for bit.
  if (index == 0) return base_seed;
  return DeriveSeed(base_seed, 0x7C1A55E5u + std::uint64_t{index});
}

/// One Eq. 3 tuple, mirroring the draw order of GenerateWorkload()
/// (required time, data size, closest-match split) plus the class
/// extensions (priority).
GeneratedTask DrawTask(const TaskClassParams& p,
                       const resource::ConfigCatalogue& configs, Rng& rng) {
  GeneratedTask t;
  t.required_time =
      rng.uniform_int(p.base.min_required_time, p.base.max_required_time);
  if (p.base.max_data_size > 0) {
    t.data_size = rng.uniform_int(p.base.min_data_size, p.base.max_data_size);
  }
  const bool unknown_pref = rng.uniform() < p.base.closest_match_fraction;
  if (unknown_pref) {
    t.preferred_config = ConfigId::invalid();
    t.needed_area =
        rng.uniform_int(p.base.unknown_min_area, p.base.unknown_max_area);
  } else {
    const auto index = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(configs.size()) - 1));
    const resource::Configuration& c = configs.Get(ConfigId{index});
    t.preferred_config = c.id;
    t.needed_area = c.required_area;
  }
  if (p.min_priority < p.max_priority) {
    t.priority = rng.uniform_real(p.min_priority, p.max_priority);
  } else {
    t.priority = p.min_priority;
  }
  return t;
}

ClassStream GenerateClass(const TaskClassParams& p,
                          const resource::ConfigCatalogue& configs, Rng& rng) {
  ClassStream stream;
  if (IsPlainSteady(p)) {
    stream.arrivals = GenerateWorkload(p.base, configs, rng);
    return stream;
  }

  const bool count_budget = p.base.total_tasks > 0;
  const bool time_budget = p.end_time > 0;
  const auto count_cap = count_budget
                             ? static_cast<std::size_t>(p.base.total_tasks)
                             : static_cast<std::size_t>(-1);
  if (count_budget) {
    stream.arrivals.reserve(static_cast<std::size_t>(p.base.total_tasks));
  }

  Tick now = p.start_time;
  // Emits one arrival at `now`; false once a budget is exhausted.
  const auto emit = [&](Tick at) {
    if (stream.arrivals.size() >= count_cap) return false;
    if (time_budget && at > p.end_time) return false;
    GeneratedTask t = DrawTask(p, configs, rng);
    t.create_time = at;
    const std::size_t index = stream.arrivals.size();
    stream.arrivals.push_back(t);
    if (p.graph_fraction > 0.0 && rng.uniform() < p.graph_fraction) {
      const auto length = static_cast<int>(
          rng.uniform_int(p.min_chain, p.max_chain));
      TaskChain chain;
      chain.head_index = index;
      chain.links.reserve(static_cast<std::size_t>(length - 1));
      for (int l = 1; l < length; ++l) {
        // Successor create_time is assigned at release (predecessor
        // completion); the draw here fixes its Eq. 3 tuple.
        chain.links.push_back(DrawTask(p, configs, rng));
      }
      stream.chains.push_back(std::move(chain));
    }
    return stream.arrivals.size() < count_cap;
  };

  if (p.shape == ArrivalShape::kBursty) {
    for (;;) {
      now += rng.uniform_int(p.min_burst_gap, p.max_burst_gap);
      const auto burst = static_cast<int>(
          rng.uniform_int(p.min_burst, p.max_burst));
      bool more = true;
      for (int b = 0; b < burst && more; ++b) {
        if (b > 0) now += DrawArrivalGap(p.base, rng);
        if (time_budget && now > p.end_time) return stream;
        more = emit(now);
      }
      if (!more) return stream;
    }
  }

  // kSteady with a window/offset, and kWindowed: one gap-driven stream.
  for (;;) {
    now += DrawArrivalGap(p.base, rng);
    if (!emit(now)) return stream;
  }
}

}  // namespace

std::string_view ToString(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kSteady: return "steady";
    case ArrivalShape::kBursty: return "bursty";
    case ArrivalShape::kWindowed: return "windowed";
  }
  return "?";
}

std::size_t MultiClassWorkload::TotalTasks() const {
  std::size_t total = tasks.size();
  for (const TaskChain& chain : chains) total += chain.links.size();
  return total;
}

bool IsPlainSteady(const TaskClassParams& p) {
  return p.shape == ArrivalShape::kSteady && p.start_time == 0 &&
         p.end_time == 0 && p.graph_fraction == 0.0 &&
         p.min_priority == 0.0 && p.max_priority == 0.0;
}

std::vector<std::string> ValidateTaskClass(const TaskClassParams& p) {
  std::vector<std::string> violations;
  const auto bad = [&](std::string message) {
    violations.push_back(Format("task class '{}': {}", p.name, message));
  };
  const bool count_budget = p.base.total_tasks > 0;
  const bool time_budget = p.end_time > 0;
  if (!count_budget && !time_budget) {
    bad("needs a budget (a positive count or end time)");
  }
  if (p.base.total_tasks < 0) bad("negative count");
  if (p.start_time < 0) bad("negative start time");
  if (time_budget && p.end_time <= p.start_time) {
    bad(Format("end time {} must exceed start time {}", p.end_time,
               p.start_time));
  }
  if (p.shape == ArrivalShape::kWindowed && !time_budget) {
    bad("windowed arrivals need an end time");
  }
  if (p.base.min_interval < 0 || p.base.min_interval > p.base.max_interval) {
    bad("invalid arrival interval range");
  }
  if (p.base.min_required_time <= 0 ||
      p.base.min_required_time > p.base.max_required_time) {
    bad("invalid required-time range");
  }
  if (p.base.closest_match_fraction < 0.0 ||
      p.base.closest_match_fraction > 1.0) {
    bad("closest-match fraction must be in [0,1]");
  }
  if (p.shape == ArrivalShape::kBursty) {
    if (p.min_burst < 1 || p.min_burst > p.max_burst) {
      bad("invalid burst size range (need 1 <= min <= max)");
    }
    if (p.min_burst_gap < 0 || p.min_burst_gap > p.max_burst_gap) {
      bad("invalid burst gap range");
    }
    if (!time_budget && p.min_burst_gap == 0 && p.max_burst_gap == 0 &&
        p.base.max_interval == 0 && !count_budget) {
      bad("bursty class can never terminate");
    }
  }
  if (p.graph_fraction < 0.0 || p.graph_fraction > 1.0) {
    bad("graph fraction must be in [0,1]");
  }
  if (p.graph_fraction > 0.0 &&
      (p.min_chain < 2 || p.min_chain > p.max_chain)) {
    bad("invalid chain length range (need 2 <= min <= max)");
  }
  if (p.min_priority > p.max_priority) bad("invalid priority range");
  // A time-budgeted stream whose every gap can be zero would never pass
  // end_time: require some forward progress.
  if (time_budget && !count_budget && p.base.max_interval <= 0 &&
      p.base.arrivals != ArrivalProcess::kPoisson) {
    bad("time-budgeted class needs a positive arrival interval");
  }
  return violations;
}

MultiClassWorkload GenerateMultiClassWorkload(
    std::span<const TaskClassParams> classes,
    const resource::ConfigCatalogue& configs, std::uint64_t base_seed) {
  if (classes.empty()) {
    throw std::invalid_argument("need at least one task class");
  }
  for (const TaskClassParams& p : classes) {
    const auto violations = ValidateTaskClass(p);
    if (!violations.empty()) {
      throw std::invalid_argument(violations.front());
    }
  }

  std::vector<ClassStream> streams;
  streams.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    Rng rng(ClassSeed(base_seed, c, classes[c]));
    streams.push_back(GenerateClass(classes[c], configs, rng));
  }

  MultiClassWorkload merged;
  std::size_t total = 0;
  for (const ClassStream& s : streams) total += s.arrivals.size();
  merged.tasks.reserve(total);
  merged.class_of.reserve(total);

  // K-way merge on (create_time, class index, per-class order). Streams are
  // individually non-decreasing, so one cursor per class suffices.
  std::vector<std::size_t> cursor(streams.size(), 0);
  std::vector<std::vector<std::size_t>> global_index(streams.size());
  for (std::size_t c = 0; c < streams.size(); ++c) {
    global_index[c].resize(streams[c].arrivals.size());
  }
  for (std::size_t emitted = 0; emitted < total; ++emitted) {
    std::size_t best = streams.size();
    for (std::size_t c = 0; c < streams.size(); ++c) {
      if (cursor[c] >= streams[c].arrivals.size()) continue;
      if (best == streams.size() ||
          streams[c].arrivals[cursor[c]].create_time <
              streams[best].arrivals[cursor[best]].create_time) {
        best = c;
      }
    }
    global_index[best][cursor[best]] = merged.tasks.size();
    merged.tasks.push_back(streams[best].arrivals[cursor[best]]);
    merged.class_of.push_back(static_cast<std::uint32_t>(best));
    ++cursor[best];
  }

  for (std::size_t c = 0; c < streams.size(); ++c) {
    for (TaskChain& chain : streams[c].chains) {
      chain.head_index = global_index[c][chain.head_index];
      merged.chains.push_back(std::move(chain));
    }
  }
  std::sort(merged.chains.begin(), merged.chains.end(),
            [](const TaskChain& a, const TaskChain& b) {
              return a.head_index < b.head_index;
            });
  return merged;
}

}  // namespace dreamsim::workload
