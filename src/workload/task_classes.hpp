// Multi-class workload multiplexing (scenario `task class:` blocks).
//
// A scenario describes several concurrent task classes — each with its own
// arrival process (steady / bursty / windowed), a task-count or end-time
// budget, a graph-vs-independent mix, and an independent seed stream — and
// the generator merges the per-class arrival streams deterministically into
// one event timeline. A single plain steady class delegates to
// GenerateWorkload() byte for byte, so scenario-driven runs of the paper's
// Table II workload are bit-identical to the flag-driven path (the
// differential contract pinned by tests/test_scenario_diff.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "workload/generator.hpp"

namespace dreamsim::workload {

/// Shape of a task class's arrival process.
enum class ArrivalShape : std::uint8_t {
  /// One continuous gap-driven stream (the Table II process): gaps drawn
  /// from `base.arrivals` over [min_interval, max_interval], budgeted by
  /// task count (an end-time budget may cap it early).
  kSteady,
  /// Arrival bursts: a burst of [min_burst, max_burst] tasks separated by
  /// intra-burst `base` gaps, bursts separated by [min_burst_gap,
  /// max_burst_gap] ticks.
  kBursty,
  /// Steady stream confined to the [start_time, end_time] window; the end
  /// time is the primary budget (a task count may cap it early).
  kWindowed,
};

[[nodiscard]] std::string_view ToString(ArrivalShape shape);

/// One scenario task class: the Table II generation parameters plus the
/// arrival-shape, window, priority, chain, and seed extensions.
struct TaskClassParams {
  /// Diagnostic label ("bursty-web"); never affects generation.
  std::string name;
  /// Count budget (total_tasks), gap process, and per-task draw ranges.
  TaskGenParams base;
  ArrivalShape shape = ArrivalShape::kSteady;
  /// First arrival happens strictly after this tick.
  Tick start_time = 0;
  /// When > 0, arrivals stop once the clock passes this tick (required for
  /// kWindowed; optional early cap otherwise).
  Tick end_time = 0;
  // kBursty only: tasks per burst and inter-burst gap.
  int min_burst = 1;
  int max_burst = 1;
  Tick min_burst_gap = 0;
  Tick max_burst_gap = 0;
  /// Per-task scheduling priority, uniform in [min, max] (drawn only when
  /// the range is non-degenerate; consulted under priority_scheduling).
  double min_priority = 0.0;
  double max_priority = 0.0;
  /// Graph-vs-independent mix: fraction of arrivals that head a dependency
  /// chain of [min_chain, max_chain] total links; successors are submitted
  /// when their predecessor completes (Simulator chain session).
  double graph_fraction = 0.0;
  int min_chain = 2;
  int max_chain = 2;
  /// Explicit per-class seed stream; 0 derives one from the class index
  /// (class 0 then consumes the run's workload stream exactly like the
  /// single-stream generator — the bit-identity contract).
  std::uint64_t seed = 0;
};

/// One dependency chain: `links[k]` is released when the previous link
/// completes; `head_index` (into MultiClassWorkload::tasks) is link 0.
struct TaskChain {
  std::size_t head_index = 0;
  std::vector<GeneratedTask> links;
};

/// The merged multi-class workload: independent tasks and chain heads in
/// one non-decreasing create_time timeline, plus the chain continuations
/// the run releases on completions.
struct MultiClassWorkload {
  Workload tasks;
  /// Class index per entry of `tasks` (diagnostics and tests).
  std::vector<std::uint32_t> class_of;
  std::vector<TaskChain> chains;

  /// Tasks the run will submit in total (timeline + chain links).
  [[nodiscard]] std::size_t TotalTasks() const;
};

/// True when `params` is the plain single-stream shape (steady, no window,
/// no chains, no priority spread) whose generation delegates verbatim to
/// GenerateWorkload().
[[nodiscard]] bool IsPlainSteady(const TaskClassParams& params);

/// Validates one class; returns one description per violation.
[[nodiscard]] std::vector<std::string> ValidateTaskClass(
    const TaskClassParams& params);

/// Generates and merges every class against the catalogue. Class c draws
/// from its own Rng: class 0 without an explicit seed consumes
/// Rng(base_seed) (bit-identical to the single-stream path when it is the
/// only class and IsPlainSteady), every other class an independent
/// DeriveSeed sub-stream. Same-tick arrivals merge lowest class index
/// first, then per-class generation order. Throws std::invalid_argument on
/// any ValidateTaskClass violation or an empty class list.
[[nodiscard]] MultiClassWorkload GenerateMultiClassWorkload(
    std::span<const TaskClassParams> classes,
    const resource::ConfigCatalogue& configs, std::uint64_t base_seed);

}  // namespace dreamsim::workload
