#include "workload/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::workload {
namespace {

/// The 18 standard SWF fields, in order.
enum SwfField : std::size_t {
  kJobId = 0,
  kSubmitTime = 1,
  kWaitTime = 2,
  kRunTime = 3,
  kAllocatedProcs = 4,
  kAvgCpuTime = 5,
  kUsedMemory = 6,
  kRequestedProcs = 7,
  kRequestedTime = 8,
  kRequestedMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
  kFieldCount = 18,
};

}  // namespace

std::vector<SwfJob> ParseSwf(std::istream& in) {
  std::vector<SwfJob> jobs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip leading whitespace; skip blanks and `;` header comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == ';') continue;

    std::istringstream fields(line);
    std::int64_t values[kFieldCount];
    std::size_t parsed = 0;
    while (parsed < kFieldCount && (fields >> values[parsed])) ++parsed;
    if (parsed < kFieldCount) {
      throw std::runtime_error(
          Format("SWF line {}: expected {} fields, got {}", line_number,
                 static_cast<std::size_t>(kFieldCount), parsed));
    }

    SwfJob job;
    job.job_id = values[kJobId];
    job.submit_time = values[kSubmitTime];
    job.wait_time = values[kWaitTime];
    job.run_time = values[kRunTime];
    job.allocated_procs = values[kAllocatedProcs];
    job.used_memory_kb = values[kUsedMemory];
    job.requested_procs = values[kRequestedProcs];
    job.requested_time = values[kRequestedTime];
    job.status = values[kStatus];
    job.line = line_number;
    jobs.push_back(job);
  }
  return jobs;
}

SwfConversion ConvertSwf(const std::vector<SwfJob>& jobs,
                         const SwfMapping& mapping) {
  if (mapping.ticks_per_second <= 0.0 || mapping.area_per_processor <= 0 ||
      mapping.min_area <= 0 || mapping.min_area > mapping.max_area) {
    throw std::invalid_argument("invalid SWF mapping parameters");
  }
  SwfConversion result;
  result.jobs_parsed = jobs.size();
  for (const SwfJob& job : jobs) {
    // Prefer measured runtime; fall back to the user's request.
    const std::int64_t seconds =
        job.run_time > 0 ? job.run_time : job.requested_time;
    const std::int64_t procs =
        job.requested_procs > 0 ? job.requested_procs : job.allocated_procs;
    if (seconds <= 0 || procs <= 0 || job.submit_time < 0) {
      ++result.jobs_skipped;
      continue;
    }
    GeneratedTask t;
    t.create_time = static_cast<Tick>(std::llround(
        static_cast<double>(job.submit_time) * mapping.ticks_per_second));
    t.required_time = std::max<Tick>(
        1, static_cast<Tick>(std::llround(static_cast<double>(seconds) *
                                          mapping.ticks_per_second)));
    t.preferred_config = ConfigId::invalid();  // closest match by area
    t.needed_area = std::clamp<Area>(procs * mapping.area_per_processor,
                                     mapping.min_area, mapping.max_area);
    t.data_size = job.used_memory_kb > 0 ? job.used_memory_kb * 1024 : 0;
    result.workload.push_back(t);
  }
  std::stable_sort(result.workload.begin(), result.workload.end(),
                   [](const GeneratedTask& a, const GeneratedTask& b) {
                     return a.create_time < b.create_time;
                   });
  return result;
}

SwfConversion ReadSwfFile(const std::string& path, const SwfMapping& mapping) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(Format("cannot open '{}' for read", path));
  return ConvertSwf(ParseSwf(in), mapping);
}

void WriteSwf(std::ostream& out, const std::vector<SwfJob>& jobs,
              const std::string& header_note) {
  out << "; SWF trace written by DReAMSim\n";
  if (!header_note.empty()) out << "; " << header_note << "\n";
  out << "; Fields: job submit wait run procs avgcpu mem reqprocs reqtime "
         "reqmem status uid gid exe queue partition prejob think\n";
  for (const SwfJob& job : jobs) {
    out << job.job_id << ' ' << job.submit_time << ' ' << job.wait_time << ' '
        << job.run_time << ' ' << job.allocated_procs << ' ' << -1 << ' '
        << job.used_memory_kb << ' ' << job.requested_procs << ' '
        << job.requested_time << ' ' << -1 << ' ' << job.status << ' ' << -1
        << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1
        << ' ' << -1 << '\n';
  }
}

}  // namespace dreamsim::workload
