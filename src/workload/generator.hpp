// Synthetic task generation (the input subsystem of Sec. III).
//
// "It generates synthetic tasks which may require a particular processor
// configuration (C_pref) and required estimated time for the execution of
// tasks. ... A user can specify the task arrival rate and arrival
// distribution functions."
//
// Table II drives the defaults: arrival interval uniform in [1, 50] ticks,
// t_required uniform in [100, 100000], and 15% of tasks carry a C_pref that
// is *not* in the catalogue (the closest-match experiments); those tasks are
// generated with an area drawn from the configuration area range instead.
#pragma once

#include <cstdint>
#include <vector>

#include "resource/config.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::workload {

/// How inter-arrival gaps are drawn.
enum class ArrivalProcess : std::uint8_t {
  /// Uniform integer gap in [min_interval, max_interval] (Table II).
  kUniform,
  /// Poisson process: exponential gaps with mean
  /// (min_interval + max_interval) / 2, rounded up to >= 1 tick.
  kPoisson,
  /// Fixed gap of max_interval ticks (deterministic stress workloads).
  kConstant,
};

/// Generation parameters (Table II defaults).
struct TaskGenParams {
  int total_tasks = 1000;
  ArrivalProcess arrivals = ArrivalProcess::kUniform;
  /// "Next task generation interval [1...50]".
  Tick min_interval = 1;
  Tick max_interval = 50;
  /// "Task t_required range [100...100,000]".
  Tick min_required_time = 100;
  Tick max_required_time = 100000;
  /// "C_ClosestMatch percentage 15%": fraction of tasks whose preferred
  /// configuration is absent from the catalogue.
  double closest_match_fraction = 0.15;
  /// Area range used for the absent-C_pref tasks (matches the catalogue's
  /// configuration area range by default).
  Area unknown_min_area = 200;
  Area unknown_max_area = 2000;
  /// Input data volume per task, uniform in [min, max] bytes.
  Bytes min_data_size = 0;
  Bytes max_data_size = 0;
};

/// One generated task before it enters the simulator: creation tick plus
/// the Eq. 3 tuple.
struct GeneratedTask {
  Tick create_time = 0;
  /// Valid id = a catalogue configuration; invalid = the paper's
  /// "C_pref not in configurations list" case.
  ConfigId preferred_config;
  Area needed_area = 0;
  Tick required_time = 0;
  Bytes data_size = 0;
  /// Scheduling priority; only consulted when the simulation runs with
  /// priority_scheduling (the task-graph critical-path extension). Higher
  /// wins; ties fall back to FIFO.
  double priority = 0.0;
};

/// A fully materialized workload: tasks ordered by non-decreasing
/// create_time.
using Workload = std::vector<GeneratedTask>;

/// Generates a synthetic workload against a configuration catalogue.
/// Known-C_pref tasks sample a configuration uniformly and inherit its
/// ReqArea; unknown-C_pref tasks draw an area from the unknown range.
[[nodiscard]] Workload GenerateWorkload(const TaskGenParams& params,
                                        const resource::ConfigCatalogue& configs,
                                        Rng& rng);

/// One inter-arrival gap under `params.arrivals` (the draw GenerateWorkload
/// makes between consecutive tasks; exposed for the multi-class generator).
[[nodiscard]] Tick DrawArrivalGap(const TaskGenParams& params, Rng& rng);

/// Sanity checks a workload (ordering, positive times/areas). Returns a
/// description per violation; empty means valid.
[[nodiscard]] std::vector<std::string> ValidateWorkload(const Workload& workload);

}  // namespace dreamsim::workload
