// Task graphs (the paper's future work: "We will implement scheduling
// policies to schedule task graphs on the distributed system with
// reconfigurable nodes").
//
// A TaskGraph is a DAG whose vertices carry the Eq. 3 task tuple and whose
// edges are precedence constraints: a vertex is released only when all of
// its predecessors have completed. The graph session in src/core drives
// release through the same scheduling path as independent tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/generator.hpp"

namespace dreamsim::workload {

/// Dense vertex index within one graph.
using VertexId = std::uint32_t;

/// One vertex: the task payload (create_time is ignored; release is driven
/// by precedence) plus its dependency edges.
struct GraphVertex {
  GeneratedTask task;
  std::vector<VertexId> predecessors;
  std::vector<VertexId> successors;
};

/// A directed acyclic task graph.
class TaskGraph {
 public:
  /// Adds a vertex; returns its id.
  VertexId AddVertex(GeneratedTask task);

  /// Adds the precedence edge from -> to (from must finish first).
  /// Throws on out-of-range ids or self-edges.
  void AddEdge(VertexId from, VertexId to);

  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] const GraphVertex& vertex(VertexId v) const;

  /// Vertices with no predecessors (initially runnable).
  [[nodiscard]] std::vector<VertexId> Roots() const;

  /// Topological order via Kahn's algorithm; throws std::runtime_error if
  /// the graph has a cycle.
  [[nodiscard]] std::vector<VertexId> TopologicalOrder() const;

  /// True when the graph is acyclic.
  [[nodiscard]] bool IsAcyclic() const;

  /// Length (in vertices) of the longest path — a lower bound on sequential
  /// depth.
  [[nodiscard]] std::size_t CriticalPathLength() const;

  /// Structural validation; empty result means consistent.
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  std::vector<GraphVertex> vertices_;
};

/// Parameters for synthetic layered DAG generation.
struct GraphGenParams {
  int layers = 4;
  int width = 8;               // vertices per layer
  double edge_density = 0.35;  // P(edge) between adjacent layers
  TaskGenParams task_params;   // payload ranges (arrival fields unused)
};

/// Generates a layered random DAG: edges only go from layer k to k+1, each
/// drawn with probability edge_density; every non-root vertex is guaranteed
/// at least one predecessor so the layering is meaningful.
[[nodiscard]] TaskGraph GenerateLayeredGraph(
    const GraphGenParams& params, const resource::ConfigCatalogue& configs,
    Rng& rng);

/// HEFT-style upward ranks: rank(v) = t_required(v) + max over successors
/// of rank(successor) (communication costs are folded into the network
/// model, not the rank). The rank of a vertex is the length of the longest
/// execution path from it to an exit — scheduling higher ranks first keeps
/// the critical path moving. Throws on cyclic graphs.
[[nodiscard]] std::vector<double> UpwardRanks(const TaskGraph& graph);

}  // namespace dreamsim::workload
