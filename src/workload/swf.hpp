// Standard Workload Format (SWF) support ("we will test the simulation
// framework with real workloads" — future work, implemented).
//
// SWF is the de-facto trace format of the Parallel Workloads Archive:
// `;`-prefixed header comments followed by one job per line with 18
// whitespace-separated integer fields. This module parses SWF and maps
// jobs onto DReAMSim tasks so archive traces replay through the ordinary
// scheduling path:
//
//   submit time  -> create_time               (scaled by ticks_per_second)
//   run time     -> t_required                (fallback: requested time)
//   #processors  -> needed_area = procs * area_per_processor
//   used memory  -> data_size (KB -> bytes)
//   C_pref       -> absent (closest match by area: real cluster jobs do
//                   not name FPGA configurations)
//
// Jobs with non-positive runtimes or processor counts (cancelled /
// malformed entries) are skipped and counted.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace dreamsim::workload {

/// One parsed SWF record (the subset of the 18 fields the mapping uses,
/// plus the raw line number for diagnostics).
struct SwfJob {
  std::int64_t job_id = 0;
  std::int64_t submit_time = 0;   // seconds since trace start
  std::int64_t wait_time = -1;    // seconds (unused by the mapping)
  std::int64_t run_time = -1;     // seconds
  std::int64_t allocated_procs = -1;
  std::int64_t used_memory_kb = -1;
  std::int64_t requested_procs = -1;
  std::int64_t requested_time = -1;  // seconds
  std::int64_t status = 1;
  std::size_t line = 0;
};

/// Mapping knobs from SWF units to simulator units.
struct SwfMapping {
  /// Simulated ticks per SWF second (arrival and runtime scaling).
  double ticks_per_second = 1.0;
  /// Area units per requested processor (the area proxy).
  Area area_per_processor = 100;
  /// Clamp for the resulting needed_area (jobs asking for more area than
  /// any configuration could ever supply would always be discarded).
  Area max_area = 2000;
  Area min_area = 100;
};

/// Result of a conversion: the workload plus skip statistics.
struct SwfConversion {
  Workload workload;
  std::size_t jobs_parsed = 0;
  std::size_t jobs_skipped = 0;
};

/// Parses SWF text into job records. Throws std::runtime_error with a
/// line-numbered message on malformed data lines; `;` comments and blank
/// lines are ignored.
[[nodiscard]] std::vector<SwfJob> ParseSwf(std::istream& in);

/// Maps SWF jobs onto a DReAMSim workload (sorted by create_time).
[[nodiscard]] SwfConversion ConvertSwf(const std::vector<SwfJob>& jobs,
                                       const SwfMapping& mapping);

/// Convenience: parse + convert a file.
[[nodiscard]] SwfConversion ReadSwfFile(const std::string& path,
                                        const SwfMapping& mapping);

/// Writes jobs in SWF form (18 fields, unknown fields as -1) with a small
/// header — used for round-trip tests and to fabricate demo traces.
void WriteSwf(std::ostream& out, const std::vector<SwfJob>& jobs,
              const std::string& header_note = "");

}  // namespace dreamsim::workload
