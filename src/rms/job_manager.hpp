// Job submission manager (information subsystem, Sec. III).
//
// "The job submission manager simulates the task arrivals corresponding to
// a user-defined task arrival rate and distribution function." It converts
// a materialized Workload (synthetic or trace) into TaskStore entries and
// kernel arrival events, invoking the RMS-supplied handler for each arrival.
#pragma once

#include <functional>

#include "resource/task.hpp"
#include "sim/kernel.hpp"
#include "workload/generator.hpp"

namespace dreamsim::rms {

/// Feeds a workload into the simulation.
class JobSubmissionManager {
 public:
  /// Called at each task's create_time, after the Task exists in the store
  /// with state kCreated and create_time set.
  using ArrivalHandler = std::function<void(TaskId)>;

  JobSubmissionManager(sim::Kernel& kernel, resource::TaskStore& tasks)
      : kernel_(kernel), tasks_(tasks) {}

  /// Registers every workload entry as a future arrival. The handler is
  /// invoked from kernel events in create_time order (ties in submission
  /// order). Returns the number of arrivals scheduled.
  std::size_t Submit(const workload::Workload& workload,
                     ArrivalHandler handler);

  /// Submits one task to arrive at `at` (>= kernel.now()).
  TaskId SubmitOne(const workload::GeneratedTask& task, Tick at,
                   ArrivalHandler handler);

  [[nodiscard]] std::size_t submitted() const { return submitted_; }

 private:
  sim::Kernel& kernel_;
  resource::TaskStore& tasks_;
  std::size_t submitted_ = 0;
};

}  // namespace dreamsim::rms
