// Load-balancing manager (future work in the paper: "we will implement
// load balancing manager to perform a better load distribution among all
// the nodes" — implemented here as an extension).
//
// Two roles:
//   * measurement — imbalance metrics over the running-task distribution
//     (coefficient of variation, Jain's fairness index);
//   * advice — least-loaded node selection among feasible candidates, used
//     by sched::Heuristic::kLeastLoaded and available to custom policies.
#pragma once

#include <optional>
#include <span>

#include "resource/store.hpp"
#include "util/types.hpp"

namespace dreamsim::rms {

/// Instantaneous load-distribution metrics.
struct LoadMetrics {
  double mean_running_tasks = 0.0;
  double stddev_running_tasks = 0.0;
  /// Coefficient of variation (stddev / mean); 0 for a perfectly even or
  /// empty system.
  double imbalance = 0.0;
  /// Jain's fairness index in (0, 1]; 1 means perfectly even.
  double fairness = 1.0;
};

class LoadBalancer {
 public:
  explicit LoadBalancer(const resource::ResourceStore& store)
      : store_(store) {}

  /// Computes load metrics over all nodes.
  [[nodiscard]] LoadMetrics Measure() const;

  /// Among `candidates`, the node with the fewest running tasks (ties by
  /// larger available area, then lower id). Empty span => nullopt.
  [[nodiscard]] std::optional<NodeId> PickLeastLoaded(
      std::span<const NodeId> candidates) const;

 private:
  const resource::ResourceStore& store_;
};

}  // namespace dreamsim::rms
