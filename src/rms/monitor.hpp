// Monitoring module (core subsystem, Sec. III): "The current states of
// different nodes can be checked by the monitoring module."
//
// The simulator notifies the monitor on every state-changing event; the
// monitor maintains time-weighted occupancy signals and peak counters that
// feed the report's utilization section. Sampling is event-driven — no
// per-tick polling — costing one O(nodes) snapshot per observed event; the
// simulator exposes a switch to disable it for large sweeps.
#pragma once

#include <cstdint>

#include "rms/resource_info.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dreamsim::rms {

/// Utilization summary produced at the end of a run.
struct UtilizationReport {
  double avg_running_tasks = 0.0;   // time-weighted
  double avg_busy_nodes = 0.0;      // time-weighted
  double avg_wasted_area = 0.0;     // time-weighted Eq. 6 signal
  std::size_t peak_running_tasks = 0;
  std::size_t peak_suspended_tasks = 0;
  Tick observed_until = 0;
};

/// Event-driven system monitor.
class MonitoringModule {
 public:
  explicit MonitoringModule(const ResourceInformationManager& info)
      : info_(info) {}

  /// Records the system state at tick `now` (call after each scheduling or
  /// completion event) along with the current suspension-queue depth.
  void Observe(Tick now, std::size_t suspended_tasks);

  /// Same, from a snapshot the caller already took (the simulator shares
  /// one Snapshot() between the monitor and the state observer).
  void ObserveSnapshot(const SystemSnapshot& snapshot,
                       std::size_t suspended_tasks);

  /// Finalizes the signals at tick `now` and returns the summary.
  [[nodiscard]] UtilizationReport Finish(Tick now) const;

  [[nodiscard]] std::size_t observations() const { return observations_; }

 private:
  const ResourceInformationManager& info_;
  TimeWeightedValue running_tasks_;
  TimeWeightedValue busy_nodes_;
  TimeWeightedValue wasted_area_;
  std::size_t peak_running_ = 0;
  std::size_t peak_suspended_ = 0;
  std::size_t observations_ = 0;
};

}  // namespace dreamsim::rms
