// Per-node and per-configuration detail reports (monitoring-module
// companions to the aggregate Table I report): one CSV row per node or per
// configuration, for post-run analysis of utilization skew, family load,
// and configuration popularity.
#pragma once

#include <iosfwd>
#include <span>

#include "resource/store.hpp"

namespace dreamsim::rms {

/// Writes one CSV row per node:
///   node,family,total_area,available_area,config_count,reconfig_count,
///   network_delay,contiguous,fragmentation
void WriteNodeCsv(std::ostream& out, const resource::ResourceStore& store);

/// Writes one CSV row per configuration:
///   config,family,required_area,config_time,bitstream_size,placements
/// `placements_per_config` is indexed by ConfigId (shorter spans read as
/// zero; e.g. from MetricsReport::placements_per_config).
void WriteConfigCsv(std::ostream& out, const resource::ResourceStore& store,
                    std::span<const std::uint64_t> placements_per_config);

}  // namespace dreamsim::rms
