#include "rms/resource_info.hpp"

namespace dreamsim::rms {

NodeStaticInfo ResourceInformationManager::StaticInfo(NodeId id) const {
  const resource::Node& n = store_.node(id);
  return NodeStaticInfo{n.id(), n.total_area(), n.family(), n.caps(),
                        n.network_delay()};
}

NodeDynamicInfo ResourceInformationManager::DynamicInfo(NodeId id) const {
  const resource::Node& n = store_.node(id);
  return NodeDynamicInfo{n.id(),          n.available_area(),
                         n.config_count(), n.running_tasks(),
                         n.busy(),         n.reconfig_count()};
}

std::vector<NodeDynamicInfo> ResourceInformationManager::AllDynamicInfo()
    const {
  std::vector<NodeDynamicInfo> infos;
  infos.reserve(store_.node_count());
  for (const resource::Node& n : store_.nodes()) {
    infos.push_back(DynamicInfo(n.id()));
  }
  return infos;
}

SystemSnapshot ResourceInformationManager::Snapshot(Tick now) const {
  SystemSnapshot s;
  s.at = now;
  s.total_nodes = store_.node_count();
  for (const resource::Node& n : store_.nodes()) {
    s.total_fabric_area += n.total_area();
    if (n.blank()) {
      ++s.blank_nodes;
      continue;
    }
    s.configured_area += n.total_area() - n.available_area();
    s.wasted_area += n.available_area();
    if (n.busy()) {
      ++s.busy_nodes;
      s.running_tasks += n.running_tasks();
    }
  }
  if (s.total_fabric_area > 0) {
    s.area_utilization = static_cast<double>(s.configured_area) /
                         static_cast<double>(s.total_fabric_area);
  }
  return s;
}

}  // namespace dreamsim::rms
