#include "rms/job_manager.hpp"

#include <stdexcept>

namespace dreamsim::rms {

TaskId JobSubmissionManager::SubmitOne(const workload::GeneratedTask& gen,
                                       Tick at, ArrivalHandler handler) {
  resource::Task task;
  task.preferred_config = gen.preferred_config;
  task.needed_area = gen.needed_area;
  task.required_time = gen.required_time;
  task.data_size = gen.data_size;
  task.priority = gen.priority;
  task.create_time = at;
  const TaskId id = tasks_.Create(task);
  kernel_.ScheduleAt(at, sim::EventPriority::kArrival,
                     [handler = std::move(handler), id] { handler(id); });
  ++submitted_;
  return id;
}

std::size_t JobSubmissionManager::Submit(const workload::Workload& workload,
                                         ArrivalHandler handler) {
  if (!handler) throw std::invalid_argument("null arrival handler");
  for (const workload::GeneratedTask& gen : workload) {
    (void)SubmitOne(gen, gen.create_time, handler);
  }
  return workload.size();
}

}  // namespace dreamsim::rms
