// Resource information manager (information subsystem, Sec. III).
//
// "The resource information manager maintains all sorts of information
// about the nodes ... static and dynamic information." The dynamic data
// structures themselves live in resource::ResourceStore; this manager layers
// the query/snapshot surface other modules consume: per-node state reports
// for the monitoring module and aggregate utilization for load balancing.
#pragma once

#include <cstdint>
#include <vector>

#include "resource/store.hpp"
#include "util/types.hpp"

namespace dreamsim::rms {

/// Static node facts (fixed for a simulation).
struct NodeStaticInfo {
  NodeId id;
  Area total_area = 0;
  FamilyId family;
  resource::Caps caps;
  Tick network_delay = 0;
};

/// Dynamic node state ("current set of processor configurations, the state
/// (currently idle or busy), number of currently running tasks, available
/// reconfigurable area").
struct NodeDynamicInfo {
  NodeId id;
  Area available_area = 0;
  std::size_t config_count = 0;
  std::size_t running_tasks = 0;
  bool busy = false;
  std::uint64_t reconfig_count = 0;
};

/// Aggregate system state at one instant.
struct SystemSnapshot {
  Tick at = 0;
  std::size_t total_nodes = 0;
  std::size_t blank_nodes = 0;
  std::size_t busy_nodes = 0;
  std::size_t running_tasks = 0;
  Area total_fabric_area = 0;
  Area configured_area = 0;   // area occupied by live configurations
  Area wasted_area = 0;       // Eq. 6
  double area_utilization = 0.0;  // configured / total fabric
};

/// Read-only query surface over the store.
class ResourceInformationManager {
 public:
  explicit ResourceInformationManager(const resource::ResourceStore& store)
      : store_(store) {}

  [[nodiscard]] NodeStaticInfo StaticInfo(NodeId id) const;
  [[nodiscard]] NodeDynamicInfo DynamicInfo(NodeId id) const;
  [[nodiscard]] std::vector<NodeDynamicInfo> AllDynamicInfo() const;

  /// Aggregates the whole system at tick `now`.
  [[nodiscard]] SystemSnapshot Snapshot(Tick now) const;

  [[nodiscard]] const resource::ResourceStore& store() const { return store_; }

 private:
  const resource::ResourceStore& store_;
};

}  // namespace dreamsim::rms
