#include "rms/monitor.hpp"

#include <algorithm>

namespace dreamsim::rms {

void MonitoringModule::Observe(Tick now, std::size_t suspended_tasks) {
  ObserveSnapshot(info_.Snapshot(now), suspended_tasks);
}

void MonitoringModule::ObserveSnapshot(const SystemSnapshot& snapshot,
                                       std::size_t suspended_tasks) {
  const Tick now = snapshot.at;
  running_tasks_.Set(now, static_cast<double>(snapshot.running_tasks));
  busy_nodes_.Set(now, static_cast<double>(snapshot.busy_nodes));
  wasted_area_.Set(now, static_cast<double>(snapshot.wasted_area));
  peak_running_ = std::max(peak_running_, snapshot.running_tasks);
  peak_suspended_ = std::max(peak_suspended_, suspended_tasks);
  ++observations_;
}

UtilizationReport MonitoringModule::Finish(Tick now) const {
  UtilizationReport report;
  report.avg_running_tasks = running_tasks_.AverageUntil(now);
  report.avg_busy_nodes = busy_nodes_.AverageUntil(now);
  report.avg_wasted_area = wasted_area_.AverageUntil(now);
  report.peak_running_tasks = peak_running_;
  report.peak_suspended_tasks = peak_suspended_;
  report.observed_until = now;
  return report;
}

}  // namespace dreamsim::rms
