#include "rms/detail_report.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace dreamsim::rms {

void WriteNodeCsv(std::ostream& out, const resource::ResourceStore& store) {
  CsvWriter csv(out, {"node", "family", "total_area", "available_area",
                      "config_count", "reconfig_count", "network_delay",
                      "contiguous", "fragmentation"});
  for (const resource::Node& n : store.nodes()) {
    csv.BeginRow();
    csv.Field(static_cast<std::uint64_t>(n.id().value()));
    csv.Field(static_cast<std::uint64_t>(n.family().value()));
    csv.Field(static_cast<std::int64_t>(n.total_area()));
    csv.Field(static_cast<std::int64_t>(n.available_area()));
    csv.Field(static_cast<std::uint64_t>(n.config_count()));
    csv.Field(n.reconfig_count());
    csv.Field(static_cast<std::int64_t>(n.network_delay()));
    csv.Field(n.contiguous() ? "1" : "0");
    csv.Field(n.Fragmentation());
    csv.EndRow();
  }
}

void WriteConfigCsv(std::ostream& out, const resource::ResourceStore& store,
                    std::span<const std::uint64_t> placements_per_config) {
  CsvWriter csv(out, {"config", "family", "required_area", "config_time",
                      "bitstream_size", "placements"});
  for (const resource::Configuration& c : store.configs().all()) {
    csv.BeginRow();
    csv.Field(static_cast<std::uint64_t>(c.id.value()));
    csv.Field(c.family.valid()
                  ? Format("{}", c.family.value())
                  : std::string("universal"));
    csv.Field(static_cast<std::int64_t>(c.required_area));
    csv.Field(static_cast<std::int64_t>(c.config_time));
    csv.Field(static_cast<std::int64_t>(c.bitstream_size));
    const std::uint64_t placements =
        c.id.value() < placements_per_config.size()
            ? placements_per_config[c.id.value()]
            : 0;
    csv.Field(placements);
    csv.EndRow();
  }
}

}  // namespace dreamsim::rms
