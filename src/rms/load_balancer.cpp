#include "rms/load_balancer.hpp"

#include <cmath>

namespace dreamsim::rms {

LoadMetrics LoadBalancer::Measure() const {
  LoadMetrics m;
  const std::size_t n = store_.node_count();
  if (n == 0) return m;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const resource::Node& node : store_.nodes()) {
    const auto load = static_cast<double>(node.running_tasks());
    sum += load;
    sum_sq += load * load;
  }
  const auto count = static_cast<double>(n);
  m.mean_running_tasks = sum / count;
  const double variance =
      sum_sq / count - m.mean_running_tasks * m.mean_running_tasks;
  m.stddev_running_tasks = std::sqrt(std::max(0.0, variance));
  m.imbalance = m.mean_running_tasks > 0.0
                    ? m.stddev_running_tasks / m.mean_running_tasks
                    : 0.0;
  m.fairness = sum_sq > 0.0 ? (sum * sum) / (count * sum_sq) : 1.0;
  return m;
}

std::optional<NodeId> LoadBalancer::PickLeastLoaded(
    std::span<const NodeId> candidates) const {
  std::optional<NodeId> best;
  std::size_t best_load = 0;
  Area best_available = 0;
  for (const NodeId id : candidates) {
    const resource::Node& n = store_.node(id);
    const std::size_t load = n.running_tasks();
    const Area available = n.available_area();
    const bool better =
        !best || load < best_load ||
        (load == best_load && available > best_available) ||
        (load == best_load && available == best_available && id < *best);
    if (better) {
      best = id;
      best_load = load;
      best_available = available;
    }
  }
  return best;
}

}  // namespace dreamsim::rms
