// TimeSeriesSampler (observability layer, DESIGN.md §11): turns the
// simulator's event-driven StateSample stream into an interval-sampled
// time series written as CSV.
//
// The simulator observes state only when it changes (arrival, completion,
// fault), so every signal is piecewise-constant between observations. The
// sampler resamples that signal onto a regular grid of ticks by holding the
// most recent observation ("left-hold"): the row at grid tick t carries the
// last observation at or before t. Recomputing time-weighted averages from
// the emitted rows therefore converges to the MonitoringModule's
// UtilizationReport as the interval shrinks (test_timeline), and matches it
// exactly at interval 1.
//
// Like the RunTracer this is a pure observer: it never charges the
// WorkloadMeter and paper metrics are bit-identical with sampling on.
#pragma once

#include <fstream>
#include <ostream>
#include <string>

#include "core/simulator.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dreamsim::obs {

class TimeSeriesSampler {
 public:
  /// Samples every `interval` ticks (>= 1; 0 is coerced to 1) to a
  /// caller-owned stream (tests) …
  TimeSeriesSampler(std::ostream& out, Tick interval);
  /// … or to a file the sampler owns. Throws std::runtime_error when the
  /// file cannot be opened.
  TimeSeriesSampler(const std::string& path, Tick interval);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;
  ~TimeSeriesSampler();

  /// State-observer hook: wire with
  /// `sim.SetStateObserver([&s](const core::StateSample& x) { s.Observe(x); })`.
  /// Observations must arrive in non-decreasing tick order (the simulator
  /// guarantees this).
  void Observe(const core::StateSample& sample);

  /// Emits the grid rows up to and including `end` and flushes. Idempotent;
  /// the destructor calls it with the last observed tick if the caller did
  /// not.
  void Finish(Tick end);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] std::size_t observations() const { return observations_; }

 private:
  void EmitRow(Tick at) REQUIRES(role_);
  /// Emits every grid point strictly before `t` (they see the held sample).
  void CatchUpTo(Tick t) REQUIRES(role_);
  /// Writes the buffered rows to the output stream.
  void FlushBatch() REQUIRES(role_);

  std::ofstream owned_out_;
  std::ostream& sink_;
  /// Rows are all-integer and emitted on the simulator's hot path, so they
  /// are serialized with std::to_chars into this batch and written out one
  /// batch (not one ostream call) at a time (bench_obs gates the overhead).
  std::string batch_ GUARDED_BY(role_);
  std::size_t rows_ = 0;
  Tick interval_;
  Tick next_grid_ = 0;         // next grid tick to emit
  core::StateSample held_{};   // last observation (left-hold value)
  bool have_sample_ = false;
  std::size_t observations_ = 0;
  bool finished_ = false;
  /// Single-writer contract (DESIGN.md §17): the simulation thread owns
  /// the row batch; Observe/Finish assert the role.
  util::ThreadRole role_;
};

}  // namespace dreamsim::obs
