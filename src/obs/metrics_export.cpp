#include "obs/metrics_export.hpp"

#include <charconv>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::obs {
namespace {

/// Every exposed name carries the subsystem prefix. This is the one place
/// product code spells it; everything else goes through the catalogue.
constexpr std::string_view kPrefix = "dreamsim_";  // lint: allow(metric-catalogue)

void AppendU64(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(result.ptr - buf));
}

void AppendName(std::string& out, const MetricInfo& info) {
  out += kPrefix;
  out += info.name;
}

[[nodiscard]] bool Skip(const MetricInfo& info, bool include_host) {
  return !include_host && info.plane == MetricPlane::kHost;
}

[[nodiscard]] std::string_view PromType(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge:
    case MetricKind::kGaugeMax: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Inclusive upper bound of histogram bin i under the log2 spacing: bin 0
/// holds v = 0, bin i holds v in [2^(i-1), 2^i). The last bin saturates and
/// maps to +Inf.
[[nodiscard]] std::uint64_t BinUpperBound(std::size_t bin) {
  return bin == 0 ? 0 : (std::uint64_t{1} << bin) - 1;
}

}  // namespace

std::string_view ToString(MetricsFormat format) {
  switch (format) {
    case MetricsFormat::kJson: return "json";
    case MetricsFormat::kProm: return "prom";
  }
  return "?";
}

std::optional<MetricsFormat> ParseMetricsFormat(std::string_view name) {
  if (name == "json") return MetricsFormat::kJson;
  if (name == "prom") return MetricsFormat::kProm;
  return std::nullopt;
}

std::string RenderMetricsJson(const MetricsSnapshot& snap, Tick tick,
                              std::uint64_t seq, bool final,
                              bool include_host) {
  std::string out;
  out.reserve(2048);
  out += "{\"type\":\"metrics\",\"version\":1,\"tick\":";
  AppendU64(out, static_cast<std::uint64_t>(tick));
  out += ",\"seq\":";
  AppendU64(out, seq);
  if (final) out += ",\"final\":true";
  out += ",\"values\":{";
  bool first = true;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricInfo& info = kMetricInfo[m];
    if (Skip(info, include_host) || info.kind == MetricKind::kHistogram) {
      continue;
    }
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendName(out, info);
    out += "\":";
    AppendU64(out, snap.value[m]);
  }
  out += "},\"histograms\":{";
  first = true;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricInfo& info = kMetricInfo[m];
    if (Skip(info, include_host) || info.kind != MetricKind::kHistogram) {
      continue;
    }
    const MetricsSnapshot::Hist& hist = snap.hist[kHistSlotOf[m]];
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendName(out, info);
    out += "\":{\"count\":";
    AppendU64(out, hist.count);
    out += ",\"sum\":";
    AppendU64(out, hist.sum);
    out += ",\"max\":";
    AppendU64(out, hist.max);
    out += ",\"bins\":[";
    // Trailing zero bins are trimmed; bin i spans [2^(i-1), 2^i).
    std::size_t used = MetricsSnapshot::kBins;
    while (used > 0 && hist.bins[used - 1] == 0) --used;
    for (std::size_t b = 0; b < used; ++b) {
      if (b > 0) out += ',';
      AppendU64(out, hist.bins[b]);
    }
    out += "]}";
  }
  out += "},\"per_shard\":{";
  first = true;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricInfo& info = kMetricInfo[m];
    if (Skip(info, include_host) || !info.per_shard ||
        info.kind == MetricKind::kHistogram) {
      continue;
    }
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendName(out, info);
    out += "\":[";
    for (std::size_t c = 1; c < snap.cells_used; ++c) {
      if (c > 1) out += ',';
      AppendU64(out, snap.cell[m][c]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

std::string RenderMetricsProm(const MetricsSnapshot& snap,
                              bool include_host) {
  std::string out;
  out.reserve(4096);
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricInfo& info = kMetricInfo[m];
    if (Skip(info, include_host)) continue;
    out += "# HELP ";
    AppendName(out, info);
    out += ' ';
    out += info.help;
    out += "\n# TYPE ";
    AppendName(out, info);
    out += ' ';
    out += PromType(info.kind);
    out += '\n';
    if (info.kind == MetricKind::kHistogram) {
      const MetricsSnapshot::Hist& hist = snap.hist[kHistSlotOf[m]];
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b + 1 < MetricsSnapshot::kBins; ++b) {
        cumulative += hist.bins[b];
        AppendName(out, info);
        out += "_bucket{le=\"";
        AppendU64(out, BinUpperBound(b));
        out += "\"} ";
        AppendU64(out, cumulative);
        out += '\n';
      }
      AppendName(out, info);
      out += "_bucket{le=\"+Inf\"} ";
      AppendU64(out, hist.count);
      out += '\n';
      AppendName(out, info);
      out += "_sum ";
      AppendU64(out, hist.sum);
      out += '\n';
      AppendName(out, info);
      out += "_count ";
      AppendU64(out, hist.count);
      out += '\n';
      continue;
    }
    AppendName(out, info);
    out += ' ';
    AppendU64(out, snap.value[m]);
    out += '\n';
    if (info.per_shard) {
      for (std::size_t c = 1; c < snap.cells_used; ++c) {
        AppendName(out, info);
        out += "{shard=\"";
        AppendU64(out, c - 1);
        out += "\"} ";
        AppendU64(out, snap.cell[m][c]);
        out += '\n';
      }
    }
  }
  return out;
}

std::string RenderMetricsBlock(const MetricsSnapshot& snap) {
  std::string out = "  -- live metrics (final snapshot, non-zero) --\n";
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricInfo& info = kMetricInfo[m];
    if (info.kind == MetricKind::kHistogram) {
      const MetricsSnapshot::Hist& hist = snap.hist[kHistSlotOf[m]];
      if (hist.count == 0) continue;
      const double mean = static_cast<double>(hist.sum) /
                          static_cast<double>(hist.count);
      out += Format("  {:<42}count={} mean={} max={}\n", info.name,
                    hist.count, mean, hist.max);
      continue;
    }
    if (snap.value[m] == 0) continue;
    out += Format("  {:<42}{}\n", info.name, snap.value[m]);
  }
  return out;
}

MetricsSnapshotWriter::MetricsSnapshotWriter(const std::string& path,
                                             MetricsFormat format,
                                             Tick interval)
    : out_(path), format_(format), interval_(interval > 0 ? interval : 1) {
  if (!out_.is_open()) {
    throw std::runtime_error(
        Format("cannot open metrics-out file '{}'", path));
  }
  next_boundary_ = interval_;
}

MetricsSnapshotWriter::~MetricsSnapshotWriter() {
  if (!finished_) Finish(last_tick_);
}

void MetricsSnapshotWriter::OnEvent(const core::SimEvent& event) {
  role_.AssertHeld();
  last_tick_ = event.tick;
  if (format_ != MetricsFormat::kJson || event.tick < next_boundary_) return;
  next_boundary_ = (event.tick / interval_ + 1) * interval_;
  std::string line = RenderMetricsJson(
      MetricsRegistry::Instance().TakeSnapshot(), event.tick, seq_++,
      /*final=*/false);
  line += '\n';
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  ++snapshots_;
}

void MetricsSnapshotWriter::Finish(Tick end) {
  role_.AssertHeld();
  if (finished_) return;
  finished_ = true;
  const MetricsSnapshot snap = MetricsRegistry::Instance().TakeSnapshot();
  if (format_ == MetricsFormat::kJson) {
    std::string line = RenderMetricsJson(snap, end, seq_++, /*final=*/true);
    line += '\n';
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  } else {
    const std::string doc = RenderMetricsProm(snap);
    out_.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  }
  ++snapshots_;
  out_.flush();
}

}  // namespace dreamsim::obs
