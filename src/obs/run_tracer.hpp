// RunTracer (observability layer, DESIGN.md §11): persists the simulator's
// SimEvent stream — task lifecycle plus fault events — to disk while a run
// executes, in one of two formats:
//
//  * kJsonl — one JSON object per line, streamed as events arrive (a meta
//    line first). The archival form; schema in docs/formats.md.
//  * kChrome — Chrome trace-event JSON (catapult format) with one track per
//    node: comm/config setup spans, task-execution spans, and node-downtime
//    spans, plus a "scheduler" track of instant events (arrival, suspend,
//    requeue, discard). Opens directly in chrome://tracing or Perfetto.
//    Spans need end ticks, so this format buffers and writes on Finish().
//
// The tracer is a pure observer: it never charges the WorkloadMeter and
// never mutates simulator state, so every paper metric is bit-identical
// with tracing on or off (test_obs_diff).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/simulator.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dreamsim::obs {

enum class TraceFormat : std::uint8_t { kJsonl, kChrome };

[[nodiscard]] std::string_view ToString(TraceFormat format);
/// Parses "jsonl" / "chrome"; nullopt on anything else.
[[nodiscard]] std::optional<TraceFormat> ParseTraceFormat(
    std::string_view name);

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string JsonEscape(std::string_view raw);

class RunTracer {
 public:
  /// Run identification, carried into the trace header (JSONL meta line /
  /// Chrome otherData + process name).
  struct RunInfo {
    std::string label;
    std::string mode;
    std::uint64_t seed = 0;
    std::size_t nodes = 0;
  };

  /// Streams to a caller-owned stream (tests) …
  RunTracer(std::ostream& out, TraceFormat format, RunInfo info);
  /// … or to a file the tracer owns. Throws std::runtime_error when the
  /// file cannot be opened.
  RunTracer(const std::string& path, TraceFormat format, RunInfo info);
  ~RunTracer();

  RunTracer(const RunTracer&) = delete;
  RunTracer& operator=(const RunTracer&) = delete;

  /// Event-logger hook: wire with
  /// `sim.SetEventLogger([&t](const core::SimEvent& e) { t.OnEvent(e); })`.
  void OnEvent(const core::SimEvent& event);

  /// Explain-observer hook (--explain): appends one `"type":"explain"`
  /// record to the JSONL stream, ordered exactly where it happened in the
  /// event stream (the pending event burst is flushed first; explain
  /// records are rare, so the burst serializer stays on its fast path).
  /// Ignored in Chrome format — explain records are line-oriented data,
  /// not spans.
  void OnExplain(const core::ExplainRecord& record);

  /// Closes spans still open at `end` (running tasks, unrepaired nodes)
  /// and writes/flushes the output. Idempotent; the destructor calls it
  /// with the last seen tick if the caller did not.
  void Finish(Tick end);

  [[nodiscard]] std::size_t events_seen() const { return events_seen_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  struct OpenTask {
    NodeId node;
    ConfigId config;
    Tick placed_at = 0;
    Tick comm_time = 0;
    Tick config_wait = 0;
    sched::PlacementKind placement{};
  };

  void WriteJsonlMeta() REQUIRES(role_);
  void WriteJsonlEvent(const core::SimEvent& event) REQUIRES(role_);
  /// Serializes the pending JSONL events in one burst.
  void SerializeJsonlPending() REQUIRES(role_);
  /// Writes the buffered JSONL batch to the output stream.
  void FlushJsonlBatch() REQUIRES(role_);
  void ChromeOnEvent(const core::SimEvent& event) REQUIRES(role_);
  /// Emits the setup + execution spans of one placement ending (completed
  /// or killed) at `end_tick`.
  void ChromeCloseTask(TaskId task, const OpenTask& open, Tick end_tick,
                       bool killed) REQUIRES(role_);
  void ChromeSpan(std::string_view name, std::string_view category,
                  std::uint32_t tid, Tick start, Tick duration)
      REQUIRES(role_);
  void ChromeInstant(std::string_view name, std::string_view category,
                     std::uint32_t tid, Tick at) REQUIRES(role_);
  void WriteChromeDocument(Tick end) REQUIRES(role_);
  /// The scheduler (non-node) track id: one past the node tracks.
  [[nodiscard]] std::uint32_t SchedulerTid() const;

  std::ofstream owned_out_;
  std::ostream& out_;
  TraceFormat format_;
  RunInfo info_;
  std::size_t events_seen_ = 0;
  Tick last_tick_ = 0;
  bool finished_ = false;
  /// JSONL fast path: tracing sits on the simulator's hot path, so OnEvent
  /// only copies the event into `pending_`; full pending bursts are then
  /// serialized with std::to_chars into `batch_`, which is written out one
  /// batch (not one ostream call) at a time. The burst keeps the serializer
  /// and its buffers cache-warm, and batching the writes avoids a stream
  /// sentry per event (bench_obs gates the overhead).
  std::vector<core::SimEvent> pending_ GUARDED_BY(role_);
  std::string batch_ GUARDED_BY(role_);

  // --- Chrome-format buffering ---
  /// Pre-rendered JSON objects.
  std::vector<std::string> chrome_events_ GUARDED_BY(role_);
  std::unordered_map<std::uint32_t, OpenTask> open_tasks_
      GUARDED_BY(role_);  // by TaskId
  std::unordered_map<std::uint32_t, Tick> down_since_
      GUARDED_BY(role_);  // by NodeId
  /// Tracks needing thread metadata.
  std::vector<bool> node_seen_ GUARDED_BY(role_);

  /// Single-writer contract (DESIGN.md §17): the simulation thread owns
  /// every buffer above; each hook asserts the role, so a second writer
  /// thread aborts in debug builds and new unguarded paths fail under
  /// -Werror=thread-safety.
  util::ThreadRole role_;
};

}  // namespace dreamsim::obs
