// Compile-time metric catalogue (observability layer, DESIGN.md §16).
//
// Every counter, gauge, and histogram the live metrics registry can hold is
// declared here, once, as an X-macro row. The registry (obs/metrics.hpp)
// derives the MetricId enum, the storage layout, and the exposition names
// and types from this single table, so a metric cannot exist without a
// stable Prometheus-safe name and a declared merge rule — and
// tools/dreamsim_lint's `metric-catalogue` rule rejects registry calls
// whose id is not a literal `MetricId::k...` token from this file.
//
// Columns:
//   ident       C++ identifier stem (MetricId::k<ident>).
//   name        exposition name, without the "dreamsim_" prefix. Counters
//               end in `_total`, histograms in `_ns`/`_ticks`/plain per
//               Prometheus conventions.
//   kind        kCounter | kGauge | kGaugeMax | kHistogram.
//   plane       kModel: derived from the simulated event/decision stream —
//               a pure function of (seed, config), byte-identical across
//               shard counts and thread counts (pinned by
//               test_metrics_diff). kHost: wall-clock timings and
//               shard-shaped load stats; deterministic merges, but the
//               *values* depend on the machine and on K/threads.
//   per_shard   true when the metric records into per-shard cells and is
//               exposed per shard (label `shard="i"`) as well as merged.
//   help        Prometheus HELP line.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dreamsim::obs {

enum class MetricKind : std::uint8_t {
  kCounter = 0,  // monotone; cells merge by sum
  kGauge,        // last-written level; cells merge by sum
  kGaugeMax,     // high-water mark; cells merge by max
  kHistogram,    // log2-bucket histogram; cells merge bin-wise by sum
};

enum class MetricPlane : std::uint8_t {
  kModel = 0,  // simulation-derived, deterministic at any K/thread count
  kHost,       // wall-clock / shard-shaped, machine-dependent
};

// clang-format off
#define DREAMSIM_METRIC_CATALOGUE(M)                                          \
  /* --- Event queue (sim/event_queue, model plane) --- */                    \
  M(EvqPushed, "evq_pushed_total", kCounter, kModel, false,                   \
    "Events pushed onto the kernel event queue")                              \
  M(EvqPopped, "evq_popped_total", kCounter, kModel, false,                   \
    "Live events popped and executed by the kernel")                          \
  M(EvqCancelled, "evq_cancelled_total", kCounter, kModel, false,             \
    "Events cancelled before execution")                                      \
  M(EvqDeadDropped, "evq_dead_dropped_total", kCounter, kModel, false,        \
    "Cancelled heap residue dropped lazily at the top")                       \
  M(EvqHeapSifts, "evq_heap_sift_total", kCounter, kModel, false,             \
    "Binary-heap sift operations (pushes plus pops, live or dead)")           \
  M(EvqDepth, "evq_depth", kGauge, kModel, false,                             \
    "Live (uncancelled) pending events")                                      \
  M(EvqDepthPeak, "evq_depth_peak", kGaugeMax, kModel, false,                 \
    "Peak live pending events")                                               \
  M(EventGapTicks, "event_gap_ticks", kHistogram, kModel, false,              \
    "Simulated-tick gap between consecutive executed events")                 \
  /* --- ResourceStore scheduler queries (model plane) --- */                 \
  M(StoreQueryIdleEntry, "store_query_idle_entry_total", kCounter, kModel,    \
    false, "FindBestIdleEntry calls (phase 1 allocation)")                    \
  M(StoreQueryBlank, "store_query_blank_total", kCounter, kModel, false,      \
    "FindBestBlankNode calls (phase 2 configuration)")                        \
  M(StoreQueryPartialBlank, "store_query_partial_blank_total", kCounter,      \
    kModel, false, "FindBestPartiallyBlankNode calls (phase 3)")              \
  M(StoreQueryReclaim, "store_query_reclaim_total", kCounter, kModel, false,  \
    "FindAnyIdleNode calls (Algorithm 1 reclaim)")                            \
  M(StoreQueryBusyFit, "store_query_busy_fit_total", kCounter, kModel, false, \
    "AnyBusyNodeCouldFit calls (suspension eligibility)")                     \
  M(StoreQueryIdleConfigured, "store_query_idle_configured_total", kCounter,  \
    kModel, false, "FindBestIdleConfiguredNode calls (full mode)")            \
  M(StoreQueryRanked, "store_query_ranked_total", kCounter, kModel, false,    \
    "FindRankedHostNode calls (heuristic policies)")                          \
  M(StoreScanFallback, "store_scan_fallback_total", kCounter, kModel, false,  \
    "Store queries answered by scan semantics (no StoreIndex built)")         \
  /* --- Suspension queue + drain index (model plane) --- */                  \
  M(SusqQueryOldestExact, "susq_query_oldest_exact_total", kCounter, kModel,  \
    false, "SusQueueIndex OldestExactMatch queries")                          \
  M(SusqQueryBestPrioExact, "susq_query_best_prio_exact_total", kCounter,     \
    kModel, false, "SusQueueIndex BestPriorityExactMatch queries")            \
  M(SusqQueryOldestEligible, "susq_query_oldest_eligible_total", kCounter,    \
    kModel, false, "SusQueueIndex OldestEligible queries")                    \
  M(SusqQueryBestPrioEligible, "susq_query_best_prio_eligible_total",         \
    kCounter, kModel, false, "SusQueueIndex BestPriorityEligible queries")    \
  M(SusqScanFallback, "susq_scan_fallback_total", kCounter, kModel, false,    \
    "Suspension-queue operations answered by literal FIFO scan")              \
  M(SusEnqueued, "sus_enqueued_total", kCounter, kModel, false,               \
    "Tasks admitted to the suspension queue")                                 \
  M(SusRemoved, "sus_removed_total", kCounter, kModel, false,                 \
    "Tasks removed from the suspension queue (drained or dropped)")           \
  M(SusOverflow, "sus_overflow_total", kCounter, kModel, false,               \
    "Suspension admissions rejected at capacity")                             \
  M(SusDepth, "sus_depth", kGauge, kModel, false,                             \
    "Tasks currently parked in the suspension queue")                         \
  M(SusDepthPeak, "sus_depth_peak", kGaugeMax, kModel, false,                 \
    "Peak suspension-queue depth")                                            \
  M(DrainAttempts, "drain_attempts_total", kCounter, kModel, false,           \
    "Placement attempts for queued tasks during drains")                      \
  M(DrainPlacements, "drain_placements_total", kCounter, kModel, false,       \
    "Drain attempts that placed the queued task")                             \
  /* --- Task lifecycle (core/metrics collector, model plane) --- */          \
  M(TasksGenerated, "tasks_generated_total", kCounter, kModel, false,         \
    "Tasks generated by the workload")                                        \
  M(TasksPlaced, "tasks_placed_total", kCounter, kModel, false,               \
    "Task placements onto nodes (includes requeue placements)")               \
  M(TasksCompleted, "tasks_completed_total", kCounter, kModel, false,         \
    "Tasks that ran to completion")                                           \
  M(TasksDiscarded, "tasks_discarded_total", kCounter, kModel, false,         \
    "Tasks discarded (infeasible, overflow, or retry budget)")                \
  M(TasksSuspendedFirst, "tasks_suspended_first_total", kCounter, kModel,     \
    false, "Tasks that entered the suspension queue at least once")           \
  M(ClosestMatchPlacements, "closest_match_placements_total", kCounter,       \
    kModel, false, "Placements that used the closest-match configuration")    \
  /* --- Fault subsystem (model plane) --- */                                 \
  M(FaultFailures, "fault_failures_total", kCounter, kModel, false,           \
    "Node failures injected")                                                 \
  M(FaultRepairs, "fault_repairs_total", kCounter, kModel, false,             \
    "Node repairs completed")                                                 \
  M(FaultKills, "fault_kills_total", kCounter, kModel, false,                 \
    "Running tasks killed by node failures")                                  \
  M(FaultLostWorkTicks, "fault_lost_work_area_ticks_total", kCounter, kModel, \
    false, "Area-ticks of in-progress work destroyed by failures")            \
  M(FaultFailedNodes, "fault_failed_nodes", kGauge, kModel, false,            \
    "Nodes currently failed")                                                 \
  /* --- Decision explainability (model plane) --- */                         \
  M(ExplainRecords, "explain_records_total", kCounter, kModel, false,         \
    "Decision-explanation records emitted for --explain tasks")               \
  /* --- ShardPool fork-join broadcasts (host plane) --- */                   \
  M(PoolBroadcasts, "pool_broadcasts_total", kCounter, kHost, false,          \
    "Fork-join broadcasts issued to the shard pool")                          \
  M(PoolBroadcastNs, "pool_broadcast_ns", kHistogram, kHost, false,           \
    "Wall time of one fork-join broadcast (issue to join)")                   \
  M(PoolJoinWaitNs, "pool_join_wait_ns", kHistogram, kHost, false,            \
    "Wall time the issuing thread waited for workers after its own share")    \
  M(PoolBatchJobs, "pool_batch_jobs", kHistogram, kHost, false,               \
    "Jobs per broadcast batch")                                               \
  M(PoolJobsExecuted, "pool_jobs_executed_total", kCounter, kHost, true,      \
    "Shard jobs executed (per-shard cells)")                                  \
  M(PoolJobNs, "pool_job_ns", kHistogram, kHost, true,                        \
    "Wall time of one shard job (per-shard broadcast latency)")               \
  M(PoolShardBusyNs, "pool_shard_busy_ns_total", kCounter, kHost, true,       \
    "Cumulative wall time spent executing each shard's jobs")                 \
  M(ShardImbalancePct, "shard_imbalance_pct", kGauge, kHost, false,           \
    "Shard load imbalance: 100 * (max - mean) / mean of per-shard busy ns")
// clang-format on

/// Stable identifier for one catalogued metric.
enum class MetricId : std::uint16_t {
#define DREAMSIM_METRIC_ENUM(ident, name, kind, plane, per_shard, help) \
  k##ident,
  DREAMSIM_METRIC_CATALOGUE(DREAMSIM_METRIC_ENUM)
#undef DREAMSIM_METRIC_ENUM
};

/// Static description of one catalogued metric.
struct MetricInfo {
  std::string_view name;  // exposition name, sans "dreamsim_" prefix
  MetricKind kind;
  MetricPlane plane;
  bool per_shard;
  std::string_view help;
};

inline constexpr std::array kMetricInfo = {
#define DREAMSIM_METRIC_INFO(ident, name, kind, plane, per_shard, help) \
  MetricInfo{name, MetricKind::kind, MetricPlane::plane, per_shard, help},
    DREAMSIM_METRIC_CATALOGUE(DREAMSIM_METRIC_INFO)
#undef DREAMSIM_METRIC_INFO
};

inline constexpr std::size_t kMetricCount = kMetricInfo.size();

[[nodiscard]] constexpr const MetricInfo& InfoOf(MetricId id) {
  return kMetricInfo[static_cast<std::size_t>(id)];
}

/// Number of histogram-kind metrics (sized storage in the registry).
inline constexpr std::size_t kHistMetricCount = [] {
  std::size_t n = 0;
  for (const MetricInfo& info : kMetricInfo) {
    if (info.kind == MetricKind::kHistogram) ++n;
  }
  return n;
}();

/// Dense histogram slot for a histogram metric; kHistMetricCount for others.
inline constexpr std::array<std::size_t, kMetricCount> kHistSlotOf = [] {
  std::array<std::size_t, kMetricCount> slots{};
  std::size_t next = 0;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    slots[i] = kMetricInfo[i].kind == MetricKind::kHistogram
                   ? next++
                   : kHistMetricCount;
  }
  return slots;
}();

}  // namespace dreamsim::obs
