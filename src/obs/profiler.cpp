#include "obs/profiler.hpp"

#include <ostream>

#include "util/fmt.hpp"

namespace dreamsim::obs {
namespace {

constexpr ProfPhase kAllPhases[kProfPhaseCount] = {
    ProfPhase::kAllocation,          ProfPhase::kConfiguration,
    ProfPhase::kPartialConfiguration, ProfPhase::kPartialReconfiguration,
    ProfPhase::kFullReconfiguration, ProfPhase::kSuspensionDrain,
    ProfPhase::kStoreQuery,          ProfPhase::kSusQueueQuery,
};

/// Upper edge of histogram bin i as a human-readable duration.
std::string BinLabel(std::size_t bin) {
  const std::uint64_t upper = 1ULL << bin;
  if (upper >= 1'000'000) return Format("{}ms", upper / 1'000'000);
  if (upper >= 1'000) return Format("{}us", upper / 1'000);
  return Format("{}ns", upper);
}

std::string Scaled(double ns) {
  if (ns >= 1e9) return Format("{}s", ns / 1e9);
  if (ns >= 1e6) return Format("{}ms", ns / 1e6);
  if (ns >= 1e3) return Format("{}us", ns / 1e3);
  return Format("{}ns", ns);
}

}  // namespace

std::string_view ToString(ProfPhase phase) {
  switch (phase) {
    case ProfPhase::kAllocation: return "allocation";
    case ProfPhase::kConfiguration: return "configuration";
    case ProfPhase::kPartialConfiguration: return "partial-configuration";
    case ProfPhase::kPartialReconfiguration: return "partial-reconfiguration";
    case ProfPhase::kFullReconfiguration: return "full-reconfiguration";
    case ProfPhase::kSuspensionDrain: return "suspension-drain";
    case ProfPhase::kStoreQuery: return "store-query";
    case ProfPhase::kSusQueueQuery: return "sus-queue-query";
  }
  return "?";
}

std::string PhaseProfiler::Report() const {
  std::string out =
      "scheduler phase profile (host wall time; store/sus-queue queries "
      "nest inside phases)\n";
  out += Format("  {:<24} {:>10} {:>10} {:>10} {:>10}   histogram\n", "phase",
                "calls", "total", "mean", "max");
  for (const ProfPhase phase : kAllPhases) {
    const PhaseStats s = stats(phase);
    if (s.calls == 0) continue;
    // Compact histogram: the three busiest bins, labelled by upper edge.
    std::size_t top[3] = {0, 0, 0};
    for (std::size_t i = 0; i < kBins; ++i) {
      if (s.bins[i] > s.bins[top[0]]) {
        top[2] = top[1];
        top[1] = top[0];
        top[0] = i;
      } else if (s.bins[i] > s.bins[top[1]] && i != top[0]) {
        top[2] = top[1];
        top[1] = i;
      } else if (s.bins[i] > s.bins[top[2]] && i != top[0] && i != top[1]) {
        top[2] = i;
      }
    }
    std::string histo;
    for (const std::size_t bin : top) {
      if (s.bins[bin] == 0) continue;
      if (!histo.empty()) histo += ", ";
      histo += Format("<{}: {}", BinLabel(bin), s.bins[bin]);
    }
    out += Format("  {:<24} {:>10} {:>10} {:>10} {:>10}   {}\n",
                  ToString(phase), s.calls,
                  Scaled(static_cast<double>(s.total_ns)), Scaled(s.mean_ns()),
                  Scaled(static_cast<double>(s.max_ns)), histo);
  }
  return out;
}

void PhaseProfiler::WriteJson(std::ostream& out) const {
  out << "[";
  bool first = true;
  for (const ProfPhase phase : kAllPhases) {
    const PhaseStats s = stats(phase);
    if (!first) out << ",";
    first = false;
    out << Format(
        "\n  {{\"phase\": \"{}\", \"calls\": {}, \"total_ns\": {}, "
        "\"mean_ns\": {}, \"max_ns\": {}, \"bins\": [",
        ToString(phase), s.calls, s.total_ns, s.mean_ns(), s.max_ns);
    for (std::size_t i = 0; i < kBins; ++i) {
      if (i != 0) out << ", ";
      out << s.bins[i];
    }
    out << "]}";
  }
  out << "\n]\n";
}

}  // namespace dreamsim::obs
