#include "obs/timeline.hpp"

#include <charconv>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::obs {
namespace {

constexpr std::string_view kHeader =
    "tick,busy_nodes,running_tasks,suspended_tasks,wasted_area,"
    "scheduler_steps,failed_nodes\n";

/// Row batching: sampling sits on the simulator's hot path and a fine grid
/// emits tens of thousands of rows (bench_obs gates the overhead).
constexpr std::size_t kBatchBytes = 64 * 1024;
/// Seven 20-digit fields, commas, newline — a row cannot outgrow this.
constexpr std::size_t kMaxRowBytes = 160;

char* PutU64(char* p, std::uint64_t value) {
  return std::to_chars(p, p + 20, value).ptr;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(std::ostream& out, Tick interval)
    : sink_(out), interval_(interval == 0 ? 1 : interval) {
  batch_.reserve(kBatchBytes);
  sink_ << kHeader;
}

TimeSeriesSampler::TimeSeriesSampler(const std::string& path, Tick interval)
    : owned_out_(path),
      sink_(owned_out_),
      interval_(interval == 0 ? 1 : interval) {
  if (!owned_out_.is_open()) {
    throw std::runtime_error(Format("cannot open timeline file '{}'", path));
  }
  batch_.reserve(kBatchBytes);
  sink_ << kHeader;
}

TimeSeriesSampler::~TimeSeriesSampler() {
  if (!finished_ && have_sample_) Finish(held_.tick);
}

void TimeSeriesSampler::EmitRow(Tick at) {
  char buf[kMaxRowBytes];
  char* p = buf;
  p = PutU64(p, static_cast<std::uint64_t>(at));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.busy_nodes));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.running_tasks));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.suspended_tasks));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.wasted_area));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.scheduler_steps));
  *p++ = ',';
  p = PutU64(p, static_cast<std::uint64_t>(held_.failed_nodes));
  *p++ = '\n';
  batch_.append(buf, static_cast<std::size_t>(p - buf));
  if (batch_.size() > kBatchBytes - kMaxRowBytes) FlushBatch();
  ++rows_;
}

void TimeSeriesSampler::FlushBatch() {
  if (batch_.empty()) return;
  sink_.write(batch_.data(), static_cast<std::streamsize>(batch_.size()));
  batch_.clear();
}

void TimeSeriesSampler::CatchUpTo(Tick t) {
  // A grid point is final once an observation lands strictly beyond it:
  // the held sample is then the last observation at-or-before the point.
  while (next_grid_ < t) {
    EmitRow(next_grid_);
    next_grid_ += interval_;
  }
}

void TimeSeriesSampler::Observe(const core::StateSample& sample) {
  role_.AssertHeld();
  ++observations_;
  if (!have_sample_) {
    // Anchor the grid at the first observation (the same tick the
    // MonitoringModule's time-weighted signals start integrating from).
    have_sample_ = true;
    next_grid_ = sample.tick;
    held_ = sample;
    return;
  }
  CatchUpTo(sample.tick);
  held_ = sample;
}

void TimeSeriesSampler::Finish(Tick end) {
  role_.AssertHeld();
  if (finished_) return;
  finished_ = true;
  if (have_sample_) {
    while (next_grid_ <= end) {
      EmitRow(next_grid_);
      next_grid_ += interval_;
    }
  }
  FlushBatch();
  sink_.flush();
}

}  // namespace dreamsim::obs
