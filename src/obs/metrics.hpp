// Live metrics registry (observability layer, DESIGN.md §16).
//
// A process-global registry of the counters, gauges, and fixed-bucket
// histograms catalogued in obs/metric_catalogue.hpp. Like the PhaseProfiler
// it is header-only on purpose: the hot layers (sim, resource, core) hook it
// without a link dependency on dreamsim_obs, and a disabled hook costs one
// relaxed atomic load plus a predictable branch — no clock read, no
// allocation (the <5ns gate in bench/bench_metrics). Exposition (JSONL
// snapshots, Prometheus text, the report block) lives in
// obs/metrics_export.{hpp,cpp}.
//
// Storage is an array of cache-line-aligned cells: cell 0 belongs to the
// simulation thread (every unsharded hook records there), cells 1..K to the
// shard pool's per-shard jobs (metrics tagged per_shard in the catalogue).
// All slots are relaxed atomics, so concurrent shard jobs record without
// synchronization; TakeSnapshot() merges cells in fixed index order 0..K
// under each metric's declared merge rule (sum / max / bin-wise sum), so
// snapshot bytes never depend on thread interleaving.
//
// Pure observer: the registry never touches the WorkloadMeter or any
// scheduler decision (the §9 contract; pinned by test_obs_diff). Model-plane
// metrics are a pure function of (seed, config) and byte-identical across
// shard and thread counts (pinned by test_metrics_diff); host-plane metrics
// carry wall-clock and shard-shape data and are excluded from that contract.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metric_catalogue.hpp"

namespace dreamsim::obs {

/// Merged, plain-value copy of the registry state. Cold-path only.
struct MetricsSnapshot {
  /// Log2-spaced value bins: bin i counts values v with bit_width(v) == i,
  /// i.e. bin 0 holds v=0 and bin i (i >= 1) holds v in [2^(i-1), 2^i);
  /// the last bin saturates. Matches PhaseProfiler::kBins spacing.
  static constexpr std::size_t kBins = 24;
  /// Cell 0 plus up to kShardCells per-shard cells.
  static constexpr std::size_t kCells = 33;

  struct Hist {
    std::array<std::uint64_t, kBins> bins{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
  };

  /// Merged scalar per metric (histograms report their sample count here).
  std::array<std::uint64_t, kMetricCount> value{};
  /// Merged histograms, indexed by kHistSlotOf.
  std::array<Hist, kHistMetricCount> hist{};
  /// Raw per-cell scalars for per_shard metrics (zeros elsewhere).
  std::array<std::array<std::uint64_t, kCells>, kMetricCount> cell{};
  /// 1 + highest shard cell that ever recorded (>= 1; cell 0 always live).
  std::size_t cells_used = 1;
};

/// Process-global metric store. All writes are relaxed atomics; readers
/// (TakeSnapshot) are safe at any time but meant for quiescent or
/// tick-boundary use.
class MetricsRegistry {
 public:
  static constexpr std::size_t kBins = MetricsSnapshot::kBins;
  static constexpr std::size_t kCells = MetricsSnapshot::kCells;

  [[nodiscard]] static MetricsRegistry& Instance() {
    static MetricsRegistry registry;
    return registry;
  }

  /// Global on/off switch; hooks are inert while disabled.
  static void SetEnabled(bool on) {
    EnabledFlag().store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return EnabledFlag().load(std::memory_order_relaxed);
  }

  static constexpr std::size_t BinOf(std::uint64_t value) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBins ? width : kBins - 1;
  }

  void Add(MetricId id, std::uint64_t delta = 1, std::size_t cell = 0) {
    ScalarAt(id, cell).fetch_add(delta, std::memory_order_relaxed);
  }

  /// Last-write-wins level. Single-writer per cell by convention (the
  /// simulation thread owns cell 0).
  void GaugeSet(MetricId id, std::uint64_t value, std::size_t cell = 0) {
    ScalarAt(id, cell).store(value, std::memory_order_relaxed);
  }

  void GaugeMax(MetricId id, std::uint64_t value, std::size_t cell = 0) {
    RelaxedMax(ScalarAt(id, cell), value);
  }

  void Observe(MetricId id, std::uint64_t value, std::size_t cell = 0) {
    Cell& c = cell_bank_[CapCell(cell)];
    HistSlot& h = c.hists[kHistSlotOf[static_cast<std::size_t>(id)]];
    h.bins[BinOf(value)].fetch_add(1, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    RelaxedMax(h.max, value);
  }

  /// Records that shard cells [1, shards] are in use (per-shard exposition
  /// emits exactly that many series). Called once per broadcast, not per
  /// job.
  void NoteShardCells(std::size_t shards) {
    RelaxedMax(shard_cells_, std::uint64_t{shards});
  }

  /// Zeroes every slot (call between runs that should report separately).
  void Reset() {
    for (Cell& cell : cell_bank_) {
      for (auto& s : cell.scalars) s.store(0, std::memory_order_relaxed);
      for (auto& h : cell.hists) {
        for (auto& b : h.bins) b.store(0, std::memory_order_relaxed);
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        h.max.store(0, std::memory_order_relaxed);
      }
    }
    shard_cells_.store(0, std::memory_order_relaxed);
  }

  /// Merges every cell in fixed index order 0..K under the catalogue's
  /// per-kind rules and derives the snapshot-time gauges (shard imbalance).
  [[nodiscard]] MetricsSnapshot TakeSnapshot() const {
    MetricsSnapshot snap;
    snap.cells_used =
        1 + static_cast<std::size_t>(
                shard_cells_.load(std::memory_order_relaxed));
    if (snap.cells_used > kCells) snap.cells_used = kCells;
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const MetricInfo& info = kMetricInfo[m];
      if (info.kind == MetricKind::kHistogram) {
        MetricsSnapshot::Hist& merged = snap.hist[kHistSlotOf[m]];
        for (std::size_t c = 0; c < snap.cells_used; ++c) {
          const HistSlot& h = cell_bank_[c].hists[kHistSlotOf[m]];
          for (std::size_t b = 0; b < kBins; ++b) {
            merged.bins[b] += h.bins[b].load(std::memory_order_relaxed);
          }
          merged.count += h.count.load(std::memory_order_relaxed);
          merged.sum += h.sum.load(std::memory_order_relaxed);
          const std::uint64_t max = h.max.load(std::memory_order_relaxed);
          if (max > merged.max) merged.max = max;
        }
        snap.value[m] = merged.count;
        continue;
      }
      std::uint64_t merged = 0;
      for (std::size_t c = 0; c < snap.cells_used; ++c) {
        const std::uint64_t v =
            cell_bank_[c].scalars[m].load(std::memory_order_relaxed);
        snap.cell[m][c] = v;
        merged = info.kind == MetricKind::kGaugeMax ? (v > merged ? v : merged)
                                                    : merged + v;
      }
      snap.value[m] = merged;
    }
    DeriveImbalance(snap);
    return snap;
  }

 private:
  struct HistSlot {
    std::array<std::atomic<std::uint64_t>, kBins> bins{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  /// One writer lane. Cache-line aligned so shard jobs on different cells
  /// never false-share.
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kMetricCount> scalars{};
    std::array<HistSlot, kHistMetricCount> hists{};
  };

  [[nodiscard]] static std::atomic<bool>& EnabledFlag() {
    static std::atomic<bool> enabled{false};
    return enabled;
  }

  static constexpr std::size_t CapCell(std::size_t cell) {
    return cell < kCells ? cell : kCells - 1;
  }

  static void RelaxedMax(std::atomic<std::uint64_t>& slot,
                         std::uint64_t value) {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value && !slot.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::atomic<std::uint64_t>& ScalarAt(MetricId id,
                                                     std::size_t cell) {
    return cell_bank_[CapCell(cell)].scalars[static_cast<std::size_t>(id)];
  }

  /// Shard load imbalance from the per-shard busy-ns counters: a run where
  /// every shard worked equally long reads 0; one hot shard reads high.
  static void DeriveImbalance(MetricsSnapshot& snap) {
    const auto& busy =
        snap.cell[static_cast<std::size_t>(MetricId::kPoolShardBusyNs)];
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    std::size_t shards = 0;
    for (std::size_t c = 1; c < snap.cells_used; ++c) {
      sum += busy[c];
      if (busy[c] > max) max = busy[c];
      ++shards;
    }
    if (shards == 0 || sum == 0) return;
    const double mean =
        static_cast<double>(sum) / static_cast<double>(shards);
    const double pct = 100.0 * (static_cast<double>(max) - mean) / mean;
    snap.value[static_cast<std::size_t>(MetricId::kShardImbalancePct)] =
        pct > 0.0 ? static_cast<std::uint64_t>(pct) : 0;
  }

  /// Cell-lane ownership (DESIGN.md §17): cell 0 is the simulation
  /// thread's lane; cell i+1 is written only by the shard job holding job
  /// index i of the current broadcast. Every slot is a relaxed atomic, so a
  /// convention breach is a reporting bug, never a data race — which is why
  /// the lanes are NOT ThreadRole capabilities: pool workers legitimately
  /// claim different job indexes each broadcast, and concurrent replication
  /// drivers (tools/sweep, tools/replication) share this process-global
  /// bank, so no lane has a stable owning thread to bind. The
  /// atomics-discipline lint rule enforces the other half of the contract:
  /// cells stay memory_order_relaxed, and model-plane code never grows its
  /// own atomics.
  std::array<Cell, kCells> cell_bank_{};
  std::atomic<std::uint64_t> shard_cells_{0};
};

// --- Hot-path hooks -------------------------------------------------------
// The id argument must be a literal MetricId::k... token from the catalogue
// (enforced by dreamsim_lint's `metric-catalogue` rule), so every exposition
// name stays stable and documented.

inline void MetricInc(MetricId id, std::uint64_t delta = 1,
                      std::size_t cell = 0) {
  if (MetricsRegistry::enabled()) {
    MetricsRegistry::Instance().Add(id, delta, cell);
  }
}

inline void MetricGaugeSet(MetricId id, std::uint64_t value,
                           std::size_t cell = 0) {
  if (MetricsRegistry::enabled()) {
    MetricsRegistry::Instance().GaugeSet(id, value, cell);
  }
}

inline void MetricGaugeMax(MetricId id, std::uint64_t value,
                           std::size_t cell = 0) {
  if (MetricsRegistry::enabled()) {
    MetricsRegistry::Instance().GaugeMax(id, value, cell);
  }
}

inline void MetricObserve(MetricId id, std::uint64_t value,
                          std::size_t cell = 0) {
  if (MetricsRegistry::enabled()) {
    MetricsRegistry::Instance().Observe(id, value, cell);
  }
}

}  // namespace dreamsim::obs
