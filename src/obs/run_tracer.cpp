#include "obs/run_tracer.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::obs {
namespace {

/// Hot-path append helpers: the tracer serializes one line per simulator
/// event, so these avoid Format's parse-and-allocate cycle.
void AppendU64(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(result.ptr - buf));
}

/// Appends `", \"key\": <value>"`.
void AppendField(std::string& out, std::string_view key, std::uint64_t value) {
  out += ", \"";
  out += key;
  out += "\": ";
  AppendU64(out, value);
}

/// Pointer-bump serialization for the JSONL fast path: lines are built in
/// a stack buffer with memcpy'd literals (lengths folded at compile time)
/// and std::to_chars digits, then appended to the batch in one go.
template <std::size_t N>
char* PutLit(char* p, const char (&lit)[N]) {
  std::memcpy(p, lit, N - 1);
  return p + (N - 1);
}

char* PutU64(char* p, std::uint64_t value) {
  return std::to_chars(p, p + 20, value).ptr;
}

char* PutToken(char* p, std::string_view token) {
  std::memcpy(p, token.data(), token.size());
  return p + token.size();
}

/// Flush threshold for the JSONL batch buffer; one worst-case line (kPlaced
/// with 20-digit values everywhere) stays well under the headroom.
constexpr std::size_t kJsonlBatchBytes = 64 * 1024;
constexpr std::size_t kJsonlMaxLineBytes = 512;
/// Events buffered per serialization burst (~48 KiB of SimEvents, L2-sized).
constexpr std::size_t kJsonlPendingEvents = 1024;

/// Local kind names (the tracer's schema contract, kept independent of the
/// core library's diagnostic ToString so the two can evolve separately —
/// and so this translation unit links without dreamsim_core).
std::string_view KindName(core::SimEvent::Kind kind) {
  using Kind = core::SimEvent::Kind;
  switch (kind) {
    case Kind::kArrival: return "arrival";
    case Kind::kPlaced: return "placed";
    case Kind::kSuspended: return "suspended";
    case Kind::kRequeued: return "requeued";
    case Kind::kDiscarded: return "discarded";
    case Kind::kCompleted: return "completed";
    case Kind::kKilled: return "killed";
    case Kind::kNodeFailed: return "node-failed";
    case Kind::kNodeRepaired: return "node-repaired";
  }
  return "?";
}

std::string_view OutcomeName(sched::Outcome outcome) {
  switch (outcome) {
    case sched::Outcome::kPlaced: return "placed";
    case sched::Outcome::kSuspend: return "suspend";
    case sched::Outcome::kDiscard: return "discard";
  }
  return "?";
}

std::string_view PlacementName(sched::PlacementKind kind) {
  using sched::PlacementKind;
  switch (kind) {
    case PlacementKind::kAllocation: return "allocation";
    case PlacementKind::kConfiguration: return "configuration";
    case PlacementKind::kPartialConfiguration: return "partial-configuration";
    case PlacementKind::kPartialReconfiguration:
      return "partial-reconfiguration";
    case PlacementKind::kFullReconfiguration: return "full-reconfiguration";
  }
  return "?";
}

}  // namespace

std::string_view ToString(TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl: return "jsonl";
    case TraceFormat::kChrome: return "chrome";
  }
  return "?";
}

std::optional<TraceFormat> ParseTraceFormat(std::string_view name) {
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "chrome") return TraceFormat::kChrome;
  return std::nullopt;
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u00{}{}", "0123456789abcdef"[(c >> 4) & 0xf],
                        "0123456789abcdef"[c & 0xf]);
        } else {
          out += c;
        }
    }
  }
  return out;
}

RunTracer::RunTracer(std::ostream& out, TraceFormat format, RunInfo info)
    : out_(out), format_(format), info_(std::move(info)) {
  node_seen_.assign(info_.nodes, false);
  if (format_ == TraceFormat::kJsonl) {
    pending_.reserve(kJsonlPendingEvents);
    batch_.reserve(kJsonlBatchBytes);
    WriteJsonlMeta();
  }
}

RunTracer::RunTracer(const std::string& path, TraceFormat format,
                     RunInfo info)
    : owned_out_(path), out_(owned_out_), format_(format),
      info_(std::move(info)) {
  if (!owned_out_.is_open()) {
    throw std::runtime_error(Format("cannot open run-trace file '{}'", path));
  }
  node_seen_.assign(info_.nodes, false);
  if (format_ == TraceFormat::kJsonl) {
    pending_.reserve(kJsonlPendingEvents);
    batch_.reserve(kJsonlBatchBytes);
    WriteJsonlMeta();
  }
}

RunTracer::~RunTracer() {
  if (!finished_) Finish(last_tick_);
}

void RunTracer::OnEvent(const core::SimEvent& event) {
  role_.AssertHeld();
  ++events_seen_;
  last_tick_ = event.tick;
  if (format_ == TraceFormat::kJsonl) {
    pending_.push_back(event);
    if (pending_.size() >= kJsonlPendingEvents) SerializeJsonlPending();
  } else {
    ChromeOnEvent(event);
  }
}

void RunTracer::OnExplain(const core::ExplainRecord& record) {
  role_.AssertHeld();
  if (format_ != TraceFormat::kJsonl) return;
  // Flush buffered events first so the explain line lands at its true
  // position in the stream.
  SerializeJsonlPending();
  char buf[kJsonlMaxLineBytes];
  char* p = buf;
  p = PutLit(p, "{\"type\":\"explain\",\"tick\":");
  p = PutU64(p, static_cast<std::uint64_t>(record.tick));
  p = PutLit(p, ",\"task\":");
  p = PutU64(p, record.task.value());
  p = PutLit(p, ",\"attempt\":\"");
  p = PutToken(p, record.is_arrival ? "arrival" : "retry");
  p = PutLit(p, "\",\"outcome\":\"");
  p = PutToken(p, OutcomeName(record.outcome));
  p = PutLit(p, "\",\"reason\":\"");
  p = PutToken(p, record.reason);
  *p++ = '"';
  if (record.outcome == sched::Outcome::kPlaced) {
    p = PutLit(p, ",\"node\":");
    p = PutU64(p, record.node.value());
    p = PutLit(p, ",\"placement\":\"");
    p = PutToken(p, PlacementName(record.kind));
    *p++ = '"';
    p = PutLit(p, ",\"closest_match\":");
    p = PutToken(p, record.used_closest_match ? "true" : "false");
    p = PutLit(p, ",\"config_time\":");
    p = PutU64(p, static_cast<std::uint64_t>(record.config_time));
  }
  if (record.config.valid()) {
    p = PutLit(p, ",\"config\":");
    p = PutU64(p, record.config.value());
  }
  p = PutLit(p, ",\"steps\":");
  p = PutU64(p, static_cast<std::uint64_t>(record.attempt_steps));
  p = PutLit(p, ",\"queue_depth\":");
  p = PutU64(p, static_cast<std::uint64_t>(record.queue_depth));
  p = PutLit(p, ",\"failed_nodes\":");
  p = PutU64(p, static_cast<std::uint64_t>(record.failed_nodes));
  p = PutLit(p, "}\n");
  batch_.append(buf, static_cast<std::size_t>(p - buf));
  if (batch_.size() > kJsonlBatchBytes - kJsonlMaxLineBytes) FlushJsonlBatch();
}

void RunTracer::Finish(Tick end) {
  role_.AssertHeld();
  if (finished_) return;
  finished_ = true;
  if (format_ == TraceFormat::kJsonl) {
    SerializeJsonlPending();
    FlushJsonlBatch();
  } else {
    WriteChromeDocument(end);
  }
  out_.flush();
}

// --- JSONL ---

void RunTracer::WriteJsonlMeta() {
  out_ << Format(
      "{{\"type\":\"meta\",\"version\":1,\"label\":\"{}\","
      "\"mode\":\"{}\",\"seed\":{},\"nodes\":{}}}\n",
      JsonEscape(info_.label), JsonEscape(info_.mode), info_.seed,
      info_.nodes);
}

void RunTracer::WriteJsonlEvent(const core::SimEvent& event) {
  // Compact separators: the trace is machine-read, and event lines are the
  // dominant share of the bytes serialized and written per run.
  char buf[kJsonlMaxLineBytes];
  char* p = buf;
  p = PutLit(p, "{\"tick\":");
  p = PutU64(p, static_cast<std::uint64_t>(event.tick));
  p = PutLit(p, ",\"kind\":\"");
  p = PutToken(p, KindName(event.kind));
  *p++ = '"';
  if (event.task.valid()) {
    p = PutLit(p, ",\"task\":");
    p = PutU64(p, event.task.value());
  }
  if (event.node.valid()) {
    p = PutLit(p, ",\"node\":");
    p = PutU64(p, event.node.value());
  }
  if (event.config.valid()) {
    p = PutLit(p, ",\"config\":");
    p = PutU64(p, event.config.value());
  }
  if (event.kind == core::SimEvent::Kind::kPlaced) {
    p = PutLit(p, ",\"placement\":\"");
    p = PutToken(p, PlacementName(event.placement));
    *p++ = '"';
    p = PutLit(p, ",\"comm\":");
    p = PutU64(p, static_cast<std::uint64_t>(event.comm_time));
    p = PutLit(p, ",\"config_wait\":");
    p = PutU64(p, static_cast<std::uint64_t>(event.config_wait));
  }
  p = PutLit(p, "}\n");
  batch_.append(buf, static_cast<std::size_t>(p - buf));
  if (batch_.size() > kJsonlBatchBytes - kJsonlMaxLineBytes) FlushJsonlBatch();
}

void RunTracer::SerializeJsonlPending() {
  for (const core::SimEvent& event : pending_) WriteJsonlEvent(event);
  pending_.clear();
}

void RunTracer::FlushJsonlBatch() {
  if (batch_.empty()) return;
  out_.write(batch_.data(), static_cast<std::streamsize>(batch_.size()));
  batch_.clear();
}

// --- Chrome trace-event ---

std::uint32_t RunTracer::SchedulerTid() const {
  return static_cast<std::uint32_t>(info_.nodes);
}

void RunTracer::ChromeSpan(std::string_view name, std::string_view category,
                           std::uint32_t tid, Tick start, Tick duration) {
  std::string line;
  line.reserve(96 + name.size());
  line += "{\"name\": \"";
  line += JsonEscape(name);
  line += "\", \"cat\": \"";
  line += category;
  line += "\", \"ph\": \"X\", \"ts\": ";
  AppendU64(line, static_cast<std::uint64_t>(start));
  AppendField(line, "dur", static_cast<std::uint64_t>(duration));
  line += ", \"pid\": 0";
  AppendField(line, "tid", tid);
  line += '}';
  chrome_events_.push_back(std::move(line));
}

void RunTracer::ChromeInstant(std::string_view name,
                              std::string_view category, std::uint32_t tid,
                              Tick at) {
  std::string line;
  line.reserve(96 + name.size());
  line += "{\"name\": \"";
  line += JsonEscape(name);
  line += "\", \"cat\": \"";
  line += category;
  line += "\", \"ph\": \"i\", \"ts\": ";
  AppendU64(line, static_cast<std::uint64_t>(at));
  line += ", \"s\": \"t\", \"pid\": 0";
  AppendField(line, "tid", tid);
  line += '}';
  chrome_events_.push_back(std::move(line));
}

void RunTracer::ChromeCloseTask(TaskId task, const OpenTask& open,
                                Tick end_tick, bool killed) {
  const std::uint32_t tid = open.node.value();
  if (tid < node_seen_.size()) node_seen_[tid] = true;
  // Setup spans, clipped to the end tick (a task killed mid-setup never
  // reaches execution).
  const Tick comm_end = std::min(open.placed_at + open.comm_time, end_tick);
  if (comm_end > open.placed_at) {
    ChromeSpan(Format("comm task {}", task.value()), "setup", tid,
               open.placed_at, comm_end - open.placed_at);
  }
  const Tick config_end =
      std::min(open.placed_at + open.comm_time + open.config_wait, end_tick);
  if (open.config_wait > 0 && config_end > comm_end) {
    const bool reconfig =
        open.placement == sched::PlacementKind::kPartialReconfiguration ||
        open.placement == sched::PlacementKind::kFullReconfiguration;
    ChromeSpan(Format("{} cfg {}", reconfig ? "reconfigure" : "configure",
                      open.config.value()),
               "config", tid, comm_end, config_end - comm_end);
  }
  if (end_tick > config_end) {
    ChromeSpan(Format("task {} (cfg {}){}", task.value(),
                      open.config.value(), killed ? " [killed]" : ""),
               killed ? "task-killed" : "task", tid, config_end,
               end_tick - config_end);
  }
}

void RunTracer::ChromeOnEvent(const core::SimEvent& event) {
  using Kind = core::SimEvent::Kind;
  switch (event.kind) {
    case Kind::kPlaced: {
      OpenTask open;
      open.node = event.node;
      open.config = event.config;
      open.placed_at = event.tick;
      open.comm_time = event.comm_time;
      open.config_wait = event.config_wait;
      open.placement = event.placement;
      open_tasks_[event.task.value()] = open;
      if (event.node.value() < node_seen_.size()) {
        node_seen_[event.node.value()] = true;
      }
      break;
    }
    case Kind::kCompleted:
    case Kind::kKilled: {
      const auto it = open_tasks_.find(event.task.value());
      if (it != open_tasks_.end()) {
        ChromeCloseTask(event.task, it->second, event.tick,
                        event.kind == Kind::kKilled);
        open_tasks_.erase(it);
      }
      break;
    }
    case Kind::kNodeFailed:
      down_since_[event.node.value()] = event.tick;
      if (event.node.value() < node_seen_.size()) {
        node_seen_[event.node.value()] = true;
      }
      break;
    case Kind::kNodeRepaired: {
      const auto it = down_since_.find(event.node.value());
      if (it != down_since_.end()) {
        ChromeSpan("DOWN", "fault", event.node.value(), it->second,
                   event.tick - it->second);
        down_since_.erase(it);
      }
      break;
    }
    case Kind::kArrival:
      ChromeInstant(Format("arrival task {}", event.task.value()),
                    "scheduler", SchedulerTid(), event.tick);
      break;
    case Kind::kSuspended:
    case Kind::kRequeued:
      ChromeInstant(Format("{} task {}", KindName(event.kind),
                           event.task.value()),
                    "scheduler", SchedulerTid(), event.tick);
      break;
    case Kind::kDiscarded:
      ChromeInstant(Format("discarded task {}", event.task.value()),
                    "scheduler", SchedulerTid(), event.tick);
      break;
  }
}

void RunTracer::WriteChromeDocument(Tick end) {
  // Close anything still open at the end of the run. The open sets are
  // hash maps; emit in sorted key order so the document bytes are a pure
  // function of the run, not of the hash layout.
  std::vector<std::uint32_t> open_ids;
  open_ids.reserve(open_tasks_.size());
  // lint: allow(unordered-writer-iteration) — keys sorted before emitting
  for (const auto& kv : open_tasks_) open_ids.push_back(kv.first);
  std::sort(open_ids.begin(), open_ids.end());
  for (const std::uint32_t task : open_ids) {
    ChromeCloseTask(TaskId{task}, open_tasks_.at(task), end,
                    /*killed=*/false);
  }
  open_tasks_.clear();
  std::vector<std::uint32_t> down_ids;
  down_ids.reserve(down_since_.size());
  // lint: allow(unordered-writer-iteration) — keys sorted before emitting
  for (const auto& kv : down_since_) down_ids.push_back(kv.first);
  std::sort(down_ids.begin(), down_ids.end());
  for (const std::uint32_t node : down_ids) {
    const Tick since = down_since_.at(node);
    if (end > since) ChromeSpan("DOWN", "fault", node, since, end - since);
    if (node < node_seen_.size()) node_seen_[node] = true;
  }
  down_since_.clear();

  out_ << "{\n\"traceEvents\": [\n";
  bool first = true;
  // Track metadata: one named process, one named thread per active node,
  // plus the scheduler track. Ticks map 1:1 onto trace-event microseconds.
  auto emit = [&](const std::string& line) {
    if (!first) out_ << ",\n";
    first = false;
    out_ << line;
  };
  emit(Format(
      "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
      "\"args\": {{\"name\": \"dreamsim {} (seed {})\"}}}}",
      JsonEscape(info_.mode), info_.seed));
  for (std::size_t node = 0; node < node_seen_.size(); ++node) {
    if (!node_seen_[node]) continue;
    emit(Format(
        "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": {}, \"args\": {{\"name\": \"node {}\"}}}}",
        node, node));
  }
  emit(Format(
      "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {}, "
      "\"args\": {{\"name\": \"scheduler\"}}}}",
      SchedulerTid()));
  for (const std::string& line : chrome_events_) emit(line);
  chrome_events_.clear();
  out_ << Format(
      "\n],\n\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {{\"label\": \"{}\", \"mode\": \"{}\", \"seed\": {}, "
      "\"nodes\": {}, \"end_tick\": {}}}\n}}\n",
      JsonEscape(info_.label), JsonEscape(info_.mode), info_.seed,
      info_.nodes, end);
}

}  // namespace dreamsim::obs
