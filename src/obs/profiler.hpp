// Scheduler phase profiler (observability layer, DESIGN.md §11).
//
// Scoped host-side wall-clock timers over the four Fig. 5 scheduling phases,
// the per-completion suspension-queue drain, and the StoreIndex /
// SusQueueIndex query surfaces. The profiler measures *host* time only — it
// never touches the WorkloadMeter, so the paper's modeled-effort metrics are
// unaffected by profiling (the §9 contract).
//
// The hot path is header-only on purpose: the hooks compile into any layer
// (resource, sched, core) without a link dependency on dreamsim_obs, and
// when profiling is disabled a hook costs one relaxed atomic load plus a
// predictable branch — no clock read, no allocation (the "~0% disabled"
// gate in bench/bench_obs). Report rendering lives in profiler.cpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace dreamsim::obs {

/// Profiled code regions. The first five mirror sched::PlacementKind (the
/// case-study phases of Fig. 5); the rest are the hot query surfaces.
enum class ProfPhase : std::uint8_t {
  kAllocation = 0,          // phase 1: idle entry with the wanted config
  kConfiguration,           // phase 2: blank node configured
  kPartialConfiguration,    // phase 3: spare area configured
  kPartialReconfiguration,  // phase 4: Algorithm 1 reclaim + configure
  kFullReconfiguration,     // full mode phase 3: wipe + configure
  kSuspensionDrain,         // per-completion queue drain (all modes)
  kStoreQuery,              // ResourceStore counted scheduler queries
  kSusQueueQuery,           // SuspensionQueue indexed drain queries
};

inline constexpr std::size_t kProfPhaseCount = 8;

[[nodiscard]] std::string_view ToString(ProfPhase phase);

/// Process-global accumulator of per-phase call counts and wall-time
/// histograms. All counters are relaxed atomics so parallel sweeps can
/// record concurrently; readers (Report/stats) are meant for quiescent
/// post-run use.
class PhaseProfiler {
 public:
  /// Log2-spaced duration bins: bin 0 counts 0 ns; bin i (i >= 1) counts
  /// durations in [2^(i-1), 2^i) ns; the last bin saturates.
  static constexpr std::size_t kBins = 24;

  /// Snapshot of one phase's accumulated statistics.
  struct PhaseStats {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBins> bins{};
    [[nodiscard]] double mean_ns() const {
      return calls == 0 ? 0.0
                        : static_cast<double>(total_ns) /
                              static_cast<double>(calls);
    }
  };

  [[nodiscard]] static PhaseProfiler& Instance() {
    static PhaseProfiler profiler;
    return profiler;
  }

  /// Global on/off switch; hooks are inert (no clock read) while disabled.
  static void SetEnabled(bool on) {
    EnabledFlag().store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return EnabledFlag().load(std::memory_order_relaxed);
  }

  static constexpr std::size_t BinOf(std::uint64_t ns) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(ns));
    return width < kBins ? width : kBins - 1;
  }

  void Record(ProfPhase phase, std::uint64_t ns) {
    Slot& slot = slots_[static_cast<std::size_t>(phase)];
    slot.calls.fetch_add(1, std::memory_order_relaxed);
    slot.total_ns.fetch_add(ns, std::memory_order_relaxed);
    slot.bins[BinOf(ns)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = slot.max_ns.load(std::memory_order_relaxed);
    while (seen < ns && !slot.max_ns.compare_exchange_weak(
                            seen, ns, std::memory_order_relaxed)) {
    }
  }

  /// Zeroes every phase (call between runs that should report separately).
  void Reset() {
    for (Slot& slot : slots_) {
      slot.calls.store(0, std::memory_order_relaxed);
      slot.total_ns.store(0, std::memory_order_relaxed);
      slot.max_ns.store(0, std::memory_order_relaxed);
      for (auto& bin : slot.bins) bin.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] PhaseStats stats(ProfPhase phase) const {
    const Slot& slot = slots_[static_cast<std::size_t>(phase)];
    PhaseStats out;
    out.calls = slot.calls.load(std::memory_order_relaxed);
    out.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    out.max_ns = slot.max_ns.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBins; ++i) {
      out.bins[i] = slot.bins[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Human-readable per-phase table (counts, total/mean/max, histogram);
  /// defined in profiler.cpp.
  [[nodiscard]] std::string Report() const;

  /// Machine-readable form of Report() (one object per phase).
  void WriteJson(std::ostream& out) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kBins> bins{};
  };

  [[nodiscard]] static std::atomic<bool>& EnabledFlag() {
    static std::atomic<bool> enabled{false};
    return enabled;
  }

  std::array<Slot, kProfPhaseCount> slots_{};
};

/// RAII hook: samples the clock only when profiling is enabled at
/// construction, and records the elapsed wall time on destruction.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(ProfPhase phase) {
    if (PhaseProfiler::enabled()) {
      armed_ = true;
      phase_ = phase;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedPhaseTimer() {
    if (armed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count();
      PhaseProfiler::Instance().Record(
          phase_, ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  bool armed_ = false;
  ProfPhase phase_{};
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dreamsim::obs
