// Exposition for the live metrics registry (DESIGN.md §16): JSONL
// snapshots, Prometheus text exposition 0.0.4, and the human-readable block
// the CLI embeds under the MetricsReport. Schemas in docs/formats.md
// ("Metrics snapshots").
//
// The renderers emit metrics in catalogue order with cells merged in fixed
// shard order (MetricsRegistry::TakeSnapshot), so the rendered bytes of the
// model plane are a pure function of (seed, config) — test_metrics_diff
// pins this across shard and thread counts. Host-plane metrics (wall-clock
// timings, shard load) can be excluded with `include_host = false`.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace dreamsim::obs {

enum class MetricsFormat : std::uint8_t { kJson, kProm };

[[nodiscard]] std::string_view ToString(MetricsFormat format);
/// Parses "json" / "prom"; nullopt on anything else.
[[nodiscard]] std::optional<MetricsFormat> ParseMetricsFormat(
    std::string_view name);

/// One snapshot as a single JSON object (no trailing newline). `tick` and
/// `seq` label the snapshot; `final` marks the end-of-run snapshot.
[[nodiscard]] std::string RenderMetricsJson(const MetricsSnapshot& snap,
                                            Tick tick, std::uint64_t seq,
                                            bool final,
                                            bool include_host = true);

/// Full Prometheus text exposition (version 0.0.4): HELP + TYPE + samples
/// per catalogued metric, `dreamsim_` prefix, histogram `_bucket/_sum/
/// _count` series, per-shard series with a `shard` label.
[[nodiscard]] std::string RenderMetricsProm(const MetricsSnapshot& snap,
                                            bool include_host = true);

/// Human-readable block for the run report: non-zero scalars plus
/// count/mean/max per histogram.
[[nodiscard]] std::string RenderMetricsBlock(const MetricsSnapshot& snap);

/// Streams registry snapshots to a file while a run executes. Wire as an
/// event logger next to the RunTracer:
///   sim.SetEventLogger([&w](const core::SimEvent& e) { w.OnEvent(e); });
//
/// With the JSON format, a snapshot line is appended at the first event at
/// or after each `interval`-tick boundary, plus a final snapshot on
/// Finish(). The Prometheus format is scrape-oriented (one document, not a
/// stream): OnEvent only tracks time and Finish() writes the end-of-run
/// exposition. Pure observer either way.
class MetricsSnapshotWriter {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  MetricsSnapshotWriter(const std::string& path, MetricsFormat format,
                        Tick interval);
  ~MetricsSnapshotWriter();

  MetricsSnapshotWriter(const MetricsSnapshotWriter&) = delete;
  MetricsSnapshotWriter& operator=(const MetricsSnapshotWriter&) = delete;

  void OnEvent(const core::SimEvent& event);

  /// Writes the final snapshot (JSON) or the exposition document (prom)
  /// and flushes. Idempotent; the destructor calls it with the last seen
  /// tick if the caller did not.
  void Finish(Tick end);

  [[nodiscard]] std::size_t snapshots_written() const { return snapshots_; }

 private:
  std::ofstream out_ GUARDED_BY(role_);
  MetricsFormat format_;
  Tick interval_;
  Tick last_tick_ = 0;
  /// Next interval boundary to snapshot at; the hot path is one tick
  /// comparison (no division per event).
  Tick next_boundary_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t snapshots_ = 0;
  bool finished_ = false;
  /// Single-writer contract (DESIGN.md §17): the simulation thread owns
  /// the snapshot stream; OnEvent/Finish assert the role.
  util::ThreadRole role_;
};

}  // namespace dreamsim::obs
