// Scenario files: a parsed plain-text description of one simulation setup.
//
// A scenario names the FPGA device families (count, Eq. 4 area range,
// reconfiguration-port bandwidth, bitstream-store capacity), the
// configuration catalogue, and the concurrent task classes — each with its
// own arrival process (steady / bursty / windowed), budget, graph mix, and
// seed stream. It compiles to a plain SimulationConfig (device_classes /
// task_classes filled), so the core never depends on this library.
//
// Format (docs/formats.md has the grammar):
//
//   # Table II, verbatim
//   simulation: {
//     name: table2-baseline
//     seed: 42
//     mode: partial
//   }
//   device class: {
//     name: uniform-fabric
//     count: 200
//     area: [1000, 4000]
//   }
//   task class: {
//     name: steady
//     count: 1000
//     interval: [1, 50]
//   }
//
// Every key has a Table II default, so minimal scenarios stay minimal.
// Runtime knobs (shards, audit, monitoring, indexes) are deliberately NOT
// part of the grammar: they never change results, so they stay CLI-owned
// and two runs of one scenario hash identically regardless of them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/sim_config.hpp"
#include "util/expected.hpp"

namespace dreamsim::scenario {

/// One parser diagnostic, anchored to a 1-based source line (0 = a
/// whole-file problem, e.g. a block left open at end of input).
struct ScenarioError {
  int line = 0;
  std::string message;
};

/// Renders diagnostics one per line as "line N: message".
[[nodiscard]] std::string Render(const std::vector<ScenarioError>& errors);

/// A parsed scenario: the declared name plus the SimulationConfig it
/// compiles to. `config.scenario_name` / `config.scenario_hash` carry the
/// scenario identity into reports.
struct ScenarioSpec {
  std::string name;
  core::SimulationConfig config;
};

using ParseResult = Expected<ScenarioSpec, std::vector<ScenarioError>>;

/// Parses scenario text. On failure returns every diagnostic found (the
/// parser recovers per line, so one pass reports all problems).
[[nodiscard]] ParseResult ParseScenario(std::string_view text);

/// Reads and parses a scenario file. An unreadable file reports one
/// line-0 diagnostic.
[[nodiscard]] ParseResult ParseScenarioFile(const std::string& path);

/// Canonical re-serialization: fixed block order (simulation,
/// configurations, device classes, task classes), fixed key order within
/// each block, every default filled in, comments and incidental whitespace
/// dropped. Parsing the canonical form reproduces the spec exactly (a
/// fixed point), which tests/test_scenario_roundtrip.cpp pins.
[[nodiscard]] std::string CanonicalScenario(const ScenarioSpec& spec);

/// Stable scenario identity: FNV-1a 64 over CanonicalScenario(), as 16
/// lowercase hex digits. Invariant under comments, whitespace, and key
/// order by construction; intended as a sweep/daemon cache key.
[[nodiscard]] std::string ScenarioHash(const ScenarioSpec& spec);

}  // namespace dreamsim::scenario
