#include "scenario/scenario.hpp"

#include <charconv>
#include <cstdint>

#include "util/fmt.hpp"

namespace dreamsim::scenario {
namespace {

/// Shortest round-trip rendering (std::to_chars), so parse -> serialize is
/// a fixed point for every representable value.
std::string Real(double v) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string_view ModeToken(sched::ReconfigMode mode) {
  return mode == sched::ReconfigMode::kFull ? "full" : "partial";
}

std::string_view PolicyToken(core::PolicyChoice choice) {
  switch (choice) {
    case core::PolicyChoice::kDreamSim: return "dreamsim";
    case core::PolicyChoice::kFirstFit: return "first-fit";
    case core::PolicyChoice::kBestFit: return "best-fit";
    case core::PolicyChoice::kWorstFit: return "worst-fit";
    case core::PolicyChoice::kRandomFit: return "random-fit";
    case core::PolicyChoice::kRoundRobin: return "round-robin";
    case core::PolicyChoice::kLeastLoaded: return "least-loaded";
  }
  return "dreamsim";
}

std::string_view PlacementToken(const resource::DeviceClassParams& p) {
  if (!p.contiguous_placement) return "scalar";
  switch (p.placement) {
    case resource::Placement::kFirstFit: return "first-fit";
    case resource::Placement::kBestFit: return "best-fit";
    case resource::Placement::kWorstFit: return "worst-fit";
  }
  return "first-fit";
}

std::string_view ShapeToken(workload::ArrivalShape shape) {
  switch (shape) {
    case workload::ArrivalShape::kSteady: return "steady";
    case workload::ArrivalShape::kBursty: return "bursty";
    case workload::ArrivalShape::kWindowed: return "windowed";
  }
  return "steady";
}

std::string_view ProcessToken(workload::ArrivalProcess process) {
  switch (process) {
    case workload::ArrivalProcess::kUniform: return "uniform";
    case workload::ArrivalProcess::kPoisson: return "poisson";
    case workload::ArrivalProcess::kConstant: return "constant";
  }
  return "uniform";
}

}  // namespace

std::string CanonicalScenario(const ScenarioSpec& spec) {
  const core::SimulationConfig& c = spec.config;
  std::string out;
  out += "simulation: {\n";
  out += Format("  name: {}\n", spec.name.empty() ? "scenario" : spec.name);
  out += Format("  seed: {}\n", c.seed);
  out += Format("  mode: {}\n", ModeToken(c.mode));
  out += Format("  policy: {}\n", PolicyToken(c.policy));
  out += Format("  ship bitstreams: {}\n", c.ship_bitstreams ? "on" : "off");
  out += Format("  bitstream cache: {}\n", c.bitstream_cache_capacity);
  out += Format("  closest match slowdown: {}\n",
                Real(c.closest_match_slowdown));
  out += "}\n";
  out += "configurations: {\n";
  out += Format("  count: {}\n", c.configs.count);
  out += Format("  area: [{}, {}]\n", c.configs.min_area, c.configs.max_area);
  out += Format("  config time: [{}, {}]\n", c.configs.min_config_time,
                c.configs.max_config_time);
  if (c.configs.ptypes.empty()) {
    out += "  ptypes: all\n";
  } else {
    out += "  ptypes:";
    for (const std::string& name : c.configs.ptypes) {
      out += ' ';
      out += name;
    }
    out += '\n';
  }
  out += "}\n";
  for (const resource::DeviceClassParams& d : c.device_classes) {
    out += "device class: {\n";
    out += Format("  name: {}\n", d.name);
    out += Format("  count: {}\n", d.count);
    out += Format("  area: [{}, {}]\n", d.min_area, d.max_area);
    out += Format("  config bandwidth: {}\n", d.config_bandwidth);
    out += Format("  network delay: [{}, {}]\n", d.min_network_delay,
                  d.max_network_delay);
    out += d.bitstream_store < 0
               ? std::string("  bitstream store: inherit\n")
               : Format("  bitstream store: {}\n", d.bitstream_store);
    out += Format("  placement: {}\n", PlacementToken(d));
    out += "}\n";
  }
  for (const workload::TaskClassParams& t : c.task_classes) {
    out += "task class: {\n";
    out += Format("  name: {}\n", t.name);
    out += Format("  count: {}\n", t.base.total_tasks);
    out += Format("  arrivals: {}\n", ShapeToken(t.shape));
    out += Format("  process: {}\n", ProcessToken(t.base.arrivals));
    out += Format("  interval: [{}, {}]\n", t.base.min_interval,
                  t.base.max_interval);
    out += Format("  required time: [{}, {}]\n", t.base.min_required_time,
                  t.base.max_required_time);
    out += Format("  closest match: {}\n",
                  Real(t.base.closest_match_fraction));
    out += Format("  unknown area: [{}, {}]\n", t.base.unknown_min_area,
                  t.base.unknown_max_area);
    out += Format("  data size: [{}, {}]\n", t.base.min_data_size,
                  t.base.max_data_size);
    out += Format("  start time: {}\n", t.start_time);
    out += Format("  end time: {}\n", t.end_time);
    out += Format("  burst size: [{}, {}]\n", t.min_burst, t.max_burst);
    out += Format("  burst gap: [{}, {}]\n", t.min_burst_gap, t.max_burst_gap);
    out += Format("  priority: [{}, {}]\n", Real(t.min_priority),
                  Real(t.max_priority));
    out += Format("  graph fraction: {}\n", Real(t.graph_fraction));
    out += Format("  chain length: [{}, {}]\n", t.min_chain, t.max_chain);
    // An explicit class seed of 0 means "derive from the class index", and
    // the parser rejects a literal 0, so the default is expressed by
    // omission.
    if (t.seed != 0) out += Format("  seed: {}\n", t.seed);
    out += "}\n";
  }
  return out;
}

std::string ScenarioHash(const ScenarioSpec& spec) {
  const std::string canonical = CanonicalScenario(spec);
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  for (const char ch : canonical) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = "0123456789abcdef"[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

}  // namespace dreamsim::scenario
