#include "scenario/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>

#include "ptype/catalogue.hpp"
#include "util/fmt.hpp"

namespace dreamsim::scenario {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseI64(std::string_view s, std::int64_t& out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

bool ParseU64(std::string_view s, std::uint64_t& out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

bool ParseReal(std::string_view s, double& out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

/// `[lo, hi]` with integer endpoints.
bool ParseRange(std::string_view s, std::int64_t& lo, std::int64_t& hi) {
  s = Trim(s);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') return false;
  s = s.substr(1, s.size() - 2);
  const std::size_t comma = s.find(',');
  if (comma == std::string_view::npos) return false;
  return ParseI64(s.substr(0, comma), lo) && ParseI64(s.substr(comma + 1), hi);
}

/// `[lo, hi]` with real endpoints.
bool ParseRealRange(std::string_view s, double& lo, double& hi) {
  s = Trim(s);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') return false;
  s = s.substr(1, s.size() - 2);
  const std::size_t comma = s.find(',');
  if (comma == std::string_view::npos) return false;
  return ParseReal(s.substr(0, comma), lo) &&
         ParseReal(s.substr(comma + 1), hi);
}

bool ParseBool(std::string_view s, bool& out) {
  s = Trim(s);
  if (s == "on" || s == "true" || s == "yes") return out = true, true;
  if (s == "off" || s == "false" || s == "no") return out = false, true;
  return false;
}

/// Names are single tokens so the canonical form needs no quoting.
bool ValidName(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

enum class BlockKind : std::uint8_t {
  kSimulation,
  kConfigurations,
  kDeviceClass,
  kTaskClass,
  kUnknown,  // error already reported; body consumed for recovery
};

struct ParsedDeviceClass {
  resource::DeviceClassParams params;
  int line = 0;  // header line, for semantic diagnostics
};

struct ParsedTaskClass {
  workload::TaskClassParams params;
  int line = 0;
};

class Parser {
 public:
  ParseResult Parse(std::string_view text) {
    int line_no = 0;
    while (!text.empty()) {
      const std::size_t eol = text.find('\n');
      std::string_view line = eol == std::string_view::npos
                                  ? text
                                  : text.substr(0, eol);
      text = eol == std::string_view::npos ? std::string_view{}
                                           : text.substr(eol + 1);
      ++line_no;
      const std::size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      line = Trim(line);
      if (line.empty()) continue;
      HandleLine(line, line_no);
    }
    if (in_block_) {
      Error(block_line_,
            Format("'{}' block is never closed ('}}' missing before end of "
                   "input)",
                   BlockName(block_)));
    } else if (pending_open_) {
      Error(block_line_,
            Format("'{}' header is never opened ('{{' missing before end of "
                   "input)",
                   BlockName(block_)));
    }
    Finish();
    if (!errors_.empty()) return Err(std::move(errors_));
    return Compile();
  }

 private:
  void Error(int line, std::string message) {
    errors_.push_back(ScenarioError{line, std::move(message)});
  }

  static std::string_view BlockName(BlockKind kind) {
    switch (kind) {
      case BlockKind::kSimulation: return "simulation";
      case BlockKind::kConfigurations: return "configurations";
      case BlockKind::kDeviceClass: return "device class";
      case BlockKind::kTaskClass: return "task class";
      case BlockKind::kUnknown: return "?";
    }
    return "?";
  }

  void HandleLine(std::string_view line, int line_no) {
    if (pending_open_) {
      pending_open_ = false;
      if (line == "{") {
        EnterBlock(line_no);
        return;
      }
      Error(line_no, Format("expected '{{' to open the '{}:' block",
                            BlockName(block_)));
      // Fall through: maybe this line is already an entry or a new header.
      in_block_ = true;
      EnterBlock(block_line_);
    }
    if (in_block_) {
      if (line == "}") {
        CloseBlock(line_no);
        return;
      }
      if (line.back() == '{' && line.find(':') == std::string_view::npos) {
        Error(line_no, "unexpected '{' inside a block");
        return;
      }
      HandleEntry(line, line_no);
      return;
    }
    // Outside any block: expect `header:` or `header: {`.
    bool open_now = false;
    std::string_view header = line;
    if (header.back() == '{') {
      header = Trim(header.substr(0, header.size() - 1));
      open_now = true;
    }
    if (header.empty() || header.back() != ':') {
      Error(line_no,
            Format("expected a block header ('simulation:', "
                   "'configurations:', 'device class:' or 'task class:'), "
                   "got '{}'",
                   line));
      return;
    }
    header = Trim(header.substr(0, header.size() - 1));
    block_line_ = line_no;
    if (header == "simulation") {
      block_ = BlockKind::kSimulation;
      if (seen_simulation_) {
        Error(line_no, "duplicate 'simulation:' block");
        block_ = BlockKind::kUnknown;
      }
      seen_simulation_ = true;
    } else if (header == "configurations") {
      block_ = BlockKind::kConfigurations;
      if (seen_configurations_) {
        Error(line_no, "duplicate 'configurations:' block");
        block_ = BlockKind::kUnknown;
      }
      seen_configurations_ = true;
    } else if (header == "device class") {
      block_ = BlockKind::kDeviceClass;
    } else if (header == "task class") {
      block_ = BlockKind::kTaskClass;
    } else {
      Error(line_no, Format("unknown block '{}:'", header));
      block_ = BlockKind::kUnknown;
    }
    if (open_now) {
      EnterBlock(line_no);
    } else {
      pending_open_ = true;
    }
  }

  void EnterBlock(int line_no) {
    in_block_ = true;
    pending_open_ = false;
    seen_keys_.clear();
    if (block_ == BlockKind::kDeviceClass) {
      device_ = ParsedDeviceClass{};
      device_.line = block_line_ == 0 ? line_no : block_line_;
    } else if (block_ == BlockKind::kTaskClass) {
      task_ = ParsedTaskClass{};
      task_.line = block_line_ == 0 ? line_no : block_line_;
    }
  }

  void CloseBlock(int line_no) {
    in_block_ = false;
    if (block_ == BlockKind::kDeviceClass) {
      CommitDeviceClass(line_no);
    } else if (block_ == BlockKind::kTaskClass) {
      CommitTaskClass(line_no);
    }
  }

  void CommitDeviceClass(int line_no) {
    const int at = device_.line;
    resource::DeviceClassParams& p = device_.params;
    if (p.name.empty()) {
      Error(at, "device class needs a 'name:'");
      p.name = Format("device-class-{}", device_classes_.size());
    } else if (!device_names_.insert(p.name).second) {
      Error(at, Format("duplicate device class name '{}'", p.name));
    }
    if (!seen_keys_.contains("count")) {
      Error(at, Format("device class '{}' needs a 'count:'", p.name));
    } else if (p.count <= 0) {
      Error(at, Format("device class '{}' has a non-positive count", p.name));
    }
    if (p.min_area <= 0 || p.min_area > p.max_area) {
      Error(at, Format("device class '{}' has an invalid area range [{}, {}]",
                       p.name, p.min_area, p.max_area));
    }
    if (p.config_bandwidth <= 0) {
      Error(at, Format("device class '{}' needs a positive config bandwidth",
                       p.name));
    }
    if (p.min_network_delay < 0 || p.min_network_delay > p.max_network_delay) {
      Error(at, Format("device class '{}' has an invalid network delay range",
                       p.name));
    }
    (void)line_no;
    device_classes_.push_back(std::move(device_));
  }

  void CommitTaskClass(int line_no) {
    const int at = task_.line;
    workload::TaskClassParams& p = task_.params;
    if (p.name.empty()) {
      Error(at, "task class needs a 'name:'");
      p.name = Format("task-class-{}", task_classes_.size());
    } else if (!task_names_.insert(p.name).second) {
      Error(at, Format("duplicate task class name '{}'", p.name));
    }
    for (const std::string& violation : workload::ValidateTaskClass(p)) {
      Error(at, violation);
    }
    (void)line_no;
    task_classes_.push_back(std::move(task_));
  }

  void HandleEntry(std::string_view line, int line_no) {
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      Error(line_no,
            Format("expected 'key: value' or '}', got '{}'", line));
      return;
    }
    const std::string key{Trim(line.substr(0, colon))};
    const std::string_view value = Trim(line.substr(colon + 1));
    if (key.empty()) {
      Error(line_no, "empty key");
      return;
    }
    if (value.empty()) {
      Error(line_no, Format("key '{}' has no value", key));
      return;
    }
    if (!seen_keys_.insert(key).second) {
      Error(line_no, Format("duplicate key '{}' in '{}:' block", key,
                            BlockName(block_)));
      return;
    }
    switch (block_) {
      case BlockKind::kSimulation:
        SimulationEntry(key, value, line_no);
        break;
      case BlockKind::kConfigurations:
        ConfigurationsEntry(key, value, line_no);
        break;
      case BlockKind::kDeviceClass:
        DeviceClassEntry(key, value, line_no);
        break;
      case BlockKind::kTaskClass:
        TaskClassEntry(key, value, line_no);
        break;
      case BlockKind::kUnknown:
        break;  // recovery: consume silently, the header already errored
    }
  }

  // --- typed value helpers (each reports its own diagnostic) ---

  bool WantI64(const std::string& key, std::string_view value, int line_no,
               std::int64_t& out) {
    if (ParseI64(value, out)) return true;
    Error(line_no,
          Format("key '{}': expected an integer, got '{}'", key, value));
    return false;
  }

  bool WantU64(const std::string& key, std::string_view value, int line_no,
               std::uint64_t& out) {
    if (ParseU64(value, out)) return true;
    Error(line_no, Format("key '{}': expected a non-negative integer, got "
                          "'{}'",
                          key, value));
    return false;
  }

  bool WantReal(const std::string& key, std::string_view value, int line_no,
                double& out) {
    if (ParseReal(value, out)) return true;
    Error(line_no,
          Format("key '{}': expected a number, got '{}'", key, value));
    return false;
  }

  bool WantRange(const std::string& key, std::string_view value, int line_no,
                 std::int64_t& lo, std::int64_t& hi) {
    if (ParseRange(value, lo, hi)) return true;
    Error(line_no,
          Format("key '{}': expected a range '[lo, hi]', got '{}'", key,
                 value));
    return false;
  }

  bool WantRealRange(const std::string& key, std::string_view value,
                     int line_no, double& lo, double& hi) {
    if (ParseRealRange(value, lo, hi)) return true;
    Error(line_no,
          Format("key '{}': expected a range '[lo, hi]', got '{}'", key,
                 value));
    return false;
  }

  bool WantBool(const std::string& key, std::string_view value, int line_no,
                bool& out) {
    if (ParseBool(value, out)) return true;
    Error(line_no,
          Format("key '{}': expected on/off, got '{}'", key, value));
    return false;
  }

  bool WantName(const std::string& key, std::string_view value, int line_no,
                std::string& out) {
    if (ValidName(value)) {
      out = std::string(value);
      return true;
    }
    Error(line_no,
          Format("key '{}': names are single tokens of [A-Za-z0-9_.-], got "
                 "'{}'",
                 key, value));
    return false;
  }

  void UnknownKey(const std::string& key, int line_no) {
    Error(line_no, Format("unknown key '{}' in '{}:' block", key,
                          BlockName(block_)));
  }

  // --- block entry dispatch ---

  void SimulationEntry(const std::string& key, std::string_view value,
                       int line_no) {
    std::int64_t i = 0;
    double d = 0.0;
    if (key == "name") {
      (void)WantName(key, value, line_no, name_);
    } else if (key == "seed") {
      (void)WantU64(key, value, line_no, config_.seed);
    } else if (key == "mode") {
      if (value == "full") {
        config_.mode = sched::ReconfigMode::kFull;
      } else if (value == "partial") {
        config_.mode = sched::ReconfigMode::kPartial;
      } else {
        Error(line_no,
              Format("key 'mode': expected full or partial, got '{}'", value));
      }
    } else if (key == "policy") {
      if (value == "dreamsim") {
        config_.policy = core::PolicyChoice::kDreamSim;
      } else if (value == "first-fit") {
        config_.policy = core::PolicyChoice::kFirstFit;
      } else if (value == "best-fit") {
        config_.policy = core::PolicyChoice::kBestFit;
      } else if (value == "worst-fit") {
        config_.policy = core::PolicyChoice::kWorstFit;
      } else if (value == "random-fit") {
        config_.policy = core::PolicyChoice::kRandomFit;
      } else if (value == "round-robin") {
        config_.policy = core::PolicyChoice::kRoundRobin;
      } else if (value == "least-loaded") {
        config_.policy = core::PolicyChoice::kLeastLoaded;
      } else {
        Error(line_no, Format("key 'policy': unknown policy '{}'", value));
      }
    } else if (key == "ship bitstreams") {
      (void)WantBool(key, value, line_no, config_.ship_bitstreams);
    } else if (key == "bitstream cache") {
      if (WantI64(key, value, line_no, i)) {
        if (i < 0) {
          Error(line_no, "key 'bitstream cache': capacity must be >= 0");
        } else {
          config_.bitstream_cache_capacity = i;
        }
      }
    } else if (key == "closest match slowdown") {
      if (WantReal(key, value, line_no, d)) {
        if (d < 1.0) {
          Error(line_no, "key 'closest match slowdown': must be >= 1");
        } else {
          config_.closest_match_slowdown = d;
        }
      }
    } else {
      UnknownKey(key, line_no);
    }
  }

  void ConfigurationsEntry(const std::string& key, std::string_view value,
                           int line_no) {
    std::int64_t i = 0, lo = 0, hi = 0;
    if (key == "count") {
      if (WantI64(key, value, line_no, i)) {
        if (i <= 0 || i > (1 << 20)) {
          Error(line_no, "key 'count': configuration count must be in "
                         "[1, 1048576]");
        } else {
          config_.configs.count = static_cast<int>(i);
        }
      }
    } else if (key == "area") {
      if (WantRange(key, value, line_no, lo, hi)) {
        if (lo <= 0 || lo > hi) {
          Error(line_no, "key 'area': need 0 < lo <= hi");
        } else {
          config_.configs.min_area = lo;
          config_.configs.max_area = hi;
        }
      }
    } else if (key == "config time") {
      if (WantRange(key, value, line_no, lo, hi)) {
        if (lo <= 0 || lo > hi) {
          Error(line_no, "key 'config time': need 0 < lo <= hi");
        } else {
          config_.configs.min_config_time = lo;
          config_.configs.max_config_time = hi;
        }
      }
    } else if (key == "ptypes") {
      PtypesEntry(value, line_no);
    } else {
      UnknownKey(key, line_no);
    }
  }

  /// `ptypes: all` or a space-separated list of processor-type names from
  /// the default catalogue ("ptypes: mult32 systolic8x8"). Selection order
  /// is semantic (it is the Sample() order), so it is preserved.
  void PtypesEntry(std::string_view value, int line_no) {
    if (value == "all") {
      config_.configs.ptypes.clear();
      return;
    }
    const ptype::Catalogue all = ptype::Catalogue::Default();
    std::vector<std::string> names;
    std::string_view rest = value;
    while (!rest.empty()) {
      const std::size_t gap = rest.find_first_of(" \t");
      const std::string_view token = Trim(rest.substr(0, gap));
      rest = gap == std::string_view::npos ? std::string_view{}
                                           : Trim(rest.substr(gap + 1));
      if (token.empty()) continue;
      if (!all.FindByName(token).has_value()) {
        Error(line_no,
              Format("key 'ptypes': unknown processor type '{}'", token));
        return;
      }
      if (std::find(names.begin(), names.end(), token) != names.end()) {
        Error(line_no,
              Format("key 'ptypes': duplicate processor type '{}'", token));
        return;
      }
      names.emplace_back(token);
    }
    if (names.empty()) {
      Error(line_no, "key 'ptypes': expected 'all' or a list of type names");
      return;
    }
    config_.configs.ptypes = std::move(names);
  }

  void DeviceClassEntry(const std::string& key, std::string_view value,
                        int line_no) {
    resource::DeviceClassParams& p = device_.params;
    std::int64_t i = 0, lo = 0, hi = 0;
    if (key == "name") {
      (void)WantName(key, value, line_no, p.name);
    } else if (key == "count") {
      if (WantI64(key, value, line_no, i)) {
        if (i <= 0 || i > (1 << 24)) {
          Error(line_no,
                Format("key 'count': device count must be in [1, {}], got {}",
                       1 << 24, i));
        } else {
          p.count = static_cast<int>(i);
        }
      }
    } else if (key == "area") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.min_area = lo;
        p.max_area = hi;
      }
    } else if (key == "config bandwidth") {
      if (WantI64(key, value, line_no, i)) p.config_bandwidth = i;
    } else if (key == "network delay") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.min_network_delay = lo;
        p.max_network_delay = hi;
      }
    } else if (key == "bitstream store") {
      if (value == "inherit") {
        p.bitstream_store = -1;
      } else if (WantI64(key, value, line_no, i)) {
        if (i < 0) {
          Error(line_no,
                "key 'bitstream store': expected a capacity >= 0 or "
                "'inherit'");
        } else {
          p.bitstream_store = i;
        }
      }
    } else if (key == "placement") {
      if (value == "scalar") {
        p.contiguous_placement = false;
      } else if (value == "first-fit") {
        p.contiguous_placement = true;
        p.placement = resource::Placement::kFirstFit;
      } else if (value == "best-fit") {
        p.contiguous_placement = true;
        p.placement = resource::Placement::kBestFit;
      } else if (value == "worst-fit") {
        p.contiguous_placement = true;
        p.placement = resource::Placement::kWorstFit;
      } else {
        Error(line_no,
              Format("key 'placement': expected scalar, first-fit, best-fit "
                     "or worst-fit, got '{}'",
                     value));
      }
    } else {
      UnknownKey(key, line_no);
    }
  }

  void TaskClassEntry(const std::string& key, std::string_view value,
                      int line_no) {
    workload::TaskClassParams& p = task_.params;
    std::int64_t i = 0, lo = 0, hi = 0;
    double d = 0.0, dlo = 0.0, dhi = 0.0;
    if (key == "name") {
      (void)WantName(key, value, line_no, p.name);
    } else if (key == "count") {
      if (WantI64(key, value, line_no, i)) {
        if (i < 0 || i > (1 << 30)) {
          Error(line_no, "key 'count': task count must be in [0, 2^30]");
        } else {
          p.base.total_tasks = static_cast<int>(i);
        }
      }
    } else if (key == "arrivals") {
      if (value == "steady") {
        p.shape = workload::ArrivalShape::kSteady;
      } else if (value == "bursty") {
        p.shape = workload::ArrivalShape::kBursty;
      } else if (value == "windowed") {
        p.shape = workload::ArrivalShape::kWindowed;
      } else {
        Error(line_no,
              Format("key 'arrivals': expected steady, bursty or windowed, "
                     "got '{}'",
                     value));
      }
    } else if (key == "process") {
      if (value == "uniform") {
        p.base.arrivals = workload::ArrivalProcess::kUniform;
      } else if (value == "poisson") {
        p.base.arrivals = workload::ArrivalProcess::kPoisson;
      } else if (value == "constant") {
        p.base.arrivals = workload::ArrivalProcess::kConstant;
      } else {
        Error(line_no,
              Format("key 'process': expected uniform, poisson or constant, "
                     "got '{}'",
                     value));
      }
    } else if (key == "interval") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.base.min_interval = lo;
        p.base.max_interval = hi;
      }
    } else if (key == "required time") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.base.min_required_time = lo;
        p.base.max_required_time = hi;
      }
    } else if (key == "closest match") {
      if (WantReal(key, value, line_no, d)) p.base.closest_match_fraction = d;
    } else if (key == "unknown area") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.base.unknown_min_area = lo;
        p.base.unknown_max_area = hi;
      }
    } else if (key == "data size") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.base.min_data_size = lo;
        p.base.max_data_size = hi;
      }
    } else if (key == "start time") {
      if (WantI64(key, value, line_no, i)) p.start_time = i;
    } else if (key == "end time") {
      if (WantI64(key, value, line_no, i)) p.end_time = i;
    } else if (key == "burst size") {
      if (WantRange(key, value, line_no, lo, hi)) {
        if (lo < 0 || lo > (1 << 24) || hi < 0 || hi > (1 << 24)) {
          Error(line_no, "key 'burst size': endpoints must be in [0, 2^24]");
        } else {
          p.min_burst = static_cast<int>(lo);
          p.max_burst = static_cast<int>(hi);
        }
      }
    } else if (key == "burst gap") {
      if (WantRange(key, value, line_no, lo, hi)) {
        p.min_burst_gap = lo;
        p.max_burst_gap = hi;
      }
    } else if (key == "priority") {
      if (WantRealRange(key, value, line_no, dlo, dhi)) {
        p.min_priority = dlo;
        p.max_priority = dhi;
      }
    } else if (key == "graph fraction") {
      if (WantReal(key, value, line_no, d)) p.graph_fraction = d;
    } else if (key == "chain length") {
      if (WantRange(key, value, line_no, lo, hi)) {
        if (lo < 0 || lo > (1 << 20) || hi < 0 || hi > (1 << 20)) {
          Error(line_no, "key 'chain length': endpoints must be in [0, 2^20]");
        } else {
          p.min_chain = static_cast<int>(lo);
          p.max_chain = static_cast<int>(hi);
        }
      }
    } else if (key == "seed") {
      if (WantU64(key, value, line_no, p.seed)) {
        if (p.seed == 0) {
          Error(line_no,
                "key 'seed': explicit class seeds must be non-zero (0 means "
                "'derive from the class index')");
        }
      }
    } else {
      UnknownKey(key, line_no);
    }
  }

  void Finish() {
    // Cross-block semantic checks that need the full picture.
    std::int64_t total_nodes = 0;
    for (const ParsedDeviceClass& c : device_classes_) {
      total_nodes += c.params.count;
    }
    if (!device_classes_.empty() && total_nodes > (1 << 24)) {
      Error(device_classes_.front().line,
            Format("device classes declare {} nodes in total (max {})",
                   total_nodes, 1 << 24));
    }
  }

  ParseResult Compile() {
    ScenarioSpec spec;
    spec.name = name_.empty() ? "scenario" : name_;
    spec.config = std::move(config_);
    spec.config.device_classes.reserve(device_classes_.size());
    for (ParsedDeviceClass& c : device_classes_) {
      spec.config.device_classes.push_back(std::move(c.params));
    }
    spec.config.task_classes.reserve(task_classes_.size());
    for (ParsedTaskClass& c : task_classes_) {
      spec.config.task_classes.push_back(std::move(c.params));
    }
    // Heterogeneous families: configurations are synthesized round-robin
    // over the device classes (class index == FamilyId).
    if (!spec.config.device_classes.empty()) {
      spec.config.configs.family_count =
          static_cast<int>(spec.config.device_classes.size());
    }
    spec.config.label = spec.name;
    spec.config.scenario_name = spec.name;
    spec.config.scenario_hash = ScenarioHash(spec);
    return spec;
  }

  // Parse state.
  bool in_block_ = false;
  bool pending_open_ = false;
  BlockKind block_ = BlockKind::kUnknown;
  int block_line_ = 0;
  std::unordered_set<std::string> seen_keys_;
  bool seen_simulation_ = false;
  bool seen_configurations_ = false;

  // Accumulated results.
  std::vector<ScenarioError> errors_;
  std::string name_;
  core::SimulationConfig config_;
  ParsedDeviceClass device_;
  ParsedTaskClass task_;
  std::vector<ParsedDeviceClass> device_classes_;
  std::vector<ParsedTaskClass> task_classes_;
  std::unordered_set<std::string> device_names_;
  std::unordered_set<std::string> task_names_;
};

}  // namespace

std::string Render(const std::vector<ScenarioError>& errors) {
  std::string out;
  for (const ScenarioError& e : errors) {
    out += Format("line {}: {}\n", e.line, e.message);
  }
  return out;
}

ParseResult ParseScenario(std::string_view text) {
  Parser parser;
  return parser.Parse(text);
}

ParseResult ParseScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Err(std::vector<ScenarioError>{
        {0, Format("cannot read scenario file '{}'", path)}});
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str());
}

}  // namespace dreamsim::scenario
