#include "core/simulator.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "ptype/catalogue.hpp"
#include "sched/dreamsim_policy.hpp"
#include "sched/heuristic_policy.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace dreamsim::core {
namespace {

// Independent deterministic sub-streams derived from the run seed.
constexpr std::uint64_t kStreamWorkload = 1;
constexpr std::uint64_t kStreamResources = 2;
constexpr std::uint64_t kStreamPolicy = 3;
constexpr std::uint64_t kStreamNetwork = 4;
constexpr std::uint64_t kStreamFaults = 5;

resource::ConfigCatalogue BuildConfigs(const SimulationConfig& config,
                                       Rng& rng) {
  const ptype::Catalogue all = ptype::Catalogue::Default();
  if (config.configs.ptypes.empty()) {
    return resource::ConfigCatalogue::Generate(config.configs, all, rng);
  }
  // Scenario-selected subset: re-register the named types in the listed
  // order, so Sample() draws only from them (deterministically).
  ptype::Catalogue selected;
  for (const std::string& name : config.configs.ptypes) {
    const auto id = all.FindByName(name);
    if (!id.has_value()) {
      throw std::invalid_argument(
          Format("unknown processor type '{}' in config.configs.ptypes",
                 name));
    }
    selected.Register(all.Get(*id));
  }
  return resource::ConfigCatalogue::Generate(config.configs, selected, rng);
}

}  // namespace

std::unique_ptr<sched::Policy> MakePolicy(PolicyChoice choice,
                                          sched::ReconfigMode mode,
                                          std::uint64_t seed) {
  using sched::Heuristic;
  switch (choice) {
    case PolicyChoice::kDreamSim:
      return std::make_unique<sched::DreamSimPolicy>(mode);
    case PolicyChoice::kFirstFit:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kFirstFit,
                                                      seed);
    case PolicyChoice::kBestFit:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kBestFit,
                                                      seed);
    case PolicyChoice::kWorstFit:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kWorstFit,
                                                      seed);
    case PolicyChoice::kRandomFit:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kRandomFit,
                                                      seed);
    case PolicyChoice::kRoundRobin:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kRoundRobin,
                                                      seed);
    case PolicyChoice::kLeastLoaded:
      return std::make_unique<sched::HeuristicPolicy>(Heuristic::kLeastLoaded,
                                                      seed);
  }
  throw std::invalid_argument("unknown policy choice");
}

std::string_view ToString(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kArrival: return "arrival";
    case SimEvent::Kind::kPlaced: return "placed";
    case SimEvent::Kind::kSuspended: return "suspended";
    case SimEvent::Kind::kRequeued: return "requeued";
    case SimEvent::Kind::kDiscarded: return "discarded";
    case SimEvent::Kind::kCompleted: return "completed";
    case SimEvent::Kind::kKilled: return "killed";
    case SimEvent::Kind::kNodeFailed: return "node-failed";
    case SimEvent::Kind::kNodeRepaired: return "node-repaired";
  }
  return "?";
}

std::unique_ptr<sched::Policy> Simulator::MakePolicy() const {
  return core::MakePolicy(config_.policy, config_.mode,
                          DeriveSeed(config_.seed, kStreamPolicy));
}

Simulator::Simulator(SimulationConfig config)
    : config_(std::move(config)),
      rng_(DeriveSeed(config_.seed, kStreamWorkload)),
      store_([&] {
        Rng resource_rng(DeriveSeed(config_.seed, kStreamResources));
        return resource::ResourceStore(BuildConfigs(config_, resource_rng));
      }()),
      suspension_(config_.suspension_capacity),
      policy_(MakePolicy()),
      network_(config_.network, DeriveSeed(config_.seed, kStreamNetwork)),
      metrics_(config_.waste_accounting),
      info_(store_),
      monitor_(info_),
      jobs_(kernel_, tasks_),
      faults_(config_.faults, DeriveSeed(config_.seed, kStreamFaults)) {
  store_.SetIndexed(config_.scheduler_index);
  store_.SetShards(config_.shards, config_.kernel_threads, config_.shard_by);
  suspension_.SetDrainIndexed(config_.drain_index);
  if (config_.device_classes.empty()) {
    Rng resource_rng(DeriveSeed(config_.seed, kStreamResources) ^ 0x5bd1e995u);
    store_.InitNodes(config_.nodes, resource_rng);
  } else {
    store_.InitDeviceClasses(
        config_.device_classes,
        DeriveSeed(config_.seed, kStreamResources) ^ 0x5bd1e995u);
  }
  // Pre-reserve the hot-path containers from the configured problem size so
  // the steady state never reallocates: every task contributes one arrival
  // and at most one completion to the event heap (plus a bounded number of
  // control events), and the suspension FIFO never outgrows its capacity or
  // the task population.
  std::size_t expected_tasks = 0;
  if (!config_.task_classes.empty()) {
    for (const workload::TaskClassParams& c : config_.task_classes) {
      if (c.base.total_tasks > 0) {
        expected_tasks += static_cast<std::size_t>(c.base.total_tasks);
      }
    }
  } else if (config_.tasks.total_tasks > 0) {
    expected_tasks = static_cast<std::size_t>(config_.tasks.total_tasks);
  }
  if (expected_tasks > 0) {
    const std::size_t tasks = expected_tasks;
    kernel_.ReserveEvents(std::min<std::size_t>(2 * tasks + 64, 1u << 22));
    const std::size_t fifo_bound =
        config_.suspension_capacity > 0
            ? std::min(config_.suspension_capacity, tasks)
            : tasks;
    suspension_.Reserve(std::min<std::size_t>(fifo_bound, 1u << 20));
  }
  if (faults_.enabled()) {
    fault_process_events_.resize(store_.node_count());
    failed_since_.assign(store_.node_count(), kNoTick);
    fault_script_.reserve(faults_.params().script.size());
    for (const FaultEvent& e : faults_.params().script) {
      if (!e.node.valid() || e.node.value() >= store_.node_count()) {
        throw std::invalid_argument(
            Format("fault script names unknown node {}", e.node.value()));
      }
      fault_script_.push_back({e, {}, false});
    }
  }
  if (config_.ship_bitstreams) {
    bitstream_caches_.reserve(store_.node_count());
    for (std::size_t n = 0; n < store_.node_count(); ++n) {
      Bytes capacity = config_.bitstream_cache_capacity;
      if (!config_.device_classes.empty()) {
        // FamilyId == device-class index; a class's bitstream_store
        // overrides the run-wide capacity unless it inherits (< 0).
        const FamilyId family =
            store_.node(NodeId{static_cast<std::uint32_t>(n)}).family();
        const resource::DeviceClassParams& dc =
            config_.device_classes[family.value()];
        if (dc.bitstream_store >= 0) capacity = dc.bitstream_store;
      }
      bitstream_caches_.emplace_back(capacity);
    }
  }
}

Tick Simulator::BitstreamDelay(const resource::Node& node, ConfigId config) {
  if (!config_.ship_bitstreams) return 0;
  net::BitstreamCache& cache = bitstream_caches_[node.id().value()];
  const resource::Configuration& cfg = store_.configs().Get(config);
  if (cache.Lookup(config)) return 0;
  cache.Insert(config, cfg.bitstream_size);
  const Tick delay = network_.BitstreamTime(node, cfg.bitstream_size);
  bitstream_transfer_total_ += delay;
  return delay;
}

Simulator::CacheStats Simulator::bitstream_cache_stats() const {
  CacheStats stats;
  for (const net::BitstreamCache& cache : bitstream_caches_) {
    stats.hits += cache.hits();
    stats.misses += cache.misses();
  }
  return stats;
}

TaskId Simulator::SubmitTaskAt(const workload::GeneratedTask& task, Tick at) {
  // A submission into a fully drained system revives the fault processes
  // that NoteTerminal() shut down (graph sessions submit from hooks).
  const bool was_drained =
      faults_.enabled() && terminal_tasks_ >= submitted_tasks_;
  ++submitted_tasks_;
  const TaskId id =
      jobs_.SubmitOne(task, at, [this](TaskId tid) { HandleArrival(tid); });
  if (was_drained) {
    kernel_role_.AssertHeld();
    RearmFaults();
  }
  return id;
}

MetricsReport Simulator::Run() {
  if (!config_.task_classes.empty()) {
    const workload::MultiClassWorkload wl =
        workload::GenerateMultiClassWorkload(
            config_.task_classes, store_.configs(),
            DeriveSeed(config_.seed, kStreamWorkload));
    return RunMultiClass(wl);
  }
  const workload::Workload wl =
      workload::GenerateWorkload(config_.tasks, store_.configs(), rng_);
  return RunWithWorkload(wl);
}

MetricsReport Simulator::RunMultiClass(const workload::MultiClassWorkload& wl) {
  // Without chains the timeline is an ordinary workload; taking the exact
  // same submission path keeps the scenario-vs-flags differential trivial.
  if (wl.chains.empty()) return RunWithWorkload(wl.tasks);
  if (ran_) throw std::logic_error("Simulator instances are single-use");

  // Chain bookkeeping: map each in-flight chain task to its next link, and
  // release that link at the predecessor's completion tick (the same hook
  // discipline as the task-graph session).
  struct ChainCursor {
    std::size_t chain = 0;
    std::size_t next_link = 0;
  };
  std::unordered_map<TaskId, ChainCursor> cursors;
  cursors.reserve(wl.chains.size());
  std::function<void(TaskId, Tick)> inner = std::move(completion_hook_);
  SetCompletionHook([this, &wl, &cursors, inner](TaskId id, Tick now) {
    if (inner) inner(id, now);
    const auto it = cursors.find(id);
    if (it == cursors.end()) return;
    const ChainCursor cursor = it->second;
    cursors.erase(it);
    const workload::TaskChain& chain = wl.chains[cursor.chain];
    if (cursor.next_link >= chain.links.size()) return;
    const TaskId next = SubmitTaskAt(chain.links[cursor.next_link], now);
    cursors.emplace(next, ChainCursor{cursor.chain, cursor.next_link + 1});
  });

  // Chains are sorted by head_index, so one cursor pairs heads with their
  // timeline position while the timeline is submitted in order.
  std::size_t next_chain = 0;
  for (std::size_t i = 0; i < wl.tasks.size(); ++i) {
    const TaskId id = SubmitTaskAt(wl.tasks[i], wl.tasks[i].create_time);
    if (next_chain < wl.chains.size() &&
        wl.chains[next_chain].head_index == i) {
      cursors.emplace(id, ChainCursor{next_chain, 0});
      ++next_chain;
    }
  }
  return RunWithWorkload({});
}

analysis::AuditReport Simulator::AuditStructures() const {
  analysis::AuditReport report = analysis::StructureAuditor::AuditAll(
      store_, suspension_, kernel_.queue(), kernel_.now());
  // With the live registry on, also cross-check its counters against the
  // structures they observe (valid because the CLI/tests reset the registry
  // at run start, so it covers exactly this run).
  analysis::AuditReport metrics = analysis::StructureAuditor::AuditMetrics(
      store_, suspension_, kernel_.queue(), tasks_);
  report.violations.insert(
      report.violations.end(),
      std::make_move_iterator(metrics.violations.begin()),
      std::make_move_iterator(metrics.violations.end()));
  return report;
}

void Simulator::AuditAt(const char* where) {
  const analysis::AuditReport report = AuditStructures();
  if (report.ok()) return;
  throw std::logic_error(
      Format("structure audit failed after {}: {}", where, report.Render()));
}

MetricsReport Simulator::RunWithWorkload(const workload::Workload& wl) {
  if (ran_) throw std::logic_error("Simulator instances are single-use");
  ran_ = true;
  submitted_tasks_ += jobs_.Submit(wl, [this](TaskId id) { HandleArrival(id); });
  if (faults_.enabled() && submitted_tasks_ > terminal_tasks_) {
    kernel_role_.AssertHeld();
    RearmFaults();
  }
  (void)kernel_.Run();
  return FinishReport();
}

void Simulator::HandleArrival(TaskId id) {
  metrics_.OnTaskGenerated();
  Emit(SimEvent::Kind::kArrival, id);
  store_.meter().BeginTask();
  const sched::Outcome outcome = AttemptSchedule(id, /*is_arrival=*/true);
  if (outcome == sched::Outcome::kSuspend) {
    resource::Task& task = tasks_.Get(id);
    task.state = resource::TaskState::kSuspended;
    metrics_.OnSuspendedFirstTime();
    Emit(SimEvent::Kind::kSuspended, id);
    EnqueueSuspended(id);
  }
  ObserveState();
  MaybeAudit("arrival");
}

void Simulator::ObserveState() {
  const bool monitoring = config_.enable_monitoring;
  if (!monitoring && !state_observer_) return;
  const rms::SystemSnapshot snapshot = info_.Snapshot(kernel_.now());
  if (monitoring) monitor_.ObserveSnapshot(snapshot, suspension_.size());
  if (state_observer_) {
    StateSample sample;
    sample.tick = snapshot.at;
    sample.busy_nodes = snapshot.busy_nodes;
    sample.running_tasks = snapshot.running_tasks;
    sample.suspended_tasks = suspension_.size();
    sample.wasted_area = snapshot.wasted_area;
    sample.scheduler_steps = store_.meter().total_workload();
    sample.failed_nodes = store_.failed_node_count();
    state_observer_(sample);
  }
}

void Simulator::EmitExplain(TaskId id, bool is_arrival, sched::Outcome outcome,
                            const char* reason,
                            const sched::Decision* decision) {
  ExplainRecord record;
  record.task = id;
  record.tick = kernel_.now();
  record.is_arrival = is_arrival;
  record.outcome = outcome;
  record.reason = reason;
  if (decision != nullptr) {
    record.node = decision->entry.node;
    record.config = decision->config;
    record.kind = decision->kind;
    record.used_closest_match = decision->used_closest_match;
    record.config_time = decision->config_time;
    record.attempt_steps = store_.meter().current_task_steps();
  }
  record.queue_depth = suspension_.size();
  record.failed_nodes = store_.failed_node_count();
  obs::MetricInc(obs::MetricId::kExplainRecords);
  explain_observer_(record);
}

sched::Outcome Simulator::AttemptSchedule(TaskId id, bool is_arrival) {
  resource::Task& task = tasks_.Get(id);
  const sched::Decision decision = policy_->Schedule(task, store_);
  metrics_.OnScheduleAttempt(kernel_.now(), is_arrival, store_);
  if (decision.config.valid()) task.resolved_config = decision.config;
  if (ShouldExplain(id)) {
    const char* reason = "placed";
    if (decision.outcome == sched::Outcome::kSuspend) {
      reason = "busy-candidate-exists";
    } else if (decision.outcome == sched::Outcome::kDiscard) {
      reason = "no-feasible-host";
    }
    EmitExplain(id, is_arrival, decision.outcome, reason, &decision);
  }

  switch (decision.outcome) {
    case sched::Outcome::kPlaced: {
      const Tick now = kernel_.now();
      task.state = resource::TaskState::kRunning;
      task.assigned_config = decision.config;
      task.assigned_node = decision.entry.node;
      task.start_time = now;
      task.comm_time =
          network_.TransferTime(store_.node(decision.entry.node),
                                task.data_size);
      task.config_wait = decision.config_time;
      if (decision.config_time > 0) {
        // A fresh configuration was loaded: ship its bitstream unless the
        // node still has it cached.
        task.config_wait +=
            BitstreamDelay(store_.node(decision.entry.node), decision.config);
      }
      if (decision.used_closest_match) metrics_.OnClosestMatchUsed();
      if (decision.config_time > 0) {
        metrics_.OnConfigured(
            now, decision.config_time,
            store_.node(decision.entry.node).available_area(), store_);
        metrics_.OnWasteSignal(now, store_.TotalWastedArea());
      }
      metrics_.OnPlaced(decision);
      if (event_logger_) {
        SimEvent placed{SimEvent::Kind::kPlaced, now, id, decision.entry.node,
                        decision.config};
        placed.placement = decision.kind;
        placed.comm_time = task.comm_time;
        placed.config_wait = task.config_wait;
        event_logger_(placed);
      }
      // Running on the closest match instead of C_pref may be slower
      // (Eq. 3 defines t_required on the *preferred* configuration).
      Tick execution = task.required_time;
      if (decision.used_closest_match &&
          config_.closest_match_slowdown != 1.0) {
        execution = std::max<Tick>(
            1, static_cast<Tick>(static_cast<double>(execution) *
                                 config_.closest_match_slowdown));
      }
      const Tick span = task.comm_time + task.config_wait + execution;
      const resource::EntryRef entry = decision.entry;
      const sim::EventHandle completion =
          kernel_.ScheduleAfter(span, sim::EventPriority::kCompletion,
                                [this, id, entry] {
                                  HandleCompletion(id, entry);
                                });
      // Only a node failure ever needs to revoke a completion; fault-free
      // runs skip the handle bookkeeping entirely.
      if (faults_.enabled()) {
        if (completion_events_.size() <= id.value()) {
          completion_events_.resize(id.value() + 1);
        }
        completion_events_[id.value()] = completion;
      }
      DREAMSIM_LOG(LogLevel::kDebug,
                   "t={} task {} placed on node {} slot {} via {}", now,
                   id.value(), entry.node.value(), entry.slot,
                   sched::ToString(decision.kind));
      return decision.outcome;
    }
    case sched::Outcome::kSuspend:
      return decision.outcome;
    case sched::Outcome::kDiscard: {
      task.state = resource::TaskState::kDiscarded;
      metrics_.OnDiscarded();
      Emit(SimEvent::Kind::kDiscarded, id);
      NoteTerminal();
      DREAMSIM_LOG(LogLevel::kDebug, "t={} task {} discarded", kernel_.now(),
                   id.value());
      return decision.outcome;
    }
  }
  throw std::logic_error("unreachable scheduling outcome");
}

resource::SusEntryAttrs Simulator::SusAttrs(const resource::Task& task) const {
  resource::SusEntryAttrs attrs;
  attrs.resolved_config = task.resolved_config;
  attrs.config_family = task.resolved_config.valid()
                            ? store_.configs().Get(task.resolved_config).family
                            : FamilyId::invalid();
  attrs.needed_area = task.needed_area;
  attrs.priority = task.priority;
  return attrs;
}

void Simulator::EnqueueSuspended(TaskId id) {
  if (!suspension_.Add(id, SusAttrs(tasks_.Get(id)), store_.meter())) {
    // Queue overflow: the system sheds load by discarding the task.
    resource::Task& task = tasks_.Get(id);
    task.state = resource::TaskState::kDiscarded;
    metrics_.OnDiscarded();
    if (ShouldExplain(id)) {
      EmitExplain(id, /*is_arrival=*/false, sched::Outcome::kDiscard,
                  "queue-overflow", nullptr);
    }
    Emit(SimEvent::Kind::kDiscarded, id);
    NoteTerminal();
    DREAMSIM_LOG(LogLevel::kWarning,
                 "t={} suspension queue full; task {} discarded",
                 kernel_.now(), id.value());
  }
}

void Simulator::HandleCompletion(TaskId id, resource::EntryRef entry) {
  resource::Task& task = tasks_.Get(id);
  task.completion_time = kernel_.now();
  task.state = resource::TaskState::kCompleted;
  if (id.value() < completion_events_.size()) {
    completion_events_[id.value()] = {};
  }
  const ConfigId freed_config = store_.node(entry.node).Slot(entry.slot).config;
  const TaskId released = store_.ReleaseTask(entry);
  if (released != id) {
    throw std::logic_error("completion released a different task");
  }
  metrics_.OnCompleted(task);
  Emit(SimEvent::Kind::kCompleted, id, entry.node, freed_config);
  NoteTerminal();
  DrainSuspensionQueue(entry.node, freed_config);
  ObserveState();
  MaybeAudit("completion");
  if (completion_hook_) completion_hook_(id, kernel_.now());
}

bool Simulator::CouldUseNode(const resource::Task& task,
                             const resource::Node& node,
                             ConfigId freed_config) const {
  // Direct reuse: the freed entry already carries the task's resolved
  // configuration.
  if (task.resolved_config.valid() && task.resolved_config == freed_config) {
    return true;
  }
  // Family compatibility gates every other route onto this node.
  if (task.resolved_config.valid() &&
      !store_.configs().Get(task.resolved_config).CompatibleWith(
          node.family())) {
    return false;
  }
  // Spare fabric could host the task directly, or reclaiming the node's
  // idle entries (Algorithm 1, restricted to this node) could free enough
  // room. The store answers both from its incremental busy-area tally in
  // O(1) — the same outcome as accumulating idle-entry areas slot by slot.
  return store_.CouldEventuallyHost(node.id(), task.needed_area);
}

void Simulator::DrainSuspensionQueue(NodeId freed_node,
                                     ConfigId freed_config) {
  // "Each time a node finishes executing a task, the suspension queue is
  // checked using this method to determine if a suitable task is waiting in
  // the queue which can be executed on the node." The scan is FIFO-first;
  // each visited queue entry costs one scheduler search step (this is part
  // of the effort to assign tasks to nodes, and it is what makes the
  // full-reconfiguration scenario's Fig. 9 curves grow with the queue).
  // With the drain index enabled, candidate selection is answered from the
  // queue's O(log Q) structures and the scan's step charges are replayed
  // analytically — decisions and metrics are bit-identical either way.
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kSuspensionDrain);
  if (suspension_.empty()) return;
  const resource::Node& node = store_.node(freed_node);
  const std::size_t max_policy_runs = config_.suspension_batch == 0
                                          ? suspension_.size()
                                          : config_.suspension_batch;
  if (config_.mode == sched::ReconfigMode::kFull) {
    DrainFullMode(node, freed_config);
  } else if (config_.priority_scheduling) {
    DrainPartialPriority(node, freed_config, max_policy_runs);
  } else {
    DrainPartialFifo(node, freed_config, max_policy_runs);
  }
}

Simulator::DrainAttempt Simulator::AttemptQueuedAt(std::size_t index) {
  const TaskId id = suspension_.tasks()[index];
  obs::MetricInc(obs::MetricId::kDrainAttempts);
  store_.meter().BeginTask();
  const sched::Outcome outcome = AttemptSchedule(id, /*is_arrival=*/false);
  if (outcome == sched::Outcome::kPlaced ||
      outcome == sched::Outcome::kDiscard) {
    if (outcome == sched::Outcome::kPlaced) {
      obs::MetricInc(obs::MetricId::kDrainPlacements);
    }
    suspension_.RemoveAt(index, store_.meter());
    MaybeAudit("queued-attempt");
    return {outcome == sched::Outcome::kPlaced, true};
  }
  // The prefilter was optimistic but the policy could not place the task
  // anywhere: count the retry and optionally give up on it.
  resource::Task& failed = tasks_.Get(id);
  ++failed.sus_retry;
  if (config_.max_suspension_retries != 0 &&
      failed.sus_retry >= config_.max_suspension_retries) {
    suspension_.RemoveAt(index, store_.meter());
    failed.state = resource::TaskState::kDiscarded;
    metrics_.OnDiscarded();
    if (ShouldExplain(id)) {
      EmitExplain(id, /*is_arrival=*/false, sched::Outcome::kDiscard,
                  "retry-budget-exhausted", nullptr);
    }
    Emit(SimEvent::Kind::kDiscarded, id);
    NoteTerminal();
    MaybeAudit("queued-attempt");
    return {false, true};
  }
  // The attempt may have re-resolved the task's configuration while it
  // stays queued; keep the indexed attributes in sync (uncharged — the
  // reference scans re-read task state directly).
  suspension_.RefreshAttrs(id, SusAttrs(failed));
  MaybeAudit("queued-attempt");
  return {false, false};
}

void Simulator::DrainFullMode(const resource::Node& node,
                              ConfigId freed_config) {
  // Full reconfiguration: a queued task is executable *on this node*
  // without reconfiguration only if it wants exactly the configuration
  // the node carries. The traversal mirrors the original DReAMSim's
  // RemoveTaskFromSusQueue: it checks every queued task (this full,
  // per-completion queue walk is what makes the paper's Fig. 9 curves
  // for the full scenario grow with the queue), keeping the oldest exact
  // match and — only when no match exists anywhere — the oldest task the
  // node's whole fabric could be reconfigured to fit (so nodes cannot
  // idle forever once arrivals stop). Under priority scheduling "oldest"
  // becomes "highest priority, FIFO tie-break" for both picks.
  const bool by_priority = config_.priority_scheduling;
  if (suspension_.drain_indexed()) {
    // The reference walk inspects every queued entry exactly once.
    store_.meter().Add(resource::StepKind::kSchedulingSearch,
                       suspension_.size());
    // The fallback is only consulted when no exact match exists anywhere,
    // so its candidate set cannot contain a matching task — querying the
    // family groups without exclusions is exact. A repair drain passes an
    // invalid freed_config (a blank revived node carries nothing to reuse),
    // skipping the exact-match pick entirely.
    std::optional<std::size_t> pick;
    if (freed_config.valid()) {
      pick = by_priority ? suspension_.BestPriorityExactMatch(freed_config)
                         : suspension_.OldestExactMatch(freed_config);
    }
    if (!pick) {
      pick = by_priority
                 ? suspension_.BestPriorityEligible(
                       node.family(), node.total_area(), ConfigId::invalid())
                 : suspension_.OldestEligible(node.family(), node.total_area(),
                                              /*from=*/0, ConfigId::invalid());
    }
    if (pick) (void)AttemptQueuedAt(*pick);
    return;
  }
  obs::MetricInc(obs::MetricId::kSusqScanFallback);
  std::size_t match_index = 0;
  bool has_match = false;
  double match_priority = 0.0;
  std::size_t fallback_index = 0;
  bool has_fallback = false;
  double fallback_priority = 0.0;
  for (std::size_t i = 0; i < suspension_.size(); ++i) {
    const resource::Task& task = tasks_.Get(suspension_.tasks()[i]);
    store_.meter().Add(resource::StepKind::kSchedulingSearch);
    if (freed_config.valid() && task.resolved_config == freed_config) {
      if (!has_match || (by_priority && task.priority > match_priority)) {
        match_index = i;
        match_priority = task.priority;
        has_match = true;
      }
    } else if (task.needed_area <= node.total_area() &&
               (!task.resolved_config.valid() ||
                store_.configs()
                    .Get(task.resolved_config)
                    .CompatibleWith(node.family()))) {
      if (!has_fallback ||
          (by_priority && task.priority > fallback_priority)) {
        fallback_index = i;
        fallback_priority = task.priority;
        has_fallback = true;
      }
    }
  }
  if (has_match) {
    (void)AttemptQueuedAt(match_index);
  } else if (has_fallback) {
    (void)AttemptQueuedAt(fallback_index);
  }
}

void Simulator::DrainPartialPriority(const resource::Node& node,
                                     ConfigId freed_config,
                                     std::size_t max_policy_runs) {
  // Partial reconfiguration has "more options": a matching idle entry,
  // spare area, or reclaimable idle regions all qualify; under priority
  // scheduling each policy run re-walks the whole queue for the best
  // (priority, FIFO-tie) candidate.
  if (suspension_.drain_indexed()) {
    for (std::size_t policy_runs = 0; policy_runs < max_policy_runs;
         ++policy_runs) {
      // The reference pass re-walks the (shrinking) queue every run —
      // including the final run that finds nothing.
      store_.meter().Add(resource::StepKind::kSchedulingSearch,
                         suspension_.size());
      // CouldUseNode is "exact config match, or family-compatible with
      // needed_area within the node's could-eventually-host bound"; the
      // store state is constant within one pass, so one bound covers it.
      const std::optional<std::size_t> best = suspension_.BestPriorityEligible(
          node.family(), store_.CouldEventuallyHostBound(node.id()),
          freed_config);
      if (!best) return;
      const DrainAttempt attempt = AttemptQueuedAt(*best);
      // kSuspend left the task in place; re-scanning would loop.
      if (!attempt.placed && !attempt.removed) return;
    }
    return;
  }
  for (std::size_t policy_runs = 0; policy_runs < max_policy_runs;
       ++policy_runs) {
    // Full counted scan for the best (priority, FIFO-tie) candidate.
    obs::MetricInc(obs::MetricId::kSusqScanFallback);
    std::size_t best_index = 0;
    bool found = false;
    double best_priority = 0.0;
    for (std::size_t i = 0; i < suspension_.size(); ++i) {
      const resource::Task& task = tasks_.Get(suspension_.tasks()[i]);
      store_.meter().Add(resource::StepKind::kSchedulingSearch);
      if (!CouldUseNode(task, node, freed_config)) continue;
      if (!found || task.priority > best_priority) {
        best_index = i;
        best_priority = task.priority;
        found = true;
      }
    }
    if (!found) return;
    const DrainAttempt attempt = AttemptQueuedAt(best_index);
    // kSuspend left the task in place; re-scanning would loop.
    if (!attempt.placed && !attempt.removed) return;
  }
}

void Simulator::DrainPartialFifo(const resource::Node& node,
                                 ConfigId freed_config,
                                 std::size_t max_policy_runs) {
  // FIFO drain: one resumable pass; each queue entry is inspected at most
  // once per completion.
  std::size_t index = 0;
  std::size_t policy_runs = 0;
  if (suspension_.drain_indexed()) {
    while (index < suspension_.size() && policy_runs < max_policy_runs) {
      const std::optional<std::size_t> next = suspension_.OldestEligible(
          node.family(), store_.CouldEventuallyHostBound(node.id()), index,
          freed_config);
      if (!next) {
        // The reference walk visits the remaining tail without a match.
        store_.meter().Add(resource::StepKind::kSchedulingSearch,
                           suspension_.size() - index);
        return;
      }
      // Entries in [index, *next) fail the prefilter; the reference walk
      // charges one step per visit, candidate included.
      store_.meter().Add(resource::StepKind::kSchedulingSearch,
                         *next - index + 1);
      ++policy_runs;
      const DrainAttempt attempt = AttemptQueuedAt(*next);
      // kSuspend keeps the task at `*next`; a repeat attempt this drain
      // would loop, so stop. (Removal leaves `*next` pointing at the next
      // FIFO entry and the walk resumes there.)
      if (!attempt.placed && !attempt.removed) return;
      index = *next;
    }
    return;
  }
  obs::MetricInc(obs::MetricId::kSusqScanFallback);
  while (index < suspension_.size() && policy_runs < max_policy_runs) {
    const resource::Task& task = tasks_.Get(suspension_.tasks()[index]);
    store_.meter().Add(resource::StepKind::kSchedulingSearch);
    if (!CouldUseNode(task, node, freed_config)) {
      ++index;
      continue;
    }
    ++policy_runs;
    const DrainAttempt attempt = AttemptQueuedAt(index);
    // kSuspend keeps the task at `index`; a repeat attempt this drain
    // would loop, so stop. (Removal cases leave `index` pointing at the
    // next FIFO entry and the loop continues.)
    if (!attempt.placed && !attempt.removed) return;
  }
}

MetricsReport Simulator::FinishReport() {
  const Tick end = kernel_.now();
  // End-of-run audit runs before the final queue sweep so it sees the
  // structures exactly as the event loop left them (step mode audited
  // every decision already; auditing once more here is cheap).
  if (config_.audit != analysis::AuditMode::kOff) AuditAt("run");
  // Any task still suspended when the event queue drained can never run.
  while (!suspension_.empty()) {
    const auto id = suspension_.PopFirstMatching(
        [](TaskId) { return true; }, store_.meter());
    if (!id) break;
    resource::Task& task = tasks_.Get(*id);
    task.state = resource::TaskState::kDiscarded;
    metrics_.OnDiscarded();
    if (ShouldExplain(*id)) {
      EmitExplain(*id, /*is_arrival=*/false, sched::Outcome::kDiscard,
                  "drained-at-end", nullptr);
    }
    Emit(SimEvent::Kind::kDiscarded, *id);
    NoteTerminal();
  }
  utilization_ = monitor_.Finish(end);
  MetricsReport report = metrics_.Finish(config_, policy_->name(), store_, end);
  const CacheStats cache = bitstream_cache_stats();
  report.bitstream_hits = cache.hits;
  report.bitstream_misses = cache.misses;
  report.bitstream_transfer_time = bitstream_transfer_total_;
  report.failures_injected = failures_injected_;
  report.repairs_completed = repairs_completed_;
  report.tasks_killed = tasks_killed_;
  report.lost_work_area_ticks = lost_work_area_ticks_;
  Tick downtime = downtime_total_;
  for (const Tick since : failed_since_) {
    if (since != kNoTick) downtime += end - since;  // down through run end
  }
  report.total_downtime = downtime;
  if (faults_.enabled()) {
    for (const resource::Task& task : tasks_.all()) {
      if (task.kill_count == 0) continue;
      if (task.state == resource::TaskState::kCompleted) {
        ++report.tasks_recovered;
      } else if (task.state == resource::TaskState::kDiscarded) {
        ++report.tasks_lost_to_failure;
      }
    }
  }
  return report;
}

// --- Fault injection (DESIGN.md §10) ---

void Simulator::ArmFailure(NodeId node) {
  if (terminal_tasks_ >= submitted_tasks_) return;
  fault_process_events_[node.value()] = kernel_.ScheduleAfter(
      faults_.NextFailureDelay(), sim::EventPriority::kControl, [this, node] {
        kernel_role_.AssertHeld();
        fault_process_events_[node.value()] = {};
        ApplyFault(node, FaultAction::kFail);
        if (faults_.params().repairs_enabled()) ArmRepair(node);
      });
}

void Simulator::ArmRepair(NodeId node) {
  if (terminal_tasks_ >= submitted_tasks_) return;
  fault_process_events_[node.value()] = kernel_.ScheduleAfter(
      faults_.NextRepairDelay(), sim::EventPriority::kControl, [this, node] {
        kernel_role_.AssertHeld();
        fault_process_events_[node.value()] = {};
        ApplyFault(node, FaultAction::kRepair);
        ArmFailure(node);
      });
}

void Simulator::RearmFaults() {
  ScheduleFaultScript();
  if (!faults_.params().process_enabled()) return;
  for (std::size_t i = 0; i < store_.node_count(); ++i) {
    if (fault_process_events_[i].valid()) continue;
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (store_.node(id).failed()) {
      if (faults_.params().repairs_enabled()) ArmRepair(id);
    } else {
      ArmFailure(id);
    }
  }
}

void Simulator::ScheduleFaultScript() {
  const Tick now = kernel_.now();
  for (std::size_t i = 0; i < fault_script_.size(); ++i) {
    ScriptedFault& pending = fault_script_[i];
    if (pending.fired || pending.handle.valid() || pending.event.at < now) {
      continue;
    }
    // The index capture is stable: fault_script_ is never resized after
    // construction.
    pending.handle = kernel_.ScheduleAt(
        pending.event.at, sim::EventPriority::kControl, [this, i] {
          kernel_role_.AssertHeld();
          ScriptedFault& entry = fault_script_[i];
          entry.handle = {};
          entry.fired = true;
          ApplyFault(entry.event.node, entry.event.action);
        });
  }
}

void Simulator::ApplyFault(NodeId node, FaultAction action) {
  // Once the workload drained, late-cancelled stragglers are no-ops; so are
  // scripted events that lost the race against the random process.
  if (terminal_tasks_ >= submitted_tasks_) return;
  if (action == FaultAction::kFail) {
    if (!store_.node(node).failed()) HandleNodeFailure(node);
  } else if (store_.node(node).failed()) {
    HandleNodeRepair(node);
  }
}

void Simulator::HandleNodeFailure(NodeId node_id) {
  const Tick now = kernel_.now();
  ++failures_injected_;
  failed_since_[node_id.value()] = now;
  Emit(SimEvent::Kind::kNodeFailed, TaskId::invalid(), node_id);
  DREAMSIM_LOG(LogLevel::kDebug, "t={} node {} failed", now, node_id.value());
  const std::vector<TaskId> killed = store_.FailNode(node_id);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kFaultFailures);
    reg.Add(obs::MetricId::kFaultKills, killed.size());
    reg.GaugeSet(obs::MetricId::kFaultFailedNodes, store_.failed_node_count());
  }
  for (const TaskId id : killed) {
    resource::Task& task = tasks_.Get(id);
    if (id.value() < completion_events_.size() &&
        completion_events_[id.value()].valid()) {
      (void)kernel_.Cancel(completion_events_[id.value()]);
      completion_events_[id.value()] = {};
    }
    ++tasks_killed_;
    ++task.kill_count;
    const Area area = store_.configs().Get(task.assigned_config).required_area;
    // Only destroyed execution counts as lost work: a task killed inside
    // its comm/config window has not run yet, and the setup cost is paid
    // again in full on the next placement regardless.
    const Tick setup_done = task.start_time + task.comm_time + task.config_wait;
    if (now > setup_done) {
      const std::uint64_t lost = static_cast<std::uint64_t>(area) *
                                 static_cast<std::uint64_t>(now - setup_done);
      lost_work_area_ticks_ += lost;
      obs::MetricInc(obs::MetricId::kFaultLostWorkTicks, lost);
    }
    Emit(SimEvent::Kind::kKilled, id, node_id, task.assigned_config);
    task.assigned_config = ConfigId::invalid();
    task.assigned_node = NodeId::invalid();
    task.comm_time = 0;
    task.config_wait = 0;
    // A kill is not a scheduling attempt: no BeginTask, no search charge,
    // and no sus_retry increment — the retry budget meters re-scheduling
    // attempts, and re-queuing a victim is not one.
    if (config_.max_suspension_retries != 0 &&
        task.sus_retry >= config_.max_suspension_retries) {
      task.state = resource::TaskState::kDiscarded;
      metrics_.OnDiscarded();
      if (ShouldExplain(id)) {
        EmitExplain(id, /*is_arrival=*/false, sched::Outcome::kDiscard,
                    "killed-retry-exhausted", nullptr);
      }
      Emit(SimEvent::Kind::kDiscarded, id);
      NoteTerminal();
      continue;
    }
    task.state = resource::TaskState::kSuspended;
    Emit(SimEvent::Kind::kRequeued, id);
    EnqueueSuspended(id);
  }
  ObserveState();
  MaybeAudit("node-failure");
}

void Simulator::HandleNodeRepair(NodeId node_id) {
  const Tick now = kernel_.now();
  ++repairs_completed_;
  downtime_total_ += now - failed_since_[node_id.value()];
  failed_since_[node_id.value()] = kNoTick;
  store_.RepairNode(node_id);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kFaultRepairs);
    reg.GaugeSet(obs::MetricId::kFaultFailedNodes, store_.failed_node_count());
  }
  Emit(SimEvent::Kind::kNodeRepaired, TaskId::invalid(), node_id);
  DREAMSIM_LOG(LogLevel::kDebug, "t={} node {} repaired", now,
               node_id.value());
  // The revived node is blank capacity: drain with no reusable config.
  DrainSuspensionQueue(node_id, ConfigId::invalid());
  ObserveState();
  MaybeAudit("node-repair");
}

void Simulator::NoteTerminal() {
  ++terminal_tasks_;
  if (faults_.enabled() && terminal_tasks_ >= submitted_tasks_) {
    kernel_role_.AssertHeld();
    CancelPendingFaultEvents();
  }
}

void Simulator::CancelPendingFaultEvents() {
  for (sim::EventHandle& h : fault_process_events_) {
    if (h.valid()) {
      (void)kernel_.Cancel(h);
      h = {};
    }
  }
  // Unfired script entries keep their `event` (FaultParams::script stays
  // the source of truth): a reviving submission re-schedules them.
  for (ScriptedFault& s : fault_script_) {
    if (s.handle.valid()) {
      (void)kernel_.Cancel(s.handle);
      s.handle = {};
    }
  }
}

}  // namespace dreamsim::core
