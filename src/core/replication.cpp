#include "core/replication.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "core/simulator.hpp"
#include "util/fmt.hpp"

namespace dreamsim::core {
namespace {

struct MetricExtractor {
  const char* name;
  double (*get)(const MetricsReport&);
};

constexpr MetricExtractor kExtractors[] = {
    {"avg_wasted_area_per_task",
     [](const MetricsReport& r) { return r.avg_wasted_area_per_task; }},
    {"avg_task_running_time",
     [](const MetricsReport& r) { return r.avg_task_running_time; }},
    {"avg_reconfig_count_per_node",
     [](const MetricsReport& r) { return r.avg_reconfig_count_per_node; }},
    {"avg_config_time_per_task",
     [](const MetricsReport& r) { return r.avg_config_time_per_task; }},
    {"avg_waiting_time_per_task",
     [](const MetricsReport& r) { return r.avg_waiting_time_per_task; }},
    {"avg_scheduling_steps_per_task",
     [](const MetricsReport& r) { return r.avg_scheduling_steps_per_task; }},
    {"total_scheduler_workload",
     [](const MetricsReport& r) {
       return static_cast<double>(r.total_scheduler_workload);
     }},
    {"discarded_tasks",
     [](const MetricsReport& r) {
       return static_cast<double>(r.discarded_tasks);
     }},
    {"total_simulation_time",
     [](const MetricsReport& r) {
       return static_cast<double>(r.total_simulation_time);
     }},
};

}  // namespace

double MetricSummary::ci95_half_width() const {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

const MetricSummary& ReplicationReport::Metric(std::string_view name) const {
  for (const MetricSummary& m : metrics) {
    if (m.name == name) return m;
  }
  throw std::out_of_range(Format("no metric summary named '{}'", name));
}

ReplicationReport SummarizeReplications(std::vector<MetricsReport> runs) {
  if (runs.empty()) {
    throw std::invalid_argument("need at least one replication");
  }
  ReplicationReport report;
  report.replications = runs.size();
  report.runs = std::move(runs);
  for (const MetricExtractor& extractor : kExtractors) {
    MetricSummary summary;
    summary.name = extractor.name;
    for (const MetricsReport& run : report.runs) {
      summary.stats.Add(extractor.get(run));
    }
    report.metrics.push_back(std::move(summary));
  }
  return report;
}

ReplicationReport RunReplications(const SimulationConfig& base,
                                  std::size_t replications,
                                  unsigned threads) {
  if (replications == 0) {
    throw std::invalid_argument("need at least one replication");
  }
  std::vector<MetricsReport> runs(replications);

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= replications) return;
      SimulationConfig config = base;
      config.seed = DeriveSeed(base.seed, i);
      config.label = Format("{}#{}", base.label, i);
      Simulator sim(std::move(config));
      runs[i] = sim.Run();
    }
  };

  unsigned worker_count = threads == 0
                              ? std::max(1u, std::thread::hardware_concurrency())
                              : threads;
  worker_count = std::min<unsigned>(
      worker_count, static_cast<unsigned>(replications));
  if (worker_count <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(worker_count);
    for (unsigned t = 0; t < worker_count; ++t) pool.emplace_back(worker);
  }
  return SummarizeReplications(std::move(runs));
}

std::string RenderReplicationTable(const ReplicationReport& report) {
  std::string out = Format("{} replications\n", report.replications);
  out += Format("{:<34}{:>14}{:>12}{:>12}{:>14}{:>14}\n", "metric", "mean",
                "ci95", "stddev", "min", "max");
  for (const MetricSummary& m : report.metrics) {
    out += Format("{:<34}{:>14}{:>12}{:>12}{:>14}{:>14}\n", m.name,
                  Format("{}", m.mean()),
                  Format("{}", m.ci95_half_width()),
                  Format("{}", m.stddev()), Format("{}", m.stats.min()),
                  Format("{}", m.stats.max()));
  }
  return out;
}

}  // namespace dreamsim::core
