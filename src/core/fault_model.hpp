// Deterministic fault injection for the node population (DESIGN.md §10).
//
// Two sources of failure/repair events, both independent of scheduler state
// so the indexed and scan fast paths see the exact same fault sequence:
//   - a seeded per-node MTBF/MTTR renewal process (exponential delays drawn
//     from a dedicated RNG stream, in event-execution order), and
//   - an explicit scripted event list for tests and --fault-script.
//
// The paper's node model has no failures; every figure-facing default keeps
// the model disabled (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::core {

enum class FaultAction : std::uint8_t { kFail, kRepair };

[[nodiscard]] std::string_view ToString(FaultAction action);

/// One scripted fault event: at tick `at`, apply `action` to `node`.
/// Events that would not change the node's state (failing a failed node,
/// repairing a healthy one) are ignored.
struct FaultEvent {
  Tick at = 0;
  NodeId node;
  FaultAction action = FaultAction::kFail;
};

/// Fault-process parameters. `mtbf <= 0` disables the random process;
/// `mttr <= 0` makes random failures permanent (no repair is scheduled).
/// Scripted events apply regardless of the process settings.
struct FaultParams {
  double mtbf = 0.0;  ///< Mean ticks between failures, per node.
  double mttr = 0.0;  ///< Mean ticks to repair a failed node.
  std::vector<FaultEvent> script;

  [[nodiscard]] bool enabled() const { return mtbf > 0.0 || !script.empty(); }
  [[nodiscard]] bool process_enabled() const { return mtbf > 0.0; }
  [[nodiscard]] bool repairs_enabled() const { return mttr > 0.0; }
};

/// Parses a --fault-script specification: comma- or semicolon-separated
/// `tick:node:fail` / `tick:node:repair` entries, e.g.
/// "100:3:fail,250:3:repair". Whitespace around entries is allowed; an
/// empty spec yields an empty script. Throws std::invalid_argument on bad
/// syntax.
[[nodiscard]] std::vector<FaultEvent> ParseFaultScript(std::string_view spec);

/// Renders a script back into the ParseFaultScript() format (diagnostics).
[[nodiscard]] std::string FormatFaultScript(
    const std::vector<FaultEvent>& script);

/// Seeded delay source for the MTBF/MTTR renewal process. Delays are drawn
/// lazily in event-execution order, which the kernel's (tick, priority,
/// sequence) ordering makes deterministic and independent of scheduler
/// decisions — the bit-identity contract's fault half.
class FaultModel {
 public:
  FaultModel(FaultParams params, std::uint64_t seed)
      : params_(std::move(params)), rng_(seed) {}

  [[nodiscard]] const FaultParams& params() const { return params_; }
  [[nodiscard]] bool enabled() const { return params_.enabled(); }

  /// Next time-to-failure for one node: exponential with mean `mtbf`,
  /// clamped to at least one tick.
  [[nodiscard]] Tick NextFailureDelay() { return Draw(params_.mtbf); }

  /// Next time-to-repair: exponential with mean `mttr`, clamped likewise.
  [[nodiscard]] Tick NextRepairDelay() { return Draw(params_.mttr); }

 private:
  [[nodiscard]] Tick Draw(double mean);

  FaultParams params_;
  Rng rng_;
};

}  // namespace dreamsim::core
