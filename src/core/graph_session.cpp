#include "core/graph_session.hpp"

#include <algorithm>

#include "core/simulator.hpp"
#include "resource/task.hpp"

namespace dreamsim::core {

GraphRunResult RunGraph(const SimulationConfig& config,
                        const workload::TaskGraph& graph, GraphOrder order) {
  (void)graph.TopologicalOrder();  // throws on cyclic input
  const bool prioritized = order == GraphOrder::kCriticalPathFirst;
  const std::vector<double> ranks =
      prioritized ? workload::UpwardRanks(graph) : std::vector<double>();

  SimulationConfig graph_config = config;
  if (prioritized) graph_config.priority_scheduling = true;

  Simulator sim(graph_config);
  std::unordered_map<TaskId, workload::VertexId> task_to_vertex;
  std::vector<std::size_t> remaining_preds(graph.size());
  std::vector<bool> submitted(graph.size(), false);
  Tick makespan = 0;

  const auto submit = [&](workload::VertexId v, Tick at) {
    workload::GeneratedTask task = graph.vertex(v).task;
    if (prioritized) task.priority = ranks[v];
    const TaskId id = sim.SubmitTaskAt(task, at);
    task_to_vertex.emplace(id, v);
    submitted[v] = true;
  };

  // Releases a batch of vertices that became ready at the same instant,
  // highest rank first under kCriticalPathFirst (same-tick arrivals are
  // processed in submission order).
  const auto release = [&](std::vector<workload::VertexId> batch, Tick at) {
    if (prioritized) {
      std::sort(batch.begin(), batch.end(),
                [&](workload::VertexId a, workload::VertexId b) {
                  return ranks[a] > ranks[b];
                });
    }
    for (const workload::VertexId v : batch) submit(v, at);
  };

  sim.SetCompletionHook([&](TaskId id, Tick now) {
    const auto it = task_to_vertex.find(id);
    if (it == task_to_vertex.end()) return;
    makespan = std::max(makespan, now);
    std::vector<workload::VertexId> ready;
    for (const workload::VertexId succ : graph.vertex(it->second).successors) {
      if (--remaining_preds[succ] == 0) ready.push_back(succ);
    }
    release(std::move(ready), now);
  });

  for (workload::VertexId v = 0; v < graph.size(); ++v) {
    remaining_preds[v] = graph.vertex(v).predecessors.size();
  }
  release(graph.Roots(), 0);

  GraphRunResult result;
  result.metrics = sim.RunWithWorkload({});

  for (workload::VertexId v = 0; v < graph.size(); ++v) {
    if (!submitted[v]) {
      // A predecessor was discarded; this vertex never became runnable.
      ++result.discarded_vertices;
    }
  }
  result.discarded_vertices += result.metrics.discarded_tasks;
  result.completed_vertices = result.metrics.completed_tasks;
  result.makespan = makespan;
  return result;
}

}  // namespace dreamsim::core
