// Experiment sweep driver: runs a grid of (mode × task-count) simulations —
// the structure of every figure in Sec. VI — optionally in parallel, one
// thread per simulation (simulations share nothing; each owns its RNG,
// store, and kernel).
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/replication.hpp"
#include "core/sim_config.hpp"
#include "core/simulator.hpp"

namespace dreamsim::core {

struct SweepParams {
  /// Template configuration; total task count and mode are overridden per
  /// point, everything else (including the seed) is shared, matching the
  /// paper's "for the same set of parameters in each simulation run".
  SimulationConfig base;
  /// X axis of the figures ("total tasks generated").
  std::vector<int> task_counts;
  /// Series (the paper compares kFull vs kPartial).
  std::vector<sched::ReconfigMode> modes;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Independent seeded runs per grid point (RunReplicatedSweep); each
  /// replication r uses DeriveSeed(base.seed, r), matching RunReplications.
  std::size_t replications = 1;
};

/// Runs every (mode, task_count) point. Result order: modes outer,
/// task_counts inner — reports[m * task_counts.size() + t].
/// (`params.replications` is ignored; this is the single-seed grid.)
[[nodiscard]] std::vector<MetricsReport> RunSweep(const SweepParams& params);

/// Runs every (mode, task_count) point `params.replications` times under
/// independent seeds and reduces each point to its Table I metric summary
/// (mean / ci95 / stddev / min / max). Point order matches RunSweep();
/// replication r of every point simulates seed DeriveSeed(base.seed, r), so
/// column 0 of the replicated grid is bit-identical to RunSweep() run at
/// seed DeriveSeed(base.seed, 0). Jobs fan out over points × replications.
[[nodiscard]] std::vector<ReplicationReport> RunReplicatedSweep(
    const SweepParams& params);

/// The paper's x axis: 1000 then 10000..100000 step 10000. `scale` in
/// (0, 1] shrinks every point proportionally (for fast default bench runs);
/// points collapse to at least 1000 tasks and duplicates are removed.
[[nodiscard]] std::vector<int> PaperTaskCounts(double scale = 1.0);

}  // namespace dreamsim::core
