// Task-graph scheduling session (the paper's future work, implemented).
//
// Drives a workload::TaskGraph through a Simulator: root vertices are
// submitted at tick 0; every completion releases successors whose
// predecessors have all finished. Scheduling, suspension, and metrics reuse
// the ordinary task path unchanged.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "core/sim_config.hpp"
#include "workload/task_graph.hpp"

namespace dreamsim::core {

/// Result of one graph run.
struct GraphRunResult {
  MetricsReport metrics;
  /// Completion tick of the last vertex (0 for an empty graph).
  Tick makespan = 0;
  /// Vertices completed (== graph size unless some were discarded).
  std::size_t completed_vertices = 0;
  std::size_t discarded_vertices = 0;
};

/// Release/selection discipline for graph runs.
enum class GraphOrder : std::uint8_t {
  /// Ready vertices queue FIFO (the default task path unchanged).
  kFifo,
  /// HEFT-style list scheduling: every vertex carries its upward rank as
  /// scheduling priority; same-instant releases are submitted rank-first
  /// and the suspension queue serves the highest-rank fitting task (keeps
  /// the critical path moving under contention).
  kCriticalPathFirst,
};

/// Runs `graph` under `config` (the workload fields of the config are
/// ignored; the graph supplies the tasks). Throws on cyclic graphs.
[[nodiscard]] GraphRunResult RunGraph(const SimulationConfig& config,
                                      const workload::TaskGraph& graph,
                                      GraphOrder order = GraphOrder::kFifo);

}  // namespace dreamsim::core
