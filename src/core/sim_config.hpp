// SimulationConfig: the full parameter surface of one DReAMSim run.
//
// Defaults reproduce Table II: 200 nodes (TotalArea in [1000, 4000]), 50
// configurations (ReqArea in [200, 2000], t_config in [10, 20]), arrivals
// every [1, 50] ticks, t_required in [100, 100000], 15% closest-match tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit_mode.hpp"
#include "core/fault_model.hpp"
#include "net/network.hpp"
#include "resource/config.hpp"
#include "resource/node.hpp"
#include "resource/store.hpp"
#include "sched/policy.hpp"
#include "workload/generator.hpp"
#include "workload/task_classes.hpp"

namespace dreamsim::core {

/// How Eq. 7's accumulated wasted area samples Eq. 6 (the paper leaves the
/// sampling instants unstated; see DESIGN.md §4).
enum class WasteAccounting : std::uint8_t {
  /// Accumulate the configured node's post-configuration AvailableArea at
  /// every (re)configuration event.
  kOnConfigure,
  /// Sample Eq. 6 (system-wide wasted area over configured nodes) at every
  /// task arrival — the literal reading of Eq. 7 (default).
  kOnSchedule,
  /// Integrate Eq. 6 over time; report the time-weighted average.
  kTimeWeighted,
  /// Sample, at every task arrival, the available area of configured nodes
  /// that are currently idle (area provably wasted at that instant).
  kIdleConfigured,
};

[[nodiscard]] std::string_view ToString(WasteAccounting accounting);

/// Which built-in policy drives the run.
enum class PolicyChoice : std::uint8_t {
  kDreamSim,  // the paper's Fig. 5 algorithm (mode picks full/partial)
  kFirstFit,
  kBestFit,
  kWorstFit,
  kRandomFit,
  kRoundRobin,
  kLeastLoaded,
};

[[nodiscard]] std::string_view ToString(PolicyChoice choice);

struct SimulationConfig {
  // --- Resources (Table II) ---
  resource::NodeGenParams nodes{};          // 200 nodes, [1000, 4000]
  resource::ConfigGenParams configs{};      // 50 configs, [200, 2000], [10, 20]

  // --- Workload (Table II) ---
  workload::TaskGenParams tasks{};          // [1, 50] gaps, [100, 1e5] times

  // --- Scenario (src/scenario; both empty = the flag-driven path above) ---
  /// Heterogeneous device families (`device class:` blocks). Non-empty
  /// replaces `nodes`: the store generates each class in order with class
  /// index == FamilyId, and ship_bitstreams gives each family its own
  /// bitstream-store capacity (DeviceClassParams::bitstream_store).
  std::vector<resource::DeviceClassParams> device_classes;
  /// Concurrent task classes (`task class:` blocks). Non-empty replaces
  /// `tasks`: Run() multiplexes the per-class arrival streams into one
  /// timeline and releases chain successors on predecessor completion. A
  /// single plain steady class is bit-identical to the `tasks` path.
  std::vector<workload::TaskClassParams> task_classes;

  // --- Scheduling ---
  sched::ReconfigMode mode = sched::ReconfigMode::kPartial;
  PolicyChoice policy = PolicyChoice::kDreamSim;
  /// Max re-scheduling attempts per suspended task; 0 = unbounded.
  std::uint32_t max_suspension_retries = 0;
  /// Suspension-queue capacity; 0 = unbounded. Overflow discards the task.
  std::size_t suspension_capacity = 0;
  /// Suspended tasks re-attempted per completion event (bounds the cost of
  /// queue drains; the FIFO order of the paper is preserved).
  std::size_t suspension_batch = 8;
  /// Select suspended tasks by priority (Task::priority, higher first;
  /// FIFO ties) instead of pure FIFO when draining the queue. Used by the
  /// critical-path-first task-graph scheduler; the paper's scheduler is
  /// FIFO (default).
  bool priority_scheduling = false;
  /// Execution-time multiplier for tasks that run on a closest-match
  /// configuration instead of their C_pref (Eq. 3 defines t_required "if
  /// it is processed on its preferred processor configuration"; a
  /// non-preferred processor may be slower). 1.0 reproduces the paper.
  double closest_match_slowdown = 1.0;

  // --- Network (t_comm of Eq. 8; disabled by default like the paper) ---
  net::NetworkParams network{};
  /// Ship configuration bitstreams over the network before configuring
  /// (adds BitstreamTime to the configuration delay). The paper folds
  /// shipping into t_config; enable this to model it explicitly.
  bool ship_bitstreams = false;
  /// Per-node LRU bitstream cache capacity in bytes (0 = no cache): cache
  /// hits skip the bitstream transfer when ship_bitstreams is on.
  Bytes bitstream_cache_capacity = 0;

  // --- Performance ---
  /// Answer scheduler queries from the resource store's O(log N) index
  /// instead of the literal counted scans. Decisions and every Table I
  /// metric (step counts included) are bit-identical either way — the index
  /// charges the analytic step counts the scans would have (DESIGN.md
  /// "Scheduler index"). Off = reference scans, for debugging and
  /// differential validation.
  bool scheduler_index = true;
  /// Answer suspension-queue drain queries (candidate selection on task
  /// completion) from the queue's O(log Q) index instead of the literal
  /// FIFO scans, under the same bit-identical contract as
  /// `scheduler_index`. Off = reference scans.
  bool drain_index = true;
  /// Shard count of the sharded parallel kernel (DESIGN.md §13): the node
  /// population is partitioned into this many shards, each answering the
  /// hot node-selection queries independently, with a deterministic fixed
  /// shard-order merge. Decisions and every metric (step counts included)
  /// are bit-identical to the sequential kernel. <= 1 = sequential
  /// (default).
  std::size_t shards = 1;
  /// OS threads the sharded kernel fans out on; 0 = one per shard, capped
  /// at hardware concurrency. Thread count never affects results.
  std::size_t kernel_threads = 0;
  /// Node-to-shard assignment rule (pure function of node id/family).
  resource::ShardBy shard_by = resource::ShardBy::kRoundRobin;

  // --- Fault injection (DESIGN.md §10; disabled by default) ---
  /// Node failure/repair model: a seeded MTBF/MTTR process plus scripted
  /// events. Disabled by default — every paper figure is fault-free.
  FaultParams faults{};

  // --- Correctness tooling (DESIGN.md §12) ---
  /// Runs the StructureAuditor over every scheduler structure: never
  /// (off, the default — a true no-op), once at end of run, or after
  /// every scheduler decision (step; Debug-scale cost). A violation
  /// aborts the run with the rendered report (std::logic_error).
  analysis::AuditMode audit = analysis::AuditMode::kOff;

  // --- Metrics ---
  WasteAccounting waste_accounting = WasteAccounting::kOnSchedule;
  /// Event-driven utilization monitoring (O(nodes) per event); disable for
  /// large sweeps.
  bool enable_monitoring = true;

  // --- Reproducibility ---
  std::uint64_t seed = 42;

  /// Free-form label carried into reports.
  std::string label;

  /// Scenario identity when this config was compiled from a scenario file:
  /// the `name:` of the `simulation:` block and the canonical FNV-1a 64
  /// hash (scenario::ScenarioHash). Empty for flag-driven runs. Neither
  /// affects simulation behaviour.
  std::string scenario_name;
  std::string scenario_hash;
};

}  // namespace dreamsim::core
