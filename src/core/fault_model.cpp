#include "core/fault_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::core {

std::string_view ToString(FaultAction action) {
  switch (action) {
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kRepair:
      return "repair";
  }
  return "?";
}

namespace {

/// One `tick:node:action` entry; `entry` has surrounding whitespace trimmed.
FaultEvent ParseEntry(std::string_view entry) {
  const auto bad = [&](const char* why) {
    throw std::invalid_argument(
        Format("fault script entry '{}': {}", std::string(entry), why));
  };
  const std::size_t first = entry.find(':');
  const std::size_t second =
      first == std::string_view::npos ? first : entry.find(':', first + 1);
  if (second == std::string_view::npos) {
    bad("expected tick:node:fail|repair");
  }
  FaultEvent event;
  const std::string tick_text(entry.substr(0, first));
  const std::string node_text(entry.substr(first + 1, second - first - 1));
  const std::string_view action_text = entry.substr(second + 1);
  try {
    std::size_t used = 0;
    event.at = std::stoll(tick_text, &used);
    if (used != tick_text.size()) bad("malformed tick");
    const long long node = std::stoll(node_text, &used);
    if (used != node_text.size() || node < 0 ||
        node >= std::numeric_limits<std::uint32_t>::max()) {
      bad("malformed node id");
    }
    event.node = NodeId{static_cast<std::uint32_t>(node)};
  } catch (const std::invalid_argument&) {
    bad("malformed number");
  } catch (const std::out_of_range&) {
    bad("number out of range");
  }
  if (event.at < 0) bad("tick must be >= 0");
  if (action_text == "fail") {
    event.action = FaultAction::kFail;
  } else if (action_text == "repair") {
    event.action = FaultAction::kRepair;
  } else {
    bad("action must be 'fail' or 'repair'");
  }
  return event;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::vector<FaultEvent> ParseFaultScript(std::string_view spec) {
  std::vector<FaultEvent> script;
  while (!spec.empty()) {
    const std::size_t split = spec.find_first_of(",;");
    std::string_view entry = spec.substr(0, split);
    spec = split == std::string_view::npos ? std::string_view{}
                                           : spec.substr(split + 1);
    entry = Trim(entry);
    if (entry.empty()) continue;
    script.push_back(ParseEntry(entry));
  }
  return script;
}

std::string FormatFaultScript(const std::vector<FaultEvent>& script) {
  std::string text;
  for (const FaultEvent& event : script) {
    if (!text.empty()) text += ',';
    text += Format("{}:{}:{}", event.at, event.node.value(),
                   ToString(event.action));
  }
  return text;
}

Tick FaultModel::Draw(double mean) {
  if (mean <= 0.0) {
    throw std::logic_error("FaultModel: drawing from a disabled process");
  }
  const double delay = rng_.exponential(1.0 / mean);
  // Exponential tails are unbounded; cap far beyond any simulated horizon
  // so the rounding below stays in range.
  constexpr double kCap = 1e18;
  if (delay >= kCap) return static_cast<Tick>(kCap);
  return std::max<Tick>(1, static_cast<Tick>(std::llround(delay)));
}

}  // namespace dreamsim::core
