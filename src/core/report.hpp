// Report generation (output subsystem, Sec. III): "an XML simulation report
// generator which accumulates the statistics associated with various
// performance metrics". A CSV twin and a human-readable console table are
// provided for sweeps and quick inspection.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace dreamsim::core {

/// Writes one run's report as an XML document (schema documented in
/// README.md §Reports).
void WriteXmlReport(std::ostream& out, const MetricsReport& report);

/// Header row shared by WriteCsvReportRow (one column per metric).
[[nodiscard]] std::vector<std::string> CsvReportHeader();

/// One run as a CSV row matching CsvReportHeader().
[[nodiscard]] std::vector<std::string> CsvReportRow(const MetricsReport& report);

/// Writes a set of runs as one CSV table.
void WriteCsvReports(std::ostream& out,
                     const std::vector<MetricsReport>& reports);

/// Renders a two-column human-readable summary (Table I layout).
[[nodiscard]] std::string RenderReportTable(const MetricsReport& report);

/// Renders several runs side by side (e.g. full vs partial) with one row
/// per Table I metric.
[[nodiscard]] std::string RenderComparisonTable(
    const std::vector<MetricsReport>& reports);

}  // namespace dreamsim::core
