#include "core/metrics.hpp"

namespace dreamsim::core {

std::string_view ToString(WasteAccounting accounting) {
  switch (accounting) {
    case WasteAccounting::kOnConfigure: return "on-configure";
    case WasteAccounting::kOnSchedule: return "on-schedule";
    case WasteAccounting::kTimeWeighted: return "time-weighted";
    case WasteAccounting::kIdleConfigured: return "idle-configured";
  }
  return "?";
}

std::string_view ToString(PolicyChoice choice) {
  switch (choice) {
    case PolicyChoice::kDreamSim: return "dreamsim";
    case PolicyChoice::kFirstFit: return "first-fit";
    case PolicyChoice::kBestFit: return "best-fit";
    case PolicyChoice::kWorstFit: return "worst-fit";
    case PolicyChoice::kRandomFit: return "random-fit";
    case PolicyChoice::kRoundRobin: return "round-robin";
    case PolicyChoice::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

void MetricsCollector::OnScheduleAttempt(Tick /*now*/, bool is_arrival,
                                         const resource::ResourceStore& store) {
  if (!is_arrival) return;
  if (accounting_ == WasteAccounting::kOnSchedule) {
    const auto wasted = static_cast<double>(store.TotalWastedArea());
    waste_accum_ += wasted;
    waste_samples_.Add(wasted);
  } else if (accounting_ == WasteAccounting::kIdleConfigured) {
    const auto wasted = static_cast<double>(store.TotalIdleWastedArea());
    waste_accum_ += wasted;
    waste_samples_.Add(wasted);
  }
}

void MetricsCollector::OnConfigured(Tick /*now*/, Tick config_time,
                                    Area node_available_after,
                                    const resource::ResourceStore& /*store*/) {
  total_config_time_ += config_time;
  if (accounting_ == WasteAccounting::kOnConfigure) {
    const auto wasted = static_cast<double>(node_available_after);
    waste_accum_ += wasted;
    waste_samples_.Add(wasted);
  }
}

void MetricsCollector::OnWasteSignal(Tick now, Area total_wasted) {
  if (accounting_ == WasteAccounting::kTimeWeighted) {
    waste_signal_.Set(now, static_cast<double>(total_wasted));
  }
}

void MetricsCollector::OnPlaced(const sched::Decision& decision) {
  obs::MetricInc(obs::MetricId::kTasksPlaced);
  const auto kind = static_cast<std::size_t>(decision.kind);
  if (kind < 5) ++placements_by_kind_[kind];
  if (decision.config.valid()) {
    const std::size_t index = decision.config.value();
    if (placements_per_config_.size() <= index) {
      placements_per_config_.resize(index + 1, 0);
    }
    ++placements_per_config_[index];
  }
}

void MetricsCollector::OnCompleted(const resource::Task& task) {
  ++completed_;
  obs::MetricInc(obs::MetricId::kTasksCompleted);
  waiting_.Add(static_cast<double>(task.WaitingTime()));
  turnaround_.Add(static_cast<double>(task.TurnaroundTime()));
  retries_.Add(static_cast<double>(task.sus_retry));
}

MetricsReport MetricsCollector::Finish(const SimulationConfig& config,
                                       std::string_view policy_name,
                                       const resource::ResourceStore& store,
                                       Tick end) const {
  MetricsReport r;
  r.label = config.label;
  r.policy_name = std::string(policy_name);
  r.mode_name = std::string(sched::ToString(config.mode));
  r.seed = config.seed;
  r.total_nodes = store.node_count();
  r.total_configs = store.configs().size();

  r.total_tasks = total_tasks_;
  r.completed_tasks = completed_;
  r.discarded_tasks = discarded_;
  r.suspended_ever = suspended_ever_;
  r.closest_match_tasks = closest_match_;

  const double tasks =
      total_tasks_ > 0 ? static_cast<double>(total_tasks_) : 1.0;

  switch (accounting_) {
    case WasteAccounting::kOnConfigure:
    case WasteAccounting::kOnSchedule:
    case WasteAccounting::kIdleConfigured:
      r.avg_wasted_area_per_task = waste_accum_ / tasks;
      break;
    case WasteAccounting::kTimeWeighted:
      r.avg_wasted_area_per_task = waste_signal_.AverageUntil(end);
      break;
  }

  r.avg_task_running_time = turnaround_.mean();
  r.avg_waiting_time_per_task = waiting_.mean();
  const double node_count =
      store.node_count() > 0 ? static_cast<double>(store.node_count()) : 1.0;
  r.avg_reconfig_count_per_node =
      static_cast<double>(store.TotalReconfigurations()) / node_count;
  r.avg_config_time_per_task = static_cast<double>(total_config_time_) / tasks;

  const resource::WorkloadMeter& meter = store.meter();
  r.scheduling_steps_total = meter.scheduling_steps_total();
  r.housekeeping_steps_total = meter.housekeeping_steps_total();
  r.total_scheduler_workload = meter.total_workload();
  r.avg_scheduling_steps_per_task =
      static_cast<double>(meter.scheduling_steps_total()) / tasks;

  r.total_used_nodes = store.UsedNodeCount();
  r.total_simulation_time = end;
  r.total_reconfigurations = store.TotalReconfigurations();
  r.total_configuration_time = total_config_time_;
  for (std::size_t i = 0; i < 5; ++i) {
    r.placements_by_kind[i] = placements_by_kind_[i];
  }
  r.placements_per_config = placements_per_config_;
  r.avg_suspension_retries = retries_.mean();

  r.waiting_time_stats = waiting_;
  r.turnaround_stats = turnaround_;
  r.wasted_area_samples = waste_samples_;
  return r;
}

}  // namespace dreamsim::core
