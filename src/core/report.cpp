#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/fmt.hpp"
#include "util/xml.hpp"

namespace dreamsim::core {
namespace {

std::string Num(double v) {
  // Fixed notation with adaptive precision keeps tables readable.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  if (v == 0.0) return "0";
  if (v >= 1000.0) {
    os.precision(1);
    os << std::fixed << v;
  } else {
    os.precision(3);
    os << std::fixed << v;
  }
  return os.str();
}

}  // namespace

void WriteXmlReport(std::ostream& out, const MetricsReport& r) {
  XmlWriter xml(out);
  xml.Open("dreamsim-report");
  xml.Attribute("label", r.label);
  xml.Attribute("policy", r.policy_name);
  xml.Attribute("mode", r.mode_name);
  xml.Attribute("seed", static_cast<std::uint64_t>(r.seed));

  xml.Open("system");
  xml.Element("total-nodes", static_cast<std::uint64_t>(r.total_nodes));
  xml.Element("total-configs", static_cast<std::uint64_t>(r.total_configs));
  xml.Close();

  xml.Open("tasks");
  xml.Element("generated", r.total_tasks);
  xml.Element("completed", r.completed_tasks);
  xml.Element("discarded", r.discarded_tasks);
  xml.Element("suspended-ever", r.suspended_ever);
  xml.Element("closest-match", r.closest_match_tasks);
  xml.Close();

  xml.Open("metrics");
  xml.Element("avg-wasted-area-per-task", r.avg_wasted_area_per_task);
  xml.Element("avg-task-running-time", r.avg_task_running_time);
  xml.Element("avg-reconfig-count-per-node", r.avg_reconfig_count_per_node);
  xml.Element("avg-config-time-per-task", r.avg_config_time_per_task);
  xml.Element("avg-waiting-time-per-task", r.avg_waiting_time_per_task);
  xml.Element("avg-scheduling-steps-per-task",
              r.avg_scheduling_steps_per_task);
  xml.Element("total-scheduler-workload", r.total_scheduler_workload);
  xml.Element("total-used-nodes", static_cast<std::uint64_t>(r.total_used_nodes));
  xml.Element("total-simulation-time",
              static_cast<std::int64_t>(r.total_simulation_time));
  xml.Close();

  xml.Open("diagnostics");
  xml.Element("scheduling-steps", r.scheduling_steps_total);
  xml.Element("housekeeping-steps", r.housekeeping_steps_total);
  xml.Element("total-reconfigurations", r.total_reconfigurations);
  xml.Element("total-configuration-time",
              static_cast<std::int64_t>(r.total_configuration_time));
  xml.Element("avg-suspension-retries", r.avg_suspension_retries);
  xml.Open("placements");
  xml.Element("allocation", r.placements_by_kind[0]);
  xml.Element("configuration", r.placements_by_kind[1]);
  xml.Element("partial-configuration", r.placements_by_kind[2]);
  xml.Element("partial-reconfiguration", r.placements_by_kind[3]);
  xml.Element("full-reconfiguration", r.placements_by_kind[4]);
  xml.Close();
  xml.Close();

  xml.Open("faults");
  xml.Element("failures-injected", r.failures_injected);
  xml.Element("repairs-completed", r.repairs_completed);
  xml.Element("tasks-killed", r.tasks_killed);
  xml.Element("tasks-recovered", r.tasks_recovered);
  xml.Element("tasks-lost-to-failure", r.tasks_lost_to_failure);
  xml.Element("lost-work-area-ticks", r.lost_work_area_ticks);
  xml.Element("total-downtime", static_cast<std::int64_t>(r.total_downtime));
  xml.Close();

  xml.Finish();
}

std::vector<std::string> CsvReportHeader() {
  return {"label",
          "policy",
          "mode",
          "seed",
          "total_nodes",
          "total_configs",
          "total_tasks",
          "completed_tasks",
          "discarded_tasks",
          "suspended_ever",
          "closest_match_tasks",
          "avg_wasted_area_per_task",
          "avg_task_running_time",
          "avg_reconfig_count_per_node",
          "avg_config_time_per_task",
          "avg_waiting_time_per_task",
          "avg_scheduling_steps_per_task",
          "total_scheduler_workload",
          "total_used_nodes",
          "total_simulation_time",
          "failures_injected",
          "repairs_completed",
          "tasks_killed",
          "tasks_recovered",
          "tasks_lost_to_failure",
          "lost_work_area_ticks",
          "total_downtime"};
}

std::vector<std::string> CsvReportRow(const MetricsReport& r) {
  return {r.label,
          r.policy_name,
          r.mode_name,
          Format("{}", r.seed),
          Format("{}", r.total_nodes),
          Format("{}", r.total_configs),
          Format("{}", r.total_tasks),
          Format("{}", r.completed_tasks),
          Format("{}", r.discarded_tasks),
          Format("{}", r.suspended_ever),
          Format("{}", r.closest_match_tasks),
          Format("{}", r.avg_wasted_area_per_task),
          Format("{}", r.avg_task_running_time),
          Format("{}", r.avg_reconfig_count_per_node),
          Format("{}", r.avg_config_time_per_task),
          Format("{}", r.avg_waiting_time_per_task),
          Format("{}", r.avg_scheduling_steps_per_task),
          Format("{}", r.total_scheduler_workload),
          Format("{}", r.total_used_nodes),
          Format("{}", r.total_simulation_time),
          Format("{}", r.failures_injected),
          Format("{}", r.repairs_completed),
          Format("{}", r.tasks_killed),
          Format("{}", r.tasks_recovered),
          Format("{}", r.tasks_lost_to_failure),
          Format("{}", r.lost_work_area_ticks),
          Format("{}", r.total_downtime)};
}

void WriteCsvReports(std::ostream& out,
                     const std::vector<MetricsReport>& reports) {
  CsvWriter csv(out, CsvReportHeader());
  for (const MetricsReport& r : reports) {
    csv.WriteRow(CsvReportRow(r));
  }
}

std::string RenderReportTable(const MetricsReport& r) {
  std::string out;
  const auto row = [&out](std::string_view name, const std::string& value) {
    out += Format("  {:<38} {}\n", name, value);
  };
  out += Format("DReAMSim report — {} [{} / {}]\n",
                r.label.empty() ? std::string("(unnamed)") : r.label,
                r.policy_name, r.mode_name);
  row("tasks generated", Format("{}", r.total_tasks));
  row("tasks completed", Format("{}", r.completed_tasks));
  row("tasks discarded", Format("{}", r.discarded_tasks));
  row("tasks ever suspended", Format("{}", r.suspended_ever));
  row("avg wasted area per task", Num(r.avg_wasted_area_per_task));
  row("avg running time of each task", Num(r.avg_task_running_time));
  row("avg reconfiguration count per node", Num(r.avg_reconfig_count_per_node));
  row("avg reconfiguration time per task", Num(r.avg_config_time_per_task));
  row("avg waiting time per task", Num(r.avg_waiting_time_per_task));
  row("avg scheduling steps per task", Num(r.avg_scheduling_steps_per_task));
  row("total scheduler workload", Format("{}", r.total_scheduler_workload));
  row("total used nodes", Format("{}", r.total_used_nodes));
  row("total simulation time", Format("{}", r.total_simulation_time));
  if (r.failures_injected > 0) {
    row("node failures injected", Format("{}", r.failures_injected));
    row("node repairs completed", Format("{}", r.repairs_completed));
    row("tasks killed by failures", Format("{}", r.tasks_killed));
    row("tasks recovered after kill", Format("{}", r.tasks_recovered));
    row("tasks lost to failures", Format("{}", r.tasks_lost_to_failure));
    row("lost work (area-ticks)", Format("{}", r.lost_work_area_ticks));
    row("total node downtime", Format("{}", r.total_downtime));
  }
  if (!r.metrics_block.empty()) {
    out += r.metrics_block;
  }
  return out;
}

std::string RenderComparisonTable(const std::vector<MetricsReport>& reports) {
  std::string out;
  out += Format("{:<40}", "metric");
  for (const MetricsReport& r : reports) {
    out += Format("{:>22}", r.label.empty() ? r.mode_name : r.label);
  }
  out += "\n";
  const auto row = [&](std::string_view name, auto getter) {
    out += Format("{:<40}", name);
    for (const MetricsReport& r : reports) {
      out += Format("{:>22}", Num(getter(r)));
    }
    out += "\n";
  };
  row("avg wasted area per task",
      [](const MetricsReport& r) { return r.avg_wasted_area_per_task; });
  row("avg running time of each task",
      [](const MetricsReport& r) { return r.avg_task_running_time; });
  row("avg reconfig count per node",
      [](const MetricsReport& r) { return r.avg_reconfig_count_per_node; });
  row("avg reconfig time per task",
      [](const MetricsReport& r) { return r.avg_config_time_per_task; });
  row("avg waiting time per task",
      [](const MetricsReport& r) { return r.avg_waiting_time_per_task; });
  row("avg scheduling steps per task",
      [](const MetricsReport& r) { return r.avg_scheduling_steps_per_task; });
  row("total scheduler workload", [](const MetricsReport& r) {
    return static_cast<double>(r.total_scheduler_workload);
  });
  row("total discarded tasks", [](const MetricsReport& r) {
    return static_cast<double>(r.discarded_tasks);
  });
  row("total used nodes", [](const MetricsReport& r) {
    return static_cast<double>(r.total_used_nodes);
  });
  row("total simulation time", [](const MetricsReport& r) {
    return static_cast<double>(r.total_simulation_time);
  });
  return out;
}

}  // namespace dreamsim::core
