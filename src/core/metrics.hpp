// Metrics collection (Table I).
//
// The collector receives one call per simulator event (task scheduled,
// configured, completed, suspended, discarded) and produces the final
// MetricsReport — every row of Table I plus diagnostic extras. See
// DESIGN.md §4 for the wasted-area sampling policies.
#pragma once

#include <cstdint>

#include "core/sim_config.hpp"
#include "obs/metrics.hpp"
#include "resource/store.hpp"
#include "resource/task.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dreamsim::core {

/// Final per-run metrics. Field names follow Table I.
struct MetricsReport {
  // Identification
  std::string label;
  std::string policy_name;
  std::string mode_name;
  std::uint64_t seed = 0;
  std::size_t total_nodes = 0;
  std::size_t total_configs = 0;

  // Task population
  std::uint64_t total_tasks = 0;       // generated
  std::uint64_t completed_tasks = 0;
  std::uint64_t discarded_tasks = 0;   // Table I "total discarded tasks"
  std::uint64_t suspended_ever = 0;    // tasks that visited the queue
  std::uint64_t closest_match_tasks = 0;

  // Table I metrics
  double avg_wasted_area_per_task = 0.0;
  double avg_task_running_time = 0.0;       // turnaround (arrival->completion)
  double avg_reconfig_count_per_node = 0.0;
  double avg_config_time_per_task = 0.0;    // Eq. 10 / tasks
  double avg_waiting_time_per_task = 0.0;   // Eq. 9
  double avg_scheduling_steps_per_task = 0.0;
  Steps total_scheduler_workload = 0;
  std::size_t total_used_nodes = 0;
  Tick total_simulation_time = 0;           // Eq. 5

  // Decomposition / diagnostics
  Steps scheduling_steps_total = 0;
  Steps housekeeping_steps_total = 0;
  std::uint64_t total_reconfigurations = 0;
  Tick total_configuration_time = 0;        // Eq. 10
  std::uint64_t placements_by_kind[5] = {0, 0, 0, 0, 0};
  /// Placements per configuration, indexed by ConfigId (feeds the
  /// per-configuration detail report).
  std::vector<std::uint64_t> placements_per_config;
  double avg_suspension_retries = 0.0;
  /// Bitstream-cache statistics (ship_bitstreams extension; 0 otherwise).
  std::uint64_t bitstream_hits = 0;
  std::uint64_t bitstream_misses = 0;
  Tick bitstream_transfer_time = 0;

  // Fault injection (DESIGN.md §10; all zero in fault-free runs)
  std::uint64_t failures_injected = 0;
  std::uint64_t repairs_completed = 0;
  /// Running tasks killed by node failures (one task can count repeatedly).
  std::uint64_t tasks_killed = 0;
  /// Tasks that were killed at least once and still completed.
  std::uint64_t tasks_recovered = 0;
  /// Tasks that were killed at least once and ended discarded.
  std::uint64_t tasks_lost_to_failure = 0;
  /// Area×time of partially executed work destroyed by failures.
  std::uint64_t lost_work_area_ticks = 0;
  /// Summed node downtime (failure to repair, or to run end if never
  /// repaired).
  Tick total_downtime = 0;

  // Distribution summaries
  OnlineStats waiting_time_stats;
  OnlineStats turnaround_stats;
  OnlineStats wasted_area_samples;

  /// Pre-rendered final metrics-registry snapshot (obs::RenderMetricsBlock),
  /// filled by the CLI when --metrics-out/--explain enabled the registry;
  /// empty otherwise. RenderReportTable appends it verbatim.
  std::string metrics_block;
};

/// Streaming collector driven by the Simulator.
class MetricsCollector {
 public:
  MetricsCollector(WasteAccounting accounting, Tick start = 0)
      : accounting_(accounting) {
    waste_signal_.Set(start, 0.0);
  }

  /// One generated task entered the system.
  void OnTaskGenerated() {
    ++total_tasks_;
    obs::MetricInc(obs::MetricId::kTasksGenerated);
  }

  /// A scheduling attempt ran at `now` (after the policy returned).
  /// `store` provides Eq. 6 for the sampling accountings, which only
  /// sample on arrival attempts (`is_arrival`), not suspension retries,
  /// so "per task" keeps one sample per generated task.
  void OnScheduleAttempt(Tick now, bool is_arrival,
                         const resource::ResourceStore& store);

  /// A configuration was loaded for a task; `node_available_after` is the
  /// node's AvailableArea right after configuring (kOnConfigure sample).
  void OnConfigured(Tick now, Tick config_time, Area node_available_after,
                    const resource::ResourceStore& store);

  /// The Eq. 6 signal changed (any configure/reclaim/blank); needed only by
  /// kTimeWeighted.
  void OnWasteSignal(Tick now, Area total_wasted);

  void OnPlaced(const sched::Decision& decision);
  void OnSuspendedFirstTime() {
    ++suspended_ever_;
    obs::MetricInc(obs::MetricId::kTasksSuspendedFirst);
  }
  void OnDiscarded() {
    ++discarded_;
    obs::MetricInc(obs::MetricId::kTasksDiscarded);
  }
  void OnClosestMatchUsed() {
    ++closest_match_;
    obs::MetricInc(obs::MetricId::kClosestMatchPlacements);
  }

  /// Task finished; called with the final Task record.
  void OnCompleted(const resource::Task& task);

  /// Produces the report. `store` supplies node-side aggregates; `end` is
  /// the final simulation tick (Eq. 5).
  [[nodiscard]] MetricsReport Finish(const SimulationConfig& config,
                                     std::string_view policy_name,
                                     const resource::ResourceStore& store,
                                     Tick end) const;

 private:
  WasteAccounting accounting_;

  std::uint64_t total_tasks_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t suspended_ever_ = 0;
  std::uint64_t closest_match_ = 0;
  std::uint64_t placements_by_kind_[5] = {0, 0, 0, 0, 0};
  std::vector<std::uint64_t> placements_per_config_;

  double waste_accum_ = 0.0;          // kOnConfigure / kOnSchedule
  TimeWeightedValue waste_signal_;    // kTimeWeighted
  Tick total_config_time_ = 0;        // Eq. 10 accumulation

  OnlineStats waiting_;
  OnlineStats turnaround_;
  OnlineStats waste_samples_;
  OnlineStats retries_;
};

}  // namespace dreamsim::core
