// The Simulator facade (the paper's DreamSim class): wires the kernel, the
// resource store, the policy, the suspension queue, the network model, the
// monitoring module, and the metrics collector into one runnable system.
//
// Event flow per task (RunScheduler of Sec. IV-C):
//   arrival --> scheduling attempt --> placed    --> completion event
//                                  \-> suspended --> retried on completions
//                                  \-> discarded
//
// Each completion drains the suspension queue FIFO-first (bounded batch per
// event, preserving the paper's "check the suspension queue on every task
// completion" semantics at bounded cost).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "analysis/structure_auditor.hpp"
#include "core/fault_model.hpp"
#include "core/metrics.hpp"
#include "core/sim_config.hpp"
#include "net/bitstream_cache.hpp"
#include "net/network.hpp"
#include "resource/store.hpp"
#include "resource/suspension_queue.hpp"
#include "resource/task.hpp"
#include "rms/job_manager.hpp"
#include "rms/monitor.hpp"
#include "rms/resource_info.hpp"
#include "sched/policy.hpp"
#include "sim/kernel.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "workload/generator.hpp"
#include "workload/task_classes.hpp"

namespace dreamsim::core {

/// One task-lifecycle or fault event, as observed by the optional event
/// logger.
struct SimEvent {
  enum class Kind : std::uint8_t {
    kArrival,
    kPlaced,
    /// Voluntary suspension: the scheduler parked the task because a busy
    /// candidate exists (first attempt or after a queue re-attempt).
    kSuspended,
    /// Involuntary re-queue: a fault kill put the task back in the
    /// suspension queue (always preceded by kKilled for the same task).
    kRequeued,
    kDiscarded,
    kCompleted,
    /// Fault injection (DESIGN.md §10): a running task was killed by its
    /// node failing (task, node, and the killed placement's config are set).
    kKilled,
    /// Node fault events; `task` is invalid, `node` is set.
    kNodeFailed,
    kNodeRepaired,
  };
  Kind kind;
  Tick tick = 0;
  TaskId task;
  /// Node/config are set for kPlaced, kCompleted, kKilled, and the node
  /// fault kinds (node only).
  NodeId node;
  ConfigId config;
  /// kPlaced only: which Fig. 5 phase placed the task, and the setup delays
  /// (comm + configuration/bitstream wait) preceding execution.
  sched::PlacementKind placement{};
  Tick comm_time = 0;
  Tick config_wait = 0;
};

[[nodiscard]] std::string_view ToString(SimEvent::Kind kind);

/// One scheduling decision, as observed by the optional explain observer
/// (--explain). Captures what the policy saw and why the task ended up
/// where it did; `attempt_steps` is the number of scheduler search steps
/// the attempt charged — the size of the candidate set the policy explored.
struct ExplainRecord {
  TaskId task;
  Tick tick = 0;
  /// First attempt at arrival vs. a suspension-queue retry.
  bool is_arrival = true;
  sched::Outcome outcome = sched::Outcome::kDiscard;
  /// Set on kPlaced: where and how the task landed.
  NodeId node;
  ConfigId config;
  sched::PlacementKind kind{};
  bool used_closest_match = false;
  Tick config_time = 0;
  /// Scheduling-search steps charged during this attempt (candidate
  /// visits); 0 for records not produced by a policy run (overflow, end
  /// sweep).
  Steps attempt_steps = 0;
  /// Suspension-queue depth and failed-node count at decision time.
  std::size_t queue_depth = 0;
  std::size_t failed_nodes = 0;
  /// Short machine-readable cause: "placed", "busy-candidate-exists",
  /// "no-feasible-host", "queue-overflow", "retry-budget-exhausted",
  /// "killed-retry-exhausted", "drained-at-end".
  const char* reason = "";
};

/// System-state observation delivered to the optional state observer at
/// every monitoring point (the same event-driven sites the MonitoringModule
/// samples: arrivals, completions, node failures and repairs).
struct StateSample {
  Tick tick = 0;
  std::size_t busy_nodes = 0;
  std::size_t running_tasks = 0;
  std::size_t suspended_tasks = 0;  // suspension-queue depth
  Area wasted_area = 0;             // Eq. 6 signal
  Steps scheduler_steps = 0;        // cumulative total scheduler workload
  std::size_t failed_nodes = 0;
};

/// One self-contained simulation run. Construct, then call Run() (or
/// RunWithWorkload() to replay a trace). Not reusable: build a fresh
/// Simulator per run.
class Simulator {
 public:
  explicit Simulator(SimulationConfig config);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Generates the synthetic workload from the config and runs to
  /// completion. Returns the Table I metrics.
  [[nodiscard]] MetricsReport Run();

  /// Runs a pre-materialized workload (trace replay / tests).
  [[nodiscard]] MetricsReport RunWithWorkload(const workload::Workload& wl);

  /// Runs a merged multi-class workload (scenario path): submits the
  /// timeline and releases each chain successor when its predecessor
  /// completes (composing with any user-installed completion hook). A
  /// chain-free workload delegates to RunWithWorkload(wl.tasks) verbatim.
  [[nodiscard]] MetricsReport RunMultiClass(
      const workload::MultiClassWorkload& wl);

  /// Optional hook invoked after every task completion (used by the
  /// task-graph session to release successors). Set before Run*().
  void SetCompletionHook(std::function<void(TaskId, Tick)> hook) {
    completion_hook_ = std::move(hook);
  }

  /// Submits one extra task to arrive at tick `at` (>= now). Usable from a
  /// completion hook while the run is in flight.
  TaskId SubmitTaskAt(const workload::GeneratedTask& task, Tick at);

  /// Optional observer of every task-lifecycle event (arrival, placement,
  /// suspension, discard, completion) in execution order. Set before
  /// Run*(); pass nullptr to disable. Used for event traces and debugging.
  void SetEventLogger(std::function<void(const SimEvent&)> logger) {
    event_logger_ = std::move(logger);
  }

  /// Optional observer of system-state samples (obs::TimeSeriesSampler).
  /// Like the event logger it is a pure observer: snapshots are read-only
  /// and never charge the WorkloadMeter. Set before Run*(); pass nullptr
  /// to disable.
  void SetStateObserver(std::function<void(const StateSample&)> observer) {
    state_observer_ = std::move(observer);
  }

  /// Optional observer of per-decision explain records (--explain). Pure
  /// observer like the event logger. `tasks` filters emission to those
  /// TaskIds; an empty filter explains every task. Set before Run*().
  void SetExplainObserver(std::function<void(const ExplainRecord&)> observer,
                          std::vector<TaskId> tasks = {}) {
    explain_observer_ = std::move(observer);
    explain_tasks_.clear();
    for (const TaskId id : tasks) explain_tasks_.insert(id.value());
  }

  // --- Post-run inspection ---
  [[nodiscard]] const resource::ResourceStore& store() const { return store_; }
  [[nodiscard]] const resource::SuspensionQueue& suspension() const {
    return suspension_;
  }
  [[nodiscard]] const resource::TaskStore& tasks() const { return tasks_; }
  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] const sim::Kernel& kernel() const { return kernel_; }
  [[nodiscard]] const rms::UtilizationReport& utilization() const {
    return utilization_;
  }
  [[nodiscard]] const sched::Policy& policy() const { return *policy_; }

  /// Aggregate bitstream-cache statistics across nodes (ship_bitstreams
  /// extension; zeros otherwise).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] CacheStats bitstream_cache_stats() const;

  /// Runs the StructureAuditor over every live structure (resource store,
  /// suspension queue, pending-event set). Pure read-only — it never
  /// charges the WorkloadMeter or perturbs the run — so tests can call it
  /// at any point regardless of the configured AuditMode.
  [[nodiscard]] analysis::AuditReport AuditStructures() const;

 private:
  /// Ticks spent shipping the bitstream for a fresh configuration on
  /// `node` (0 on cache hit or when shipping is disabled).
  [[nodiscard]] Tick BitstreamDelay(const resource::Node& node,
                                    ConfigId config);
  void Emit(SimEvent::Kind kind, TaskId task,
            NodeId node = NodeId::invalid(),
            ConfigId config = ConfigId::invalid()) {
    if (event_logger_) {
      event_logger_(SimEvent{kind, kernel_.now(), task, node, config});
    }
  }
  /// Feeds the monitoring module and/or the state observer (one shared
  /// snapshot); no-op when both are off.
  void ObserveState();
  /// True when the explain observer wants records for `id`.
  [[nodiscard]] bool ShouldExplain(TaskId id) const {
    return explain_observer_ &&
           (explain_tasks_.empty() || explain_tasks_.count(id.value()) != 0);
  }
  /// Builds and delivers one explain record (call only after ShouldExplain).
  void EmitExplain(TaskId id, bool is_arrival, sched::Outcome outcome,
                   const char* reason, const sched::Decision* decision);
  void HandleArrival(TaskId id);
  void HandleCompletion(TaskId id, resource::EntryRef entry);
  /// One policy attempt; performs all placed/discard bookkeeping. Returns
  /// the outcome (kSuspend leaves queue management to the caller).
  sched::Outcome AttemptSchedule(TaskId id, bool is_arrival);
  void EnqueueSuspended(TaskId id);
  /// The drain-relevant attribute snapshot the suspension queue indexes.
  [[nodiscard]] resource::SusEntryAttrs SusAttrs(
      const resource::Task& task) const;
  struct DrainAttempt {
    bool placed = false;
    bool removed = false;  // the task left the queue (placed or discarded)
  };
  /// Re-attempts the queued task at FIFO `index`, removing it from the
  /// queue on success or final failure.
  DrainAttempt AttemptQueuedAt(std::size_t index);
  void DrainFullMode(const resource::Node& node, ConfigId freed_config);
  void DrainPartialPriority(const resource::Node& node, ConfigId freed_config,
                            std::size_t max_policy_runs);
  void DrainPartialFifo(const resource::Node& node, ConfigId freed_config,
                        std::size_t max_policy_runs);
  /// Node-targeted queue check after a completion on `freed` (the paper's
  /// RemoveTaskFromSusQueue: find "a suitable task ... which can be
  /// executed on the node"). Full mode prefers a task whose resolved
  /// configuration matches the freed one (reuse without reconfiguration),
  /// falling back to any task the node's fabric could fit; partial mode
  /// takes the FIFO-first task the node can accommodate via allocation,
  /// spare area, or reclaiming idle entries. The candidate scan is charged
  /// as scheduler search effort; policy runs per completion are bounded by
  /// suspension_batch. A node repair also drains with `freed_config`
  /// invalid: the revived node is blank capacity with nothing to reuse.
  void DrainSuspensionQueue(NodeId freed_node, ConfigId freed_config);
  /// Partial-mode prefilter: could `task` plausibly run on `node` now?
  [[nodiscard]] bool CouldUseNode(const resource::Task& task,
                                  const resource::Node& node,
                                  ConfigId freed_config) const;
  [[nodiscard]] std::unique_ptr<sched::Policy> MakePolicy() const;
  [[nodiscard]] MetricsReport FinishReport();
  /// Step-mode audit hook, called after every scheduler decision site.
  /// Off-mode cost is one enum comparison (bench_audit gates it); a
  /// violation throws std::logic_error with the rendered report.
  void MaybeAudit(const char* where) {
    if (config_.audit == analysis::AuditMode::kStep) AuditAt(where);
  }
  void AuditAt(const char* where);

  // --- Fault injection (DESIGN.md §10) ---
  /// Arms one node's next random failure/repair (kControl priority).
  void ArmFailure(NodeId node) REQUIRES(kernel_role_);
  void ArmRepair(NodeId node) REQUIRES(kernel_role_);
  /// Idempotently arms fault delivery: schedules every pending scripted
  /// event and arms the process chain of every node whose handle is not
  /// already live. Called both at run start and when a mid-run
  /// SubmitTaskAt() revives a drained system, so the two entry points can
  /// never double-arm a node (a graph session submits its roots before
  /// RunWithWorkload()).
  void RearmFaults() REQUIRES(kernel_role_);
  /// Schedules every scripted event that has not fired, has no pending
  /// kernel event, and lies at or after the current tick (entries whose
  /// tick passed while the system was drained would have been no-ops).
  void ScheduleFaultScript() REQUIRES(kernel_role_);
  /// Applies a fault event if it changes the node's state (scripted events
  /// may race the random process; the loser is a no-op).
  void ApplyFault(NodeId node, FaultAction action);
  void HandleNodeFailure(NodeId node);
  void HandleNodeRepair(NodeId node);
  /// Bookkeeping after a task reaches a terminal state; once every
  /// submitted task is terminal the pending fault events are cancelled so
  /// an ever-renewing MTBF chain cannot keep the kernel alive (or stretch
  /// Eq. 5's end time) past the workload.
  void NoteTerminal();
  void CancelPendingFaultEvents() REQUIRES(kernel_role_);

  SimulationConfig config_;
  Rng rng_;
  sim::Kernel kernel_;
  resource::ResourceStore store_;
  resource::TaskStore tasks_;
  resource::SuspensionQueue suspension_;
  std::unique_ptr<sched::Policy> policy_;
  net::NetworkModel network_;
  std::vector<net::BitstreamCache> bitstream_caches_;  // one per node
  Tick bitstream_transfer_total_ = 0;
  MetricsCollector metrics_;
  rms::ResourceInformationManager info_;
  rms::MonitoringModule monitor_;
  rms::JobSubmissionManager jobs_;
  rms::UtilizationReport utilization_;
  std::function<void(TaskId, Tick)> completion_hook_;
  std::function<void(const SimEvent&)> event_logger_;
  std::function<void(const StateSample&)> state_observer_;
  std::function<void(const ExplainRecord&)> explain_observer_;
  std::unordered_set<std::uint32_t> explain_tasks_;  // empty = all tasks
  bool ran_ = false;

  // --- Fault injection state (all dormant when faults are disabled) ---
  FaultModel faults_;
  /// The fault-arming renewal chain is mutated only by the thread driving
  /// the kernel: arming entry points and every kControl callback assert
  /// this role (DESIGN.md §17), so a handle armed or cancelled off the
  /// kernel thread fails under -Werror=thread-safety and aborts in debug
  /// builds.
  util::ThreadRole kernel_role_;
  /// Per-node pending process event (failure or repair), for cancellation.
  std::vector<sim::EventHandle> fault_process_events_
      GUARDED_BY(kernel_role_);
  /// Scripted events, validated and copied from FaultParams::script at
  /// construction. The entry outlives its kernel event: a transient
  /// terminal==submitted drain cancels the handles, and the next reviving
  /// submission re-schedules every entry that has not fired yet.
  struct ScriptedFault {
    FaultEvent event;
    sim::EventHandle handle;
    bool fired = false;
  };
  std::vector<ScriptedFault> fault_script_ GUARDED_BY(kernel_role_);
  /// Tick each currently failed node went down (kNoTick = healthy).
  std::vector<Tick> failed_since_;
  /// Pending completion events, indexed by the (dense) task id, so a node
  /// failure can cancel them. Tracked only when faults are enabled
  /// (fault-free runs keep the original zero-overhead path).
  std::vector<sim::EventHandle> completion_events_;
  std::uint64_t submitted_tasks_ = 0;
  std::uint64_t terminal_tasks_ = 0;
  std::uint64_t failures_injected_ = 0;
  std::uint64_t repairs_completed_ = 0;
  std::uint64_t tasks_killed_ = 0;
  std::uint64_t lost_work_area_ticks_ = 0;
  Tick downtime_total_ = 0;
};

/// Builds the policy named by `choice` (DreamSim honours `mode`; the
/// heuristic baselines always use partial-reconfiguration semantics).
[[nodiscard]] std::unique_ptr<sched::Policy> MakePolicy(
    PolicyChoice choice, sched::ReconfigMode mode, std::uint64_t seed);

}  // namespace dreamsim::core
