#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/fmt.hpp"

namespace dreamsim::core {

std::vector<int> PaperTaskCounts(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("PaperTaskCounts scale must be in (0, 1]");
  }
  std::vector<int> counts;
  const auto scaled = [scale](int n) {
    return std::max(1000, static_cast<int>(std::lround(n * scale)));
  };
  counts.push_back(scaled(1000));
  for (int n = 10000; n <= 100000; n += 10000) counts.push_back(scaled(n));
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<MetricsReport> RunSweep(const SweepParams& params) {
  struct Point {
    sched::ReconfigMode mode;
    int tasks;
  };
  std::vector<Point> points;
  points.reserve(params.modes.size() * params.task_counts.size());
  for (const sched::ReconfigMode mode : params.modes) {
    for (const int tasks : params.task_counts) {
      points.push_back(Point{mode, tasks});
    }
  }

  std::vector<MetricsReport> reports(points.size());
  std::atomic<std::size_t> next{0};
  // Each worker claims points off a shared counter; simulations are fully
  // independent so no further synchronization is needed.
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      SimulationConfig config = params.base;
      config.mode = points[i].mode;
      config.tasks.total_tasks = points[i].tasks;
      if (config.label.empty()) {
        config.label = Format("{}-n{}-t{}", sched::ToString(points[i].mode),
                              config.nodes.count, points[i].tasks);
        if (config.faults.enabled()) config.label += "-faults";
      }
      Simulator simulator(std::move(config));
      reports[i] = simulator.Run();
    }
  };

  unsigned threads = params.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(1, points.size())));

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return reports;
}

std::vector<ReplicationReport> RunReplicatedSweep(const SweepParams& params) {
  if (params.replications == 0) {
    throw std::invalid_argument("need at least one replication per point");
  }
  struct Job {
    sched::ReconfigMode mode;
    int tasks;
    std::size_t replication;
  };
  std::vector<Job> jobs;
  const std::size_t points = params.modes.size() * params.task_counts.size();
  jobs.reserve(points * params.replications);
  for (const sched::ReconfigMode mode : params.modes) {
    for (const int tasks : params.task_counts) {
      for (std::size_t r = 0; r < params.replications; ++r) {
        jobs.push_back(Job{mode, tasks, r});
      }
    }
  }

  // Flat job list: point-major, replication-minor, so jobs for one point
  // are contiguous and the reduce below is a simple slice.
  std::vector<MetricsReport> runs(jobs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      SimulationConfig config = params.base;
      config.mode = jobs[i].mode;
      config.tasks.total_tasks = jobs[i].tasks;
      config.seed = DeriveSeed(params.base.seed, jobs[i].replication);
      if (config.label.empty()) {
        config.label = Format("{}-n{}-t{}#{}", sched::ToString(jobs[i].mode),
                              config.nodes.count, jobs[i].tasks,
                              jobs[i].replication);
      }
      Simulator simulator(std::move(config));
      runs[i] = simulator.Run();
    }
  };

  unsigned threads = params.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(1, jobs.size())));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }

  std::vector<ReplicationReport> reports;
  reports.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const auto first =
        runs.begin() + static_cast<std::ptrdiff_t>(p * params.replications);
    reports.push_back(SummarizeReplications(std::vector<MetricsReport>(
        first, first + static_cast<std::ptrdiff_t>(params.replications))));
  }
  return reports;
}

}  // namespace dreamsim::core
