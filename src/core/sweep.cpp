#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/fmt.hpp"

namespace dreamsim::core {

std::vector<int> PaperTaskCounts(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("PaperTaskCounts scale must be in (0, 1]");
  }
  std::vector<int> counts;
  const auto scaled = [scale](int n) {
    return std::max(1000, static_cast<int>(std::lround(n * scale)));
  };
  counts.push_back(scaled(1000));
  for (int n = 10000; n <= 100000; n += 10000) counts.push_back(scaled(n));
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<MetricsReport> RunSweep(const SweepParams& params) {
  struct Point {
    sched::ReconfigMode mode;
    int tasks;
  };
  std::vector<Point> points;
  points.reserve(params.modes.size() * params.task_counts.size());
  for (const sched::ReconfigMode mode : params.modes) {
    for (const int tasks : params.task_counts) {
      points.push_back(Point{mode, tasks});
    }
  }

  std::vector<MetricsReport> reports(points.size());
  std::atomic<std::size_t> next{0};
  // Each worker claims points off a shared counter; simulations are fully
  // independent so no further synchronization is needed.
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      SimulationConfig config = params.base;
      config.mode = points[i].mode;
      config.tasks.total_tasks = points[i].tasks;
      if (config.label.empty()) {
        config.label = Format("{}-n{}-t{}", sched::ToString(points[i].mode),
                              config.nodes.count, points[i].tasks);
        if (config.faults.enabled()) config.label += "-faults";
      }
      Simulator simulator(std::move(config));
      reports[i] = simulator.Run();
    }
  };

  unsigned threads = params.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(1, points.size())));

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return reports;
}

}  // namespace dreamsim::core
