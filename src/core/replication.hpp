// Replicated runs with summary statistics.
//
// A single simulation is one draw from the workload distribution; credible
// comparisons need replications. RunReplications() executes the same
// configuration under independent seeds (in parallel — replications share
// nothing) and reduces every headline metric to mean / stddev / min / max
// plus a normal-approximation 95% confidence half-width.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/sim_config.hpp"
#include "util/stats.hpp"

namespace dreamsim::core {

/// Summary of one metric across replications.
struct MetricSummary {
  std::string name;
  OnlineStats stats;

  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double stddev() const { return stats.stddev(); }
  /// Half-width of the normal-approximation 95% confidence interval for
  /// the mean (1.96 * stddev / sqrt(n)); 0 for fewer than 2 replications.
  [[nodiscard]] double ci95_half_width() const;
};

/// Aggregated replication results.
struct ReplicationReport {
  std::size_t replications = 0;
  std::vector<MetricSummary> metrics;
  /// The individual per-run reports, in seed order.
  std::vector<MetricsReport> runs;

  /// Lookup by metric name; throws std::out_of_range when absent.
  [[nodiscard]] const MetricSummary& Metric(std::string_view name) const;
};

/// Runs `replications` simulations of `base`, with seeds derived from
/// base.seed via DeriveSeed(base.seed, replication_index). `threads` = 0
/// uses hardware concurrency. Summarizes the Table I metrics.
[[nodiscard]] ReplicationReport RunReplications(const SimulationConfig& base,
                                                std::size_t replications,
                                                unsigned threads = 0);

/// Reduces already-materialized per-run reports (in seed order) to the
/// standard Table I metric summaries — the reduction RunReplications()
/// applies, exposed so the sweep driver can summarize each grid point.
/// Throws std::invalid_argument on an empty run list.
[[nodiscard]] ReplicationReport SummarizeReplications(
    std::vector<MetricsReport> runs);

/// Renders the summary as a fixed-width table (metric, mean, ±ci95,
/// stddev, min, max).
[[nodiscard]] std::string RenderReplicationTable(const ReplicationReport& report);

}  // namespace dreamsim::core
