// Processor configurations (Eq. 2) and their catalogue.
//
//   C_i(ReqArea, Ptype, param, BSize, ConfigTime)
//
// A configuration is a synthesizable processor instance that can be loaded
// onto a node's reconfigurable fabric by sending its bitstream. The
// catalogue is the "configurations list" the scheduler searches with
// FindPreferredConfig / FindClosestConfig.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ptype/catalogue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::resource {

/// One processor configuration (Eq. 2).
struct Configuration {
  ConfigId id;
  /// Reconfigurable area the instance occupies.
  Area required_area = 0;
  /// Processor type implemented by this configuration.
  PtypeId ptype;
  /// Bitstream file size (BSize).
  Bytes bitstream_size = 0;
  /// Ticks to (re)configure a region with this bitstream.
  Tick config_time = 1;
  /// Device family the bitstream was synthesized for. A configuration can
  /// only be loaded onto nodes of the same family ("a device family
  /// defines the group of compatible nodes", Eq. 1). Invalid = universal
  /// (the paper's evaluation, which uses a single implicit family).
  FamilyId family;

  /// True when this configuration can be loaded on a node of
  /// `node_family`.
  [[nodiscard]] bool CompatibleWith(FamilyId node_family) const {
    return !family.valid() || family == node_family;
  }
};

/// Parameters for synthetic configuration generation (Table II:
/// "Configurations ReqArea range [200...2000]", "t_config range [10...20]").
struct ConfigGenParams {
  int count = 50;
  Area min_area = 200;
  Area max_area = 2000;
  Tick min_config_time = 10;
  Tick max_config_time = 20;
  /// Number of device families the configurations are synthesized for
  /// (round-robin). <= 1 keeps every configuration universal, matching the
  /// paper's single-family evaluation.
  int family_count = 1;
  /// Processor-type selection: names from ptype::Catalogue::Default(),
  /// sampled uniformly in the listed order. Empty = the whole default
  /// catalogue (the flag-driven path; keeps bit-identity).
  std::vector<std::string> ptypes;
};

/// Dense catalogue of configurations, indexed by ConfigId. Searches are
/// linear and report their step counts, matching the paper's "simple linear
/// search is employed" and its scheduling-step metrics.
class ConfigCatalogue {
 public:
  /// Registers a configuration; the stored copy receives its id.
  ConfigId Add(Configuration config);

  /// InitConfigs(): generates `params.count` configurations with uniformly
  /// distributed ReqArea and ConfigTime, processor types sampled from
  /// `ptypes`, and BSize derived from area.
  static ConfigCatalogue Generate(const ConfigGenParams& params,
                                  const ptype::Catalogue& ptypes, Rng& rng);

  [[nodiscard]] const Configuration& Get(ConfigId id) const;
  [[nodiscard]] bool Contains(ConfigId id) const;
  [[nodiscard]] std::size_t size() const { return configs_.size(); }
  [[nodiscard]] bool empty() const { return configs_.empty(); }
  [[nodiscard]] const std::vector<Configuration>& all() const {
    return configs_;
  }

  /// FindPreferredConfig(): linear scan for `preferred`; adds one step per
  /// visited entry to `steps`. Returns nullopt when absent.
  [[nodiscard]] std::optional<ConfigId> FindPreferred(ConfigId preferred,
                                                      Steps& steps) const;

  /// FindClosestConfig(): the configuration whose ReqArea is minimal among
  /// all with ReqArea >= `needed_area` ("more than the ReqArea of the
  /// C_pref"). Linear counted scan; nullopt when nothing is large enough.
  [[nodiscard]] std::optional<ConfigId> FindClosestMatch(Area needed_area,
                                                         Steps& steps) const;

  /// Largest ReqArea in the catalogue (0 when empty); used for fast
  /// infeasibility checks.
  [[nodiscard]] Area max_required_area() const { return max_area_; }

 private:
  std::vector<Configuration> configs_;
  Area max_area_ = 0;
};

}  // namespace dreamsim::resource
