// Suspension queue (the SusList of the UML model).
//
// Tasks that cannot be placed now — but for which a currently busy node with
// sufficient TotalArea exists — wait here; "each time a node finishes
// executing a task, the suspension queue is checked ... to determine if a
// suitable task is waiting in the queue which can be executed".
//
// With the drain index enabled (the default) the queue keeps a
// SusQueueIndex in sync so membership tests and drain candidate selection
// run in O(log Q) host work; every counted operation still charges the
// WorkloadMeter exactly what the literal FIFO scan would have charged
// (DESIGN.md "Scheduler index").
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "resource/sus_queue_index.hpp"
#include "resource/workload_meter.hpp"
#include "util/types.hpp"

namespace dreamsim::resource {

/// FIFO of suspended tasks with counted traversals. An optional capacity
/// bound lets failure-injection tests exercise overflow handling.
class SuspensionQueue {
 public:
  /// `capacity` of 0 means unbounded.
  explicit SuspensionQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// AddTaskToSusQueue(): appends the task. Returns false when the queue is
  /// at capacity (caller then discards the task). The overload without
  /// attributes indexes the task with default attributes.
  [[nodiscard]] bool Add(TaskId task, WorkloadMeter& meter) {
    return Add(task, SusEntryAttrs{}, meter);
  }
  [[nodiscard]] bool Add(TaskId task, const SusEntryAttrs& attrs,
                         WorkloadMeter& meter);

  /// RemoveTaskFromSusQueue(): removes and returns the first (oldest) task
  /// satisfying `pred`; counted scan in FIFO order.
  template <typename Pred>
  [[nodiscard]] std::optional<TaskId> PopFirstMatching(Pred&& pred,
                                                       WorkloadMeter& meter) {
    obs::MetricInc(obs::MetricId::kSusqScanFallback);
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      meter.Add(StepKind::kHousekeeping);
      if (pred(queue_[i])) {
        const TaskId task = queue_[i];
        EraseAt(i);
        return task;
      }
    }
    return std::nullopt;
  }

  /// SearchSusQueue(): counted membership test. Answered from the index
  /// (O(log Q) host work) when enabled, by literal scan otherwise; the
  /// meter charge is the scan's either way (position + 1 on a hit, queue
  /// size on a miss).
  [[nodiscard]] bool Contains(TaskId task, WorkloadMeter& meter) const;

  /// Removes a specific task (e.g. when its retry budget is exhausted).
  /// Same indexed-or-scan split and charge contract as Contains().
  bool Remove(TaskId task, WorkloadMeter& meter);

  /// Removes the task at FIFO position `index` (0 = oldest). Used by
  /// callers that already paid the traversal to `index`; charges one
  /// housekeeping step for the unlink itself.
  void RemoveAt(std::size_t index, WorkloadMeter& meter);

  /// Re-syncs the indexed attributes of a queued task after a failed
  /// drain attempt may have rewritten its resolved config. Charges
  /// nothing — the reference scans re-read task state for free.
  void RefreshAttrs(TaskId task, const SusEntryAttrs& attrs);

  /// Enables or disables the drain index, rebuilding it from the current
  /// queue content (attributes are retained across toggles).
  void SetDrainIndexed(bool enabled);
  [[nodiscard]] bool drain_indexed() const { return index_ != nullptr; }

  // --- Indexed drain queries (require drain_indexed()) ---
  // Decision mirrors of the Simulator::DrainSuspensionQueue scans; the
  // caller charges the analytic step counts. See SusQueueIndex. That
  // caller-charges contract is why these thin delegates carry
  // `lint: allow(uncharged-index-query)` — dreamsim_lint's R3 otherwise
  // requires a WorkloadMeter charge next to every drain-query call.

  [[nodiscard]] std::optional<std::size_t> OldestExactMatch(
      ConfigId config) const {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kSusQueueQuery);
    obs::MetricInc(obs::MetricId::kSusqQueryOldestExact);
    return index_->OldestExactMatch(config);  // lint: allow(uncharged-index-query)
  }
  [[nodiscard]] std::optional<std::size_t> BestPriorityExactMatch(
      ConfigId config) const {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kSusQueueQuery);
    obs::MetricInc(obs::MetricId::kSusqQueryBestPrioExact);
    return index_->BestPriorityExactMatch(config);  // lint: allow(uncharged-index-query)
  }
  /// `from` is a FIFO position (entries before it are skipped).
  [[nodiscard]] std::optional<std::size_t> OldestEligible(
      FamilyId family, Area area_bound, std::size_t from,
      ConfigId match_config) const {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kSusQueueQuery);
    obs::MetricInc(obs::MetricId::kSusqQueryOldestEligible);
    // lint: allow(uncharged-index-query)
    return index_->OldestEligible(family, area_bound,
                                  from == 0 ? TaskId::invalid() : queue_[from],
                                  match_config);
  }
  [[nodiscard]] std::optional<std::size_t> BestPriorityEligible(
      FamilyId family, Area area_bound, ConfigId match_config) const {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kSusQueueQuery);
    obs::MetricInc(obs::MetricId::kSusqQueryBestPrioEligible);
    // lint: allow(uncharged-index-query)
    return index_->BestPriorityEligible(family, area_bound, match_config);
  }

  /// Cross-checks the index against the queue (empty = consistent; always
  /// empty when the index is disabled).
  [[nodiscard]] std::vector<std::string> ValidateIndex() const;

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Read-only view in FIFO order (oldest first).
  [[nodiscard]] const std::vector<TaskId>& tasks() const { return queue_; }

  /// Pre-reserves FIFO and attribute-map capacity for `expected` entries.
  void Reserve(std::size_t expected) {
    queue_.reserve(expected);
    attrs_.reserve(expected);
  }

 private:
  // Correctness tooling (src/analysis): read-only ground-truth diffing and
  // test-only seeded corruption. See entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  /// Unlinks position `index` from the queue, the attribute map, and the
  /// index (uncounted; callers charge per their own contract).
  void EraseAt(std::size_t index);

  std::size_t capacity_;
  std::vector<TaskId> queue_;
  std::unordered_map<std::uint32_t, SusEntryAttrs> attrs_;  // by TaskId value
  std::unique_ptr<SusQueueIndex> index_;
};

}  // namespace dreamsim::resource
