// Suspension queue (the SusList of the UML model).
//
// Tasks that cannot be placed now — but for which a currently busy node with
// sufficient TotalArea exists — wait here; "each time a node finishes
// executing a task, the suspension queue is checked ... to determine if a
// suitable task is waiting in the queue which can be executed".
#pragma once

#include <deque>
#include <optional>

#include "resource/workload_meter.hpp"
#include "util/types.hpp"

namespace dreamsim::resource {

/// FIFO of suspended tasks with counted traversals. An optional capacity
/// bound lets failure-injection tests exercise overflow handling.
class SuspensionQueue {
 public:
  /// `capacity` of 0 means unbounded.
  explicit SuspensionQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// AddTaskToSusQueue(): appends the task. Returns false when the queue is
  /// at capacity (caller then discards the task).
  [[nodiscard]] bool Add(TaskId task, WorkloadMeter& meter);

  /// RemoveTaskFromSusQueue(): removes and returns the first (oldest) task
  /// satisfying `pred`; counted scan in FIFO order.
  template <typename Pred>
  [[nodiscard]] std::optional<TaskId> PopFirstMatching(Pred&& pred,
                                                       WorkloadMeter& meter) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      meter.Add(StepKind::kHousekeeping);
      if (pred(queue_[i])) {
        const TaskId task = queue_[i];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        return task;
      }
    }
    return std::nullopt;
  }

  /// SearchSusQueue(): counted membership test.
  [[nodiscard]] bool Contains(TaskId task, WorkloadMeter& meter) const;

  /// Removes a specific task (e.g. when its retry budget is exhausted).
  bool Remove(TaskId task, WorkloadMeter& meter);

  /// Removes the task at FIFO position `index` (0 = oldest). Used by
  /// callers that already paid the traversal to `index`; charges one
  /// housekeeping step for the unlink itself.
  void RemoveAt(std::size_t index, WorkloadMeter& meter);

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Read-only view in FIFO order (oldest first).
  [[nodiscard]] const std::deque<TaskId>& tasks() const { return queue_; }

 private:
  std::size_t capacity_;
  std::deque<TaskId> queue_;
};

}  // namespace dreamsim::resource
