#include "resource/shard_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/fmt.hpp"

namespace dreamsim::resource {

namespace {

/// Mirror of ResourceStore::kNotBlank: the blank-position sentinel for
/// nodes outside the blank list (non-blank or failed).
constexpr std::size_t kNotBlank = static_cast<std::size_t>(-1);

/// Below this many idle-list cells a fork-join costs more than the scan.
/// Size-based only, so the serial/parallel split is deterministic.
constexpr std::size_t kParallelIdleScanMin = 2048;

/// Family compatibility: a valid required family must match the node's.
bool FamilyOk(FamilyId required, const Node& n) {
  return !required.valid() || required == n.family();
}

}  // namespace

ShardEngine::ShardEngine(const ConfigCatalogue& configs, std::size_t shards,
                         std::size_t threads, ShardBy by)
    : configs_(&configs), by_(by) {
  if (shards < 2) {
    throw std::invalid_argument("ShardEngine: shard count must be >= 2");
  }
  members_.resize(shards);
  indexes_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    indexes_.push_back(std::make_unique<StoreIndex>(configs, /*sparse=*/true));
  }
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  pool_ = std::make_unique<sim::ShardPool>(
      threads == 0 ? std::min(shards, hw) : threads);
}

ShardEngine::~ShardEngine() = default;

void ShardEngine::Bind(const ConfigCatalogue& configs,
                       const std::vector<Node>& nodes,
                       const std::vector<NodeId>& blank,
                       const std::vector<std::size_t>& blank_pos,
                       const std::vector<Area>& busy_area) {
  configs_ = &configs;
  nodes_ = &nodes;
  blank_ = &blank;
  blank_pos_view_ = &blank_pos;
  busy_area_view_ = &busy_area;
  for (auto& index : indexes_) index->RebindCatalogue(configs);
}

std::uint32_t ShardEngine::ShardOf(const Node& node) const {
  const auto shards = static_cast<std::uint32_t>(members_.size());
  if (by_ == ShardBy::kFamily) return node.family().value() % shards;
  return node.id().value() % shards;
}

void ShardEngine::AddNode(const Node& node, Area busy_area) {
  sim_role_.AssertHeld();
  const std::uint32_t id = node.id().value();
  if (id != shard_of_.size()) {
    throw std::logic_error("ShardEngine::AddNode: node ids must be dense");
  }
  const std::uint32_t shard = ShardOf(node);
  shard_of_.push_back(shard);
  members_[shard].push_back(id);
  indexes_[shard]->AddNode(node, busy_area);
  ++epoch_;
}

void ShardEngine::Refresh(const Node& node, Area busy_area) {
  sim_role_.AssertHeld();
  indexes_[shard_of_[node.id().value()]]->Refresh(node, busy_area);
  ++epoch_;
}

void ShardEngine::SetIndexed(bool enabled) {
  sim_role_.AssertHeld();
  indexed_ = enabled;
  bundle_.keyed = false;
}

void ShardEngine::PrefetchDecision(Area needed_area, FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kBlank);
}

std::optional<ReconfigPlan> ShardEngine::ReplayReclaim(
    const Node& node, Area needed_area) const {
  // Mirrors the Algorithm 1 inner loop exactly: accumulate idle-entry
  // areas in slot order; the plan is the minimal prefix reaching the
  // target, gated by the contiguous-placement hole check.
  Area accumulated = node.available_area();
  std::vector<SlotIndex> removable;
  std::optional<ReconfigPlan> plan;
  node.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
    if (plan || !pair.idle()) return;
    accumulated += configs_->Get(pair.config).required_area;
    removable.push_back(slot);
    if (accumulated < needed_area) return;
    if (node.contiguous() &&
        !node.CanHostAfterReclaiming(removable, needed_area)) {
      return;
    }
    plan = ReconfigPlan{node.id(), removable};
  });
  return plan;
}

void ShardEngine::ComputeScan(std::size_t shard, Area needed_area,
                              FamilyId family, QueryGroup group,
                              ShardAnswer& a) const {
  const std::vector<Node>& nodes = *nodes_;
  const std::vector<std::size_t>& blank_pos = *blank_pos_view_;
  for (const std::uint32_t id : members_[shard]) {
    const Node& n = nodes[id];
    if (!FamilyOk(family, n)) continue;
    if (group == QueryGroup::kBlank) {
      // Blank-list candidate: membership implies blank and not failed. The
      // reference scans the blank list in list order, so ties on the
      // minimal TotalArea fall to the smallest blank-list position.
      if (blank_pos[id] != kNotBlank && n.total_area() >= needed_area) {
        if (!a.blank || n.total_area() < a.blank_total ||
            (n.total_area() == a.blank_total &&
             blank_pos[id] < a.blank_list_pos)) {
          a.blank = n.id();
          a.blank_total = n.total_area();
          a.blank_list_pos = blank_pos[id];
        }
      }
      continue;
    }
    // Members ascend in id, so every strict `<`/`>` keeps the smallest id
    // among ties — the reference scans' winner.
    const bool can_host = n.CanHost(needed_area);
    if (group == QueryGroup::kRanked) {
      if (can_host) {
        if (!a.first_fit) a.first_fit = n.id();
        if (!a.best_fit || n.available_area() < a.best_fit_avail) {
          a.best_fit = n.id();
          a.best_fit_avail = n.available_area();
        }
        if (!a.worst_fit || n.available_area() > a.worst_fit_avail) {
          a.worst_fit = n.id();
          a.worst_fit_avail = n.available_area();
        }
      }
      continue;
    }
    // QueryGroup::kRest: the four deep-phase scans in one combined pass.
    if (!n.blank() && can_host &&
        (!a.partial || n.available_area() < a.partial_avail)) {
      a.partial = n.id();
      a.partial_avail = n.available_area();
    }
    if (!n.blank() && !n.busy() && n.total_area() >= needed_area &&
        (!a.idle_cfg || n.total_area() < a.idle_cfg_total)) {
      a.idle_cfg = n.id();
      a.idle_cfg_total = n.total_area();
    }
    if (!a.busy_fit && n.busy() && n.total_area() >= needed_area) {
      a.busy_fit = n.id();
    }
    if (!a.any_idle) {
      if (can_host) {
        a.any_idle = ReconfigPlan{n.id(), {}};
      } else if (auto plan = ReplayReclaim(n, needed_area)) {
        a.any_idle = std::move(plan);
      }
    }
  }
}

void ShardEngine::ComputeIndexed(std::size_t shard, Area needed_area,
                                 FamilyId family, QueryGroup group,
                                 ShardAnswer& a) const {
  const StoreIndex& index = *indexes_[shard];
  const std::vector<Node>& nodes = *nodes_;
  switch (group) {
    case QueryGroup::kBlank:
      if (const auto id =
              index.BestBlank(needed_area, family, *blank_pos_view_)) {
        a.blank = id;
        a.blank_total = nodes[id->value()].total_area();
        a.blank_list_pos = (*blank_pos_view_)[id->value()];
      }
      break;
    case QueryGroup::kRest:
      if (const auto id =
              index.BestPartiallyBlank(needed_area, family, nodes)) {
        a.partial = id;
        a.partial_avail = nodes[id->value()].available_area();
      }
      if (const auto id = index.BestIdleConfigured(needed_area, family)) {
        a.idle_cfg = id;
        a.idle_cfg_total = nodes[id->value()].total_area();
      }
      a.busy_fit = index.AnyBusyFitNode(needed_area, family);
      a.any_idle = index.FindAnyIdleCandidate(needed_area, family, nodes);
      break;
    case QueryGroup::kRanked:
      a.first_fit =
          index.RankedHost(needed_area, HostRank::kFirstFit, family, nodes);
      if (const auto id = index.RankedHost(needed_area, HostRank::kBestFit,
                                           family, nodes)) {
        a.best_fit = id;
        a.best_fit_avail = nodes[id->value()].available_area();
      }
      if (const auto id = index.RankedHost(needed_area, HostRank::kWorstFit,
                                           family, nodes)) {
        a.worst_fit = id;
        a.worst_fit_avail = nodes[id->value()].available_area();
      }
      break;
  }
}

void ShardEngine::EnsureBundle(Area needed_area, FamilyId family,
                               QueryGroup group) {
  if (!bundle_.keyed || bundle_.epoch != epoch_ ||
      bundle_.area != needed_area || bundle_.family_raw != family.value()) {
    bundle_.answers.assign(members_.size(), ShardAnswer{});
    for (bool& have : bundle_.have) have = false;
    bundle_.keyed = true;
    bundle_.epoch = epoch_;
    bundle_.area = needed_area;
    bundle_.family_raw = family.value();
  }
  const auto g = static_cast<std::size_t>(group);
  if (bundle_.have[g]) return;
  if (indexed_) {
    // O(log N) per shard: a thread broadcast would cost more than it saves.
    for (std::size_t s = 0; s < members_.size(); ++s) {
      ComputeIndexed(s, needed_area, family, group, bundle_.answers[s]);
    }
  } else {
    // Hand each job a direct reference to the answer vector: jobs write
    // only their own pre-sized slot (the ShardPool contract), so the
    // guarded bundle_ itself is never touched off the simulation thread.
    std::vector<ShardAnswer>& answers = bundle_.answers;
    pool_->Run(members_.size(), [&](std::size_t s) {
      ComputeScan(s, needed_area, family, group, answers[s]);
    });
  }
  bundle_.have[g] = true;
}

// Every merge below reduces bundle_.answers in fixed shard order 0..K-1 on
// keys of (area, node id) — global properties of the winning node — so the
// result cannot depend on shard count, shard assignment, or thread timing.

std::optional<NodeId> ShardEngine::BestBlank(Area needed_area,
                                             FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kBlank);
  std::optional<NodeId> best;
  Area best_total = 0;
  std::size_t best_pos = 0;
  for (const ShardAnswer& a : bundle_.answers) {
    if (!a.blank) continue;
    if (!best || a.blank_total < best_total ||
        (a.blank_total == best_total && a.blank_list_pos < best_pos)) {
      best = a.blank;
      best_total = a.blank_total;
      best_pos = a.blank_list_pos;
    }
  }
  return best;
}

std::optional<NodeId> ShardEngine::BestPartiallyBlank(Area needed_area,
                                                      FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kRest);
  std::optional<NodeId> best;
  Area best_avail = 0;
  for (const ShardAnswer& a : bundle_.answers) {
    if (!a.partial) continue;
    if (!best || a.partial_avail < best_avail ||
        (a.partial_avail == best_avail && a.partial->value() < best->value())) {
      best = a.partial;
      best_avail = a.partial_avail;
    }
  }
  return best;
}

std::optional<NodeId> ShardEngine::BestIdleConfigured(Area needed_area,
                                                      FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kRest);
  std::optional<NodeId> best;
  Area best_total = 0;
  for (const ShardAnswer& a : bundle_.answers) {
    if (!a.idle_cfg) continue;
    if (!best || a.idle_cfg_total < best_total ||
        (a.idle_cfg_total == best_total &&
         a.idle_cfg->value() < best->value())) {
      best = a.idle_cfg;
      best_total = a.idle_cfg_total;
    }
  }
  return best;
}

std::optional<NodeId> ShardEngine::AnyBusyFitNode(Area needed_area,
                                                  FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kRest);
  std::optional<NodeId> best;
  for (const ShardAnswer& a : bundle_.answers) {
    if (!a.busy_fit) continue;
    if (!best || a.busy_fit->value() < best->value()) best = a.busy_fit;
  }
  return best;
}

std::optional<ReconfigPlan> ShardEngine::FindAnyIdle(Area needed_area,
                                                     FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kRest);
  const ReconfigPlan* best = nullptr;
  for (const ShardAnswer& a : bundle_.answers) {
    if (!a.any_idle) continue;
    if (best == nullptr || a.any_idle->node.value() < best->node.value()) {
      best = &*a.any_idle;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<NodeId> ShardEngine::RankedHost(Area needed_area, HostRank rank,
                                              FamilyId family) {
  sim_role_.AssertHeld();
  EnsureBundle(needed_area, family, QueryGroup::kRanked);
  std::optional<NodeId> best;
  Area best_avail = 0;
  for (const ShardAnswer& a : bundle_.answers) {
    switch (rank) {
      case HostRank::kFirstFit:
        if (a.first_fit &&
            (!best || a.first_fit->value() < best->value())) {
          best = a.first_fit;
        }
        break;
      case HostRank::kBestFit:
        if (a.best_fit &&
            (!best || a.best_fit_avail < best_avail ||
             (a.best_fit_avail == best_avail &&
              a.best_fit->value() < best->value()))) {
          best = a.best_fit;
          best_avail = a.best_fit_avail;
        }
        break;
      case HostRank::kWorstFit:
        if (a.worst_fit &&
            (!best || a.worst_fit_avail > best_avail ||
             (a.worst_fit_avail == best_avail &&
              a.worst_fit->value() < best->value()))) {
          best = a.worst_fit;
          best_avail = a.worst_fit_avail;
        }
        break;
    }
  }
  return best;
}

std::optional<EntryRef> ShardEngine::BestIdleEntry(
    const EntryList& list) const {
  if (list.empty()) return std::nullopt;
  const std::vector<Node>& nodes = *nodes_;
  const std::size_t shards = members_.size();
  if (list.size() < kParallelIdleScanMin || !list.partitioned() ||
      list.shard_count() != shards) {
    // Below the fork-join break-even (or without a partition) the
    // sequential reference scan wins; cell order ascends in position, so
    // strict `<` already keeps the earliest tie.
    const std::vector<EntryRef>& cells =
        list.cells();  // lint: allow(entry-cells-iteration)
    std::size_t best_pos = 0;
    Area best_avail = 0;
    bool any = false;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Area avail = nodes[cells[i].node.value()].available_area();
      if (!any || avail < best_avail) {
        any = true;
        best_avail = avail;
        best_pos = i;
      }
    }
    return cells[best_pos];
  }
  // Each shard scans only its own partition bucket. Bucket order is not
  // global order (swap-removal permutes it), so ties inside a shard break
  // on the carried global position explicitly.
  struct Best {
    bool any = false;
    Area avail = 0;
    std::uint32_t gpos = 0;
    EntryRef entry;
  };
  std::vector<Best> bests(shards);
  pool_->Run(shards, [&](std::size_t s) {
    Best b;
    for (const EntryList::ShardCell& c : list.shard_cells(s)) {
      const Area avail = nodes[c.entry.node.value()].available_area();
      if (!b.any || avail < b.avail ||
          (avail == b.avail && c.gpos < b.gpos)) {
        b = {true, avail, c.gpos, c.entry};
      }
    }
    bests[s] = b;
  });
  // Fixed shard-order merge on (available area, global cell position) —
  // global properties of the winning entry, so the result matches the
  // sequential FindMin at any K and thread count.
  const Best* win = nullptr;
  for (const Best& b : bests) {
    if (!b.any) continue;
    if (win == nullptr || b.avail < win->avail ||
        (b.avail == win->avail && b.gpos < win->gpos)) {
      win = &b;
    }
  }
  if (win == nullptr) return std::nullopt;
  return win->entry;
}

Steps ShardEngine::LiveSlotPrefixBefore(FamilyId family,
                                        std::uint32_t bound_id) const {
  Steps total = 0;
  for (const auto& index : indexes_) {
    total += index->LiveSlotPrefixBefore(family, bound_id);
  }
  return total;
}

Steps ShardEngine::LiveSlotTotal(FamilyId family) const {
  Steps total = 0;
  for (const auto& index : indexes_) total += index->LiveSlotTotal(family);
  return total;
}

std::vector<std::string> ShardEngine::Validate() const {
  std::vector<std::string> violations;
  if (shard_of_.size() != nodes_->size()) {
    violations.push_back(Format("shard map tracks {} nodes, store has {}",
                                shard_of_.size(), nodes_->size()));
    return violations;
  }
  std::vector<std::uint32_t> owner_count(shard_of_.size(), 0);
  for (std::size_t s = 0; s < members_.size(); ++s) {
    const std::vector<std::uint32_t>& ids = members_[s];
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0 && ids[i - 1] >= ids[i]) {
        violations.push_back(
            Format("shard {}: member ids not strictly ascending", s));
      }
      if (ids[i] >= shard_of_.size()) {
        violations.push_back(
            Format("shard {}: member {} outside store", s, ids[i]));
        continue;
      }
      ++owner_count[ids[i]];
      if (shard_of_[ids[i]] != s) {
        violations.push_back(Format(
            "node {}: shard map says {} but listed in shard {}", ids[i],
            shard_of_[ids[i]], s));
      }
    }
  }
  for (std::size_t id = 0; id < owner_count.size(); ++id) {
    if (owner_count[id] != 1) {
      violations.push_back(Format("node {}: appears in {} shards (want 1)",
                                  id, owner_count[id]));
    }
  }
  for (std::size_t s = 0; s < indexes_.size(); ++s) {
    for (const std::string& v : indexes_[s]->Validate(*nodes_, *busy_area_view_)) {
      violations.push_back(Format("shard {} index: {}", s, v));
    }
  }
  return violations;
}

}  // namespace dreamsim::resource
