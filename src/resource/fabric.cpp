#include "resource/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::resource {

std::string_view ToString(Placement placement) {
  switch (placement) {
    case Placement::kFirstFit: return "first-fit";
    case Placement::kBestFit: return "best-fit";
    case Placement::kWorstFit: return "worst-fit";
  }
  return "?";
}

FabricLayout::FabricLayout(Area total) : total_(total) {
  if (total <= 0) throw std::invalid_argument("fabric total must be positive");
  free_.push_back(Extent{0, total});
}

std::optional<Extent> FabricLayout::Allocate(Area size, Placement placement) {
  if (size <= 0) throw std::invalid_argument("allocation size must be positive");
  std::size_t chosen = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].size < size) continue;
    if (chosen == free_.size()) {
      chosen = i;
      if (placement == Placement::kFirstFit) break;
      continue;
    }
    const bool better = placement == Placement::kBestFit
                            ? free_[i].size < free_[chosen].size
                            : free_[i].size > free_[chosen].size;
    if (better) chosen = i;
  }
  if (chosen == free_.size()) return std::nullopt;

  Extent& hole = free_[chosen];
  const Extent allocated{hole.offset, size};
  if (hole.size == size) {
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(chosen));
  } else {
    hole.offset += size;
    hole.size -= size;
  }
  return allocated;
}

void FabricLayout::Free(const Extent& extent) {
  if (extent.size <= 0 || extent.offset < 0 || extent.end() > total_) {
    throw std::logic_error("freeing an out-of-bounds extent");
  }
  // Insertion point: first hole starting at or after the freed region.
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), extent,
      [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  if (it != free_.end() && extent.end() > it->offset) {
    throw std::logic_error("double free: extent overlaps a free hole");
  }
  if (it != free_.begin() && std::prev(it)->end() > extent.offset) {
    throw std::logic_error("double free: extent overlaps a free hole");
  }

  auto inserted = free_.insert(it, extent);
  // Coalesce with the successor...
  const auto next = std::next(inserted);
  if (next != free_.end() && inserted->end() == next->offset) {
    inserted->size += next->size;
    inserted = std::prev(free_.erase(next));
  }
  // ...and with the predecessor.
  if (inserted != free_.begin()) {
    const auto prev = std::prev(inserted);
    if (prev->end() == inserted->offset) {
      prev->size += inserted->size;
      free_.erase(inserted);
    }
  }
}

bool FabricLayout::CanAllocate(Area size) const {
  return largest_free_extent() >= size;
}

bool FabricLayout::CanAllocateAfterFreeing(std::span<const Extent> pending,
                                           Area size) const {
  // Merge the current holes with the would-be-freed extents, then look for
  // a hole of `size`. O((h + p) log (h + p)) — callers pass few extents.
  std::vector<Extent> holes(free_.begin(), free_.end());
  holes.insert(holes.end(), pending.begin(), pending.end());
  std::sort(holes.begin(), holes.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  Area run_start = -1;
  Area run_end = -1;
  for (const Extent& e : holes) {
    if (e.offset > run_end) {
      run_start = e.offset;
      run_end = e.end();
    } else {
      run_end = std::max(run_end, e.end());
    }
    if (run_end - run_start >= size) return true;
  }
  return false;
}

Area FabricLayout::free_area() const {
  Area total = 0;
  for (const Extent& e : free_) total += e.size;
  return total;
}

Area FabricLayout::largest_free_extent() const {
  Area largest = 0;
  for (const Extent& e : free_) largest = std::max(largest, e.size);
  return largest;
}

double FabricLayout::FragmentationIndex() const {
  const Area free_total = free_area();
  if (free_total == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_extent()) /
                   static_cast<double>(free_total);
}

void FabricLayout::Reset() {
  free_.clear();
  free_.push_back(Extent{0, total_});
}

std::vector<std::string> FabricLayout::Validate() const {
  std::vector<std::string> violations;
  Area previous_end = -1;
  for (const Extent& e : free_) {
    if (e.size <= 0) {
      violations.push_back(Format("hole at {} has size {}", e.offset, e.size));
    }
    if (e.offset < 0 || e.end() > total_) {
      violations.push_back(
          Format("hole [{}, {}) out of bounds", e.offset, e.end()));
    }
    if (e.offset <= previous_end) {
      violations.push_back(Format(
          "hole at {} overlaps or touches its predecessor (uncoalesced)",
          e.offset));
    }
    previous_end = e.end();
  }
  return violations;
}

}  // namespace dreamsim::resource
