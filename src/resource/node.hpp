// Reconfigurable nodes (Eq. 1) and their config-task-pair lists (Fig. 3).
//
//   Node_i(TotalArea, AvailableArea, C, family, caps, state)
//
// With partial reconfiguration a node holds a *set* of configurations; each
// live configuration occupies one slot of the config-task-pair list and may
// or may not be executing a task. AvailableArea always satisfies Eq. 4:
//   AvailableArea = TotalArea - sum(ReqArea of live configurations).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "resource/config.hpp"
#include "resource/fabric.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {
class StructureCorruptor;  // test-only seeded-corruption injector
}  // namespace dreamsim::analysis

namespace dreamsim::resource {

/// Stable index of a config-task-pair slot within one node. Slots are
/// reused via a free list, so a SlotIndex stays valid until that specific
/// entry is removed.
using SlotIndex = std::uint32_t;
inline constexpr SlotIndex kInvalidSlot = static_cast<SlotIndex>(-1);

/// One entry of the config-task-pair list: a live configuration plus the
/// task running on it (invalid TaskId = idle entry, the paper's NULL).
struct ConfigTaskPair {
  ConfigId config;
  TaskId task;  // invalid => idle

  [[nodiscard]] bool idle() const { return !task.valid(); }
};

/// Hardware capabilities of a node (the `caps` of Eq. 1): "embedded memory,
/// DSP slices, configuration bandwidth, etc."
struct Caps {
  std::int64_t embedded_memory_kb = 0;
  std::int64_t dsp_slices = 0;
  /// Configuration-port bandwidth in bytes per tick (drives bitstream
  /// transfer time when the network model is enabled).
  Bytes config_bandwidth = 0;
};

/// A reconfigurable processing node.
///
/// By default the fabric is the paper's scalar model (Eq. 4). With
/// `contiguous_placement` the node additionally runs a FabricLayout: each
/// configuration occupies a contiguous extent, and SendBitstream can fail
/// due to external fragmentation even when AvailableArea would suffice.
class Node {
 public:
  Node(NodeId id, Area total_area, FamilyId family, Caps caps,
       bool contiguous_placement = false,
       Placement placement = Placement::kFirstFit);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Area total_area() const { return total_area_; }
  [[nodiscard]] Area available_area() const { return available_area_; }
  [[nodiscard]] FamilyId family() const { return family_; }
  [[nodiscard]] const Caps& caps() const { return caps_; }

  /// Number of live configurations (the m of Eq. 4).
  [[nodiscard]] std::size_t config_count() const { return live_entries_; }

  /// True when the node has no configuration at all ("blank node").
  [[nodiscard]] bool blank() const { return live_entries_ == 0; }

  /// True while the node is failed (fault injection). A failed node is
  /// always blank (the store wipes it before marking it failed), cannot
  /// host or accept configurations, and is invisible to every scheduler
  /// query until MarkRepaired().
  [[nodiscard]] bool failed() const { return failed_; }

  /// Marks the node failed. Precondition: blank (the store has already
  /// wiped its configurations) and not already failed.
  void MarkFailed();

  /// Clears the failed flag. Precondition: failed. The node comes back
  /// blank and must pay full configuration time again.
  void MarkRepaired();

  /// True when at least one slot is executing a task (`state` of Eq. 1).
  [[nodiscard]] bool busy() const { return running_tasks_ > 0; }

  /// Number of currently running tasks.
  [[nodiscard]] std::size_t running_tasks() const { return running_tasks_; }

  /// Number of live configurations with no task — the entries Algorithm 1
  /// may reclaim.
  [[nodiscard]] std::size_t idle_entry_count() const {
    return live_entries_ - running_tasks_;
  }

  /// Reconfigurations performed on this node so far (Table I metric).
  [[nodiscard]] std::uint64_t reconfig_count() const { return reconfig_count_; }

  /// Fixed network delay between the RMS and this node, in ticks.
  [[nodiscard]] Tick network_delay() const { return network_delay_; }
  void set_network_delay(Tick delay) { network_delay_ = delay; }

  /// True when the node can host a configuration of `area` right now:
  /// scalar AvailableArea in the paper's model, a single sufficient hole
  /// under contiguous placement.
  [[nodiscard]] bool CanHost(Area area) const;

  /// Contiguous-placement variant of the Algorithm 1 feasibility check:
  /// could a region of `area` be placed after reclaiming `idle_slots`?
  /// (Scalar model: sum test.) Slots must be live and idle.
  [[nodiscard]] bool CanHostAfterReclaiming(
      std::span<const SlotIndex> idle_slots, Area area) const;

  /// SendBitstream(): loads `config` into a fresh slot, consuming
  /// `required_area` and bumping the reconfiguration count. Returns
  /// nullopt when the configuration does not fit (insufficient area, or a
  /// fragmented fabric under contiguous placement).
  std::optional<SlotIndex> TrySendBitstream(const Configuration& config);

  /// Throwing wrapper over TrySendBitstream() for callers that already
  /// established feasibility.
  SlotIndex SendBitstream(const Configuration& config);

  /// MakeNodeBlank(): removes every configuration; AvailableArea returns
  /// to TotalArea. Precondition: no running tasks.
  void MakeNodeBlank();

  /// MakeNodePartiallyBlank(): removes one idle configuration slot and
  /// reclaims `reclaimed_area` (the removed configuration's ReqArea — the
  /// node stores only the ConfigId, so the caller resolves the area via the
  /// catalogue). Precondition: slot is live and idle.
  void MakeNodePartiallyBlank(SlotIndex slot, Area reclaimed_area);

  /// AddTaskToNode(): marks `slot` as executing `task`.
  /// Precondition: slot is live and idle.
  void AddTaskToNode(SlotIndex slot, TaskId task);

  /// RemoveTaskFromNode(): clears the task from `slot`, leaving the
  /// configuration in place (it can be reused or reclaimed later).
  /// Precondition: slot is live and busy.
  void RemoveTaskFromNode(SlotIndex slot);

  /// Access to a slot; throws on dead/out-of-range slots.
  [[nodiscard]] const ConfigTaskPair& Slot(SlotIndex slot) const;

  /// Invokes `fn(slot_index, pair)` for every live slot, in slot order.
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (SlotIndex i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) fn(i, *slots_[i]);
    }
  }

  /// Upper bound over live slot indices (for manual iteration).
  [[nodiscard]] SlotIndex slot_bound() const {
    return static_cast<SlotIndex>(slots_.size());
  }

  /// Pre-reserves slot-list capacity (hint only; slots still grow on
  /// demand past it).
  void ReserveSlots(std::size_t expected) { slots_.reserve(expected); }
  [[nodiscard]] bool SlotLive(SlotIndex slot) const {
    return slot < slots_.size() && slots_[slot].has_value();
  }

  /// Whether contiguous placement is active on this node.
  [[nodiscard]] bool contiguous() const { return layout_.has_value(); }

  /// Fabric layout (contiguous placement only; throws otherwise).
  [[nodiscard]] const FabricLayout& layout() const;

  /// Extent occupied by a live slot (contiguous placement only).
  [[nodiscard]] const Extent& SlotExtent(SlotIndex slot) const;

  /// External fragmentation index; 0 under the scalar model.
  [[nodiscard]] double Fragmentation() const {
    return layout_ ? layout_->FragmentationIndex() : 0.0;
  }

 private:
  // Test-only seeded corruption (src/analysis): flips failed_ behind the
  // store's back so the auditor's fault-visibility checks can be proven
  // non-vacuous. See resource/entry_list.hpp.
  friend class ::dreamsim::analysis::StructureCorruptor;

  NodeId id_;
  Area total_area_;
  Area available_area_;
  FamilyId family_;
  Caps caps_;
  Tick network_delay_ = 0;

  std::optional<FabricLayout> layout_;
  Placement placement_ = Placement::kFirstFit;
  std::vector<Extent> slot_extents_;  // parallel to slots_ when contiguous

  std::vector<std::optional<ConfigTaskPair>> slots_;
  std::vector<SlotIndex> free_slots_;
  std::size_t live_entries_ = 0;
  std::size_t running_tasks_ = 0;
  std::uint64_t reconfig_count_ = 0;
  bool failed_ = false;
};

/// Parameters for synthetic node generation (Table II: "Node TotalArea
/// range [1000...4000]").
struct NodeGenParams {
  int count = 200;
  Area min_area = 1000;
  Area max_area = 4000;
  Tick min_network_delay = 0;
  Tick max_network_delay = 0;
  int family_count = 1;
  /// Enable the contiguous-placement fabric model (extension; the paper's
  /// scalar Eq. 4 model when false).
  bool contiguous_placement = false;
  /// Hole-selection heuristic under contiguous placement.
  Placement placement = Placement::kFirstFit;
};

/// One heterogeneous device family (a scenario `device class:` block): a
/// population of nodes sharing a FamilyId, an Eq. 4 area range, a
/// reconfiguration-port bandwidth, and fabric-model flags. Class index ==
/// FamilyId, so configurations synthesized per family (round-robin, like
/// ConfigGenParams::family_count) bind to exactly one class.
struct DeviceClassParams {
  /// Diagnostic label ("zynq-small"); never affects generation.
  std::string name;
  int count = 0;
  Area min_area = 1000;
  Area max_area = 4000;
  /// Configuration-port bandwidth in bytes/tick (Caps::config_bandwidth;
  /// drives bitstream transfer time under ship_bitstreams).
  Bytes config_bandwidth = 400;
  Tick min_network_delay = 0;
  Tick max_network_delay = 0;
  /// Per-node LRU bitstream-store capacity in bytes for this family;
  /// < 0 inherits the run-wide bitstream_cache_capacity.
  Bytes bitstream_store = -1;
  bool contiguous_placement = false;
  Placement placement = Placement::kFirstFit;
};

}  // namespace dreamsim::resource
