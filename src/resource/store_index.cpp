#include "resource/store_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::resource {

// --- StoreIndex ---

StoreIndex::Snapshot StoreIndex::Capture(const Node& node, Area busy_area) {
  Snapshot s;
  s.total = node.total_area();
  s.available = node.available_area();
  s.potential = node.total_area() - busy_area;
  s.config_count = static_cast<std::int64_t>(node.config_count());
  s.blank = node.blank();
  s.busy = node.busy();
  s.failed = node.failed();
  s.family = node.family().value();
  return s;
}

std::int64_t StoreIndex::PotentialKey(const Snapshot& snap) {
  return snap.failed ? MaxSegTree::kNegInf : snap.potential;
}

std::int64_t StoreIndex::AvailableKey(const Snapshot& snap) {
  return snap.failed ? MaxSegTree::kNegInf : snap.available;
}

void StoreIndex::AddNode(const Node& node, Area busy_area) {
  const std::uint32_t id = node.id().value();
  if (sparse_) {
    if (!global_.ids.empty() && global_.ids.back() >= id) {
      throw std::logic_error(
          "StoreIndex::AddNode: member ids must be strictly ascending");
    }
    slot_of_.emplace(id, cached_.size());
  } else if (id != cached_.size()) {
    throw std::logic_error("StoreIndex::AddNode: node ids must be dense");
  }
  Snapshot snap = Capture(node, busy_area);
  View& fam = family_views_[snap.family];
  snap.family_pos = fam.ids.size();
  AppendToView(global_, snap, id);
  AppendToView(fam, snap, id);
  cached_.push_back(snap);
}

void StoreIndex::Refresh(const Node& node, Area busy_area) {
  const std::uint32_t id = node.id().value();
  const std::size_t pos = PosOf(id);
  Snapshot& was = cached_.at(pos);
  Snapshot now = Capture(node, busy_area);
  now.family_pos = was.family_pos;  // families are fixed at creation
  ApplyToView(global_, pos, was, now, id);
  ApplyToView(family_views_.at(now.family), now.family_pos, was, now, id);
  was = now;
}

void StoreIndex::AppendToView(View& view, const Snapshot& snap,
                              std::uint32_t id) {
  view.ids.push_back(id);
  view.potential.Append(PotentialKey(snap));
  view.busy_total.Append(snap.busy ? snap.total : MaxSegTree::kNegInf);
  view.available.Append(AvailableKey(snap));
  view.config_count.Append(snap.config_count);
  if (!snap.failed) view.all_by_avail.insert({snap.available, id});
  if (snap.blank && !snap.failed) {
    view.blank_by_total.insert({snap.total, id});
  }
  if (!snap.blank) view.partial_by_avail.insert({snap.available, id});
  if (!snap.blank && !snap.busy) {
    view.idle_cfg_by_total.insert({snap.total, id});
  }
}

void StoreIndex::ApplyToView(View& view, std::size_t pos, const Snapshot& was,
                             const Snapshot& now, std::uint32_t id) {
  if (PotentialKey(was) != PotentialKey(now)) {
    view.potential.Assign(pos, PotentialKey(now));
  }
  const std::int64_t was_busy = was.busy ? was.total : MaxSegTree::kNegInf;
  const std::int64_t now_busy = now.busy ? now.total : MaxSegTree::kNegInf;
  if (was_busy != now_busy) view.busy_total.Assign(pos, now_busy);
  if (AvailableKey(was) != AvailableKey(now)) {
    view.available.Assign(pos, AvailableKey(now));
  }
  if (was.config_count != now.config_count) {
    view.config_count.Assign(pos, now.config_count);
  }

  const auto resync = [&](std::set<AreaKey>& keys, bool was_in, Area was_key,
                          bool now_in, Area now_key) {
    if (was_in == now_in && (!now_in || was_key == now_key)) return;
    if (was_in) keys.erase({was_key, id});
    if (now_in) keys.insert({now_key, id});
  };
  resync(view.blank_by_total, was.blank && !was.failed, was.total,
         now.blank && !now.failed, now.total);
  resync(view.all_by_avail, !was.failed, was.available, !now.failed,
         now.available);
  resync(view.partial_by_avail, !was.blank, was.available, !now.blank,
         now.available);
  resync(view.idle_cfg_by_total, !was.blank && !was.busy, was.total,
         !now.blank && !now.busy, now.total);
}

const StoreIndex::View* StoreIndex::ViewFor(FamilyId family) const {
  if (!family.valid()) return &global_;
  const auto it = family_views_.find(family.value());
  return it == family_views_.end() ? nullptr : &it->second;
}

std::optional<NodeId> StoreIndex::BestBlank(
    Area needed_area, FamilyId family,
    const std::vector<std::size_t>& blank_pos) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  const auto it = view->blank_by_total.lower_bound({needed_area, 0});
  if (it == view->blank_by_total.end()) return std::nullopt;
  // The reference scan keeps the first fitting node *in blank-list order*
  // among ties on the minimal TotalArea, and that incidental order is part
  // of the bit-identity contract: walk the tie range and compare blank-list
  // positions. The range only spans blank nodes of one exact area.
  const Area tightest = it->first;
  std::uint32_t best = it->second;
  for (auto tie = std::next(it);
       tie != view->blank_by_total.end() && tie->first == tightest; ++tie) {
    if (blank_pos[tie->second] < blank_pos[best]) best = tie->second;
  }
  return NodeId{best};
}

std::optional<NodeId> StoreIndex::BestPartiallyBlank(
    Area needed_area, FamilyId family, const std::vector<Node>& nodes) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  // (available, id) ascending matches the scan's selection order: minimum
  // AvailableArea, ties to the smallest id. Scalar nodes in this range pass
  // CanHost by construction; only a fragmented contiguous fabric forces the
  // walk to the next candidate.
  for (auto it = view->partial_by_avail.lower_bound({needed_area, 0});
       it != view->partial_by_avail.end(); ++it) {
    const Node& n = nodes[it->second];
    if (n.CanHost(needed_area)) return n.id();
  }
  return std::nullopt;
}

std::optional<NodeId> StoreIndex::BestIdleConfigured(Area needed_area,
                                                     FamilyId family) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  const auto it = view->idle_cfg_by_total.lower_bound({needed_area, 0});
  if (it == view->idle_cfg_by_total.end()) return std::nullopt;
  return NodeId{it->second};
}

StoreIndex::BusyFit StoreIndex::AnyBusyFit(Area needed_area,
                                           FamilyId family) const {
  const auto all_nodes = static_cast<Steps>(cached_.size());
  const View* view = ViewFor(family);
  if (view == nullptr) return {false, all_nodes};
  const std::size_t pos = view->busy_total.FirstAtLeast(0, needed_area);
  if (pos == MaxSegTree::npos) return {false, all_nodes};
  // The reference scan early-exits at the first qualifying node (ascending
  // id, like this view), having charged one step per node up to it.
  return {true, static_cast<Steps>(view->ids[pos]) + 1};
}

std::optional<ReconfigPlan> StoreIndex::ReplayReclaimScan(
    const Node& node, Area needed_area) const {
  // Mirrors the Algorithm 1 inner loop exactly: accumulate idle-entry areas
  // in slot order; the plan is the minimal prefix reaching the target, and
  // under contiguous placement the freed extents must also form a
  // big-enough hole.
  Area accumulated = node.available_area();
  std::vector<SlotIndex> removable;
  std::optional<ReconfigPlan> plan;
  node.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
    if (plan || !pair.idle()) return;
    accumulated += configs_->Get(pair.config).required_area;
    removable.push_back(slot);
    if (accumulated < needed_area) return;
    if (node.contiguous() &&
        !node.CanHostAfterReclaiming(removable, needed_area)) {
      return;
    }
    plan = ReconfigPlan{node.id(), removable};
  });
  return plan;
}

StoreIndex::AnyIdle StoreIndex::FindAnyIdle(
    Area needed_area, FamilyId family, const std::vector<Node>& nodes) const {
  const auto all_nodes = static_cast<Steps>(cached_.size());
  const View* view = ViewFor(family);
  if (view == nullptr) return {std::nullopt, all_nodes};
  // Candidate filter: a node can satisfy Algorithm 1 only when
  // AvailableArea plus all idle-entry areas — i.e. TotalArea minus busy
  // areas, the `potential` summary — reaches the target. The descent
  // enumerates exactly those nodes in ascending id, the scan's visit order.
  std::size_t pos = 0;
  while ((pos = view->potential.FirstAtLeast(pos, needed_area)) !=
         MaxSegTree::npos) {
    const Node& n = nodes[view->ids[pos]];
    // The scan charges one step per node walked (any family) plus one per
    // live slot of every family-compatible node it fully inspected.
    const Steps node_steps = static_cast<Steps>(view->ids[pos]) + 1;
    if (n.CanHost(needed_area)) {
      // CanHost exits before the slot walk: the winner's slots are free.
      const auto slot_steps =
          static_cast<Steps>(view->config_count.Prefix(pos));
      return {ReconfigPlan{n.id(), {}}, node_steps + slot_steps};
    }
    if (auto plan = ReplayReclaimScan(n, needed_area)) {
      const auto slot_steps =
          static_cast<Steps>(view->config_count.Prefix(pos + 1));
      return {std::move(plan), node_steps + slot_steps};
    }
    ++pos;  // scalar candidates always succeed; a contiguous fabric can be
            // too fragmented, in which case the scan keeps walking
  }
  return {std::nullopt,
          all_nodes + static_cast<Steps>(view->config_count.Total())};
}

std::optional<NodeId> StoreIndex::RankedHost(
    Area needed_area, HostRank rank, FamilyId family,
    const std::vector<Node>& nodes) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  switch (rank) {
    case HostRank::kFirstFit: {
      // First node in id order with AvailableArea >= needed that passes
      // CanHost (the fragmentation gate only bites under contiguous
      // placement).
      std::size_t pos = 0;
      while ((pos = view->available.FirstAtLeast(pos, needed_area)) !=
             MaxSegTree::npos) {
        const Node& n = nodes[view->ids[pos]];
        if (n.CanHost(needed_area)) return n.id();
        ++pos;
      }
      return std::nullopt;
    }
    case HostRank::kBestFit: {
      for (auto it = view->all_by_avail.lower_bound({needed_area, 0});
           it != view->all_by_avail.end(); ++it) {
        const Node& n = nodes[it->second];
        if (n.CanHost(needed_area)) return n.id();
      }
      return std::nullopt;
    }
    case HostRank::kWorstFit: {
      // Walk groups of equal AvailableArea from the largest down; within a
      // group the scan keeps the smallest id, which is the set's own order.
      const auto floor_it = view->all_by_avail.lower_bound({needed_area, 0});
      auto end_it = view->all_by_avail.end();
      while (floor_it != end_it) {
        const Area group_area = std::prev(end_it)->first;
        const auto group_it = view->all_by_avail.lower_bound({group_area, 0});
        for (auto it = group_it; it != end_it; ++it) {
          const Node& n = nodes[it->second];
          if (n.CanHost(needed_area)) return n.id();
        }
        end_it = group_it;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<NodeId> StoreIndex::AnyBusyFitNode(Area needed_area,
                                                 FamilyId family) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  const std::size_t pos = view->busy_total.FirstAtLeast(0, needed_area);
  if (pos == MaxSegTree::npos) return std::nullopt;
  return NodeId{view->ids[pos]};
}

std::optional<ReconfigPlan> StoreIndex::FindAnyIdleCandidate(
    Area needed_area, FamilyId family, const std::vector<Node>& nodes) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return std::nullopt;
  std::size_t pos = 0;
  while ((pos = view->potential.FirstAtLeast(pos, needed_area)) !=
         MaxSegTree::npos) {
    const Node& n = nodes[view->ids[pos]];
    if (n.CanHost(needed_area)) return ReconfigPlan{n.id(), {}};
    if (auto plan = ReplayReclaimScan(n, needed_area)) return plan;
    ++pos;  // contiguous fabric too fragmented; keep walking
  }
  return std::nullopt;
}

Steps StoreIndex::LiveSlotPrefixBefore(FamilyId family,
                                       std::uint32_t bound_id) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return 0;
  const auto it =
      std::lower_bound(view->ids.begin(), view->ids.end(), bound_id);
  const auto pos = static_cast<std::size_t>(it - view->ids.begin());
  return static_cast<Steps>(view->config_count.Prefix(pos));
}

Steps StoreIndex::LiveSlotTotal(FamilyId family) const {
  const View* view = ViewFor(family);
  if (view == nullptr) return 0;
  return static_cast<Steps>(view->config_count.Total());
}

void StoreIndex::ValidateView(const View& view, const char* label,
                              const std::vector<Node>& nodes,
                              const std::vector<Area>& busy_area,
                              std::vector<std::string>& violations) const {
  const std::size_t count = view.ids.size();
  if (view.potential.size() != count || view.busy_total.size() != count ||
      view.available.size() != count || view.config_count.size() != count) {
    violations.push_back(
        Format("index view {}: tree sizes disagree with {} members", label,
               count));
    return;
  }
  std::size_t healthy_members = 0;
  std::size_t blank_members = 0;
  std::size_t partial_members = 0;
  std::size_t idle_cfg_members = 0;
  for (std::size_t pos = 0; pos < count; ++pos) {
    if (pos > 0 && view.ids[pos - 1] >= view.ids[pos]) {
      violations.push_back(
          Format("index view {}: ids not strictly ascending at {}", label,
                 pos));
    }
    const std::uint32_t id = view.ids[pos];
    const Node& n = nodes[id];
    const std::int64_t potential =
        n.failed() ? MaxSegTree::kNegInf : n.total_area() - busy_area[id];
    if (view.potential.Value(pos) != potential) {
      violations.push_back(Format(
          "index view {}: node {} potential {} != {}", label, id,
          view.potential.Value(pos), potential));
    }
    const std::int64_t busy_total =
        n.busy() ? n.total_area() : MaxSegTree::kNegInf;
    if (view.busy_total.Value(pos) != busy_total) {
      violations.push_back(
          Format("index view {}: node {} busy-total stale", label, id));
    }
    const std::int64_t available =
        n.failed() ? MaxSegTree::kNegInf : n.available_area();
    if (view.available.Value(pos) != available) {
      violations.push_back(Format(
          "index view {}: node {} available {} != {}", label, id,
          view.available.Value(pos), available));
    }
    if (view.config_count.Value(pos) !=
        static_cast<std::int64_t>(n.config_count())) {
      violations.push_back(
          Format("index view {}: node {} config count stale", label, id));
    }
    if (view.all_by_avail.count({n.available_area(), id}) !=
        (n.failed() ? 0u : 1u)) {
      violations.push_back(
          Format("index view {}: node {} all-by-avail mismatch", label, id));
    }
    if (view.blank_by_total.count({n.total_area(), id}) !=
        (n.blank() && !n.failed() ? 1u : 0u)) {
      violations.push_back(
          Format("index view {}: node {} blank-set mismatch", label, id));
    }
    if (view.partial_by_avail.count({n.available_area(), id}) !=
        (n.blank() ? 0u : 1u)) {
      violations.push_back(
          Format("index view {}: node {} partial-set mismatch", label, id));
    }
    const bool idle_cfg = !n.blank() && !n.busy();
    if (view.idle_cfg_by_total.count({n.total_area(), id}) !=
        (idle_cfg ? 1u : 0u)) {
      violations.push_back(
          Format("index view {}: node {} idle-cfg-set mismatch", label, id));
    }
    healthy_members += n.failed() ? 0u : 1u;
    blank_members += n.blank() && !n.failed() ? 1u : 0u;
    partial_members += n.blank() ? 0u : 1u;
    idle_cfg_members += idle_cfg ? 1u : 0u;
  }
  // Size checks catch stale extra keys the per-node membership tests above
  // cannot see.
  if (view.all_by_avail.size() != healthy_members ||
      view.blank_by_total.size() != blank_members ||
      view.partial_by_avail.size() != partial_members ||
      view.idle_cfg_by_total.size() != idle_cfg_members) {
    violations.push_back(
        Format("index view {}: ordered-set sizes disagree with membership",
               label));
  }
}

std::vector<std::string> StoreIndex::Validate(
    const std::vector<Node>& nodes, const std::vector<Area>& busy_area) const {
  std::vector<std::string> violations;
  if (!sparse_ && cached_.size() != nodes.size()) {
    violations.push_back(Format("index tracks {} nodes, store has {}",
                                cached_.size(), nodes.size()));
    return violations;
  }
  if (cached_.size() != global_.ids.size()) {
    violations.push_back(Format("index caches {} snapshots for {} members",
                                cached_.size(), global_.ids.size()));
    return violations;
  }
  if (sparse_ && slot_of_.size() != cached_.size()) {
    violations.push_back(Format("index slot map holds {} of {} members",
                                slot_of_.size(), cached_.size()));
    return violations;
  }
  // Dense mode has global_.ids[pos] == pos == node id, so one loop over
  // member positions covers both flavours.
  for (std::size_t pos = 0; pos < cached_.size(); ++pos) {
    const std::uint32_t id = global_.ids[pos];
    if (id >= nodes.size()) {
      violations.push_back(Format("index member {} outside store", id));
      continue;
    }
    if (sparse_) {
      const auto it = slot_of_.find(id);
      if (it == slot_of_.end() || it->second != pos) {
        violations.push_back(Format("index: node {} slot map stale", id));
        continue;
      }
    }
    const Node& n = nodes[id];
    const Snapshot& snap = cached_[pos];
    if (snap.family != n.family().value()) {
      violations.push_back(Format("index: node {} family stale", id));
      continue;
    }
    const auto it = family_views_.find(snap.family);
    if (it == family_views_.end() ||
        snap.family_pos >= it->second.ids.size() ||
        it->second.ids[snap.family_pos] != id) {
      violations.push_back(
          Format("index: node {} family-view position stale", id));
    }
    const Snapshot fresh = Capture(n, busy_area[id]);
    if (snap.total != fresh.total || snap.available != fresh.available ||
        snap.potential != fresh.potential ||
        snap.config_count != fresh.config_count ||
        snap.blank != fresh.blank || snap.busy != fresh.busy ||
        snap.failed != fresh.failed) {
      violations.push_back(Format("index: node {} snapshot stale", id));
    }
  }
  ValidateView(global_, "global", nodes, busy_area, violations);
  for (const auto& [family, view] : family_views_) {
    ValidateView(view, Format("family {}", family).c_str(), nodes, busy_area,
                 violations);
  }
  return violations;
}

}  // namespace dreamsim::resource
