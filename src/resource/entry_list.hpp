// Per-configuration idle/busy membership lists (Fig. 3).
//
// The paper threads Inext/Bnext pointers through the nodes so that "these
// linked lists ease up the search effort needed to get the state information
// of a certain node". With partial reconfiguration a node can appear in
// several configurations' lists at once (idle w.r.t. config A, busy w.r.t.
// config B), so membership is per *entry* (node, slot), held in cells like
// the UML's IdleList/BusyList (`Item`, `Next`).
//
// Cells live in a contiguous vector: push is O(1), membership removal and
// all searches are counted linear traversals — the same step costs the
// paper's metrics measure on its linked lists, with better locality.
//
// Two host-side accelerations ride underneath without changing any charge
// (DESIGN.md §14):
//   - positions are kept in an open-addressing flat map over the packed
//     8-byte EntryRef instead of an unordered_map, so the mutation hot path
//     allocates no hash nodes;
//   - under the sharded kernel the list can be *partitioned*: every cell is
//     mirrored into the bucket of its node's shard together with its global
//     position, so a shard can scan only its own members while tie-breaks
//     (and Remove charges) still follow the one global cell order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "resource/node.hpp"
#include "resource/workload_meter.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {
class StructureAuditor;    // correctness tooling (src/analysis); read-only
class StructureCorruptor;  // test-only seeded-corruption injector
}  // namespace dreamsim::analysis

namespace dreamsim::resource {

/// Reference to one config-task-pair entry on one node.
struct EntryRef {
  NodeId node;
  SlotIndex slot = kInvalidSlot;

  friend constexpr bool operator==(EntryRef, EntryRef) = default;
};
static_assert(sizeof(EntryRef) == 8, "EntryRef must stay 8 bytes (packed)");

/// Packs an EntryRef into the 8-byte key the flat position map hashes.
constexpr std::uint64_t PackEntryRef(EntryRef e) {
  return (static_cast<std::uint64_t>(e.node.value()) << 32) | e.slot;
}

struct EntryRefHash {
  std::size_t operator()(EntryRef e) const noexcept {
    return std::hash<std::uint64_t>{}(PackEntryRef(e));
  }
};

/// Counted-traversal membership list of entries.
///
/// A position map makes removal O(1) host work; the meter is still charged
/// what the counted linear search would have cost (position + 1 cells, or
/// the full list on a miss), so the paper's step metrics are unchanged.
/// Entries must be unique (the store never double-adds).
class EntryList {
 public:
  /// One partitioned cell: the entry plus its current position in the
  /// global cell vector (the tie-break and charge key).
  struct ShardCell {
    EntryRef entry;
    std::uint32_t gpos = 0;
  };

  /// O(1) insertion (push-front semantics of a linked list).
  void Add(EntryRef entry, WorkloadMeter& meter);

  /// Removes `entry`; O(1) via the position map, charged as the counted
  /// linear search. Returns false when absent.
  bool Remove(EntryRef entry, WorkloadMeter& meter);

  /// Counted linear membership test.
  [[nodiscard]] bool Contains(EntryRef entry, WorkloadMeter& meter,
                              StepKind kind) const;

  /// Pre-sizes the cell vector and the flat position map for `n` entries
  /// (reservation discipline, DESIGN.md §13). Never changes contents.
  void Reserve(std::size_t n);

  /// Mirrors every cell into per-shard buckets keyed by
  /// `(*shard_of)[node id]` so the sharded kernel can scan one shard's
  /// members only. `shard_of` must outlive the list (the ShardEngine's
  /// node-to-shard map; the vector object's address must stay stable).
  /// Passing nullptr drops the partition. Rebuilds from the current cells,
  /// so it can be toggled at any point; charges nothing.
  void SetPartition(const std::vector<std::uint32_t>* shard_of,
                    std::size_t shards);
  [[nodiscard]] bool partitioned() const { return shard_of_ != nullptr; }
  [[nodiscard]] std::size_t shard_count() const { return buckets_.size(); }
  [[nodiscard]] const std::vector<ShardCell>& shard_cells(
      std::size_t shard) const {
    return buckets_[shard];
  }

  /// Visits every entry (one counted step each) and returns the first for
  /// which `pred(entry)` is true, or nullopt. The predicate itself may add
  /// further steps (e.g. when it inspects node state).
  template <typename Pred>
  [[nodiscard]] std::optional<EntryRef> FindFirst(Pred&& pred,
                                                  WorkloadMeter& meter,
                                                  StepKind kind) const {
    for (const EntryRef& e : cells_) {
      meter.Add(kind);
      if (pred(e)) return e;
    }
    return std::nullopt;
  }

  /// Full counted scan returning the entry minimizing `key(entry)`; ties
  /// keep the earliest. Returns nullopt for an empty list or when `accept`
  /// rejects every entry.
  template <typename Key, typename Accept>
  [[nodiscard]] std::optional<EntryRef> FindMin(Key&& key, Accept&& accept,
                                                WorkloadMeter& meter,
                                                StepKind kind) const {
    std::optional<EntryRef> best;
    long long best_key = 0;
    for (const EntryRef& e : cells_) {
      meter.Add(kind);
      if (!accept(e)) continue;
      const long long k = key(e);
      if (!best || k < best_key) {
        best = e;
        best_key = k;
      }
    }
    return best;
  }

  /// FindMin variant whose key also sees the cell position — the heuristic
  /// policies' Class A rank depends on the scan position (first-fit) or on
  /// stateful policy state, and routing them through here keeps raw cell
  /// iteration out of the schedulers (the entry-cells-iteration lint rule).
  template <typename Key>
  [[nodiscard]] std::optional<EntryRef> FindMinPositional(
      Key&& key, WorkloadMeter& meter, StepKind kind) const {
    std::optional<EntryRef> best;
    long long best_key = 0;
    for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
      meter.Add(kind);
      const long long k = key(cells_[pos], pos);
      if (!best || k < best_key) {
        best = cells_[pos];
        best_key = k;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] const std::vector<EntryRef>& cells() const { return cells_; }

  /// True when the position map is the exact inverse of the cell vector
  /// (consistency checks).
  [[nodiscard]] bool PositionsConsistent() const;

  /// True when the shard buckets mirror the cell vector exactly: every
  /// cell in precisely its node's shard bucket with the right global
  /// position, no strays. Vacuously true unpartitioned.
  [[nodiscard]] bool PartitionConsistent() const;

 private:
  // The auditor reconstructs ground truth from the raw cells; the
  // corruptor breaks them on purpose in tests. Neither is part of the
  // mutation surface (dreamsim_lint enforces that for everything else).
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  /// Open-addressing (linear probing, backward-shift deletion) map from
  /// packed EntryRef to its cell position and shard-bucket position. The
  /// all-ones key doubles as the empty sentinel; it packs the (invalid
  /// node, invalid slot) pair, which no live entry ever carries.
  struct PosSlot {
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
    std::uint64_t key = kEmptyKey;
    std::uint32_t pos = 0;
    std::uint32_t bucket_pos = 0;
  };

  [[nodiscard]] std::size_t ProbeStart(std::uint64_t key) const;
  /// Index of `key`'s slot, or the table size when absent.
  [[nodiscard]] std::size_t FindSlot(std::uint64_t key) const;
  /// Slot for inserting `key` (grows + rehashes at 11/16 load).
  [[nodiscard]] PosSlot& InsertSlot(std::uint64_t key);
  void EraseSlot(std::size_t index);
  void Rehash(std::size_t capacity);
  [[nodiscard]] std::uint32_t ShardOfNode(NodeId node) const {
    return (*shard_of_)[node.value()];
  }

  std::vector<EntryRef> cells_;
  std::vector<PosSlot> table_;  // power-of-two size; empty vector = empty map
  std::size_t table_used_ = 0;
  const std::vector<std::uint32_t>* shard_of_ = nullptr;  // node id -> shard
  std::vector<std::vector<ShardCell>> buckets_;  // shard -> its cells
};

}  // namespace dreamsim::resource
