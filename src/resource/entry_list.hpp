// Per-configuration idle/busy membership lists (Fig. 3).
//
// The paper threads Inext/Bnext pointers through the nodes so that "these
// linked lists ease up the search effort needed to get the state information
// of a certain node". With partial reconfiguration a node can appear in
// several configurations' lists at once (idle w.r.t. config A, busy w.r.t.
// config B), so membership is per *entry* (node, slot), held in cells like
// the UML's IdleList/BusyList (`Item`, `Next`).
//
// Cells live in a contiguous vector: push is O(1), membership removal and
// all searches are counted linear traversals — the same step costs the
// paper's metrics measure on its linked lists, with better locality.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "resource/node.hpp"
#include "resource/workload_meter.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {
class StructureAuditor;    // correctness tooling (src/analysis); read-only
class StructureCorruptor;  // test-only seeded-corruption injector
}  // namespace dreamsim::analysis

namespace dreamsim::resource {

/// Reference to one config-task-pair entry on one node.
struct EntryRef {
  NodeId node;
  SlotIndex slot = kInvalidSlot;

  friend constexpr bool operator==(EntryRef, EntryRef) = default;
};

struct EntryRefHash {
  std::size_t operator()(EntryRef e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.node.value()) << 32) | e.slot);
  }
};

/// Counted-traversal membership list of entries.
///
/// A position map makes removal O(1) host work; the meter is still charged
/// what the counted linear search would have cost (position + 1 cells, or
/// the full list on a miss), so the paper's step metrics are unchanged.
/// Entries must be unique (the store never double-adds).
class EntryList {
 public:
  /// O(1) insertion (push-front semantics of a linked list).
  void Add(EntryRef entry, WorkloadMeter& meter);

  /// Removes `entry`; O(1) via the position map, charged as the counted
  /// linear search. Returns false when absent.
  bool Remove(EntryRef entry, WorkloadMeter& meter);

  /// Counted linear membership test.
  [[nodiscard]] bool Contains(EntryRef entry, WorkloadMeter& meter,
                              StepKind kind) const;

  /// Visits every entry (one counted step each) and returns the first for
  /// which `pred(entry)` is true, or nullopt. The predicate itself may add
  /// further steps (e.g. when it inspects node state).
  template <typename Pred>
  [[nodiscard]] std::optional<EntryRef> FindFirst(Pred&& pred,
                                                  WorkloadMeter& meter,
                                                  StepKind kind) const {
    for (const EntryRef& e : cells_) {
      meter.Add(kind);
      if (pred(e)) return e;
    }
    return std::nullopt;
  }

  /// Full counted scan returning the entry minimizing `key(entry)`; ties
  /// keep the earliest. Returns nullopt for an empty list or when `accept`
  /// rejects every entry.
  template <typename Key, typename Accept>
  [[nodiscard]] std::optional<EntryRef> FindMin(Key&& key, Accept&& accept,
                                                WorkloadMeter& meter,
                                                StepKind kind) const {
    std::optional<EntryRef> best;
    long long best_key = 0;
    for (const EntryRef& e : cells_) {
      meter.Add(kind);
      if (!accept(e)) continue;
      const long long k = key(e);
      if (!best || k < best_key) {
        best = e;
        best_key = k;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] const std::vector<EntryRef>& cells() const { return cells_; }

  /// True when the position map is the exact inverse of the cell vector
  /// (consistency checks).
  [[nodiscard]] bool PositionsConsistent() const;

 private:
  // The auditor reconstructs ground truth from the raw cells; the
  // corruptor breaks them on purpose in tests. Neither is part of the
  // mutation surface (dreamsim_lint enforces that for everything else).
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  std::vector<EntryRef> cells_;
  std::unordered_map<EntryRef, std::size_t, EntryRefHash> positions_;
};

}  // namespace dreamsim::resource
