#include "resource/config.hpp"

#include <stdexcept>

#include "ptype/ptype.hpp"

namespace dreamsim::resource {

ConfigId ConfigCatalogue::Add(Configuration config) {
  const auto id = ConfigId{static_cast<std::uint32_t>(configs_.size())};
  config.id = id;
  if (config.required_area <= 0) {
    throw std::invalid_argument("configuration area must be positive");
  }
  max_area_ = std::max(max_area_, config.required_area);
  configs_.push_back(config);
  return id;
}

ConfigCatalogue ConfigCatalogue::Generate(const ConfigGenParams& params,
                                          const ptype::Catalogue& ptypes,
                                          Rng& rng) {
  if (params.min_area <= 0 || params.min_area > params.max_area) {
    throw std::invalid_argument("invalid configuration area range");
  }
  if (params.min_config_time <= 0 ||
      params.min_config_time > params.max_config_time) {
    throw std::invalid_argument("invalid configuration time range");
  }
  ConfigCatalogue catalogue;
  for (int i = 0; i < params.count; ++i) {
    Configuration c;
    c.required_area = rng.uniform_int(params.min_area, params.max_area);
    c.ptype = ptypes.empty() ? PtypeId::invalid() : ptypes.Sample(rng);
    c.bitstream_size = ptype::BitstreamSize(c.required_area);
    c.config_time =
        rng.uniform_int(params.min_config_time, params.max_config_time);
    if (params.family_count > 1) {
      c.family = FamilyId{static_cast<std::uint32_t>(i % params.family_count)};
    }
    catalogue.Add(c);
  }
  return catalogue;
}

const Configuration& ConfigCatalogue::Get(ConfigId id) const {
  if (!Contains(id)) throw std::out_of_range("unknown ConfigId");
  return configs_[id.value()];
}

bool ConfigCatalogue::Contains(ConfigId id) const {
  return id.valid() && id.value() < configs_.size();
}

std::optional<ConfigId> ConfigCatalogue::FindPreferred(ConfigId preferred,
                                                       Steps& steps) const {
  // The paper keeps this a deliberate linear search ("currently, a simple
  // linear search is employed") because the metric of interest is the
  // search effort itself.
  for (const Configuration& c : configs_) {
    ++steps;
    if (c.id == preferred) return c.id;
  }
  return std::nullopt;
}

std::optional<ConfigId> ConfigCatalogue::FindClosestMatch(Area needed_area,
                                                          Steps& steps) const {
  std::optional<ConfigId> best;
  Area best_area = 0;
  for (const Configuration& c : configs_) {
    ++steps;
    if (c.required_area < needed_area) continue;
    if (!best || c.required_area < best_area) {
      best = c.id;
      best_area = c.required_area;
    }
  }
  return best;
}

}  // namespace dreamsim::resource
